// Tests of the synthetic-world generators: structural invariants of the
// SNOMED-like DAG, the MED-shaped ontology statistics, KB population,
// corpus generation, and workload generation — all deterministic in the
// seed.

#include <unordered_set>

#include <gtest/gtest.h>

#include "medrelax/datasets/corpus_generator.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/datasets/query_generator.h"
#include "medrelax/datasets/snomed_generator.h"
#include "medrelax/graph/topology.h"
#include "medrelax/text/normalize.h"

namespace medrelax {
namespace {

SnomedGeneratorOptions SmallEks() {
  SnomedGeneratorOptions opts;
  opts.num_concepts = 600;
  opts.seed = 4242;
  return opts;
}

KbGeneratorOptions SmallKb() {
  KbGeneratorOptions opts;
  opts.num_drugs = 25;
  opts.num_findings = 80;
  opts.seed = 777;
  return opts;
}

TEST(SnomedGenerator, ProducesRequestedScale) {
  auto eks = GenerateSnomedLike(SmallEks());
  ASSERT_TRUE(eks.ok()) << eks.status();
  EXPECT_GE(eks->dag.num_concepts(), 550u);
  EXPECT_LE(eks->dag.num_concepts(), 650u);
  EXPECT_FALSE(eks->finding_concepts.empty());
  EXPECT_TRUE(ValidateExternalSource(eks->dag).ok());
}

TEST(SnomedGenerator, DeterministicInSeed) {
  auto a = GenerateSnomedLike(SmallEks());
  auto b = GenerateSnomedLike(SmallEks());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->dag.num_concepts(), b->dag.num_concepts());
  for (ConceptId id = 0; id < a->dag.num_concepts(); ++id) {
    EXPECT_EQ(a->dag.name(id), b->dag.name(id));
  }
  EXPECT_EQ(a->dag.num_edges(), b->dag.num_edges());
}

TEST(SnomedGenerator, DifferentSeedsDiffer) {
  SnomedGeneratorOptions other = SmallEks();
  other.seed = 4243;
  auto a = GenerateSnomedLike(SmallEks());
  auto b = GenerateSnomedLike(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = a->dag.num_concepts() != b->dag.num_concepts() ||
                        a->dag.num_edges() != b->dag.num_edges();
  if (!any_difference) {
    for (ConceptId id = 0; id < a->dag.num_concepts(); ++id) {
      if (a->dag.name(id) != b->dag.name(id)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SnomedGenerator, RejectsTinyBudgets) {
  SnomedGeneratorOptions opts;
  opts.num_concepts = 10;
  EXPECT_TRUE(GenerateSnomedLike(opts).status().IsInvalidArgument());
}

TEST(SnomedGenerator, PopularityIsZipfLike) {
  auto eks = GenerateSnomedLike(SmallEks());
  ASSERT_TRUE(eks.ok());
  double max_pop = 0.0, total = 0.0;
  for (double p : eks->popularity) {
    max_pop = std::max(max_pop, p);
    total += p;
  }
  EXPECT_DOUBLE_EQ(max_pop, 1.0);  // rank-1 weight
  EXPECT_GT(total, 1.0);
  EXPECT_LT(max_pop / total, 0.5);  // heavy head, but not everything
}

TEST(SnomedGenerator, DepthsAreConsistentWithTreeParents) {
  auto eks = GenerateSnomedLike(SmallEks());
  ASSERT_TRUE(eks.ok());
  EXPECT_EQ(eks->depth[eks->root], 0u);
  for (ConceptId id : eks->finding_concepts) {
    EXPECT_GE(eks->depth[id], 2u);  // under "clinical finding"
  }
}

TEST(MedOntology, MatchesPaperStatistics) {
  auto onto = BuildMedOntology();
  ASSERT_TRUE(onto.ok()) << onto.status();
  // Section 7.1: 43 concepts and 58 relationships.
  EXPECT_EQ(onto->num_concepts(), 43u);
  EXPECT_EQ(onto->num_relationships(), 58u);
  // Figure 1 core is present.
  EXPECT_NE(onto->FindConcept("Drug"), kInvalidOntologyConcept);
  EXPECT_NE(onto->FindConcept("Finding"), kInvalidOntologyConcept);
  OntologyConceptId risk = onto->FindConcept("Risk");
  EXPECT_EQ(onto->SubConcepts(risk).size(), 3u);
}

TEST(WorldGenerator, PopulatesKbAndGroundTruth) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ(world->drug_instances.size(), 25u);
  EXPECT_GE(world->finding_instances.size(), 70u);
  EXPECT_NE(world->ctx_indication, kNoContext);
  EXPECT_NE(world->ctx_risk, kNoContext);
  // Every finding instance has a true link into the finding region.
  std::unordered_set<ConceptId> region(world->eks.finding_concepts.begin(),
                                       world->eks.finding_concepts.end());
  for (InstanceId f : world->finding_instances) {
    auto it = world->true_link.find(f);
    ASSERT_NE(it, world->true_link.end());
    EXPECT_TRUE(region.count(it->second) > 0);
  }
  EXPECT_GT(world->kb.triples.num_triples(), 0u);
}

TEST(WorldGenerator, ParticipationCoversEveryFindingConcept) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok());
  for (ConceptId id : world->eks.finding_concepts) {
    EXPECT_NE(world->participation[id], 0)
        << world->eks.dag.name(id) << " has no context";
  }
}

TEST(WorldGenerator, LinksRespectParticipationTruth) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok());
  for (const auto& [drug, findings] : world->treats) {
    (void)drug;
    for (InstanceId f : findings) {
      ConceptId c = world->true_link.at(f);
      EXPECT_TRUE(world->participation[c] & kParticipatesTreat);
    }
  }
  for (const auto& [drug, findings] : world->causes) {
    (void)drug;
    for (InstanceId f : findings) {
      ConceptId c = world->true_link.at(f);
      EXPECT_TRUE(world->participation[c] & kParticipatesRisk);
    }
  }
}

TEST(CorpusGenerator, OneMonographPerDrugWithTaggedSections) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok());
  Corpus corpus = GenerateMonographCorpus(*world, CorpusGeneratorOptions{});
  EXPECT_EQ(corpus.size(), world->drug_instances.size());
  size_t indication_sections = 0, risk_sections = 0, untyped = 0;
  for (const Document& doc : corpus.documents()) {
    for (const DocumentSection& s : doc.sections) {
      if (s.context == world->ctx_indication) ++indication_sections;
      if (s.context == world->ctx_risk) ++risk_sections;
      if (s.context == kNoContext) ++untyped;
      EXPECT_FALSE(s.tokens.empty());
    }
  }
  EXPECT_GT(indication_sections, 0u);
  EXPECT_GT(risk_sections, 0u);
  EXPECT_EQ(untyped, corpus.size());
}

TEST(CorpusGenerator, MonographMentionsTreatedFindings) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok());
  Corpus corpus = GenerateMonographCorpus(*world, CorpusGeneratorOptions{});
  // Spot-check: the first drug's indication section contains the tokens of
  // at least one treated finding's concept name.
  InstanceId drug = world->drug_instances[0];
  auto treats = world->treats.find(drug);
  if (treats == world->treats.end() || treats->second.empty()) GTEST_SKIP();
  ConceptId concept_id = world->true_link.at(treats->second[0]);
  std::string name = NormalizeTerm(world->eks.dag.name(concept_id));
  bool found = false;
  for (const DocumentSection& s : corpus.document(0).sections) {
    if (s.context != world->ctx_indication) continue;
    std::string joined;
    for (const std::string& t : s.tokens) joined += t + " ";
    if (joined.find(name) != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GeneralCorpus, OnlyShallowConceptNamesAppear) {
  auto eks = GenerateSnomedLike(SmallEks());
  ASSERT_TRUE(eks.ok());
  GeneralCorpusOptions opts;
  opts.num_documents = 20;
  Corpus corpus = GenerateGeneralCorpus(*eks, opts);
  EXPECT_EQ(corpus.size(), 20u);
  // Deep, specific names (depth > max_concept_depth) must be absent: check
  // a handful of deep concepts.
  size_t checked = 0;
  for (ConceptId id : eks->finding_concepts) {
    if (eks->depth[id] <= opts.max_concept_depth + 1) continue;
    std::string name = NormalizeTerm(eks->dag.name(id));
    for (const Document& doc : corpus.documents()) {
      std::string joined;
      for (const std::string& t : doc.sections[0].tokens) joined += t + " ";
      EXPECT_EQ(joined.find(name), std::string::npos)
          << "deep concept leaked: " << name;
    }
    if (++checked >= 5) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST(QueryGenerator, MappingWorkloadMixesNoise) {
  auto eks = GenerateSnomedLike(SmallEks());
  ASSERT_TRUE(eks.ok());
  MappingWorkloadOptions opts;
  opts.num_queries = 100;
  std::vector<MappingQuery> queries = GenerateMappingQueries(*eks, opts);
  EXPECT_EQ(queries.size(), 100u);
  std::unordered_set<int> kinds;
  for (const MappingQuery& q : queries) {
    EXPECT_NE(q.gold, kInvalidConcept);
    EXPECT_FALSE(q.surface.empty());
    kinds.insert(static_cast<int>(q.noise));
  }
  EXPECT_GE(kinds.size(), 3u);  // several noise kinds represented
}

TEST(QueryGenerator, RelaxationWorkloadRespectsOutOfKbMix) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok());
  RelaxationWorkloadOptions opts;
  opts.num_queries = 60;
  opts.out_of_kb_fraction = 0.5;
  std::vector<RelaxationQuery> queries =
      GenerateRelaxationQueries(*world, opts);
  ASSERT_GE(queries.size(), 50u);
  std::unordered_set<ConceptId> in_kb(world->kb_finding_concepts.begin(),
                                      world->kb_finding_concepts.end());
  size_t out = 0;
  for (const RelaxationQuery& q : queries) {
    EXPECT_TRUE(q.context == world->ctx_indication ||
                q.context == world->ctx_risk);
    // Context assignment respects participation truth.
    uint8_t mask = world->participation[q.concept_id];
    if (q.context == world->ctx_indication) {
      EXPECT_TRUE(mask & kParticipatesTreat);
    } else {
      EXPECT_TRUE(mask & kParticipatesRisk);
    }
    if (in_kb.count(q.concept_id) == 0) ++out;
  }
  EXPECT_GT(out, queries.size() / 4);
  EXPECT_LT(out, 3 * queries.size() / 4);
}

TEST(QueryGenerator, NlQuestionsEmbedTheTerm) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok());
  NlWorkloadOptions opts;
  opts.num_questions = 15;
  for (const NlQuestion& q : GenerateNlQuestions(*world, opts)) {
    EXPECT_NE(q.text.find(q.term_surface), std::string::npos)
        << q.text << " / " << q.term_surface;
    EXPECT_NE(q.concept_id, kInvalidConcept);
  }
}

TEST(QueryGenerator, T1QuestionsUseInKbConcepts) {
  auto world = GenerateWorld(SmallEks(), SmallKb());
  ASSERT_TRUE(world.ok());
  std::unordered_set<ConceptId> in_kb(world->kb_finding_concepts.begin(),
                                      world->kb_finding_concepts.end());
  NlWorkloadOptions opts;
  opts.num_questions = 15;
  opts.free_form = false;
  for (const NlQuestion& q : GenerateNlQuestions(*world, opts)) {
    EXPECT_TRUE(in_kb.count(q.concept_id) > 0);
  }
}

}  // namespace
}  // namespace medrelax
