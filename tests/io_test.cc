// Round-trip tests of the text serialization for the external DAG and the
// knowledge base, including property sweeps over generated worlds.

#include <sstream>

#include <gtest/gtest.h>

#include "medrelax/datasets/corpus_generator.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/io/dag_io.h"
#include "medrelax/io/corpus_io.h"
#include "medrelax/io/ingestion_io.h"
#include "medrelax/io/kb_io.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {
namespace {

void ExpectDagsEqual(const ConceptDag& a, const ConceptDag& b) {
  ASSERT_EQ(a.num_concepts(), b.num_concepts());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_shortcut_edges(), b.num_shortcut_edges());
  for (ConceptId id = 0; id < a.num_concepts(); ++id) {
    EXPECT_EQ(a.name(id), b.name(id));
    EXPECT_EQ(a.synonyms(id), b.synonyms(id));
    const auto& pa = a.parents(id);
    const auto& pb = b.parents(id);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t e = 0; e < pa.size(); ++e) {
      EXPECT_EQ(pa[e].target, pb[e].target);
      EXPECT_EQ(pa[e].original_distance, pb[e].original_distance);
      EXPECT_EQ(pa[e].is_shortcut, pb[e].is_shortcut);
    }
  }
}

TEST(DagIo, RoundTripsFixture) {
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  ASSERT_TRUE(fx->dag.AddShortcut(fx->ckd_stage1_due_to_hypertension,
                                  fx->kidney_disease, 3)
                  .ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveDag(fx->dag, buffer).ok());
  auto loaded = LoadDag(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectDagsEqual(fx->dag, *loaded);
}

TEST(DagIo, RejectsGarbage) {
  std::stringstream missing_header("C\tfoo\n");
  EXPECT_TRUE(LoadDag(missing_header).status().IsInvalidArgument());
  std::stringstream bad_record("# medrelax-dag v1\nX\tfoo\n");
  EXPECT_TRUE(LoadDag(bad_record).status().IsInvalidArgument());
  std::stringstream bad_id("# medrelax-dag v1\nC\tfoo\nS\t9\tbar\n");
  EXPECT_TRUE(LoadDag(bad_id).status().IsInvalidArgument());
}

TEST(DagIo, FileRoundTrip) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  const std::string path = ::testing::TempDir() + "/dag_io_test.tsv";
  ASSERT_TRUE(SaveDagToFile(fx->dag, path).ok());
  auto loaded = LoadDagFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectDagsEqual(fx->dag, *loaded);
  EXPECT_TRUE(LoadDagFromFile("/no/such/file").status().IsNotFound());
}

void ExpectKbsEqual(const KnowledgeBase& a, const KnowledgeBase& b) {
  ASSERT_EQ(a.ontology.num_concepts(), b.ontology.num_concepts());
  ASSERT_EQ(a.ontology.num_relationships(), b.ontology.num_relationships());
  for (OntologyConceptId c = 0; c < a.ontology.num_concepts(); ++c) {
    EXPECT_EQ(a.ontology.concept_name(c), b.ontology.concept_name(c));
    EXPECT_EQ(a.ontology.SubConcepts(c), b.ontology.SubConcepts(c));
  }
  for (RelationshipId r = 0; r < a.ontology.num_relationships(); ++r) {
    EXPECT_EQ(a.ontology.relationship(r).name,
              b.ontology.relationship(r).name);
    EXPECT_EQ(a.ontology.relationship(r).domain,
              b.ontology.relationship(r).domain);
    EXPECT_EQ(a.ontology.relationship(r).range,
              b.ontology.relationship(r).range);
  }
  ASSERT_EQ(a.instances.num_instances(), b.instances.num_instances());
  for (InstanceId i = 0; i < a.instances.num_instances(); ++i) {
    EXPECT_EQ(a.instances.instance(i).name, b.instances.instance(i).name);
    EXPECT_EQ(a.instances.instance(i).concept_id,
              b.instances.instance(i).concept_id);
  }
  ASSERT_EQ(a.triples.num_triples(), b.triples.num_triples());
  for (size_t t = 0; t < a.triples.num_triples(); ++t) {
    EXPECT_TRUE(a.triples.triples()[t] == b.triples.triples()[t]);
  }
}

TEST(KbIo, RoundTripsMedOntologyKb) {
  auto onto = BuildMedOntology();
  ASSERT_TRUE(onto.ok());
  KnowledgeBase kb;
  kb.ontology = std::move(*onto);
  OntologyConceptId drug = kb.ontology.FindConcept("Drug");
  OntologyConceptId finding = kb.ontology.FindConcept("Finding");
  InstanceId a = *kb.instances.AddInstance("aspirin", drug);
  InstanceId f = *kb.instances.AddInstance("fever", finding);
  ASSERT_TRUE(kb.triples.AddTriple(a, 0, f).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveKb(kb, buffer).ok());
  auto loaded = LoadKb(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectKbsEqual(kb, *loaded);
}

TEST(KbIo, RejectsGarbage) {
  std::stringstream missing_header("OC\tDrug\n");
  EXPECT_TRUE(LoadKb(missing_header).status().IsInvalidArgument());
  std::stringstream bad_triple(
      "# medrelax-kb v1\nOC\tDrug\nT\t0\t0\t0\n");  // no instances yet
  EXPECT_TRUE(LoadKb(bad_triple).status().IsInvalidArgument());
}

void ExpectCorporaEqual(const Corpus& a, const Corpus& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a.document(d).name, b.document(d).name);
    ASSERT_EQ(a.document(d).sections.size(), b.document(d).sections.size());
    for (size_t s = 0; s < a.document(d).sections.size(); ++s) {
      EXPECT_EQ(a.document(d).sections[s].context,
                b.document(d).sections[s].context);
      EXPECT_EQ(a.document(d).sections[s].tokens,
                b.document(d).sections[s].tokens);
    }
  }
}

TEST(CorpusIo, RoundTripsTypedAndUntypedSections) {
  Corpus corpus;
  Document doc;
  doc.name = "monograph-1";
  DocumentSection typed;
  typed.context = 2;
  typed.tokens = {"treats", "headache"};
  DocumentSection untyped;
  untyped.context = kNoContext;
  untyped.tokens = {"general", "prose"};
  doc.sections = {typed, untyped};
  corpus.AddDocument(std::move(doc));

  std::stringstream buffer;
  ASSERT_TRUE(SaveCorpus(corpus, buffer).ok());
  auto loaded = LoadCorpus(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectCorporaEqual(corpus, *loaded);
}

TEST(CorpusIo, RejectsGarbage) {
  std::stringstream missing_header("D\tdoc\n");
  EXPECT_TRUE(LoadCorpus(missing_header).status().IsInvalidArgument());
  std::stringstream orphan_section(
      "# medrelax-corpus v1\nS\t-\ttokens here\n");
  EXPECT_TRUE(LoadCorpus(orphan_section).status().IsInvalidArgument());
  std::stringstream bad_context("# medrelax-corpus v1\nD\td\nS\tx\tfoo\n");
  EXPECT_TRUE(LoadCorpus(bad_context).status().IsInvalidArgument());
}

TEST(CorpusIo, GeneratedMonographCorpusRoundTrips) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 300;
  eks.seed = 9;
  KbGeneratorOptions kbo;
  kbo.num_drugs = 8;
  kbo.num_findings = 30;
  kbo.seed = 10;
  auto world = GenerateWorld(eks, kbo);
  ASSERT_TRUE(world.ok());
  Corpus corpus = GenerateMonographCorpus(*world, CorpusGeneratorOptions{});
  std::stringstream buffer;
  ASSERT_TRUE(SaveCorpus(corpus, buffer).ok());
  auto loaded = LoadCorpus(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectCorporaEqual(corpus, *loaded);
}

TEST(IngestionIo, RoundTripsAndRelaxesIdentically) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 400;
  eks.seed = 404;
  KbGeneratorOptions kbo;
  kbo.num_drugs = 12;
  kbo.num_findings = 60;
  kbo.seed = 405;
  auto world = GenerateWorld(eks, kbo);
  ASSERT_TRUE(world.ok());
  Corpus corpus = GenerateMonographCorpus(*world, CorpusGeneratorOptions{});
  NameIndex index(&world->eks.dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  auto ingestion = RunIngestion(world->kb, &world->eks.dag, matcher, &corpus,
                                IngestionOptions{});
  ASSERT_TRUE(ingestion.ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveIngestion(*ingestion, buffer).ok());
  auto loaded = LoadIngestion(buffer, world->eks.dag);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // The snapshot reproduces C, F, M, FEC.
  EXPECT_EQ(loaded->contexts.size(), ingestion->contexts.size());
  EXPECT_EQ(loaded->mappings, ingestion->mappings);
  EXPECT_EQ(loaded->flagged, ingestion->flagged);
  EXPECT_EQ(loaded->unmapped_instances, ingestion->unmapped_instances);
  EXPECT_EQ(loaded->shortcuts_added, ingestion->shortcuts_added);
  for (ConceptId c = 0; c < world->eks.dag.num_concepts(); ++c) {
    for (ContextId ctx = 0; ctx <= ingestion->contexts.size(); ++ctx) {
      ContextId effective =
          ctx == ingestion->contexts.size() ? kNoContext : ctx;
      ASSERT_DOUBLE_EQ(loaded->frequencies.Frequency(c, effective),
                       ingestion->frequencies.Frequency(c, effective))
          << "concept " << c << " ctx " << effective;
    }
  }

  // Online relaxation over the reloaded snapshot matches the original.
  QueryRelaxer original(&world->eks.dag, &*ingestion, &matcher,
                        SimilarityOptions{}, RelaxationOptions{});
  QueryRelaxer reloaded(&world->eks.dag, &*loaded, &matcher,
                        SimilarityOptions{}, RelaxationOptions{});
  for (size_t i = 0; i < 10 && i < world->eks.finding_concepts.size(); ++i) {
    ConceptId query = world->eks.finding_concepts[i * 7];
    RelaxationOutcome a = original.RelaxConcept(query, world->ctx_indication);
    RelaxationOutcome b = reloaded.RelaxConcept(query, world->ctx_indication);
    ASSERT_EQ(a.concepts.size(), b.concepts.size());
    for (size_t j = 0; j < a.concepts.size(); ++j) {
      EXPECT_EQ(a.concepts[j].concept_id, b.concepts[j].concept_id);
      EXPECT_DOUBLE_EQ(a.concepts[j].similarity, b.concepts[j].similarity);
    }
  }
}

TEST(IngestionIo, RejectsDagMismatch) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 300;
  eks.seed = 11;
  KbGeneratorOptions kbo;
  kbo.num_drugs = 5;
  kbo.num_findings = 20;
  kbo.seed = 12;
  auto world = GenerateWorld(eks, kbo);
  ASSERT_TRUE(world.ok());
  NameIndex index(&world->eks.dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  auto ingestion = RunIngestion(world->kb, &world->eks.dag, matcher, nullptr,
                                IngestionOptions{});
  ASSERT_TRUE(ingestion.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveIngestion(*ingestion, buffer).ok());

  ConceptDag other;
  ASSERT_TRUE(other.AddConcept("root").ok());
  EXPECT_TRUE(LoadIngestion(buffer, other).status().IsFailedPrecondition());
}

TEST(IngestionIo, RejectsGarbage) {
  ConceptDag dag;
  ASSERT_TRUE(dag.AddConcept("root").ok());
  std::stringstream missing_header("H\t1\t0\t1\n");
  EXPECT_TRUE(
      LoadIngestion(missing_header, dag).status().IsInvalidArgument());
  std::stringstream no_h("# medrelax-ingestion v1\nU\t0\n");
  EXPECT_TRUE(LoadIngestion(no_h, dag).status().IsInvalidArgument());
}

// Property sweep: generated worlds round-trip losslessly at several seeds.
class IoSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IoSweep, GeneratedWorldRoundTrips) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 300;
  eks.seed = GetParam();
  KbGeneratorOptions kbo;
  kbo.num_drugs = 10;
  kbo.num_findings = 40;
  kbo.seed = GetParam() + 1;
  auto world = GenerateWorld(eks, kbo);
  ASSERT_TRUE(world.ok());

  std::stringstream dag_buffer;
  ASSERT_TRUE(SaveDag(world->eks.dag, dag_buffer).ok());
  auto dag = LoadDag(dag_buffer);
  ASSERT_TRUE(dag.ok()) << dag.status();
  ExpectDagsEqual(world->eks.dag, *dag);

  std::stringstream kb_buffer;
  ASSERT_TRUE(SaveKb(world->kb, kb_buffer).ok());
  auto kb = LoadKb(kb_buffer);
  ASSERT_TRUE(kb.ok()) << kb.status();
  ExpectKbsEqual(world->kb, *kb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoSweep, ::testing::Values(1, 5, 77, 2026));

}  // namespace
}  // namespace medrelax
