// Tests of the lock-order deadlock detector (common/deadlock_detector.h)
// and its medrelax::Mutex hooks. The graph layer is always compiled, so
// the order-tracking tests run in every preset; the death test needs the
// Mutex hooks and is skipped unless MEDRELAX_DEADLOCK_DEBUG is on (the
// default/debug/asan/tsan presets all enable it).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/common/deadlock_detector.h"
#include "medrelax/common/mutex.h"

namespace medrelax {
namespace {

TEST(DeadlockDetector, RegistersSitesByNameOnce) {
  DeadlockDetector& detector = DeadlockDetector::Instance();
  const int a = detector.RegisterSite("DetectorTest::RegisterA");
  const int b = detector.RegisterSite("DetectorTest::RegisterB");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, detector.RegisterSite("DetectorTest::RegisterA"));
  EXPECT_EQ(detector.SiteName(a), "DetectorTest::RegisterA");
  EXPECT_EQ(detector.SiteName(b), "DetectorTest::RegisterB");
}

TEST(DeadlockDetector, RecordsAcquisitionOrderEdges) {
  DeadlockDetector& detector = DeadlockDetector::Instance();
  const int outer = detector.RegisterSite("DetectorTest::EdgeOuter");
  const int inner = detector.RegisterSite("DetectorTest::EdgeInner");

  detector.OnAcquire(outer);
  detector.OnAcquire(inner);  // nested: records outer -> inner
  detector.OnRelease(inner);
  detector.OnRelease(outer);

  EXPECT_TRUE(detector.HasEdge(outer, inner));
  EXPECT_FALSE(detector.HasEdge(inner, outer));
  EXPECT_TRUE(detector.PathExists(outer, inner));
  EXPECT_TRUE(detector.HeldByThisThread().empty());
}

TEST(DeadlockDetector, TransitiveOrderIsAPath) {
  DeadlockDetector& detector = DeadlockDetector::Instance();
  const int a = detector.RegisterSite("DetectorTest::ChainA");
  const int b = detector.RegisterSite("DetectorTest::ChainB");
  const int c = detector.RegisterSite("DetectorTest::ChainC");

  detector.OnAcquire(a);
  detector.OnAcquire(b);
  detector.OnRelease(b);
  detector.OnRelease(a);
  detector.OnAcquire(b);
  detector.OnAcquire(c);
  detector.OnRelease(c);
  detector.OnRelease(b);

  EXPECT_TRUE(detector.PathExists(a, c));
  EXPECT_FALSE(detector.PathExists(c, a));
  EXPECT_FALSE(detector.HasEdge(a, c));  // transitive, not direct
}

TEST(DeadlockDetector, SameSiteNestingIsNotAnOrder) {
  // Instance-granularity limitation, by design: two mutexes sharing a
  // site name (e.g. cache shards) produce no self-edge when nested.
  DeadlockDetector& detector = DeadlockDetector::Instance();
  const int site = detector.RegisterSite("DetectorTest::SameSite");
  detector.OnAcquire(site);
  detector.OnAcquire(site);
  detector.OnRelease(site);
  detector.OnRelease(site);
  EXPECT_FALSE(detector.HasEdge(site, site));
}

#ifdef MEDRELAX_DEADLOCK_DEBUG

TEST(DeadlockDetector, MutexAcquisitionsFeedTheGraph) {
  DeadlockDetector& detector = DeadlockDetector::Instance();
  Mutex outer{"DetectorTest::HookOuter"};
  Mutex inner{"DetectorTest::HookInner"};
  {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
    EXPECT_EQ(detector.HeldByThisThread().size(), 2u);
  }
  EXPECT_TRUE(detector.HasEdge(
      detector.RegisterSite("DetectorTest::HookOuter"),
      detector.RegisterSite("DetectorTest::HookInner")));
  EXPECT_TRUE(detector.HeldByThisThread().empty());
}

TEST(DeadlockDetector, SharedMutexReadersAreOrderedToo) {
  DeadlockDetector& detector = DeadlockDetector::Instance();
  Mutex outer{"DetectorTest::ReaderOuter"};
  SharedMutex inner{"DetectorTest::ReaderInner"};
  {
    MutexLock hold_outer(outer);
    ReaderLock hold_inner(inner);
  }
  EXPECT_TRUE(detector.HasEdge(
      detector.RegisterSite("DetectorTest::ReaderOuter"),
      detector.RegisterSite("DetectorTest::ReaderInner")));
}

TEST(DeadlockDetectorDeathTest, SeededInversionAbortsNamingBothSites) {
  // A -> B in one scope, then B -> A in another: a classic order
  // inversion. No thread ever blocks — the detector must abort purely on
  // the observed orders, naming both acquisition sites in the report.
  Mutex a{"DeathTest::SiteA"};
  Mutex b{"DeathTest::SiteB"};
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  EXPECT_DEATH(
      {
        MutexLock hold_b(b);
        MutexLock hold_a(a);
      },
      "lock-order inversion: acquiring \"DeathTest::SiteA\" while holding "
      "\"DeathTest::SiteB\"");
}

#else

TEST(DeadlockDetector, HooksCompiledOut) {
  GTEST_SKIP() << "MEDRELAX_DEADLOCK_DEBUG is off: Mutex does not feed the "
                  "detector in this build";
}

#endif  // MEDRELAX_DEADLOCK_DEBUG

}  // namespace
}  // namespace medrelax
