// Tests of the logistic-regression direction-weight learner (Section 5.2's
// "simple statistical regression analysis").

#include <gtest/gtest.h>

#include "medrelax/common/random.h"
#include "medrelax/relax/weight_learner.h"

namespace medrelax {
namespace {

// A chain with a sibling fan so examples can mix generalization-heavy and
// specialization-heavy paths: root over mid, mid over {left, right},
// left over {l1, l2}, right over {r1}.
struct Fan {
  ConceptDag dag;
  ConceptId root, mid, left, right, l1, l2, r1;
};

Fan MakeFan() {
  Fan f;
  f.root = *f.dag.AddConcept("root");
  f.mid = *f.dag.AddConcept("mid");
  f.left = *f.dag.AddConcept("left");
  f.right = *f.dag.AddConcept("right");
  f.l1 = *f.dag.AddConcept("l1");
  f.l2 = *f.dag.AddConcept("l2");
  f.r1 = *f.dag.AddConcept("r1");
  EXPECT_TRUE(f.dag.AddSubsumption(f.mid, f.root).ok());
  EXPECT_TRUE(f.dag.AddSubsumption(f.left, f.mid).ok());
  EXPECT_TRUE(f.dag.AddSubsumption(f.right, f.mid).ok());
  EXPECT_TRUE(f.dag.AddSubsumption(f.l1, f.left).ok());
  EXPECT_TRUE(f.dag.AddSubsumption(f.l2, f.left).ok());
  EXPECT_TRUE(f.dag.AddSubsumption(f.r1, f.right).ok());
  return f;
}

TEST(WeightLearner, EmptyExamplesReturnDefaults) {
  Fan f = MakeFan();
  LearnedWeights w =
      LearnDirectionWeights(f.dag, {}, WeightLearnerOptions{});
  EXPECT_EQ(w.num_examples, 0u);
  EXPECT_DOUBLE_EQ(w.generalization_weight, 0.9);
  EXPECT_DOUBLE_EQ(w.specialization_weight, 1.0);
}

TEST(WeightLearner, PenalizesGeneralizationWhenFarPairsAreIrrelevant) {
  Fan f = MakeFan();
  // Relevant: near pairs (sibling, parent). Irrelevant: pairs whose paths
  // carry heavy early generalization (l1 -> r1 crosses the fan; l1 -> root
  // is a long climb). The learner should push w_gen below w_spec.
  std::vector<WeightExample> examples = {
      {f.l1, f.l2, true},    {f.l1, f.left, true},  {f.l2, f.left, true},
      {f.r1, f.right, true}, {f.left, f.right, true},
      {f.l1, f.r1, false},   {f.l2, f.r1, false},   {f.l1, f.root, false},
      {f.l2, f.root, false}, {f.r1, f.root, false}, {f.l1, f.mid, false},
  };
  WeightLearnerOptions opts;
  opts.epochs = 2000;
  opts.learning_rate = 0.3;
  LearnedWeights w = LearnDirectionWeights(f.dag, examples, opts);
  EXPECT_EQ(w.num_examples, examples.size());
  EXPECT_LT(w.generalization_weight, 1.0);
  EXPECT_GT(w.train_accuracy, 0.7);
}

TEST(WeightLearner, WeightsStayInValidRange) {
  Fan f = MakeFan();
  Rng rng(5);
  std::vector<WeightExample> examples;
  std::vector<ConceptId> all = {f.root, f.mid,  f.left, f.right,
                                f.l1,   f.l2,  f.r1};
  for (int i = 0; i < 60; ++i) {
    WeightExample ex;
    ex.query = all[rng.UniformU64(all.size())];
    ex.candidate = all[rng.UniformU64(all.size())];
    ex.relevant = rng.Bernoulli(0.5);
    examples.push_back(ex);
  }
  LearnedWeights w =
      LearnDirectionWeights(f.dag, examples, WeightLearnerOptions{});
  EXPECT_GT(w.generalization_weight, 0.0);
  EXPECT_LE(w.generalization_weight, 1.0);
  EXPECT_GT(w.specialization_weight, 0.0);
  EXPECT_LE(w.specialization_weight, 1.0);
}

TEST(WeightLearner, SamePairExamplesAreDeterministic) {
  Fan f = MakeFan();
  std::vector<WeightExample> examples = {
      {f.l1, f.l2, true}, {f.l1, f.r1, false}, {f.l1, f.root, false}};
  LearnedWeights a =
      LearnDirectionWeights(f.dag, examples, WeightLearnerOptions{});
  LearnedWeights b =
      LearnDirectionWeights(f.dag, examples, WeightLearnerOptions{});
  EXPECT_DOUBLE_EQ(a.generalization_weight, b.generalization_weight);
  EXPECT_DOUBLE_EQ(a.specialization_weight, b.specialization_weight);
}

}  // namespace
}  // namespace medrelax
