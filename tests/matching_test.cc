// Tests of the name index and the three mapping functions of Section 7.2.

#include <memory>

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/embedding/word_vectors.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/matching/embedding_matcher.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/matching/name_index.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {
namespace {

TEST(NameIndex, ExactFindsCanonicalAndSynonyms) {
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  NameIndex index(&fx->dag);
  std::vector<ConceptId> hits = index.FindExact("Kidney Disease");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], fx->kidney_disease);
  // Synonym lookup.
  hits = index.FindExact("nephropathy");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], fx->kidney_disease);
  EXPECT_TRUE(index.FindExact("unknown thing").empty());
}

TEST(NameIndex, TrigramBlockingFindsSimilarSurfaces) {
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  NameIndex index(&fx->dag);
  std::vector<size_t> candidates =
      index.CandidatesByTrigram("kidney diseas", 10);
  ASSERT_FALSE(candidates.empty());
  // The top candidate shares the most trigrams: "kidney disease".
  EXPECT_EQ(index.entries()[candidates[0]].surface, "kidney disease");
}

TEST(ExactMatcher, MapsOnlyExactNormalizedNames) {
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  NameIndex index(&fx->dag);
  ExactMatcher matcher(&index);
  EXPECT_EQ(matcher.name(), "EXACT");
  auto m = matcher.Map("KIDNEY-DISEASE");  // normalization handles case/punct
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->id, fx->kidney_disease);
  EXPECT_DOUBLE_EQ(m->score, 1.0);
  EXPECT_FALSE(matcher.Map("kidny disease").has_value());  // typo: no match
}

TEST(EditMatcher, MapsWithinThreshold) {
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  NameIndex index(&fx->dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  EXPECT_EQ(matcher.name(), "EDIT");
  auto m = matcher.Map("kidny disease");  // distance 1
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->id, fx->kidney_disease);
  EXPECT_LT(m->score, 1.0);
  // Exact surfaces still map with the top score.
  m = matcher.Map("kidney disease");
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->score, 1.0);
}

TEST(EditMatcher, RejectsBeyondTau) {
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  NameIndex index(&fx->dag);
  EditMatcherOptions opts;
  opts.max_distance = 1;
  EditDistanceMatcher matcher(&index, opts);
  EXPECT_FALSE(matcher.Map("kidny diseaze").has_value());  // distance 2
}

TEST(EditMatcher, MatchesSynonymSurfaces) {
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  NameIndex index(&fx->dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  auto m = matcher.Map("nephropathy");  // synonym, distance 0
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->id, fx->kidney_disease);
}

// Embedding matcher needs word vectors; train a small model on a corpus
// built from the fixture names so every word is in-vocabulary.
struct EmbeddingRig {
  Figure5Fixture fx;
  WordVectors vectors;
  std::unique_ptr<SifModel> sif;
  std::unique_ptr<NameIndex> index;
};

EmbeddingRig MakeEmbeddingRig() {
  EmbeddingRig rig;
  auto fx = BuildFigure5Fixture();
  EXPECT_TRUE(fx.ok());
  rig.fx = std::move(*fx);
  Corpus corpus;
  for (int rep = 0; rep < 12; ++rep) {
    Document doc;
    doc.name = "d" + std::to_string(rep);
    DocumentSection s;
    s.context = kNoContext;
    for (ConceptId id = 0; id < rig.fx.dag.num_concepts(); ++id) {
      for (const std::string& tok : Tokenize(rig.fx.dag.name(id))) {
        s.tokens.push_back(tok);
      }
    }
    doc.sections.push_back(std::move(s));
    corpus.AddDocument(std::move(doc));
  }
  WordVectorOptions opts;
  opts.dimensions = 16;
  rig.vectors = WordVectors::Train(corpus, opts);

  std::vector<std::vector<std::string>> reference;
  for (ConceptId id = 0; id < rig.fx.dag.num_concepts(); ++id) {
    reference.push_back(Tokenize(rig.fx.dag.name(id)));
  }
  rig.sif = std::make_unique<SifModel>(&rig.vectors, reference, SifOptions{});
  rig.index = std::make_unique<NameIndex>(&rig.fx.dag);
  return rig;
}

TEST(EmbeddingMatcher, ExactHitShortCircuits) {
  EmbeddingRig rig = MakeEmbeddingRig();
  EmbeddingMatcher matcher(rig.index.get(), rig.sif.get(),
                           EmbeddingMatcherOptions{});
  EXPECT_EQ(matcher.name(), "EMBEDDING");
  auto m = matcher.Map("kidney disease");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->id, rig.fx.kidney_disease);
  EXPECT_DOUBLE_EQ(m->score, 1.0);
}

TEST(EmbeddingMatcher, PartialPhraseMapsToNearestConcept) {
  EmbeddingRig rig = MakeEmbeddingRig();
  EmbeddingMatcherOptions opts;
  opts.min_similarity = 0.3;
  EmbeddingMatcher matcher(rig.index.get(), rig.sif.get(), opts);
  // A word-order / token-subset variant of a fixture name: pure string
  // matchers miss it, the embedding sees shared tokens.
  auto m = matcher.Map("hypertension chronic kidney disease stage 1");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->id, rig.fx.ckd_stage1_due_to_hypertension);
}

TEST(EmbeddingMatcher, FullyOovTermAbstains) {
  EmbeddingRig rig = MakeEmbeddingRig();
  EmbeddingMatcher matcher(rig.index.get(), rig.sif.get(),
                           EmbeddingMatcherOptions{});
  EXPECT_FALSE(matcher.Map("zzz qqq www").has_value());
}

}  // namespace
}  // namespace medrelax
