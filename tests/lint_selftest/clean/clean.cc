// A violation-free file: the self-test asserts check_invariants exits 0
// (and prints its clean banner) when pointed here.

#include <memory>

namespace medrelax {

int CleanFixture() {
  auto value = std::make_unique<int>(41);
  return *value + 1;
}

}  // namespace medrelax
