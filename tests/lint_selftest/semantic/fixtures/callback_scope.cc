// callback-scope fixtures: a stored std::function member must never be
// invoked while a medrelax Mutex is held — a callback that re-enters the
// lock deadlocks, one that blocks convoys every other waiter. Stage under
// the lock, invoke after release.

#include <functional>

namespace lintfixture {

// Minimal stand-ins mirroring common/mutex.h (the analyzer keys on the
// type names; the fixture stays self-contained and compilable).
class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class Dispatcher {
 public:
  void DispatchLocked(int value) {
    MutexLock lock(mu_);
    callback_(value);  // EXPECT-LINT: callback-scope
  }

  void DispatchStaged(int value) {
    int staged = 0;
    {
      MutexLock lock(mu_);
      staged = value;
    }
    callback_(staged);  // ok: the lock died with its block
  }

  void DispatchManualHeld(int value) {
    mu_.Lock();
    callback_(value);  // EXPECT-LINT: callback-scope
    mu_.Unlock();
  }

  void DispatchManualReleased(int value) {
    mu_.Lock();
    mu_.Unlock();
    callback_(value);  // ok: released before the call
  }

  void SwapUnderLock(std::function<void(int)> next) {
    MutexLock lock(mu_);
    callback_ = next;  // ok: storing, not invoking
  }

 private:
  Mutex mu_;
  std::function<void(int)> callback_;
};

}  // namespace lintfixture
