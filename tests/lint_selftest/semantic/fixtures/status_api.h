// Fixture API surface: declares Status/Result-returning functions so the
// ignored-status rule has declarations to resolve against. No violations
// in this file.
#ifndef MEDRELAX_TESTS_LINT_SELFTEST_SEMANTIC_FIXTURES_STATUS_API_H_
#define MEDRELAX_TESTS_LINT_SELFTEST_SEMANTIC_FIXTURES_STATUS_API_H_

namespace medrelax {

class Status {
 public:
  bool ok() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
  const Status& status() const;
};

Status FlushFixture();
Status PersistFixture();
Result<int> CountFixture();
void ConsumeFixture(Status status);

// A class whose fallible method exercises receiver-typed resolution.
class FixtureStore {
 public:
  Status Flush();
  void Touch();
};

}  // namespace medrelax

#endif  // MEDRELAX_TESTS_LINT_SELFTEST_SEMANTIC_FIXTURES_STATUS_API_H_
