// ignored-status fixtures, migrated from the retired regex rule in
// check_invariants.py (every case preserved) plus the AST-accuracy cases
// the regex could not express: multiline call statements and
// receiver-typed member calls.

#include "tests/lint_selftest/semantic/fixtures/status_api.h"

namespace medrelax {

void IgnoredStatusCases() {
  FlushFixture();  // EXPECT-LINT: ignored-status

  (void)PersistFixture();
  // EXPECT-LINT-PREV: ignored-status

  // Fixture: the flush error is ignorable here, so the comment
  // legitimizes the discard.
  (void)FlushFixture();

  FlushFixture();  // lint:allow(ignored-status) fixture waiver

  if (&FlushFixture != nullptr) {
    PersistFixture();  // EXPECT-LINT: ignored-status
  }

  // A fallible call consumed as another call's argument is not a
  // discard — the outer call owns the value.
  ConsumeFixture(FlushFixture());

  /* A block comment mentioning FlushFixture(); must not fire. */

  /*
    FlushFixture();
    PersistFixture();
  */
}

void AstAccurateCases(FixtureStore& store) {
  // The regex rule required the call and the ';' on one line; the
  // analyzer tracks the statement, so a wrapped argument list still
  // counts as a discard (reported at the callee's line).
  PersistFixture(  // EXPECT-LINT: ignored-status
      );

  store.Flush();  // EXPECT-LINT: ignored-status

  store.Touch();  // ok: void return, nothing to discard

  Status kept = FlushFixture();
  ConsumeFixture(kept);

  if (!CountFixture().ok()) {
    return;
  }
  CountFixture();  // EXPECT-LINT: ignored-status
}

}  // namespace medrelax
