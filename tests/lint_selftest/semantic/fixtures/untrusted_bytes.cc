// untrusted-bytes fixtures: a MEDRELAX_UNTRUSTED_BYTES accessor or data
// member exposes attacker-controlled bytes (a mapped snapshot image, a
// connection's inbound buffer). Outside the blessed validating accessors,
// raw-byte operations on such values — reinterpret_cast, pointer
// arithmetic, unchecked indexing — must go through the bounds-checked
// typed readers instead. Raw pointers only: std::string/std::span
// operator[] lowers to a CALL_EXPR under clang, and the two frontends
// must report identical sets.

#include "medrelax/common/thread_annotations.h"

namespace lintfixture {

// Stand-in for io/mmap_file.h: the raw accessor is the taint source.
class MappedImage {
 public:
  const unsigned char* data() const MEDRELAX_UNTRUSTED_BYTES { return data_; }
  unsigned long size() const { return size_; }

 private:
  const unsigned char* data_ = nullptr;
  unsigned long size_ = 0;
};

struct RecordHeader {
  unsigned int magic;
  unsigned int count;
};

class Reader {
 public:
  explicit Reader(MappedImage& image) : image_(image) {}

  unsigned int PeekMagic() {
    const unsigned char* raw = image_.data();
    const RecordHeader* header =
        reinterpret_cast<const RecordHeader*>(raw);  // EXPECT-LINT: untrusted-bytes
    return header->magic;
  }

  unsigned char ByteAt(unsigned long i) {
    const unsigned char* raw = image_.data();
    return raw[i];  // EXPECT-LINT: untrusted-bytes
  }

  const unsigned char* Skip(unsigned long n) {
    const unsigned char* raw = image_.data();
    return raw + n;  // EXPECT-LINT: untrusted-bytes
  }

  unsigned int CastTheCallDirectly(MappedImage& image) {
    const unsigned int* words =
        reinterpret_cast<const unsigned int*>(image.data());  // EXPECT-LINT: untrusted-bytes
    return *words;
  }

 private:
  MappedImage& image_;
};

// Stand-in for net/connection.h: the inbound buffer member is tainted at
// the declaration, so every raw use in the class's own methods reports.
class Framer {
 public:
  int CountNewlines() {
    int count = 0;
    for (unsigned long i = 0; i < len_; ++i) {
      if (buf_[i] == 10) {  // EXPECT-LINT: untrusted-bytes
        ++count;
      }
    }
    return count;
  }

  const char* PastEnd() {
    return buf_ + len_;  // EXPECT-LINT: untrusted-bytes
  }

 private:
  const char* buf_ MEDRELAX_UNTRUSTED_BYTES = nullptr;
  unsigned long len_ = 0;
};

}  // namespace lintfixture
