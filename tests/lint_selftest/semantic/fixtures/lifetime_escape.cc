// lifetime-escape fixtures: a std::string_view / std::span parameter is a
// borrowed view of the caller's buffer; storing it into a data member
// lets the member outlive the buffer. Copy into an owning type instead.

#include <string>
#include <string_view>

namespace lintfixture {

class Label {
 public:
  explicit Label(std::string_view name)
      : name_(name) {}  // EXPECT-LINT: lifetime-escape

  void SetTitle(std::string_view title) {
    title_ = title;  // EXPECT-LINT: lifetime-escape
  }

  void SetCopied(std::string_view text) {
    owned_ = std::string(text);  // ok: copies into an owning string
  }

  void SetOwned(std::string text) {
    owned_ = text;  // ok: the parameter owns its buffer
  }

  void Inspect(std::string_view probe) {
    std::string_view local = probe;  // ok: a local dies with the call
    last_length_ = local.size();
  }

 private:
  std::string_view name_;
  std::string_view title_;
  std::string owned_;
  unsigned long last_length_ = 0;
};

}  // namespace lintfixture
