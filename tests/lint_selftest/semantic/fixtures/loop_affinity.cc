// loop-affinity fixtures: MEDRELAX_LOOP_THREAD_ONLY functions (and calls
// through LOOP_THREAD_ONLY callback members) may only be reached from
// loop-thread context — another loop-only function, or a lambda handed to
// a MEDRELAX_POSTS_TO_LOOP sink or stored into an annotated callback
// member. Everything else must go through the posting sink.

#include <functional>

#include "medrelax/common/thread_annotations.h"

namespace lintfixture {

using Task = std::function<void()>;

class FixtureLoop {
 public:
  // Callable from any thread; the task runs on the loop thread.
  void Post(Task task) MEDRELAX_POSTS_TO_LOOP;
  void ArmTimer() MEDRELAX_LOOP_THREAD_ONLY;
  void Run() MEDRELAX_LOOP_THREAD_ONLY;
};

struct FixtureCallbacks {
  Task on_ready MEDRELAX_LOOP_THREAD_ONLY;
};

class FixtureServer {
 public:
  void OnReadable() MEDRELAX_LOOP_THREAD_ONLY {
    callbacks_.on_ready();  // ok: loop context invoking a loop callback
  }
  void NotifyFromAnywhere() {
    callbacks_.on_ready();  // EXPECT-LINT: loop-affinity
  }

  FixtureCallbacks callbacks_;
};

// Loop-only code calling loop-only code is the steady state.
void FixtureLoop::Run() { ArmTimer(); }

// A lambda handed to a POSTS_TO_LOOP sink runs on the loop thread.
void PostsCorrectly(FixtureLoop& loop) {
  loop.Post([&loop]() { loop.ArmTimer(); });
}

// A lambda stored into an annotated callback member adopts loop affinity,
// including through an intermediate local variable.
void WiresCallback(FixtureLoop& loop, FixtureCallbacks& callbacks) {
  auto handler = [&loop]() { loop.ArmTimer(); };
  callbacks.on_ready = handler;
}

void CallsFromWrongThread(FixtureLoop& loop) {
  loop.ArmTimer();  // EXPECT-LINT: loop-affinity
}

void WaivedEntryPoint(FixtureLoop& loop) {
  // lint:allow(loop-affinity) fixture: this thread becomes the loop thread
  loop.Run();
}

}  // namespace lintfixture
