// loop-blocking fixtures: MEDRELAX_BLOCKING functions must be unreachable
// from loop-thread context — directly, from a posted lambda, or
// transitively through an unannotated helper the analyzer has a body for.
// Worker-context code may block freely.

#include <functional>

#include "medrelax/common/thread_annotations.h"

namespace lintfixture {

class BlockingStore {
 public:
  void LoadFromDisk() MEDRELAX_BLOCKING;
  void Peek();
};

class WorkQueue {
 public:
  // Plain handoff: the job runs on a worker, not on the loop.
  void Submit(std::function<void()> job);
};

class PollLoop {
 public:
  void Post(std::function<void()> task) MEDRELAX_POSTS_TO_LOOP;
  void OnWake() MEDRELAX_LOOP_THREAD_ONLY {
    store_.LoadFromDisk();  // EXPECT-LINT: loop-blocking
  }
  void OnTimer() MEDRELAX_LOOP_THREAD_ONLY;

  BlockingStore store_;
};

// Unannotated helper: reachable from OnTimer (loop context), so its
// blocking call is a finding even though the helper itself is unmarked.
void DrainHelper(BlockingStore& store) {
  store.LoadFromDisk();  // EXPECT-LINT: loop-blocking
}

void PollLoop::OnTimer() {
  DrainHelper(store_);
  store_.Peek();  // ok: Peek is not blocking
}

// A lambda posted to the loop must not block either.
void PostsBlockingWork(PollLoop& loop, BlockingStore& store) {
  loop.Post([&store]() {
    store.LoadFromDisk();  // EXPECT-LINT: loop-blocking
  });
}

// Worker context: blocking is the whole point.
void WorkerRefresh(BlockingStore& store) {
  store.LoadFromDisk();  // ok: never runs on the loop thread
}

// A lambda handed to a plain (non-posting) sink runs on a worker.
void SchedulesOffLoop(WorkQueue& queue, BlockingStore& store) {
  queue.Submit([&store]() {
    store.LoadFromDisk();  // ok: Submit is not POSTS_TO_LOOP
  });
}

}  // namespace lintfixture
