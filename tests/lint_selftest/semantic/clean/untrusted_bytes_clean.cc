// untrusted-bytes negative cases: patterns that look adjacent to raw-byte
// misuse but are legal, so both frontends must stay silent here.

#include <cstring>

#include "medrelax/common/thread_annotations.h"

namespace lintfixture {

class MappedImage {
 public:
  const unsigned char* data() const MEDRELAX_UNTRUSTED_BYTES { return data_; }
  unsigned long size() const { return size_; }

 private:
  const unsigned char* data_ = nullptr;
  unsigned long size_ = 0;
};

class Buffer {
 public:
  unsigned long Find(char needle) const;
};

class SafeReader {
 public:
  explicit SafeReader(MappedImage& image) : image_(image) {}

  // A bounds-checked copy out of the mapping is the sanctioned idiom:
  // the tainted pointer is only handed to memcpy, never dereferenced.
  unsigned int CopyOut() {
    unsigned int value = 0;
    std::memcpy(&value, image_.data(), sizeof(value));
    return value;
  }

  // Reassignment to owned storage clears the taint: the arithmetic on
  // the next line runs on our own buffer, not the mapping.
  const unsigned char* OwnedCursor() {
    const unsigned char* p = image_.data();
    p = owned_;
    return p + 1;
  }

  // Arithmetic on untainted locals stays silent even when a tainted
  // accessor appears elsewhere in the function.
  unsigned long Padding(unsigned long offset) {
    const unsigned char* raw = image_.data();
    (void)raw;
    unsigned long aligned = offset + 7;
    return aligned;
  }

 private:
  MappedImage& image_;
  const unsigned char* owned_ = nullptr;
};

class Framer {
 public:
  // A method call *on* the tainted object returns a plain value (a
  // position), not the raw bytes: the result is untainted and ordinary
  // integer arithmetic on it is fine.
  unsigned long NextLineStart() {
    unsigned long pos = buf_.Find(10);
    return pos + 1;
  }

 private:
  Buffer buf_ MEDRELAX_UNTRUSTED_BYTES;
};

}  // namespace lintfixture
