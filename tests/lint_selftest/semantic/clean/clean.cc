// A fixture with zero semantic-lint violations: exercises the clean exit
// path (and a couple of near-miss shapes that must stay silent).

#include <functional>

#include "medrelax/common/thread_annotations.h"

namespace lintfixture {

class QuietLoop {
 public:
  void Post(std::function<void()> task) MEDRELAX_POSTS_TO_LOOP;
  void Tick() MEDRELAX_LOOP_THREAD_ONLY;
};

void ScheduleTick(QuietLoop& loop) {
  loop.Post([&loop]() { loop.Tick(); });
}

}  // namespace lintfixture
