#!/usr/bin/env python3
"""Self-test for scripts/lint/run_semantic_lint.py.

Same contract as tests/lint_selftest/run_lint_selftest.py, applied to the
semantic pass:

  * Fixture files under semantic/fixtures/ carry EXPECT-LINT /
    EXPECT-LINT-PREV markers; the runner scans them and demands
    set-equality between marked and reported (path, line, rule) triples.
  * semantic/clean/ must scan clean (exit 0, clean banner).
  * Per-rule disable proof: for every rule the fixtures cover, a scan
    with `--disable <rule>` must drop exactly that rule's findings — so
    each fixture demonstrably fails when its rule is turned off, and no
    rule's findings leak from another rule's logic.

The textual frontend always runs. When clang.cindex is importable (CI
installs a pinned libclang; the local container has none), the whole
matrix repeats under --frontend clang and must produce the same sets.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))
LINT = os.path.join(REPO, "scripts", "lint", "run_semantic_lint.py")
FIXTURES_DIR = "tests/lint_selftest/semantic/fixtures"
CLEAN_DIR = "tests/lint_selftest/semantic/clean"

MARKER_RE = re.compile(r"EXPECT-LINT(?P<prev>-PREV)?:\s*(?P<rule>[a-z\-]+)")
REPORT_RE = re.compile(
    r"^(?P<path>[^:\s]+):(?P<line>\d+): \[(?P<rule>[a-z\-]+)\]")


def collect_expected():
    expected = set()
    root = os.path.join(REPO, FIXTURES_DIR)
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            path = os.path.join(dirpath, name)
            relpath = os.path.relpath(path, REPO)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f.read().splitlines(), 1):
                    m = MARKER_RE.search(line)
                    if m:
                        target = lineno - 1 if m.group("prev") else lineno
                        expected.add((relpath, target, m.group("rule")))
    return expected


def run_lint(frontend, scan_dir, disable=None):
    cmd = [sys.executable, LINT, "--frontend", frontend, "--scan", scan_dir]
    if disable:
        cmd += ["--disable", disable]
    return subprocess.run(cmd, capture_output=True, text=True, cwd=REPO)


def reported_set(stdout):
    actual = set()
    for line in stdout.splitlines():
        m = REPORT_RE.match(line)
        if m:
            actual.add(
                (m.group("path"), int(m.group("line")), m.group("rule")))
    return actual


def check_frontend(frontend, expected, failures):
    tag = f"[{frontend}]"

    proc = run_lint(frontend, FIXTURES_DIR)
    if proc.returncode != 1:
        failures.append(
            f"{tag} fixture scan: expected exit 1, got {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    actual = reported_set(proc.stdout)
    for item in sorted(expected - actual):
        failures.append(f"{tag} marked but not reported: %s:%d [%s]" % item)
    for item in sorted(actual - expected):
        failures.append(f"{tag} reported but not marked: %s:%d [%s]" % item)

    # Disable proof: dropping one rule must drop exactly its findings.
    for rule in sorted({r for _, _, r in expected}):
        sub = run_lint(frontend, FIXTURES_DIR, disable=rule)
        want = {item for item in expected if item[2] != rule}
        got = reported_set(sub.stdout)
        if got != want:
            missing = sorted(want - got)
            extra = sorted(got - want)
            failures.append(
                f"{tag} --disable {rule}: report set diverged"
                f" (missing {missing}, extra {extra})")
        if want and sub.returncode != 1:
            failures.append(
                f"{tag} --disable {rule}: expected exit 1, got"
                f" {sub.returncode}")

    clean = run_lint(frontend, CLEAN_DIR)
    if clean.returncode != 0:
        failures.append(
            f"{tag} clean scan: expected exit 0, got {clean.returncode}\n"
            f"stdout:\n{clean.stdout}\nstderr:\n{clean.stderr}")
    elif "clean" not in clean.stderr:
        failures.append(f"{tag} clean scan did not print the clean banner")


def main():
    failures = []

    expected = collect_expected()
    if not expected:
        failures.append("no EXPECT-LINT markers under " + FIXTURES_DIR)
    rules_covered = sorted({rule for _, _, rule in expected})

    check_frontend("textual", expected, failures)

    try:
        import clang.cindex  # noqa: F401

        have_clang = True
    except ImportError:
        have_clang = False
    if have_clang:
        check_frontend("clang", expected, failures)

    if failures:
        print("semantic_lint_selftest: FAIL")
        for f in failures:
            print("  " + f)
        return 1
    frontends = "textual+clang" if have_clang else "textual"
    print(f"semantic_lint_selftest: PASS ({len(expected)} marked violations"
          f" matched across rules: {', '.join(rules_covered)};"
          f" frontends: {frontends})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
