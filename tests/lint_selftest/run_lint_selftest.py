#!/usr/bin/env python3
"""Self-test for scripts/lint/check_invariants.py.

Fixture files under tests/lint_selftest/fixtures/ carry known violations,
each marked in-line:

    int* p = new int[4];  // EXPECT-LINT: raw-new-delete
    (void)Persist();
    // EXPECT-LINT-PREV: ignored-status      (marks the *previous* line)

The -PREV form exists for rules where a same-line comment would change the
rule's behaviour (a commented `(void)` discard is legal, so the positive
case must stay comment-free). The runner scans the fixtures with
`check_invariants.py --scan`, parses its report, and demands set-equality
between marked and reported (path, line, rule) triples — a rule that stops
firing, fires on the wrong line, or starts over-firing fails tier-1 ctest.
A second scan over tests/lint_selftest/clean/ asserts the zero-violation
exit path still works.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINT = os.path.join(REPO, "scripts", "lint", "check_invariants.py")
FIXTURES_DIR = "tests/lint_selftest/fixtures"
CLEAN_DIR = "tests/lint_selftest/clean"

MARKER_RE = re.compile(r"EXPECT-LINT(?P<prev>-PREV)?:\s*(?P<rule>[a-z\-]+)")
REPORT_RE = re.compile(r"^(?P<path>[^:\s]+):(?P<line>\d+): \[(?P<rule>[a-z\-]+)\]")


def collect_expected():
    expected = set()
    root = os.path.join(REPO, FIXTURES_DIR)
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            path = os.path.join(dirpath, name)
            relpath = os.path.relpath(path, REPO)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f.read().splitlines(), 1):
                    m = MARKER_RE.search(line)
                    if m:
                        target = lineno - 1 if m.group("prev") else lineno
                        expected.add((relpath, target, m.group("rule")))
    return expected


def run_lint(scan_dir):
    return subprocess.run(
        [sys.executable, LINT, "--scan", scan_dir],
        capture_output=True, text=True, cwd=REPO)


def main():
    failures = []

    expected = collect_expected()
    if not expected:
        failures.append("no EXPECT-LINT markers found under " + FIXTURES_DIR)

    proc = run_lint(FIXTURES_DIR)
    if proc.returncode != 1:
        failures.append(
            f"fixture scan: expected exit 1, got {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    actual = set()
    for line in proc.stdout.splitlines():
        m = REPORT_RE.match(line)
        if m:
            actual.add((m.group("path"), int(m.group("line")), m.group("rule")))

    for item in sorted(expected - actual):
        failures.append("marked but not reported: %s:%d [%s]" % item)
    for item in sorted(actual - expected):
        failures.append("reported but not marked: %s:%d [%s]" % item)

    clean = run_lint(CLEAN_DIR)
    if clean.returncode != 0:
        failures.append(
            f"clean scan: expected exit 0, got {clean.returncode}\n"
            f"stdout:\n{clean.stdout}")
    elif "check_invariants: clean" not in clean.stdout:
        failures.append("clean scan did not print the clean banner")

    if failures:
        print("lint_selftest: FAIL")
        for f in failures:
            print("  " + f)
        return 1
    rules = sorted({rule for _, _, rule in expected})
    print(f"lint_selftest: PASS ({len(expected)} marked violations matched "
          f"across rules: {', '.join(rules)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
