// ignored-status fixtures: bare calls and uncommented (void)-discards of
// Status-returning functions must fire; consumed, explained, or waived
// calls must not.

#include "tests/lint_selftest/fixtures/status_api.h"

namespace medrelax {

void IgnoredStatusCases() {
  FlushFixture();  // EXPECT-LINT: ignored-status

  (void)PersistFixture();
  // EXPECT-LINT-PREV: ignored-status

  // Fixture: the flush error is ignorable here, so the comment
  // legitimizes the discard.
  (void)FlushFixture();

  FlushFixture();  // lint:allow(ignored-status) fixture waiver

  if (&FlushFixture != nullptr) {
    PersistFixture();  // EXPECT-LINT: ignored-status
  }

  // A fallible call consumed as another call's argument is not a
  // discard — the outer call owns the value.
  ConsumeFixture(FlushFixture());

  /* A block comment mentioning FlushFixture(); must not fire. */

  /*
    FlushFixture();
    PersistFixture();
  */
}

}  // namespace medrelax
