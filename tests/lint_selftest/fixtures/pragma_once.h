// EXPECT-LINT: header-guard
#pragma once

namespace medrelax {}
