// raw-mutex fixtures: standard-library lock primitives outside
// src/medrelax/common/ must fire unless waived.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace medrelax {

std::mutex fixture_mu;               // EXPECT-LINT: raw-mutex
std::shared_mutex fixture_shared;    // EXPECT-LINT: raw-mutex
std::condition_variable fixture_cv;  // EXPECT-LINT: raw-mutex

void RawMutexCases() {
  std::lock_guard<std::mutex> lock(fixture_mu);
  // EXPECT-LINT-PREV: raw-mutex
}

std::mutex waived_mu;  // lint:allow(raw-mutex) fixture waiver

/* std::mutex in a block comment must not fire */

/*
  std::condition_variable commented_cv;
*/

}  // namespace medrelax
