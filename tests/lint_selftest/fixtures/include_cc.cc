// include-cc fixtures.

#include "medrelax/common/status.cc"  // EXPECT-LINT: include-cc

#include "medrelax/common/status.cc"  // lint:allow(include-cc) fixture waiver

// #include "medrelax/common/logging.cc" in a comment must not fire.

namespace medrelax {}
