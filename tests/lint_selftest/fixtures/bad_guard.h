// EXPECT-LINT: header-guard
#ifndef WRONG_GUARD_FOR_THIS_PATH_H_
#define WRONG_GUARD_FOR_THIS_PATH_H_

namespace medrelax {}

#endif  // WRONG_GUARD_FOR_THIS_PATH_H_
