// Fixture API surface: declares Status-returning functions so the
// ignored-status rule has names to track. No violations in this file.
#ifndef MEDRELAX_TESTS_LINT_SELFTEST_FIXTURES_STATUS_API_H_
#define MEDRELAX_TESTS_LINT_SELFTEST_FIXTURES_STATUS_API_H_

namespace medrelax {

class Status;

Status FlushFixture();
Status PersistFixture();
void ConsumeFixture(Status status);

}  // namespace medrelax

#endif  // MEDRELAX_TESTS_LINT_SELFTEST_FIXTURES_STATUS_API_H_
