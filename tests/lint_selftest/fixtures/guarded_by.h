// guarded-by fixtures: a class owning a medrelax lock must annotate its
// mutable data members.
#ifndef MEDRELAX_TESTS_LINT_SELFTEST_FIXTURES_GUARDED_BY_H_
#define MEDRELAX_TESTS_LINT_SELFTEST_FIXTURES_GUARDED_BY_H_

#include <atomic>
#include <string>
#include <vector>

#include "medrelax/common/mutex.h"
#include "medrelax/common/thread_annotations.h"

namespace medrelax {

class LockOwningFixture {
 public:
  void Poke();
  int Peek() const { return guarded_; }

 private:
  mutable Mutex mu_{"LockOwningFixture::mu"};
  CondVar cv_;
  int guarded_ MEDRELAX_GUARDED_BY(mu_) = 0;
  std::vector<int> also_guarded_ MEDRELAX_GUARDED_BY(mu_);
  int unguarded_ = 0;  // EXPECT-LINT: guarded-by
  std::string also_unguarded_;  // EXPECT-LINT: guarded-by
  std::atomic<int> counter_{0};
  const int limit_ = 8;
  static constexpr int kCapacity = 16;
  int waived_ = 0;  // lint:allow(guarded-by) fixture: owned by the caller
};

// No lock owned: nothing here needs annotating.
class LocklessFixture {
 private:
  int plain_ = 0;
  std::string name_;
};

struct SharedOwningFixture {
  mutable SharedMutex table_mu{"SharedOwningFixture::table_mu"};
  std::vector<int> table MEDRELAX_GUARDED_BY(table_mu);
  int rev = 0;  // EXPECT-LINT: guarded-by
};

}  // namespace medrelax

#endif  // MEDRELAX_TESTS_LINT_SELFTEST_FIXTURES_GUARDED_BY_H_
