// raw-new-delete fixtures. The block-comment cases are the regression
// test for strip_comments_and_strings carrying /* ... */ state across
// lines: none of the commented-out allocations may fire.

namespace medrelax {

void RawNewCases() {
  int* p = new int[4];  // EXPECT-LINT: raw-new-delete
  delete[] p;           // EXPECT-LINT: raw-new-delete

  int* q = new int;  // lint:allow(raw-new-delete) fixture waiver
  delete q;          // lint:allow(raw-new-delete) fixture waiver

  /* new int[8] inside a one-line block comment must not fire */

  /*
    A multi-line block comment: the old line-at-a-time stripper lost the
    open-comment state here and reported these as violations.
    int* stale = new int[16];
    delete[] stale;
  */

  const char* s = "new int[32] inside a string literal must not fire";
  (void)s;  // fixture: value intentionally unused
}

}  // namespace medrelax
