// Tests of the corpus model and the per-context mention statistics.

#include <gtest/gtest.h>

#include "medrelax/corpus/corpus_stats.h"
#include "medrelax/corpus/document.h"

namespace medrelax {
namespace {

Corpus TwoSectionCorpus() {
  Corpus corpus;
  Document d1;
  d1.name = "monograph-1";
  DocumentSection ind;
  ind.context = 0;
  ind.tokens = {"treats", "headache", "and", "frequent", "headache",
                "patients"};
  DocumentSection risk;
  risk.context = 1;
  risk.tokens = {"may", "cause", "headache", "rarely"};
  d1.sections = {ind, risk};
  corpus.AddDocument(std::move(d1));

  Document d2;
  d2.name = "monograph-2";
  DocumentSection ind2;
  ind2.context = 0;
  ind2.tokens = {"treats", "pain", "in", "throat"};
  d2.sections = {ind2};
  corpus.AddDocument(std::move(d2));
  return corpus;
}

TEST(Corpus, TotalTokens) {
  Corpus corpus = TwoSectionCorpus();
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.TotalTokens(), 14u);
}

TEST(MentionStats, CountsPerContext) {
  Corpus corpus = TwoSectionCorpus();
  MentionStats stats({"headache", "pain in throat", "frequent headache"});
  stats.Process(corpus, 2);
  EXPECT_EQ(stats.num_documents(), 2u);
  // "headache" appears 2x in ctx 0 ("headache", inside "frequent headache")
  // and 1x in ctx 1.
  EXPECT_EQ(stats.MentionCount(0, 0), 2u);
  EXPECT_EQ(stats.MentionCount(0, 1), 1u);
  EXPECT_EQ(stats.TotalMentions(0), 3u);
  // Multi-word phrase match.
  EXPECT_EQ(stats.MentionCount(1, 0), 1u);
  EXPECT_EQ(stats.MentionCount(1, 1), 0u);
  // Nested phrase also counted.
  EXPECT_EQ(stats.MentionCount(2, 0), 1u);
}

TEST(MentionStats, DocumentFrequency) {
  Corpus corpus = TwoSectionCorpus();
  MentionStats stats({"headache", "pain in throat"});
  stats.Process(corpus, 2);
  EXPECT_EQ(stats.DocumentFrequency(0), 1u);  // headache only in doc 1
  EXPECT_EQ(stats.DocumentFrequency(1), 1u);
}

TEST(MentionStats, TfIdfPenalizesUbiquity) {
  // "common" in both docs, "rare" in one, same per-context counts.
  Corpus corpus;
  for (int d = 0; d < 2; ++d) {
    Document doc;
    doc.name = "d" + std::to_string(d);
    DocumentSection s;
    s.context = 0;
    s.tokens = {"common"};
    if (d == 0) s.tokens.push_back("rare");
    doc.sections.push_back(s);
    corpus.AddDocument(std::move(doc));
  }
  MentionStats stats({"common", "rare"});
  stats.Process(corpus, 1);
  // Per-mention weight: rare's idf > common's idf.
  double common_w = stats.TfIdfWeight(0, 0) /
                    static_cast<double>(stats.MentionCount(0, 0));
  double rare_w = stats.TfIdfWeight(1, 0) /
                  static_cast<double>(stats.MentionCount(1, 0));
  EXPECT_GT(rare_w, common_w);
}

TEST(MentionStats, UntypedSectionsCountTowardTotalsOnly) {
  Corpus corpus;
  Document doc;
  doc.name = "d";
  DocumentSection s;
  s.context = kNoContext;
  s.tokens = {"fever"};
  doc.sections.push_back(s);
  corpus.AddDocument(std::move(doc));
  MentionStats stats({"fever"});
  stats.Process(corpus, 2);
  EXPECT_EQ(stats.TotalMentions(0), 1u);
  EXPECT_EQ(stats.MentionCount(0, 0), 0u);
  EXPECT_EQ(stats.MentionCount(0, 1), 0u);
  EXPECT_EQ(stats.DocumentFrequency(0), 1u);
}

TEST(MentionStats, UnseenPhraseIsZeroEverywhere) {
  Corpus corpus = TwoSectionCorpus();
  MentionStats stats({"pneumonia"});
  stats.Process(corpus, 2);
  EXPECT_EQ(stats.TotalMentions(0), 0u);
  EXPECT_DOUBLE_EQ(stats.TfIdfWeight(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(stats.TfIdfWeightTotal(0), 0.0);
}

TEST(MentionStats, OutOfRangeAccessorsAreSafe) {
  Corpus corpus = TwoSectionCorpus();
  MentionStats stats({"headache"});
  stats.Process(corpus, 2);
  EXPECT_EQ(stats.MentionCount(99, 0), 0u);
  EXPECT_EQ(stats.MentionCount(0, 99), 0u);
  EXPECT_EQ(stats.TotalMentions(99), 0u);
}

}  // namespace
}  // namespace medrelax
