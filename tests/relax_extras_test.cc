// Tests of the supporting relaxation components: classic baseline
// measures (Wu-Palmer, path, Resnik), the similarity explanation API, the
// memoized pair geometry, and the relevance-feedback layer.

#include <memory>

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/relax/baseline_measures.h"
#include "medrelax/relax/explain.h"
#include "medrelax/relax/feedback.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {
namespace {

// Figure 4 world with structural frequencies (uniform direct counts).
struct ExtrasWorld {
  Figure4Fixture fx;
  FrequencyModel freq{0, 0};
};

ExtrasWorld MakeExtrasWorld() {
  ExtrasWorld w;
  auto fx = BuildFigure4Fixture();
  EXPECT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  std::vector<std::vector<double>> direct(
      1, std::vector<double>(w.fx.dag.num_concepts(), 1.0));
  auto freq = PropagateFrequencies(w.fx.dag, direct, w.fx.root, 1.0);
  EXPECT_TRUE(freq.ok());
  w.freq = std::move(*freq);
  return w;
}

TEST(Baselines, WuPalmerBasics) {
  ExtrasWorld w = MakeExtrasWorld();
  auto base = BaselineMeasures::Create(&w.fx.dag, &w.freq);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(base->WuPalmer(w.fx.headache, w.fx.headache), 1.0);
  // Siblings under pohnr: lcs depth+1 = 4, both at depth+1 = 5:
  // 2*4 / (5+5) = 0.8.
  EXPECT_NEAR(base->WuPalmer(w.fx.craniofacial_pain, w.fx.pain_in_throat),
              0.8, 1e-12);
  // Closer pairs score higher.
  EXPECT_GT(base->WuPalmer(w.fx.frequent_headache, w.fx.headache),
            base->WuPalmer(w.fx.frequent_headache, w.fx.pain_in_throat));
}

TEST(Baselines, PathSimilarity) {
  ExtrasWorld w = MakeExtrasWorld();
  auto base = BaselineMeasures::Create(&w.fx.dag, &w.freq);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(base->PathSimilarity(w.fx.headache, w.fx.headache), 1.0);
  // headache -> craniofacial pain: 1 hop -> 1/2.
  EXPECT_DOUBLE_EQ(
      base->PathSimilarity(w.fx.headache, w.fx.craniofacial_pain), 0.5);
  // siblings: 2 hops -> 1/3.
  EXPECT_NEAR(
      base->PathSimilarity(w.fx.craniofacial_pain, w.fx.pain_in_throat),
      1.0 / 3.0, 1e-12);
}

TEST(Baselines, ResnikIsLcsIc) {
  ExtrasWorld w = MakeExtrasWorld();
  auto base = BaselineMeasures::Create(&w.fx.dag, &w.freq);
  ASSERT_TRUE(base.ok());
  double expected = w.freq.Ic(w.fx.pain_of_head_and_neck_region, 0);
  EXPECT_NEAR(base->Resnik(w.fx.craniofacial_pain, w.fx.pain_in_throat, 0),
              expected, 1e-12);
}

TEST(Baselines, RejectsCyclicDag) {
  ConceptDag dag;
  ConceptId x = *dag.AddConcept("x");
  ConceptId y = *dag.AddConcept("y");
  ASSERT_TRUE(dag.AddSubsumption(x, y).ok());
  ASSERT_TRUE(dag.AddSubsumption(y, x).ok());
  FrequencyModel dummy(2, 1);
  EXPECT_FALSE(BaselineMeasures::Create(&dag, &dummy).ok());
}

TEST(Explain, MatchesSimilarityExactly) {
  ExtrasWorld w = MakeExtrasWorld();
  SimilarityModel model(&w.fx.dag, &w.freq, SimilarityOptions{});
  for (ConceptId a : {w.fx.headache, w.fx.frequent_headache,
                      w.fx.pain_in_throat}) {
    for (ConceptId b : {w.fx.craniofacial_pain,
                        w.fx.pain_of_head_and_neck_region, w.fx.headache}) {
      SimilarityExplanation ex =
          ExplainSimilarity(model, w.fx.dag, a, b, 0);
      EXPECT_DOUBLE_EQ(ex.similarity, model.Similarity(a, b, 0))
          << w.fx.dag.name(a) << " vs " << w.fx.dag.name(b);
      if (a != b) {
        EXPECT_NEAR(ex.similarity, ex.path_penalty * ex.sim_ic, 1e-12);
      }
    }
  }
}

TEST(Explain, RenderMentionsConceptNames) {
  ExtrasWorld w = MakeExtrasWorld();
  SimilarityModel model(&w.fx.dag, &w.freq, SimilarityOptions{});
  SimilarityExplanation ex = ExplainSimilarity(
      model, w.fx.dag, w.fx.headache, w.fx.pain_in_throat, 0);
  std::string text = ex.Render(w.fx.dag);
  EXPECT_NE(text.find("headache"), std::string::npos);
  EXPECT_NE(text.find("pain in throat"), std::string::npos);
  EXPECT_NE(text.find("UP"), std::string::npos);
  EXPECT_NE(text.find("DOWN"), std::string::npos);
}

TEST(Geometry, CacheReturnsIdenticalScores) {
  ExtrasWorld w = MakeExtrasWorld();
  SimilarityOptions cached;
  SimilarityOptions uncached;
  uncached.memoize_geometry = false;
  SimilarityModel with(&w.fx.dag, &w.freq, cached);
  SimilarityModel without(&w.fx.dag, &w.freq, uncached);
  for (ConceptId a = 0; a < w.fx.dag.num_concepts(); ++a) {
    for (ConceptId b = 0; b < w.fx.dag.num_concepts(); ++b) {
      EXPECT_DOUBLE_EQ(with.Similarity(a, b, 0), without.Similarity(a, b, 0));
    }
  }
  EXPECT_GT(with.cached_pairs(), 0u);
  EXPECT_EQ(without.cached_pairs(), 0u);
}

TEST(Geometry, InterleavedGeometriesStayIntact) {
  // Regression: the non-memoized path used to return a reference into a
  // shared scratch slot, so fetching a second geometry corrupted the
  // first. Geometries are by value now; interleaving must be safe.
  ExtrasWorld w = MakeExtrasWorld();
  SimilarityOptions opts;
  opts.memoize_geometry = false;
  SimilarityModel model(&w.fx.dag, &w.freq, opts);
  PairGeometry first =
      model.Geometry(w.fx.frequent_headache, w.fx.pain_in_throat);
  PairGeometry second =
      model.Geometry(w.fx.craniofacial_pain, w.fx.headache);
  PairGeometry first_again =
      model.Geometry(w.fx.frequent_headache, w.fx.pain_in_throat);
  EXPECT_TRUE(first.connected);
  EXPECT_EQ(first.connected, first_again.connected);
  EXPECT_DOUBLE_EQ(first.gen_exponent, first_again.gen_exponent);
  EXPECT_DOUBLE_EQ(first.spec_exponent, first_again.spec_exponent);
  EXPECT_EQ(first.lcs, first_again.lcs);
  // And the two pairs are genuinely different, so aliasing would show.
  EXPECT_NE(first.lcs, second.lcs);
}

// Feedback tests run on the Figure 5 relax world.
struct FeedbackWorld {
  Figure5Fixture fx;
  KnowledgeBase kb;
  std::unique_ptr<NameIndex> index;
  std::unique_ptr<ExactMatcher> matcher;
  IngestionResult ingestion;
  std::unique_ptr<QueryRelaxer> relaxer;
};

std::unique_ptr<FeedbackWorld> MakeFeedbackWorld() {
  auto w = std::make_unique<FeedbackWorld>();
  auto fx = BuildFigure5Fixture();
  EXPECT_TRUE(fx.ok());
  w->fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  EXPECT_TRUE(onto.ok());
  w->kb.ontology = std::move(*onto);
  OntologyConceptId finding = w->kb.ontology.FindConcept("Finding");
  EXPECT_TRUE(w->kb.instances.AddInstance("kidney disease", finding).ok());
  EXPECT_TRUE(
      w->kb.instances.AddInstance("hypertensive renal disease", finding)
          .ok());
  w->index = std::make_unique<NameIndex>(&w->fx.dag);
  w->matcher = std::make_unique<ExactMatcher>(w->index.get());
  auto ingestion =
      RunIngestion(w->kb, &w->fx.dag, *w->matcher, nullptr,
                   IngestionOptions{});
  EXPECT_TRUE(ingestion.ok());
  w->ingestion = std::move(*ingestion);
  w->relaxer = std::make_unique<QueryRelaxer>(
      &w->fx.dag, &w->ingestion, w->matcher.get(), SimilarityOptions{},
      RelaxationOptions{});
  return w;
}

TEST(Feedback, NoFeedbackMatchesBase) {
  auto w = MakeFeedbackWorld();
  FeedbackRelaxer feedback(w->relaxer.get(), &w->fx.dag, FeedbackOptions{});
  RelaxationOutcome base =
      w->relaxer->RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  RelaxationOutcome wrapped =
      feedback.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_EQ(base.concepts.size(), wrapped.concepts.size());
  for (size_t i = 0; i < base.concepts.size(); ++i) {
    EXPECT_EQ(base.concepts[i].concept_id, wrapped.concepts[i].concept_id);
    EXPECT_DOUBLE_EQ(base.concepts[i].similarity,
                     wrapped.concepts[i].similarity);
  }
}

TEST(Feedback, RejectionDemotesTopResult) {
  auto w = MakeFeedbackWorld();
  FeedbackRelaxer feedback(w->relaxer.get(), &w->fx.dag, FeedbackOptions{});
  RelaxationOutcome before =
      feedback.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_GE(before.concepts.size(), 2u);
  ConceptId top = before.concepts[0].concept_id;
  feedback.Reject(top, 0);
  feedback.Reject(top, 0);
  RelaxationOutcome after =
      feedback.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_NE(after.concepts[0].concept_id, top);
}

TEST(Feedback, AcceptancePromotes) {
  auto w = MakeFeedbackWorld();
  FeedbackRelaxer feedback(w->relaxer.get(), &w->fx.dag, FeedbackOptions{});
  RelaxationOutcome before =
      feedback.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_GE(before.concepts.size(), 2u);
  ConceptId second = before.concepts[1].concept_id;
  for (int i = 0; i < 5; ++i) feedback.Accept(second, 0);
  RelaxationOutcome after =
      feedback.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_EQ(after.concepts[0].concept_id, second);
}

TEST(Feedback, FactorsClampAndReset) {
  auto w = MakeFeedbackWorld();
  FeedbackOptions opts;
  opts.max_factor = 2.0;
  opts.min_factor = 0.5;
  FeedbackRelaxer feedback(w->relaxer.get(), &w->fx.dag, opts);
  for (int i = 0; i < 50; ++i) feedback.Accept(w->fx.kidney_disease, 0);
  EXPECT_DOUBLE_EQ(feedback.Factor(w->fx.kidney_disease, 0), 2.0);
  for (int i = 0; i < 50; ++i) feedback.Reject(w->fx.kidney_disease, 0);
  EXPECT_DOUBLE_EQ(feedback.Factor(w->fx.kidney_disease, 0), 0.5);
  feedback.Reset();
  EXPECT_DOUBLE_EQ(feedback.Factor(w->fx.kidney_disease, 0), 1.0);
  EXPECT_EQ(feedback.feedback_cells(), 0u);
}

TEST(Feedback, PropagatesToNeighborsAttenuated) {
  auto w = MakeFeedbackWorld();
  FeedbackRelaxer feedback(w->relaxer.get(), &w->fx.dag, FeedbackOptions{});
  feedback.Reject(w->fx.hypertensive_renal_disease, 0);
  double direct = feedback.Factor(w->fx.hypertensive_renal_disease, 0);
  double parent = feedback.Factor(w->fx.kidney_disease, 0);
  double child = feedback.Factor(w->fx.hypertensive_nephropathy, 0);
  EXPECT_LT(direct, 1.0);
  EXPECT_LT(parent, 1.0);
  EXPECT_LT(child, 1.0);
  EXPECT_GT(parent, direct);  // attenuated
  EXPECT_GT(child, direct);
  // Contexts are independent.
  EXPECT_DOUBLE_EQ(feedback.Factor(w->fx.hypertensive_renal_disease, 1), 1.0);
}

TEST(Feedback, OverfetchReplacesRejectedResults) {
  auto w = MakeFeedbackWorld();
  // Base k = 1: without over-fetch, rejecting the single result could
  // never surface the runner-up.
  RelaxationOptions tight;
  tight.top_k = 1;
  QueryRelaxer narrow(&w->fx.dag, &w->ingestion, w->matcher.get(),
                      SimilarityOptions{}, tight);
  FeedbackRelaxer feedback(&narrow, &w->fx.dag, FeedbackOptions{});
  RelaxationOutcome before =
      feedback.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_EQ(before.concepts.size(), 1u);
  ConceptId top = before.concepts[0].concept_id;
  for (int i = 0; i < 4; ++i) feedback.Reject(top, 0);
  RelaxationOutcome after =
      feedback.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_EQ(after.concepts.size(), 1u);
  EXPECT_NE(after.concepts[0].concept_id, top);
}

TEST(Relaxer, PrecomputeWarmsGeometryCache) {
  auto w = MakeFeedbackWorld();
  size_t cached = w->relaxer->PrecomputeSimilarities();
  EXPECT_GT(cached, 0u);
  EXPECT_EQ(cached, w->relaxer->similarity().cached_pairs());
  // Results after warming equal results without warming.
  QueryRelaxer cold(&w->fx.dag, &w->ingestion, w->matcher.get(),
                    SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome warm_out =
      w->relaxer->RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  RelaxationOutcome cold_out =
      cold.RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_EQ(warm_out.concepts.size(), cold_out.concepts.size());
  for (size_t i = 0; i < warm_out.concepts.size(); ++i) {
    EXPECT_EQ(warm_out.concepts[i].concept_id,
              cold_out.concepts[i].concept_id);
    EXPECT_DOUBLE_EQ(warm_out.concepts[i].similarity,
                     cold_out.concepts[i].similarity);
  }
}

TEST(Relaxer, NoContextQueryUsesAggregatedFrequencies) {
  auto w = MakeFeedbackWorld();
  // kNoContext is a legal context: Algorithm 2 falls back to aggregated
  // frequencies (Section 5.2, "Contextual information").
  RelaxationOutcome outcome = w->relaxer->RelaxConcept(
      w->fx.ckd_stage1_due_to_hypertension, kNoContext);
  EXPECT_FALSE(outcome.concepts.empty());
  for (size_t i = 1; i < outcome.concepts.size(); ++i) {
    EXPECT_GE(outcome.concepts[i - 1].similarity,
              outcome.concepts[i].similarity);
  }
}

TEST(Explain, DisconnectedPairIsMarked) {
  ConceptDag dag;
  ConceptId a = *dag.AddConcept("a");
  ConceptId b = *dag.AddConcept("b");
  FrequencyModel freq(2, 1);
  freq.Normalize(a);
  SimilarityModel model(&dag, &freq, SimilarityOptions{});
  SimilarityExplanation ex = ExplainSimilarity(model, dag, a, b, 0);
  EXPECT_FALSE(ex.connected);
  EXPECT_DOUBLE_EQ(ex.similarity, 0.0);
  EXPECT_NE(ex.Render(dag).find("not connected"), std::string::npos);
}

TEST(Relaxer, WithKMatchesOptionsK) {
  auto w = MakeFeedbackWorld();
  RelaxationOutcome via_options =
      w->relaxer->RelaxConcept(w->fx.ckd_stage1_due_to_hypertension, 0);
  RelaxationOutcome via_k = w->relaxer->RelaxConceptWithK(
      w->fx.ckd_stage1_due_to_hypertension, 0,
      w->relaxer->options().top_k);
  ASSERT_EQ(via_options.concepts.size(), via_k.concepts.size());
  for (size_t i = 0; i < via_options.concepts.size(); ++i) {
    EXPECT_EQ(via_options.concepts[i].concept_id,
              via_k.concepts[i].concept_id);
  }
}

TEST(Feedback, ContextSpecificity) {
  auto w = MakeFeedbackWorld();
  FeedbackRelaxer feedback(w->relaxer.get(), &w->fx.dag, FeedbackOptions{});
  feedback.Accept(w->fx.kidney_disease, 3);
  EXPECT_GT(feedback.Factor(w->fx.kidney_disease, 3), 1.0);
  EXPECT_DOUBLE_EQ(feedback.Factor(w->fx.kidney_disease, 0), 1.0);
}

}  // namespace
}  // namespace medrelax
