// Tests of the Snapshot bundle and the RCU-style SnapshotRegistry: build
// correctness, generation stamping, swap semantics, and old-snapshot
// liveness while readers hold references.

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/serve/snapshot.h"

namespace medrelax {
namespace {

Result<GeneratedWorld> SmallWorld(uint64_t seed = 7) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 600;
  eks.seed = seed;
  KbGeneratorOptions kb;
  kb.num_findings = 40;
  kb.seed = seed + 1;
  return GenerateWorld(eks, kb);
}

std::shared_ptr<Snapshot> BuildSmallSnapshot(
    uint64_t seed = 7, const SnapshotOptions& options = SnapshotOptions{}) {
  Result<GeneratedWorld> world = SmallWorld(seed);
  EXPECT_TRUE(world.ok()) << world.status();
  Result<std::shared_ptr<Snapshot>> snapshot = Snapshot::Build(
      std::move(world->eks.dag), std::move(world->kb), nullptr, options);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status();
  return *snapshot;
}

TEST(Snapshot, BuildRunsIngestionAndWiresTheRelaxer) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  EXPECT_EQ(snap->generation(), 0u) << "unpublished snapshots have gen 0";
  EXPECT_GT(snap->ingestion().mappings.size(), 0u);
  EXPECT_GT(snap->ingestion().shortcuts_added, 0u);
  EXPECT_GT(snap->dag().num_shortcut_edges(), 0u)
      << "Build must customize the snapshot's own DAG";

  // The relaxer answers through the bundle's own members: resolve a mapped
  // instance's name and relax it.
  const auto& [instance, concept_id] = snap->ingestion().mappings.front();
  const std::string& term = snap->kb().instances.instance(instance).name;
  Result<RelaxationOutcome> outcome =
      snap->relaxer().Relax(term, kNoContext);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->instances.empty());
}

TEST(Snapshot, OptionsFingerprintReflectsConfiguration) {
  std::shared_ptr<Snapshot> defaults = BuildSmallSnapshot(7);
  std::shared_ptr<Snapshot> same = BuildSmallSnapshot(7);
  EXPECT_EQ(defaults->options_fingerprint(), same->options_fingerprint());

  SnapshotOptions tweaked;
  tweaked.relaxation.top_k = 3;
  std::shared_ptr<Snapshot> other = BuildSmallSnapshot(7, tweaked);
  EXPECT_NE(defaults->options_fingerprint(), other->options_fingerprint());
}

TEST(Snapshot, BuildFailsOnMultiRootedDag) {
  Result<GeneratedWorld> world = SmallWorld();
  ASSERT_TRUE(world.ok());
  ConceptDag dag = std::move(world->eks.dag);
  // A second root: a concept nothing subsumes.
  ASSERT_TRUE(dag.AddConcept("orphan root").ok());
  Result<std::shared_ptr<Snapshot>> snapshot = Snapshot::Build(
      std::move(dag), std::move(world->kb), nullptr, SnapshotOptions{});
  EXPECT_FALSE(snapshot.ok());
}

TEST(SnapshotRegistry, PublishStampsMonotonicGenerations) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.generation(), 0u);

  std::shared_ptr<Snapshot> first = BuildSmallSnapshot(7);
  std::shared_ptr<Snapshot> second = BuildSmallSnapshot(8);
  EXPECT_EQ(registry.Publish(first), 1u);
  EXPECT_EQ(registry.Current()->generation(), 1u);
  EXPECT_EQ(registry.Publish(second), 2u);
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.Current()->generation(), 2u);
}

TEST(SnapshotRegistry, ReadersKeepTheOldSnapshotAlive) {
  SnapshotRegistry registry;
  registry.Publish(BuildSmallSnapshot(7));
  std::shared_ptr<const Snapshot> reader = registry.Current();
  const size_t old_concepts = reader->dag().num_concepts();

  Result<GeneratedWorld> world = SmallWorld(/*seed=*/99);
  ASSERT_TRUE(world.ok());
  Result<std::shared_ptr<Snapshot>> replacement = Snapshot::Build(
      std::move(world->eks.dag), std::move(world->kb), nullptr,
      SnapshotOptions{});
  ASSERT_TRUE(replacement.ok());
  registry.Publish(std::move(*replacement));

  // The swapped-out snapshot must stay fully usable through the old ref.
  EXPECT_EQ(reader->generation(), 1u);
  EXPECT_EQ(reader->dag().num_concepts(), old_concepts);
  RelaxationOutcome outcome = reader->relaxer().RelaxConcept(
      reader->ingestion().mappings.front().second, kNoContext);
  EXPECT_FALSE(outcome.instances.empty());
  EXPECT_EQ(registry.Current()->generation(), 2u);
}

}  // namespace
}  // namespace medrelax
