// Tests of the offline external-knowledge-source ingestion (Algorithm 1):
// context generation, mappings/flags, per-context frequencies, and the
// Figure 5 shortcut-edge customization.

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/matching/name_index.h"
#include "medrelax/datasets/corpus_generator.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/relax/ingestion.h"

namespace medrelax {
namespace {

// A controlled world on the Figure 5 DAG: "kidney disease" is the only
// concept with a KB instance, matching Example 2.
struct Fig5World {
  Figure5Fixture fx;
  KnowledgeBase kb;
  InstanceId kidney_instance = kInvalidInstance;
};

Fig5World MakeFig5World() {
  Fig5World w;
  auto fx = BuildFigure5Fixture();
  EXPECT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  EXPECT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance =
      *w.kb.instances.AddInstance("kidney disease", finding);
  return w;
}

TEST(Ingestion, GeneratesAllContexts) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  IngestionOptions options;
  auto result = RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Algorithm 1 lines 1-4: one context per relationship.
  EXPECT_EQ(result->contexts.size(), w.kb.ontology.num_relationships());
}

TEST(Ingestion, MapsAndFlagsInstances) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->mappings.size(), 1u);
  EXPECT_EQ(result->mappings[0].first, w.kidney_instance);
  EXPECT_EQ(result->mappings[0].second, w.fx.kidney_disease);
  EXPECT_TRUE(result->flagged[w.fx.kidney_disease]);
  EXPECT_FALSE(result->flagged[w.fx.hypertensive_nephropathy]);
  EXPECT_EQ(result->unmapped_instances, 0u);
  // Reverse index materializes the instance.
  auto it = result->concept_instances.find(w.fx.kidney_disease);
  ASSERT_NE(it, result->concept_instances.end());
  ASSERT_EQ(it->second.size(), 1u);
  EXPECT_EQ(it->second[0], w.kidney_instance);
}

TEST(Ingestion, ConceptContextsComeFromTheInstanceConcept) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  auto it = result->concept_contexts.find(w.fx.kidney_disease);
  ASSERT_NE(it, result->concept_contexts.end());
  // Figure 1 ontology has exactly 2 relationships with range Finding.
  EXPECT_EQ(it->second.size(), 2u);
}

TEST(Ingestion, Figure5ShortcutEdges) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->shortcuts_added, 0u);

  // Example 2: ckd-stage-1-due-to-hypertension was 3 hops from kidney
  // disease; after ingestion they are directly connected with the original
  // distance 3 attached.
  bool found = false;
  for (const DagEdge& e :
       w.fx.dag.parents(w.fx.ckd_stage1_due_to_hypertension)) {
    if (e.target == w.fx.kidney_disease && e.is_shortcut) {
      found = true;
      EXPECT_EQ(e.original_distance, 3u);
    }
  }
  EXPECT_TRUE(found) << "expected the Figure 5 dashed edge";
}

TEST(Ingestion, NoShortcutsBetweenAdjacentConcepts) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  // hypertensive renal disease is a direct child of kidney disease: no
  // shortcut may duplicate that edge.
  size_t edges_to_kidney = 0;
  for (const DagEdge& e : w.fx.dag.parents(w.fx.hypertensive_renal_disease)) {
    if (e.target == w.fx.kidney_disease) ++edges_to_kidney;
  }
  EXPECT_EQ(edges_to_kidney, 1u);
}

TEST(Ingestion, ShortcutsCanBeDisabled) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  IngestionOptions options;
  options.add_shortcut_edges = false;
  auto result = RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->shortcuts_added, 0u);
  EXPECT_EQ(w.fx.dag.num_shortcut_edges(), 0u);
}

TEST(Ingestion, MaxShortcutDistanceCaps) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  IngestionOptions options;
  options.max_shortcut_distance = 2;
  auto result = RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, options);
  ASSERT_TRUE(result.ok());
  for (ConceptId id = 0; id < w.fx.dag.num_concepts(); ++id) {
    for (const DagEdge& e : w.fx.dag.parents(id)) {
      if (e.is_shortcut) {
        EXPECT_LE(e.original_distance, 2u);
      }
    }
  }
}

TEST(Ingestion, StructuralFrequenciesWithoutCorpus) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  const FrequencyModel& freq = result->frequencies;
  // Corpus-free: freq = subtree size; leaf gets the minimum, root 1.
  EXPECT_DOUBLE_EQ(freq.Frequency(w.fx.root, 0), 1.0);
  EXPECT_LT(freq.Frequency(w.fx.ckd_stage1_due_to_hypertension, 0),
            freq.Frequency(w.fx.kidney_disease, 0));
  EXPECT_GT(freq.Ic(w.fx.ckd_stage1_due_to_hypertension, 0),
            freq.Ic(w.fx.kidney_disease, 0));
}

TEST(Ingestion, CorpusFrequenciesRespectContextSections) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);

  // A corpus mentioning "kidney disease" only in the Indication context.
  ContextRegistry registry = ContextRegistry::FromOntology(w.kb.ontology);
  ContextId ind = registry.FindByLabel("Indication-hasFinding-Finding");
  ContextId risk = registry.FindByLabel("Risk-hasFinding-Finding");
  ASSERT_NE(ind, kNoContext);
  ASSERT_NE(risk, kNoContext);
  Corpus corpus;
  Document doc;
  doc.name = "monograph";
  DocumentSection section;
  section.context = ind;
  section.tokens = {"kidney", "disease", "treated", "kidney", "disease"};
  doc.sections.push_back(section);
  corpus.AddDocument(std::move(doc));

  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, &corpus, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  const FrequencyModel& freq = result->frequencies;
  EXPECT_GT(freq.Raw(w.fx.kidney_disease, ind), 0.0);
  EXPECT_DOUBLE_EQ(freq.Raw(w.fx.kidney_disease, risk), 0.0);
  // Frequencies propagate upward: the root accumulates the mentions.
  EXPECT_GE(freq.Raw(w.fx.root, ind), freq.Raw(w.fx.kidney_disease, ind));
}

TEST(Ingestion, TfIdfToggleChangesWeights) {
  Fig5World w = MakeFig5World();
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  ContextRegistry registry = ContextRegistry::FromOntology(w.kb.ontology);
  ContextId ind = registry.FindByLabel("Indication-hasFinding-Finding");
  Corpus corpus;
  Document doc;
  doc.name = "m";
  DocumentSection s;
  s.context = ind;
  s.tokens = {"kidney", "disease"};
  doc.sections.push_back(s);
  corpus.AddDocument(std::move(doc));

  IngestionOptions raw_opts;
  raw_opts.use_tfidf = false;
  // Fresh DAG copies (shortcut mutation): rebuild fixtures.
  Fig5World w2 = MakeFig5World();
  auto with_tfidf =
      RunIngestion(w.kb, &w.fx.dag, matcher, &corpus, IngestionOptions{});
  NameIndex index2(&w2.fx.dag);
  ExactMatcher matcher2(&index2);
  auto without =
      RunIngestion(w2.kb, &w2.fx.dag, matcher2, &corpus, raw_opts);
  ASSERT_TRUE(with_tfidf.ok());
  ASSERT_TRUE(without.ok());
  // Raw count = 1 mention; tf-idf = 1 * log(1 + N/df) = log(2) != 1.
  EXPECT_DOUBLE_EQ(without->frequencies.Raw(w2.fx.kidney_disease, ind), 1.0);
  EXPECT_NE(with_tfidf->frequencies.Raw(w.fx.kidney_disease, ind), 1.0);
}

TEST(Ingestion, UnmappedInstancesAreCounted) {
  Fig5World w = MakeFig5World();
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  ASSERT_TRUE(
      w.kb.instances.AddInstance("totally unknown condition", finding).ok());
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->unmapped_instances, 1u);
}

TEST(Ingestion, RejectsMultiRootSource) {
  Fig5World w = MakeFig5World();
  ConceptDag broken;
  ASSERT_TRUE(broken.AddConcept("r1").ok());
  ASSERT_TRUE(broken.AddConcept("r2").ok());
  NameIndex index(&broken);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &broken, matcher, nullptr, IngestionOptions{});
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(Ingestion, SynonymMappingFlagsSameConcept) {
  Fig5World w = MakeFig5World();
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  // "nephropathy" is a synonym of kidney disease in the fixture.
  ASSERT_TRUE(w.kb.instances.AddInstance("nephropathy", finding).ok());
  NameIndex index(&w.fx.dag);
  ExactMatcher matcher(&index);
  auto result =
      RunIngestion(w.kb, &w.fx.dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(result.ok());
  // Both instances map to the same external concept.
  auto it = result->concept_instances.find(w.fx.kidney_disease);
  ASSERT_NE(it, result->concept_instances.end());
  EXPECT_EQ(it->second.size(), 2u);
}

// Property sweep over generated worlds: structural invariants of the
// ingestion output hold at every seed.
class IngestionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IngestionSweep, InvariantsHold) {
  SnomedGeneratorOptions eks_opts;
  eks_opts.num_concepts = 400;
  eks_opts.seed = GetParam();
  KbGeneratorOptions kb_opts;
  kb_opts.num_drugs = 12;
  kb_opts.num_findings = 60;
  kb_opts.seed = GetParam() + 1;
  auto world = GenerateWorld(eks_opts, kb_opts);
  ASSERT_TRUE(world.ok());
  Corpus corpus = GenerateMonographCorpus(*world, CorpusGeneratorOptions{});
  NameIndex index(&world->eks.dag);
  ExactMatcher matcher(&index);
  auto result = RunIngestion(world->kb, &world->eks.dag, matcher, &corpus,
                             IngestionOptions{});
  ASSERT_TRUE(result.ok()) << result.status();

  const ConceptDag& dag = world->eks.dag;
  const FrequencyModel& freq = result->frequencies;
  ConceptId root = dag.Roots().front();

  // (1) Monotonicity: a parent's propagated frequency dominates each
  // child's in every context (Equation 2 sums children into parents).
  for (ConceptId child = 0; child < dag.num_concepts(); ++child) {
    for (const DagEdge& e : dag.parents(child)) {
      if (e.is_shortcut) continue;
      for (ContextId ctx = 0; ctx < result->contexts.size(); ++ctx) {
        ASSERT_GE(freq.Raw(e.target, ctx), freq.Raw(child, ctx))
            << dag.name(e.target) << " < " << dag.name(child);
      }
    }
  }
  // (2) Root normalizes to 1 in every context; every frequency in (0, 1].
  for (ContextId ctx = 0; ctx < result->contexts.size(); ++ctx) {
    EXPECT_DOUBLE_EQ(freq.Frequency(root, ctx), 1.0);
  }
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    double f = freq.Frequency(c, kNoContext);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // (3) Every mapping's target is flagged; every flagged concept has
  // instances in the reverse index.
  for (const auto& [instance, concept_id] : result->mappings) {
    (void)instance;
    EXPECT_TRUE(result->flagged[concept_id]);
  }
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    if (!result->flagged[c]) continue;
    auto it = result->concept_instances.find(c);
    ASSERT_NE(it, result->concept_instances.end());
    EXPECT_FALSE(it->second.empty());
  }
  // (4) Shortcut edges never connect direct native neighbors, always have
  // distance >= 2, and always touch at least one flagged endpoint.
  for (ConceptId child = 0; child < dag.num_concepts(); ++child) {
    size_t native_and_shortcut_to_same_target = 0;
    std::vector<ConceptId> native_targets;
    for (const DagEdge& e : dag.parents(child)) {
      if (!e.is_shortcut) native_targets.push_back(e.target);
    }
    for (const DagEdge& e : dag.parents(child)) {
      if (!e.is_shortcut) continue;
      EXPECT_GE(e.original_distance, 2u);
      EXPECT_TRUE(result->flagged[child] || result->flagged[e.target]);
      for (ConceptId nt : native_targets) {
        if (nt == e.target) ++native_and_shortcut_to_same_target;
      }
    }
    EXPECT_EQ(native_and_shortcut_to_same_target, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestionSweep,
                         ::testing::Values(3, 19, 84, 5150));

}  // namespace
}  // namespace medrelax
