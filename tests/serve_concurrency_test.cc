// Thread-safety tests of the serving layer, written to be exercised under
// the tsan preset: concurrent submitters racing hot snapshot swaps, the
// shared result cache under contention, and shutdown racing intake. The
// assertions are deliberately about *invariants* (every future resolves,
// answers match the generation that served them) rather than timing.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/common/cache_policy.h"
#include "medrelax/common/deadlock_detector.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/serve/relaxation_service.h"

namespace medrelax {
namespace {

std::shared_ptr<Snapshot> BuildSnapshot(uint64_t seed) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 600;
  eks.seed = seed;
  KbGeneratorOptions kb;
  kb.num_findings = 40;
  kb.seed = seed + 1;
  Result<GeneratedWorld> world = GenerateWorld(eks, kb);
  EXPECT_TRUE(world.ok()) << world.status();
  Result<std::shared_ptr<Snapshot>> snapshot =
      Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                      nullptr, SnapshotOptions{});
  EXPECT_TRUE(snapshot.ok()) << snapshot.status();
  return *snapshot;
}

std::vector<ConceptId> FlaggedConcepts(const Snapshot& snap, size_t limit) {
  std::vector<ConceptId> out;
  const std::vector<bool>& flagged = snap.ingestion().flagged;
  for (ConceptId id = 0; id < flagged.size() && out.size() < limit; ++id) {
    if (flagged[id]) out.push_back(id);
  }
  return out;
}

TEST(ServeConcurrency, QueriesRaceSnapshotSwaps) {
  // All seeds build from the same generated world, so answers are
  // comparable across generations; what changes per publish is the
  // generation (and therefore the cache keyspace).
  std::shared_ptr<Snapshot> initial = BuildSnapshot(7);
  std::vector<ConceptId> queries = FlaggedConcepts(*initial, 16);
  ASSERT_FALSE(queries.empty());

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 1024;
  options.cache.capacity = 128;
  options.cache.num_shards = 2;  // force cross-thread shard contention
  RelaxationService service(initial, options);

  constexpr int kSubmitters = 3;
  constexpr int kRequestsPerThread = 120;
  constexpr int kSwaps = 6;

  std::atomic<bool> start{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> rejected{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kRequestsPerThread; ++i) {
        RelaxRequest request;
        request.concept_id = queries[(t * 31 + i) % queries.size()];
        std::future<Result<RelaxResponse>> future =
            service.Submit(std::move(request));
        Result<RelaxResponse> response = future.get();
        if (response.ok()) {
          // The invariant under swaps: an answer is always attributed to
          // a real published generation, and carries a live outcome.
          EXPECT_GE(response->generation, 1u);
          EXPECT_NE(response->outcome, nullptr);
          EXPECT_FALSE(response->outcome->instances.empty());
          served.fetch_add(1);
        } else {
          // The only acceptable failure while swapping is backpressure.
          EXPECT_TRUE(response.status().IsResourceExhausted())
              << response.status();
          rejected.fetch_add(1);
        }
      }
    });
  }

  std::thread swapper([&] {
    while (!start.load()) std::this_thread::yield();
    for (int i = 0; i < kSwaps; ++i) {
      service.PublishSnapshot(BuildSnapshot(7));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  start.store(true);
  for (std::thread& thread : submitters) thread.join();
  swapper.join();

  EXPECT_EQ(served.load() + rejected.load(),
            static_cast<uint64_t>(kSubmitters) * kRequestsPerThread);
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(service.snapshot()->generation(), 1u + kSwaps);

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, served.load());
  EXPECT_EQ(stats.snapshot_swaps, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.completed);
}

TEST(ServeConcurrency, ReadersFinishOnTheSnapshotTheyStartedWith) {
  SnapshotRegistry registry;
  registry.Publish(BuildSnapshot(7));

  constexpr int kReaders = 3;
  constexpr int kIterations = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        std::shared_ptr<const Snapshot> snap = registry.Current();
        ASSERT_NE(snap, nullptr);
        const uint64_t generation = snap->generation();
        // Use the pinned snapshot end-to-end; a swap mid-iteration must
        // not invalidate anything we're touching.
        const auto& mapping = snap->ingestion().mappings.front();
        RelaxationOutcome outcome =
            snap->relaxer().RelaxConcept(mapping.second, kNoContext);
        EXPECT_FALSE(outcome.instances.empty());
        EXPECT_EQ(snap->generation(), generation);
      }
    });
  }
  std::thread swapper([&] {
    // do-while: at least one swap always lands, even if a loaded box
    // schedules this thread only after every reader has finished —
    // the generation assertion below must not depend on timing.
    do {
      registry.Publish(BuildSnapshot(7));
    } while (!stop.load());
  });
  for (std::thread& thread : readers) thread.join();
  stop.store(true);
  swapper.join();
  EXPECT_GE(registry.generation(), 2u);
}

TEST(ServeConcurrency, SharedCacheUnderContentionStaysConsistent) {
  std::shared_ptr<Snapshot> snap = BuildSnapshot(7);
  std::vector<ConceptId> queries = FlaggedConcepts(*snap, 8);
  ASSERT_FALSE(queries.empty());

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 2048;
  // A cache smaller than the working set: hits, misses, and evictions all
  // happen concurrently. Pinned to strict LRU: under the activity policy
  // coalescing can collapse every cold key to a single insert attempt,
  // and the second-hit doorkeeper then rejects them all — zero evictions.
  // ActivitySweepUnderContentionKeepsShardBounded covers that policy.
  options.cache.capacity = 4;
  options.cache.num_shards = 1;
  options.cache.policy.eviction = CachePolicy::Eviction::kLru;
  RelaxationService service(snap, options);

  // Skewed mix: a hot key every other request, cold keys rotating through
  // the rest of the pool. Round-robin over 8 keys in a 4-entry LRU would
  // never hit (pure thrashing); the hot key guarantees hits while the
  // cold tail keeps evictions flowing.
  std::vector<std::future<Result<RelaxResponse>>> futures;
  futures.reserve(512);
  for (int i = 0; i < 512; ++i) {
    const size_t slot =
        (i % 2 == 0) ? 0
                     : 1 + (static_cast<size_t>(i) / 2) % (queries.size() - 1);
    RelaxRequest request;
    request.concept_id = queries[slot];
    futures.push_back(service.Submit(std::move(request)));
  }
  size_t ok = 0;
  for (auto& future : futures) {
    Result<RelaxResponse> response = future.get();
    if (response.ok()) ++ok;
  }
  EXPECT_EQ(ok, futures.size());
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(service.cache().evictions(), 0u)
      << "the test must actually exercise concurrent eviction";
}

TEST(ServeConcurrency, ActivitySweepUnderContentionKeepsShardBounded) {
  std::shared_ptr<Snapshot> snap = BuildSnapshot(7);
  std::vector<ConceptId> queries = FlaggedConcepts(*snap, 12);
  ASSERT_GE(queries.size(), 12u);

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 4096;
  // One tiny shard: every worker contends on the same shard mutex AND the
  // same sweep mutex, so tsan sees Lookup bumps, doorkeeper inserts, and
  // bottom-activity sweeps interleaved on one Entry list.
  options.cache.capacity = 4;
  options.cache.num_shards = 1;
  RelaxationService service(snap, options);

  // Seed pass, sequential for determinism: the first 4 distinct keys fill
  // the shard unconditionally; the remaining 8 arrive full and are
  // first sightings, so the doorkeeper rejects each and records its
  // fingerprint.
  for (ConceptId id : queries) {
    RelaxRequest request;
    request.concept_id = id;
    Result<RelaxResponse> response = service.Relax(request);
    ASSERT_TRUE(response.ok()) << response.status();
  }
  const uint64_t seeded_rejects = service.cache().admission_rejects();
  EXPECT_EQ(seeded_rejects, queries.size() - options.cache.capacity);

  // Storm pass: re-offer every key concurrently. The 8 sketch-recorded
  // cold keys are now second sightings, so their inserts are admitted
  // into the full shard and each admission overflows it into a sweep —
  // racing the hot keys' Lookup-side activity bumps.
  std::vector<std::future<Result<RelaxResponse>>> futures;
  futures.reserve(512);
  for (int i = 0; i < 512; ++i) {
    RelaxRequest request;
    request.concept_id = queries[(i % 2 == 0)
                                     ? static_cast<size_t>(i / 2) % 3
                                     : 3 + (static_cast<size_t>(i) / 2) %
                                               (queries.size() - 3)];
    futures.push_back(service.Submit(std::move(request)));
  }
  size_t ok = 0;
  for (auto& future : futures) {
    if (future.get().ok()) ++ok;
  }
  EXPECT_EQ(ok, futures.size());

  // Quiesce: joins the workers, so every in-flight Insert (and the sweep
  // it may have kicked off) has finished before the size assertion.
  service.Shutdown();
  const ResultCache& cache = service.cache();
  EXPECT_LE(cache.size(), options.cache.capacity)
      << "a sweep must restore the capacity bound before Insert returns";
  EXPECT_GT(cache.sweeps_completed(), 0u);
  EXPECT_GT(cache.admission_rejects(), 0u);
  EXPECT_EQ(cache.evictions(), cache.activity_evictions())
      << "under the activity policy every eviction is a sweep eviction";
}

TEST(ServeConcurrency, CoalescedMissRunsRelaxerExactlyOnce) {
  std::shared_ptr<Snapshot> snap = BuildSnapshot(7);
  ConceptId query = FlaggedConcepts(*snap, 1).front();

  // Park the first group leader inside its computation so concurrent
  // identical submits deterministically find the in-flight entry.
  std::atomic<int> groups{0};
  std::atomic<bool> release{false};
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 256;
  options.cache.capacity = 0;  // single-flight, not the cache, must dedup
  options.pre_compute_hook_for_test = [&groups, &release] {
    if (groups.fetch_add(1) == 0) {
      while (!release.load()) std::this_thread::yield();
    }
  };
  RelaxationService service(snap, options);

  RelaxRequest request;
  request.concept_id = query;
  auto leader = service.Submit(request);
  while (groups.load() == 0) std::this_thread::yield();

  constexpr uint64_t kFollowers = 6;
  std::vector<std::future<Result<RelaxResponse>>> followers;
  for (uint64_t i = 0; i < kFollowers; ++i) {
    followers.push_back(service.Submit(request));
  }
  // Every identical miss must attach to the parked leader, whether it was
  // dequeued singly or pulled along by a batch drain.
  while (service.Stats().coalesced_hits < kFollowers) {
    std::this_thread::yield();
  }
  release.store(true);

  Result<RelaxResponse> led = leader.get();
  ASSERT_TRUE(led.ok()) << led.status();
  EXPECT_FALSE(led->coalesced);
  EXPECT_FALSE(led->cache_hit);
  for (auto& future : followers) {
    Result<RelaxResponse> response = future.get();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->coalesced);
    EXPECT_TRUE(response->cache_hit);
    EXPECT_EQ(response->outcome.get(), led->outcome.get());
  }

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, kFollowers + 1);
  EXPECT_EQ(stats.cache_misses, 1u)
      << "exactly one relaxer invocation for the whole burst";
  EXPECT_EQ(stats.coalesced_hits, kFollowers);
  // RelaxStats instrumentation pins it down independently of the
  // counters: the service-wide aggregate equals ONE direct invocation's
  // deterministic work counts.
  RelaxationOutcome direct = snap->relaxer().RelaxConceptWithK(
      query, kNoContext, snap->relaxer().options().top_k);
  EXPECT_EQ(stats.relax.candidates_scanned, direct.stats.candidates_scanned);
  EXPECT_EQ(stats.relax.neighbors_visited, direct.stats.neighbors_visited);
}

TEST(ServeConcurrency, MidFlightPublishDoesNotFanStaleGeneration) {
  std::shared_ptr<Snapshot> snap = BuildSnapshot(7);
  ConceptId query = FlaggedConcepts(*snap, 1).front();

  std::atomic<int> groups{0};
  std::atomic<bool> release{false};
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 256;
  options.cache.capacity = 0;
  options.pre_compute_hook_for_test = [&groups, &release] {
    if (groups.fetch_add(1) == 0) {
      while (!release.load()) std::this_thread::yield();
    }
  };
  RelaxationService service(snap, options);

  RelaxRequest request;
  request.concept_id = query;
  auto leader = service.Submit(request);
  while (groups.load() == 0) std::this_thread::yield();
  auto follower = service.Submit(request);
  while (service.Stats().coalesced_hits < 1) std::this_thread::yield();

  // The swap lands while generation 1's leader is still computing. A
  // request admitted after it pins the new snapshot and computes a
  // new-generation key, so it can NOT attach to the stale leader: it must
  // be answered fresh, at generation 2.
  EXPECT_EQ(service.PublishSnapshot(BuildSnapshot(7)), 2u);
  auto late = service.Submit(request);
  Result<RelaxResponse> late_response = late.get();
  ASSERT_TRUE(late_response.ok()) << late_response.status();
  EXPECT_EQ(late_response->generation, 2u);
  EXPECT_FALSE(late_response->coalesced)
      << "a post-swap request must not be fanned a stale-generation result";

  release.store(true);
  Result<RelaxResponse> led = leader.get();
  ASSERT_TRUE(led.ok());
  EXPECT_EQ(led->generation, 1u);
  Result<RelaxResponse> fanned = follower.get();
  ASSERT_TRUE(fanned.ok());
  EXPECT_TRUE(fanned->coalesced);
  EXPECT_EQ(fanned->generation, 1u)
      << "followers that attached before the swap get the answer their "
         "snapshot computed";
}

TEST(ServeConcurrency, PublishStormKeepsLockOrderAcyclic) {
  // Every lock in the serving layer under fire at once: submitters hit
  // the request queue and cache shards, a publisher swaps the registry,
  // and pollers read stats, cache size, and queue depth. With the
  // deadlock detector compiled in (default/asan/tsan presets), any
  // inconsistent acquisition order between the service, registry, shard,
  // and stats locks aborts the test; afterwards we assert the recorded
  // order graph itself is cycle-free.
  std::shared_ptr<Snapshot> initial = BuildSnapshot(7);
  std::vector<ConceptId> queries = FlaggedConcepts(*initial, 8);
  ASSERT_FALSE(queries.empty());

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 512;
  // Smaller than the per-generation working set (8 keys), so the storm
  // also drives overflow admissions and bottom-activity sweeps: the
  // sweep mutex joins the order graph alongside the shard locks.
  options.cache.capacity = 4;
  options.cache.num_shards = 1;
  RelaxationService service(initial, options);

  constexpr int kSubmitters = 2;
  constexpr int kRequestsPerThread = 80;
  constexpr int kPublishes = 8;

  std::atomic<bool> start{false};
  std::atomic<bool> storming{true};
  std::atomic<uint64_t> resolved{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kRequestsPerThread; ++i) {
        RelaxRequest request;
        request.concept_id = queries[(t * 17 + i) % queries.size()];
        Result<RelaxResponse> response =
            service.Submit(std::move(request)).get();
        if (!response.ok()) {
          EXPECT_TRUE(response.status().IsResourceExhausted())
              << response.status();
        }
        resolved.fetch_add(1);
      }
    });
  }
  std::thread publisher([&] {
    while (!start.load()) std::this_thread::yield();
    for (int i = 0; i < kPublishes; ++i) {
      service.PublishSnapshot(BuildSnapshot(7));
    }
  });
  std::thread poller([&] {
    while (!start.load()) std::this_thread::yield();
    while (storming.load()) {
      ServiceStatsSnapshot stats = service.Stats();
      EXPECT_LE(stats.cache_hits, stats.completed);
      (void)service.cache().size();   // shard locks, all of them
      (void)service.queue_depth();    // queue lock
      (void)service.snapshot();       // registry lock
      std::this_thread::yield();
    }
  });

  start.store(true);
  for (std::thread& thread : submitters) thread.join();
  publisher.join();
  storming.store(false);
  poller.join();

  EXPECT_EQ(resolved.load(),
            static_cast<uint64_t>(kSubmitters) * kRequestsPerThread);
  EXPECT_EQ(service.snapshot()->generation(), 1u + kPublishes);

#ifdef MEDRELAX_DEADLOCK_DEBUG
  // The storm above fed the detector's acquisition-order graph through
  // the Mutex hooks; the documented total order (docs/CONCURRENCY.md)
  // must hold pairwise — no two serving-layer sites may each be ordered
  // before the other.
  DeadlockDetector& detector = DeadlockDetector::Instance();
  const std::vector<int> sites = {
      detector.RegisterSite("RelaxationService::queue_mu"),
      detector.RegisterSite("RelaxationService::inflight_mu"),
      detector.RegisterSite("SnapshotRegistry::mu"),
      detector.RegisterSite("ResultCache::Shard::mu"),
      detector.RegisterSite("ResultCache::sweep_mu"),
      detector.RegisterSite("SimilarityModel::geometry_mu"),
      detector.RegisterSite("SimilarityModel::geometry_sweep_mu"),
      detector.RegisterSite("ServiceStats::relax_mu"),
  };
  for (int a : sites) {
    for (int b : sites) {
      if (a == b) continue;
      EXPECT_FALSE(detector.PathExists(a, b) && detector.PathExists(b, a))
          << "lock-order cycle between " << detector.SiteName(a) << " and "
          << detector.SiteName(b);
    }
  }
#endif  // MEDRELAX_DEADLOCK_DEBUG
}

TEST(ServeConcurrency, ShutdownRacesSubmitters) {
  std::shared_ptr<Snapshot> snap = BuildSnapshot(7);
  ConceptId query = FlaggedConcepts(*snap, 1).front();

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  RelaxationService service(snap, options);

  std::atomic<bool> start{false};
  std::vector<std::thread> submitters;
  std::atomic<uint64_t> resolved{0};
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        RelaxRequest request;
        request.concept_id = query;
        Result<RelaxResponse> response = service.Submit(std::move(request)).get();
        // ok, backpressure, or shutdown — but the future always resolves.
        if (!response.ok()) {
          EXPECT_TRUE(response.status().IsResourceExhausted() ||
                      response.status().IsFailedPrecondition())
              << response.status();
        }
        resolved.fetch_add(1);
      }
    });
  }
  start.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.Shutdown();
  for (std::thread& thread : submitters) thread.join();
  EXPECT_EQ(resolved.load(), 400u);
}

}  // namespace
}  // namespace medrelax
