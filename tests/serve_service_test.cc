// End-to-end tests of RelaxationService: request lifecycle, result
// caching, admission control (queue-full fast-fail), deadline handling,
// snapshot hot-swap, and the stats block. Deterministic scheduling where
// it matters: num_workers = 0 + RunOnce gives the tests full control of
// when the queue drains.

#include <chrono>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/serve/relaxation_service.h"

namespace medrelax {
namespace {

std::shared_ptr<Snapshot> BuildSmallSnapshot(
    uint64_t seed = 7, const SnapshotOptions& options = SnapshotOptions{}) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 600;
  eks.seed = seed;
  KbGeneratorOptions kb;
  kb.num_findings = 40;
  kb.seed = seed + 1;
  Result<GeneratedWorld> world = GenerateWorld(eks, kb);
  EXPECT_TRUE(world.ok()) << world.status();
  Result<std::shared_ptr<Snapshot>> snapshot = Snapshot::Build(
      std::move(world->eks.dag), std::move(world->kb), nullptr, options);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status();
  return *snapshot;
}

ConceptId FirstFlagged(const Snapshot& snap) {
  const std::vector<bool>& flagged = snap.ingestion().flagged;
  for (ConceptId id = 0; id < flagged.size(); ++id) {
    if (flagged[id]) return id;
  }
  return kInvalidConcept;
}

RelaxRequest ConceptRequest(ConceptId concept_id) {
  RelaxRequest request;
  request.concept_id = concept_id;
  return request;
}

TEST(RelaxationService, ServesTermAndConceptQueries) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  const auto& [instance, mapped_concept] = snap->ingestion().mappings.front();
  const std::string term = snap->kb().instances.instance(instance).name;

  ServiceOptions options;
  options.num_workers = 1;
  RelaxationService service(snap, options);
  EXPECT_EQ(service.snapshot()->generation(), 1u);

  RelaxRequest by_term;
  by_term.term = term;
  Result<RelaxResponse> term_response = service.Relax(by_term);
  ASSERT_TRUE(term_response.ok()) << term_response.status();
  EXPECT_FALSE(term_response->cache_hit);
  EXPECT_EQ(term_response->generation, 1u);
  EXPECT_FALSE(term_response->outcome->instances.empty());

  // The same query by resolved concept id returns the identical answer —
  // term resolution happens before the cache, so this is even a hit.
  Result<RelaxResponse> concept_response =
      service.Relax(ConceptRequest(mapped_concept));
  ASSERT_TRUE(concept_response.ok());
  EXPECT_TRUE(concept_response->cache_hit);
  EXPECT_EQ(concept_response->outcome->instances,
            term_response->outcome->instances);
}

TEST(RelaxationService, CachesRepeatedQueriesAndCountsThem) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 1;
  RelaxationService service(snap, options);

  Result<RelaxResponse> cold = service.Relax(ConceptRequest(query));
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  Result<RelaxResponse> warm = service.Relax(ConceptRequest(query));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->outcome.get(), cold->outcome.get())
      << "a hit shares the cached outcome object";

  // Different k = different answer shape = different cache entry.
  RelaxRequest bigger = ConceptRequest(query);
  bigger.top_k = 3;
  Result<RelaxResponse> other_k = service.Relax(bigger);
  ASSERT_TRUE(other_k.ok());
  EXPECT_FALSE(other_k->cache_hit);

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_GT(stats.relax.candidates_scanned, 0u)
      << "RelaxStats must flow into the service aggregate";
}

TEST(RelaxationService, QueueFullRejectsWithResourceExhausted) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 0;  // nothing drains the queue until RunOnce
  options.queue_capacity = 2;
  options.max_batch = 1;  // strict one-request-per-RunOnce, no batch drain
  RelaxationService service(snap, options);

  auto first = service.Submit(ConceptRequest(query));
  auto second = service.Submit(ConceptRequest(query));
  auto rejected = service.Submit(ConceptRequest(query));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "admission rejection must fail fast, not queue";
  Result<RelaxResponse> response = rejected.get();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsResourceExhausted()) << response.status();

  EXPECT_EQ(service.queue_depth(), 2u);
  EXPECT_TRUE(service.RunOnce());
  EXPECT_TRUE(service.RunOnce());
  EXPECT_FALSE(service.RunOnce());
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.requests, 2u) << "rejected requests are not admitted";
  EXPECT_EQ(stats.queue_depth_high_water, 2u);
}

TEST(RelaxationService, ExpiredRequestsFailFastWithDeadlineExceeded) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 0;
  RelaxationService service(snap, options);

  RelaxRequest hurried = ConceptRequest(query);
  hurried.timeout = std::chrono::nanoseconds(1);
  auto future = service.Submit(hurried);
  // Let the 1 ns budget lapse before any worker touches the request.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(service.RunOnce());
  Result<RelaxResponse> response = future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded()) << response.status();
  EXPECT_EQ(service.Stats().rejected_deadline, 1u);
  EXPECT_EQ(service.Stats().completed, 0u)
      << "no relaxation work may be spent on an expired request";
}

TEST(RelaxationService, NegativeTimeoutIsRejectedAsInvalidArgument) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 0;
  // A default deadline must NOT be substituted for a negative timeout —
  // that was the original fallthrough bug.
  options.default_deadline = std::chrono::milliseconds(1000);
  RelaxationService service(snap, options);

  RelaxRequest bogus = ConceptRequest(query);
  bogus.timeout = std::chrono::milliseconds(-5);
  auto future = service.Submit(bogus);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "a negative timeout must be rejected at submit, not queued";
  Result<RelaxResponse> response = future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument()) << response.status();

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, 0u) << "rejected before admission";
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(RelaxationService, DefaultDeadlineAppliesWhenRequestHasNone) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 0;
  options.default_deadline = std::chrono::milliseconds(1);
  RelaxationService service(snap, options);

  auto future = service.Submit(ConceptRequest(query));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(service.RunOnce());
  Result<RelaxResponse> response = future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded());
}

TEST(RelaxationService, UnknownTermFailsNotFound) {
  ServiceOptions options;
  options.num_workers = 1;
  SnapshotOptions snapshot_options;
  snapshot_options.use_exact_mapper = true;  // no fuzzy rescue
  RelaxationService service(BuildSmallSnapshot(7, snapshot_options), options);
  RelaxRequest request;
  request.term = "definitely not a concept name";
  Result<RelaxResponse> response = service.Relax(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsNotFound()) << response.status();
  EXPECT_EQ(service.Stats().failed, 1u);
}

TEST(RelaxationService, OutOfRangeContextFailsInvalidArgument) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ServiceOptions options;
  options.num_workers = 1;
  RelaxationService service(snap, options);
  RelaxRequest request = ConceptRequest(FirstFlagged(*snap));
  request.context = 1000;  // far past the registry
  Result<RelaxResponse> response = service.Relax(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument()) << response.status();
}

TEST(RelaxationService, SnapshotSwapInvalidatesCacheByGeneration) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot(7);
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 1;
  RelaxationService service(snap, options);

  Result<RelaxResponse> cold = service.Relax(ConceptRequest(query));
  ASSERT_TRUE(cold.ok());
  Result<RelaxResponse> warm = service.Relax(ConceptRequest(query));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);

  // Publish an identically built snapshot: same answers, new generation.
  EXPECT_EQ(service.PublishSnapshot(BuildSmallSnapshot(7)), 2u);
  Result<RelaxResponse> after = service.Relax(ConceptRequest(query));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 2u);
  EXPECT_FALSE(after->cache_hit)
      << "generation-scoped keys must miss after a swap";
  EXPECT_EQ(after->outcome->instances, cold->outcome->instances)
      << "same world, same answer — just recomputed";
  EXPECT_EQ(service.Stats().snapshot_swaps, 1u);
}

TEST(RelaxationService, BatchDrainCoalescesIdenticalQueuedRequests) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 0;
  options.max_batch = 8;
  options.cache.capacity = 0;  // all dedup must come from single-flight
  RelaxationService service(snap, options);

  std::vector<std::future<Result<RelaxResponse>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(service.Submit(ConceptRequest(query)));
  }
  EXPECT_EQ(service.queue_depth(), 5u);

  // One pump: the leader claims the in-flight entry, the drain pulls the
  // other four, and Prepare attaches them as followers of the same key —
  // one relaxer pass answers all five.
  EXPECT_TRUE(service.RunOnce());
  size_t leaders = 0, followers = 0;
  std::shared_ptr<const RelaxationOutcome> shared;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    Result<RelaxResponse> response = future.get();
    ASSERT_TRUE(response.ok()) << response.status();
    if (response->coalesced) {
      ++followers;
      EXPECT_TRUE(response->cache_hit)
          << "a coalesced answer counts as a hit: zero relaxer work";
    } else {
      ++leaders;
      EXPECT_FALSE(response->cache_hit);
    }
    if (shared == nullptr) shared = response->outcome;
    EXPECT_EQ(response->outcome.get(), shared.get())
        << "every caller shares the one computed outcome";
  }
  EXPECT_EQ(leaders, 1u);
  EXPECT_EQ(followers, 4u);
  EXPECT_FALSE(service.RunOnce()) << "the drain emptied the queue";

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.cache_misses, 1u) << "one relaxer invocation for five";
  EXPECT_EQ(stats.cache_hits, 4u);
  EXPECT_EQ(stats.coalesced_hits, 4u);
  EXPECT_EQ(stats.inflight_peak, 1u);
}

TEST(RelaxationService, BatchDrainPullsOnlySameContextRequests) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ASSERT_GE(snap->ingestion().contexts.size(), 1u);
  const std::vector<bool>& flagged = snap->ingestion().flagged;
  std::vector<ConceptId> pool;
  for (ConceptId id = 0; id < flagged.size() && pool.size() < 4; ++id) {
    if (flagged[id]) pool.push_back(id);
  }
  ASSERT_EQ(pool.size(), 4u);

  ServiceOptions options;
  options.num_workers = 0;
  options.max_batch = 8;
  RelaxationService service(snap, options);

  // Three kNoContext requests with an other-context request wedged in
  // between: the drain must pull the context matches past it and leave it
  // queued, in place.
  RelaxRequest other = ConceptRequest(pool[1]);
  other.context = 0;
  auto first = service.Submit(ConceptRequest(pool[0]));
  auto wedged = service.Submit(other);
  auto third = service.Submit(ConceptRequest(pool[2]));
  auto fourth = service.Submit(ConceptRequest(pool[3]));

  EXPECT_TRUE(service.RunOnce());
  EXPECT_EQ(first.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(third.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(fourth.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(wedged.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "a different context must not ride the drained group";
  EXPECT_EQ(service.queue_depth(), 1u);

  // Distinct concepts, same context: co-leaders in one shared-frontier
  // pass, not followers — each runs the relaxer once.
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.coalesced_hits, 0u);

  EXPECT_TRUE(service.RunOnce());
  EXPECT_TRUE(wedged.get().ok());
  EXPECT_FALSE(service.RunOnce());
}

TEST(RelaxationService, ShutdownRejectsNewAndFailsQueued) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 0;
  RelaxationService service(snap, options);

  auto queued = service.Submit(ConceptRequest(query));
  service.Shutdown();
  Result<RelaxResponse> queued_response = queued.get();
  ASSERT_FALSE(queued_response.ok());
  EXPECT_TRUE(queued_response.status().IsFailedPrecondition());

  auto late = service.Submit(ConceptRequest(query));
  Result<RelaxResponse> late_response = late.get();
  ASSERT_FALSE(late_response.ok());
  EXPECT_TRUE(late_response.status().IsFailedPrecondition());
  EXPECT_EQ(service.Stats().rejected_shutdown, 2u);
}

TEST(RelaxationService, WorkersDrainAdmittedRequestsOnShutdown) {
  std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
  ConceptId query = FirstFlagged(*snap);
  ServiceOptions options;
  options.num_workers = 2;
  RelaxationService service(snap, options);
  std::vector<std::future<Result<RelaxResponse>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.Submit(ConceptRequest(query)));
  }
  service.Shutdown();
  for (auto& future : futures) {
    Result<RelaxResponse> response = future.get();
    EXPECT_TRUE(response.ok())
        << "admitted work is served, not dropped: " << response.status();
  }
}

TEST(ServiceStats, ToStringDeterministicSubsetIsStable) {
  ServiceStats stats;
  stats.RecordAdmitted(1);
  stats.RecordCompleted(/*cache_hit=*/false, /*latency_ns=*/2'000'000);
  stats.RecordCompleted(/*cache_hit=*/true, /*latency_ns=*/1'000);
  stats.RecordRejectedQueueFull();
  const std::string block = stats.Snapshot().ToString(true);
  EXPECT_NE(block.find("requests=1\n"), std::string::npos) << block;
  EXPECT_NE(block.find("cache_hits=1\n"), std::string::npos) << block;
  EXPECT_NE(block.find("rejected_queue_full=1\n"), std::string::npos);
  EXPECT_EQ(block.find("latency"), std::string::npos)
      << "wall-clock fields must stay out of the deterministic block";
}

}  // namespace
}  // namespace medrelax
