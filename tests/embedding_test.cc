// Tests of the embedding substrate: co-occurrence counting, PPMI,
// truncated SVD, word vectors, and SIF sentence embeddings.

#include <cmath>

#include <gtest/gtest.h>

#include "medrelax/embedding/cooccurrence.h"
#include "medrelax/embedding/ppmi.h"
#include "medrelax/embedding/sif.h"
#include "medrelax/embedding/svd.h"
#include "medrelax/embedding/word_vectors.h"

namespace medrelax {
namespace {

Corpus TinyCorpus() {
  Corpus corpus;
  Document doc;
  doc.name = "d";
  DocumentSection s;
  s.context = kNoContext;
  // "kidney disease" and "renal disease" used interchangeably near
  // "treatment"; "lung infection" in a separate topical cluster.
  for (int i = 0; i < 40; ++i) {
    for (const char* tok :
         {"kidney", "disease", "treatment", "renal", "disease", "treatment",
          "lung", "infection", "cough", "lung", "infection", "cough"}) {
      s.tokens.push_back(tok);
    }
  }
  doc.sections.push_back(std::move(s));
  corpus.AddDocument(std::move(doc));
  return corpus;
}

TEST(Vocabulary, InternsAndCounts) {
  Vocabulary vocab;
  WordId a = vocab.Add("fever");
  WordId b = vocab.Add("fever");
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.count(a), 2u);
  EXPECT_EQ(vocab.size(), 1u);
  EXPECT_EQ(vocab.Find("fever"), a);
  EXPECT_EQ(vocab.Find("nope"), kOovWord);
  EXPECT_DOUBLE_EQ(vocab.Probability(a), 1.0);
  vocab.AddWithCount("cough", 3);
  EXPECT_DOUBLE_EQ(vocab.Probability(a), 2.0 / 5.0);
}

TEST(Cooccurrence, SymmetricCounts) {
  Corpus corpus = TinyCorpus();
  CooccurrenceCounter counter(2);
  counter.Process(corpus);
  WordId kidney = counter.vocabulary().Find("kidney");
  WordId disease = counter.vocabulary().Find("disease");
  ASSERT_NE(kidney, kOovWord);
  ASSERT_NE(disease, kOovWord);
  EXPECT_GT(counter.Count(kidney, disease), 0u);
  EXPECT_EQ(counter.Count(kidney, disease), counter.Count(disease, kidney));
  EXPECT_GT(counter.total_pairs(), 0u);
}

TEST(Cooccurrence, WindowLimitsPairs) {
  Corpus corpus;
  Document doc;
  doc.name = "d";
  DocumentSection s;
  s.tokens = {"a", "b", "c", "d"};
  doc.sections.push_back(s);
  corpus.AddDocument(std::move(doc));
  CooccurrenceCounter narrow(1);
  narrow.Process(corpus);
  WordId a = narrow.vocabulary().Find("a");
  WordId c = narrow.vocabulary().Find("c");
  EXPECT_EQ(narrow.Count(a, c), 0u);  // distance 2 > window 1
}

TEST(Ppmi, PositiveEntriesOnly) {
  Corpus corpus = TinyCorpus();
  CooccurrenceCounter counter(2);
  counter.Process(corpus);
  SparseMatrix m = BuildPpmiMatrix(counter);
  EXPECT_EQ(m.dim(), counter.vocabulary().size());
  EXPECT_GT(m.nnz(), 0u);
  for (uint32_t r = 0; r < m.dim(); ++r) {
    for (const SparseMatrix::Entry& e : m.row(r)) {
      EXPECT_GT(e.value, 0.0);
    }
  }
}

TEST(SparseMatrix, MultiplyMatchesManualComputation) {
  SparseMatrix m(3);
  m.Add(0, 1, 2.0);
  m.Add(1, 0, 2.0);
  m.Add(2, 2, 5.0);
  std::vector<double> x = {1.0, 3.0, -1.0};
  std::vector<double> y;
  m.Multiply(x, &y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], -5.0);
}

TEST(Svd, RecoversDominantEigenpairOfDiagonal) {
  SparseMatrix m(4);
  m.Add(0, 0, 5.0);
  m.Add(1, 1, 3.0);
  m.Add(2, 2, 1.0);
  m.Add(3, 3, 0.5);
  TruncatedEigen eig = TruncatedSymmetricEigen(m, 2, 60, 42);
  ASSERT_EQ(eig.rank, 2u);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-6);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-6);
  // The dominant eigenvector is e0 (up to sign).
  EXPECT_NEAR(std::fabs(eig.vectors[0 * 2 + 0]), 1.0, 1e-6);
}

TEST(Svd, DeterministicInSeed) {
  Corpus corpus = TinyCorpus();
  CooccurrenceCounter counter(2);
  counter.Process(corpus);
  SparseMatrix m = BuildPpmiMatrix(counter);
  TruncatedEigen a = TruncatedSymmetricEigen(m, 4, 30, 7);
  TruncatedEigen b = TruncatedSymmetricEigen(m, 4, 30, 7);
  ASSERT_EQ(a.vectors.size(), b.vectors.size());
  for (size_t i = 0; i < a.vectors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vectors[i], b.vectors[i]);
  }
}

TEST(WordVectors, DistributionalSimilarityEmerges) {
  Corpus corpus = TinyCorpus();
  WordVectorOptions opts;
  opts.dimensions = 8;
  opts.window = 2;
  WordVectors vectors = WordVectors::Train(corpus, opts);
  ASSERT_GT(vectors.dimensions(), 0u);
  // "kidney" and "renal" share contexts; "kidney" and "cough" do not.
  EXPECT_GT(vectors.Cosine("kidney", "renal"),
            vectors.Cosine("kidney", "cough"));
}

TEST(WordVectors, OovHandling) {
  Corpus corpus = TinyCorpus();
  WordVectorOptions opts;
  opts.dimensions = 8;
  WordVectors vectors = WordVectors::Train(corpus, opts);
  EXPECT_EQ(vectors.Vector("nonexistent"), nullptr);
  EXPECT_DOUBLE_EQ(vectors.Cosine("nonexistent", "kidney"), 0.0);
  EXPECT_DOUBLE_EQ(vectors.OovRate({"kidney", "zzz"}), 0.5);
}

TEST(CosineSimilarity, ZeroVectorsYieldZero) {
  double zero[3] = {0, 0, 0};
  double x[3] = {1, 0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(zero, x, 3), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(x, x, 3), 1.0);
}

TEST(Sif, EmbedsPhrasesAndScoresSimilarity) {
  Corpus corpus = TinyCorpus();
  WordVectorOptions opts;
  opts.dimensions = 8;
  opts.window = 2;
  WordVectors vectors = WordVectors::Train(corpus, opts);
  // With a tiny reference set, first-component removal is degenerate (it
  // removes the only shared direction), so score topical similarity on the
  // plain SIF weighted average; removal is exercised separately below.
  SifOptions sif_opts;
  sif_opts.remove_first_component = false;
  SifModel sif(&vectors, {}, sif_opts);
  double same_topic = sif.PhraseCosine({"kidney", "disease"},
                                       {"renal", "disease"});
  double cross_topic = sif.PhraseCosine({"kidney", "disease"},
                                        {"lung", "infection"});
  EXPECT_GT(same_topic, cross_topic);

  // Removal changes the embedding when a common component exists.
  std::vector<std::vector<std::string>> reference = {
      {"kidney", "disease"}, {"renal", "disease"}, {"lung", "infection"}};
  SifModel removed(&vectors, reference, SifOptions{});
  ASSERT_FALSE(removed.common_component().empty());
  std::vector<double> with_removal = removed.Embed({"kidney", "disease"});
  std::vector<double> without = sif.Embed({"kidney", "disease"});
  bool differs = false;
  for (size_t i = 0; i < with_removal.size(); ++i) {
    if (std::fabs(with_removal[i] - without[i]) > 1e-12) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Sif, FullyOovPhraseEmbedsToZero) {
  Corpus corpus = TinyCorpus();
  WordVectorOptions opts;
  opts.dimensions = 8;
  WordVectors vectors = WordVectors::Train(corpus, opts);
  SifModel sif(&vectors, {{"kidney"}}, SifOptions{});
  std::vector<double> v = sif.Embed({"zzz", "qqq"});
  double norm = 0.0;
  for (double x : v) norm += x * x;
  EXPECT_DOUBLE_EQ(norm, 0.0);
  EXPECT_DOUBLE_EQ(sif.PhraseCosine({"zzz"}, {"kidney"}), 0.0);
}

TEST(Sif, CommonComponentRemovalCanBeDisabled) {
  Corpus corpus = TinyCorpus();
  WordVectorOptions opts;
  opts.dimensions = 8;
  WordVectors vectors = WordVectors::Train(corpus, opts);
  SifOptions sif_opts;
  sif_opts.remove_first_component = false;
  SifModel plain(&vectors, {}, sif_opts);
  EXPECT_TRUE(plain.common_component().empty());
}

TEST(DominantDirection, FindsSharedComponent) {
  // Rows all roughly along (1, 1): the dominant direction aligns with it.
  std::vector<double> rows = {1.0, 1.0, 0.9, 1.1, 1.1, 0.9, 1.0, 0.95};
  std::vector<double> v = DominantDirection(rows, 4, 2, 50, 3);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NEAR(std::fabs(v[0]), std::sqrt(0.5), 0.05);
  EXPECT_NEAR(std::fabs(v[1]), std::sqrt(0.5), 0.05);
}

}  // namespace
}  // namespace medrelax
