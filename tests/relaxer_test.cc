// Tests of the online query relaxation (Algorithm 2): candidate retrieval
// within the radius, ranking by Equation 5, top-k materialization, dynamic
// radius growth, and the Scenario 1 flow ("pyelectasia" -> kidney disease).

#include <memory>

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/matching/name_index.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {
namespace {

// Figure 5 world with several flagged concepts at different distances.
struct RelaxWorld {
  Figure5Fixture fx;
  KnowledgeBase kb;
  InstanceId kidney_instance = kInvalidInstance;
  InstanceId hrd_instance = kInvalidInstance;
  NameIndex* index = nullptr;  // owned below
  std::unique_ptr<NameIndex> index_holder;
  std::unique_ptr<ExactMatcher> matcher;
  IngestionResult ingestion;
};

RelaxWorld MakeRelaxWorld() {
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  EXPECT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  // Add a synonym-named concept "pyelectasia" as a deep leaf near the ckd
  // chain so the Scenario 1 unknown-term flow has a resolvable query term.
  ConceptId pyelectasia = *w.fx.dag.AddConcept("pyelectasia");
  EXPECT_TRUE(
      w.fx.dag.AddSubsumption(pyelectasia, w.fx.hypertensive_nephropathy)
          .ok());

  auto onto = BuildFigure1Ontology();
  EXPECT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  w.hrd_instance =
      *w.kb.instances.AddInstance("hypertensive renal disease", finding);

  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, IngestionOptions{});
  EXPECT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);
  return w;
}

TEST(Relaxer, UnknownTermYieldsNotFound) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  auto result = relaxer.Relax("no such term at all", 0);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(Relaxer, Scenario1PyelectasiaFindsKidneyDisease) {
  RelaxWorld w = MakeRelaxWorld();
  RelaxationOptions opts;
  opts.top_k = 5;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  auto result = relaxer.Relax("pyelectasia", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->concepts.empty());
  // Both flagged concepts should be surfaced; the instances materialize.
  ASSERT_FALSE(result->instances.empty());
  bool found_kidney = false;
  for (InstanceId i : result->instances) {
    if (i == w.kidney_instance) found_kidney = true;
  }
  EXPECT_TRUE(found_kidney);
}

TEST(Relaxer, OnlyFlaggedConceptsAreReturned) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  for (const ScoredConcept& sc : outcome.concepts) {
    EXPECT_TRUE(w.ingestion.flagged[sc.concept_id])
        << w.fx.dag.name(sc.concept_id);
  }
}

TEST(Relaxer, RankingIsDescendingSimilarity) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  for (size_t i = 1; i < outcome.concepts.size(); ++i) {
    EXPECT_GE(outcome.concepts[i - 1].similarity,
              outcome.concepts[i].similarity);
  }
}

TEST(Relaxer, CloserConceptRanksHigher) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  // From the ckd leaf, hypertensive renal disease (2 up) should outrank
  // kidney disease (3 up): more specific LCS and fewer generalizations.
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_GE(outcome.concepts.size(), 2u);
  EXPECT_EQ(outcome.concepts[0].concept_id, w.fx.hypertensive_renal_disease);
  EXPECT_EQ(outcome.concepts[1].concept_id, w.fx.kidney_disease);
}

TEST(Relaxer, QueryConceptItselfIncludedWhenFlagged) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome outcome = relaxer.RelaxConcept(w.fx.kidney_disease, 0);
  ASSERT_FALSE(outcome.concepts.empty());
  // Exact match has similarity 1 and ranks first.
  EXPECT_EQ(outcome.concepts[0].concept_id, w.fx.kidney_disease);
  EXPECT_DOUBLE_EQ(outcome.concepts[0].similarity, 1.0);
}

TEST(Relaxer, FixedSmallRadiusLimitsCandidates) {
  RelaxWorld w = MakeRelaxWorld();
  RelaxationOptions opts;
  opts.radius = 1;
  opts.dynamic_radius = false;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  // Shortcut edges make kidney disease 1 hop from the ckd leaf even at
  // radius 1 — that is exactly what the customization is for.
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_EQ(outcome.effective_radius, 1u);
  EXPECT_FALSE(outcome.concepts.empty());
}

TEST(Relaxer, WithoutShortcutsSmallRadiusFindsNothing) {
  // Rebuild the world with shortcuts disabled: radius 1 now misses all
  // flagged concepts from the leaf.
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  IngestionOptions ing_opts;
  ing_opts.add_shortcut_edges = false;
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, ing_opts);
  ASSERT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);

  RelaxationOptions opts;
  opts.radius = 1;
  opts.dynamic_radius = false;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_TRUE(outcome.concepts.empty());
}

TEST(Relaxer, DynamicRadiusGrowsUntilResults) {
  // Same shortcut-free world, but dynamic growth enabled: the relaxer
  // expands r until the flagged concepts come into range.
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  IngestionOptions ing_opts;
  ing_opts.add_shortcut_edges = false;
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, ing_opts);
  ASSERT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);

  RelaxationOptions opts;
  opts.radius = 1;
  opts.dynamic_radius = true;
  opts.max_radius = 8;
  opts.top_k = 1;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_GT(outcome.effective_radius, 1u);
  ASSERT_FALSE(outcome.concepts.empty());
  EXPECT_EQ(outcome.instances[0], w.kidney_instance);
}

TEST(Relaxer, TopKStopsOnceInstancesCovered) {
  RelaxWorld w = MakeRelaxWorld();
  RelaxationOptions opts;
  opts.top_k = 1;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  // One concept suffices to cover k=1 instances.
  EXPECT_EQ(outcome.concepts.size(), 1u);
  EXPECT_EQ(outcome.instances.size(), 1u);
}

TEST(Relaxer, EditMatcherResolvesTypos) {
  RelaxWorld w = MakeRelaxWorld();
  EditDistanceMatcher edit(w.index_holder.get(), EditMatcherOptions{});
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, &edit, SimilarityOptions{},
                       RelaxationOptions{});
  // "pyelectesia" (one substitution) still resolves and relaxes.
  auto result = relaxer.Relax("pyelectesia", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->instances.empty());
}

}  // namespace
}  // namespace medrelax
