// Tests of the online query relaxation (Algorithm 2): candidate retrieval
// within the radius, ranking by Equation 5, top-k materialization, dynamic
// radius growth, and the Scenario 1 flow ("pyelectasia" -> kidney disease).

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/matching/name_index.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {
namespace {

// Figure 5 world with several flagged concepts at different distances.
struct RelaxWorld {
  Figure5Fixture fx;
  KnowledgeBase kb;
  InstanceId kidney_instance = kInvalidInstance;
  InstanceId hrd_instance = kInvalidInstance;
  NameIndex* index = nullptr;  // owned below
  std::unique_ptr<NameIndex> index_holder;
  std::unique_ptr<ExactMatcher> matcher;
  IngestionResult ingestion;
};

RelaxWorld MakeRelaxWorld() {
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  EXPECT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  // Add a synonym-named concept "pyelectasia" as a deep leaf near the ckd
  // chain so the Scenario 1 unknown-term flow has a resolvable query term.
  ConceptId pyelectasia = *w.fx.dag.AddConcept("pyelectasia");
  EXPECT_TRUE(
      w.fx.dag.AddSubsumption(pyelectasia, w.fx.hypertensive_nephropathy)
          .ok());

  auto onto = BuildFigure1Ontology();
  EXPECT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  w.hrd_instance =
      *w.kb.instances.AddInstance("hypertensive renal disease", finding);

  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, IngestionOptions{});
  EXPECT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);
  return w;
}

TEST(Relaxer, UnknownTermYieldsNotFound) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  auto result = relaxer.Relax("no such term at all", 0);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(Relaxer, Scenario1PyelectasiaFindsKidneyDisease) {
  RelaxWorld w = MakeRelaxWorld();
  RelaxationOptions opts;
  opts.top_k = 5;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  auto result = relaxer.Relax("pyelectasia", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->concepts.empty());
  // Both flagged concepts should be surfaced; the instances materialize.
  ASSERT_FALSE(result->instances.empty());
  bool found_kidney = false;
  for (InstanceId i : result->instances) {
    if (i == w.kidney_instance) found_kidney = true;
  }
  EXPECT_TRUE(found_kidney);
}

TEST(Relaxer, OnlyFlaggedConceptsAreReturned) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  for (const ScoredConcept& sc : outcome.concepts) {
    EXPECT_TRUE(w.ingestion.flagged[sc.concept_id])
        << w.fx.dag.name(sc.concept_id);
  }
}

TEST(Relaxer, RankingIsDescendingSimilarity) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  for (size_t i = 1; i < outcome.concepts.size(); ++i) {
    EXPECT_GE(outcome.concepts[i - 1].similarity,
              outcome.concepts[i].similarity);
  }
}

TEST(Relaxer, CloserConceptRanksHigher) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  // From the ckd leaf, hypertensive renal disease (2 up) should outrank
  // kidney disease (3 up): more specific LCS and fewer generalizations.
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  ASSERT_GE(outcome.concepts.size(), 2u);
  EXPECT_EQ(outcome.concepts[0].concept_id, w.fx.hypertensive_renal_disease);
  EXPECT_EQ(outcome.concepts[1].concept_id, w.fx.kidney_disease);
}

TEST(Relaxer, QueryConceptItselfIncludedWhenFlagged) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome outcome = relaxer.RelaxConcept(w.fx.kidney_disease, 0);
  ASSERT_FALSE(outcome.concepts.empty());
  // Exact match has similarity 1 and ranks first.
  EXPECT_EQ(outcome.concepts[0].concept_id, w.fx.kidney_disease);
  EXPECT_DOUBLE_EQ(outcome.concepts[0].similarity, 1.0);
}

TEST(Relaxer, FixedSmallRadiusLimitsCandidates) {
  RelaxWorld w = MakeRelaxWorld();
  RelaxationOptions opts;
  opts.radius = 2;
  opts.dynamic_radius = false;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  // The radius counts original hops even across shortcut edges, so radius
  // 2 reaches hypertensive renal disease (2 native hops up) but not
  // kidney disease (3) — with or without customization.
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_EQ(outcome.effective_radius, 2u);
  ASSERT_EQ(outcome.concepts.size(), 1u);
  EXPECT_EQ(outcome.concepts[0].concept_id, w.fx.hypertensive_renal_disease);
}

TEST(Relaxer, ShortcutsDoNotChangeCandidatesOrScores) {
  // Figure 5 regression: the radius-r ball and every similarity must be
  // identical with customization (shortcut edges) on and off — shortcuts
  // accelerate traversal, they never alter semantics.
  auto build = [](bool shortcuts) {
    RelaxWorld w;
    auto fx = BuildFigure5Fixture();
    EXPECT_TRUE(fx.ok());
    w.fx = std::move(*fx);
    auto onto = BuildFigure1Ontology();
    EXPECT_TRUE(onto.ok());
    w.kb.ontology = std::move(*onto);
    OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
    w.kidney_instance =
        *w.kb.instances.AddInstance("kidney disease", finding);
    w.hrd_instance =
        *w.kb.instances.AddInstance("hypertensive renal disease", finding);
    w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
    w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
    IngestionOptions ing_opts;
    ing_opts.add_shortcut_edges = shortcuts;
    auto ingestion =
        RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, ing_opts);
    EXPECT_TRUE(ingestion.ok());
    w.ingestion = std::move(*ingestion);
    return w;
  };
  RelaxWorld with = build(true);
  RelaxWorld without = build(false);
  for (uint32_t radius : {1u, 2u, 3u, 4u}) {
    RelaxationOptions opts;
    opts.radius = radius;
    opts.dynamic_radius = false;
    QueryRelaxer relaxer_with(&with.fx.dag, &with.ingestion,
                              with.matcher.get(), SimilarityOptions{}, opts);
    QueryRelaxer relaxer_without(&without.fx.dag, &without.ingestion,
                                 without.matcher.get(), SimilarityOptions{},
                                 opts);
    RelaxationOutcome a =
        relaxer_with.RelaxConcept(with.fx.ckd_stage1_due_to_hypertension, 0);
    RelaxationOutcome b = relaxer_without.RelaxConcept(
        without.fx.ckd_stage1_due_to_hypertension, 0);
    ASSERT_EQ(a.concepts.size(), b.concepts.size()) << "radius " << radius;
    for (size_t i = 0; i < a.concepts.size(); ++i) {
      EXPECT_EQ(a.concepts[i].concept_id, b.concepts[i].concept_id)
          << "radius " << radius;
      EXPECT_DOUBLE_EQ(a.concepts[i].similarity, b.concepts[i].similarity)
          << "radius " << radius;
    }
    EXPECT_EQ(a.instances, b.instances) << "radius " << radius;
  }
}

TEST(Relaxer, WithoutShortcutsSmallRadiusFindsNothing) {
  // Rebuild the world with shortcuts disabled: radius 1 now misses all
  // flagged concepts from the leaf.
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  IngestionOptions ing_opts;
  ing_opts.add_shortcut_edges = false;
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, ing_opts);
  ASSERT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);

  RelaxationOptions opts;
  opts.radius = 1;
  opts.dynamic_radius = false;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_TRUE(outcome.concepts.empty());
}

TEST(Relaxer, DynamicRadiusGrowsUntilResults) {
  // Same shortcut-free world, but dynamic growth enabled: the relaxer
  // expands r until the flagged concepts come into range.
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  IngestionOptions ing_opts;
  ing_opts.add_shortcut_edges = false;
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, ing_opts);
  ASSERT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);

  RelaxationOptions opts;
  opts.radius = 1;
  opts.dynamic_radius = true;
  opts.max_radius = 8;
  opts.top_k = 1;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  // kidney disease sits exactly 3 native hops above the ckd leaf, so
  // growth stops precisely at r=3 after trying r=1, 2, 3.
  EXPECT_EQ(outcome.effective_radius, 3u);
  EXPECT_EQ(outcome.stats.radius_iterations, 3u);
  ASSERT_FALSE(outcome.concepts.empty());
  EXPECT_EQ(outcome.instances[0], w.kidney_instance);
}

TEST(Relaxer, DynamicRadiusStopsAtMaxRadius) {
  // Shortcut-free world where the only flagged concept is 3 hops away but
  // max_radius caps growth at 2: the search must give up exactly there.
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  IngestionOptions ing_opts;
  ing_opts.add_shortcut_edges = false;
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, ing_opts);
  ASSERT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);

  RelaxationOptions opts;
  opts.radius = 1;
  opts.dynamic_radius = true;
  opts.max_radius = 2;
  opts.top_k = 1;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_EQ(outcome.effective_radius, 2u);
  EXPECT_EQ(outcome.stats.radius_iterations, 2u);
  EXPECT_TRUE(outcome.concepts.empty());
  EXPECT_TRUE(outcome.instances.empty());
}

TEST(Relaxer, TopKStopsOnceInstancesCovered) {
  RelaxWorld w = MakeRelaxWorld();
  RelaxationOptions opts;
  opts.top_k = 1;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  // One concept suffices to cover k=1 instances.
  EXPECT_EQ(outcome.concepts.size(), 1u);
  EXPECT_EQ(outcome.instances.size(), 1u);
}

TEST(Relaxer, InstancesTruncatedToExactlyK) {
  // kidney disease carries three KB instances (direct name + the two
  // Figure 5 synonyms); the outcome must still stop at exactly k.
  RelaxWorld w;
  auto fx = BuildFigure5Fixture();
  ASSERT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  w.kidney_instance = *w.kb.instances.AddInstance("kidney disease", finding);
  ASSERT_TRUE(w.kb.instances.AddInstance("nephropathy", finding).ok());
  ASSERT_TRUE(w.kb.instances.AddInstance("renal disease", finding).ok());
  w.hrd_instance =
      *w.kb.instances.AddInstance("hypertensive renal disease", finding);
  w.index_holder = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index_holder.get());
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);

  RelaxationOptions opts;
  opts.top_k = 2;
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, opts);
  RelaxationOutcome outcome =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  // hypertensive renal disease (1 instance) ranks first; kidney disease
  // (3 instances) fills the remaining slot — and only that slot.
  EXPECT_EQ(outcome.instances.size(), 2u);
  ASSERT_EQ(outcome.concepts.size(), 2u);
  EXPECT_EQ(outcome.concepts[0].concept_id, w.fx.hypertensive_renal_disease);
  EXPECT_EQ(outcome.concepts[1].concept_id, w.fx.kidney_disease);
  EXPECT_EQ(outcome.instances[0], w.hrd_instance);
  // The concept keeps its full instance list; only the answer is cut.
  EXPECT_EQ(outcome.concepts[1].instances.size(), 3u);
}

TEST(Relaxer, RelaxBatchMatchesSequential) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  std::vector<ConceptQuery> queries = {
      {w.fx.ckd_stage1_due_to_hypertension, 0},
      {w.fx.kidney_disease, 0},
      {w.fx.hypertensive_renal_disease, 0},
      {w.fx.hypertensive_nephropathy, 0},
      {w.fx.ckd_stage1_due_to_hypertension, 0},
  };
  std::vector<RelaxationOutcome> batch = relaxer.RelaxBatch(queries, 2);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    RelaxationOutcome seq =
        relaxer.RelaxConcept(queries[i].concept_id, queries[i].context);
    EXPECT_EQ(batch[i].query_concept, seq.query_concept);
    EXPECT_EQ(batch[i].effective_radius, seq.effective_radius);
    ASSERT_EQ(batch[i].concepts.size(), seq.concepts.size()) << "query " << i;
    for (size_t j = 0; j < seq.concepts.size(); ++j) {
      EXPECT_EQ(batch[i].concepts[j].concept_id, seq.concepts[j].concept_id);
      EXPECT_DOUBLE_EQ(batch[i].concepts[j].similarity,
                       seq.concepts[j].similarity);
    }
    EXPECT_EQ(batch[i].instances, seq.instances) << "query " << i;
  }
}

TEST(Relaxer, PreparedBatchMatchesIndividualRelaxationsAndHonorsK) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  // Mixed per-query k (0 = the configured default) and a duplicate, the
  // shape the serving layer's batch drain produces.
  std::vector<PreparedQuery> queries = {
      {w.fx.ckd_stage1_due_to_hypertension, 0, 0},
      {w.fx.ckd_stage1_due_to_hypertension, 0, 2},
      {w.fx.kidney_disease, 0, 0},
      {w.fx.ckd_stage1_due_to_hypertension, 0, 0},
  };
  std::vector<RelaxationOutcome> batch = relaxer.RelaxBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t k = queries[i].top_k != 0 ? queries[i].top_k
                                           : relaxer.options().top_k;
    RelaxationOutcome seq = relaxer.RelaxConceptWithK(
        queries[i].concept_id, queries[i].context, k);
    EXPECT_EQ(batch[i].query_concept, seq.query_concept);
    EXPECT_EQ(batch[i].effective_radius, seq.effective_radius);
    ASSERT_EQ(batch[i].concepts.size(), seq.concepts.size()) << "query " << i;
    for (size_t j = 0; j < seq.concepts.size(); ++j) {
      EXPECT_EQ(batch[i].concepts[j].concept_id, seq.concepts[j].concept_id);
      EXPECT_DOUBLE_EQ(batch[i].concepts[j].similarity,
                       seq.concepts[j].similarity);
    }
    EXPECT_EQ(batch[i].instances, seq.instances) << "query " << i;
  }
}

TEST(Relaxer, StatsReportCandidatesAndCacheTraffic) {
  RelaxWorld w = MakeRelaxWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  RelaxationOutcome first =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  // Two flagged candidates in range, neither geometry cached yet.
  EXPECT_EQ(first.stats.candidates_scanned, 2u);
  EXPECT_EQ(first.stats.geometry_cache_misses, 2u);
  EXPECT_EQ(first.stats.geometry_cache_hits, 0u);
  EXPECT_GE(first.stats.radius_iterations, 1u);
  EXPECT_GT(first.stats.neighbors_visited, 0u);
  EXPECT_GT(first.stats.total_ns, 0u);
  // The second identical query is served entirely from the cache.
  RelaxationOutcome second =
      relaxer.RelaxConcept(w.fx.ckd_stage1_due_to_hypertension, 0);
  EXPECT_EQ(second.stats.geometry_cache_hits, 2u);
  EXPECT_EQ(second.stats.geometry_cache_misses, 0u);
}

TEST(Relaxer, EditMatcherResolvesTypos) {
  RelaxWorld w = MakeRelaxWorld();
  EditDistanceMatcher edit(w.index_holder.get(), EditMatcherOptions{});
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, &edit, SimilarityOptions{},
                       RelaxationOptions{});
  // "pyelectesia" (one substitution) still resolves and relaxes.
  auto result = relaxer.Relax("pyelectesia", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->instances.empty());
}

}  // namespace
}  // namespace medrelax
