// End-to-end integration: generate a full synthetic world, train the
// embedding stack, run Algorithm 1 against the generated corpus, and check
// that the full QR configuration beats its ablations on the generated
// workload — the Table 2 ordering in miniature.

#include <memory>

#include <gtest/gtest.h>

#include "medrelax/datasets/corpus_generator.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/datasets/query_generator.h"
#include "medrelax/eval/gold_standard.h"
#include "medrelax/eval/relaxation_eval.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {
namespace {

struct Pipeline {
  GeneratedWorld world;
  Corpus corpus;
  std::unique_ptr<NameIndex> index;
  std::unique_ptr<EditDistanceMatcher> matcher;
  IngestionResult with_corpus;
  IngestionResult without_corpus;
};

std::unique_ptr<Pipeline> MakePipeline() {
  auto p = std::make_unique<Pipeline>();
  SnomedGeneratorOptions eks;
  eks.num_concepts = 800;
  eks.seed = 2020;
  KbGeneratorOptions kb;
  kb.num_drugs = 40;
  kb.num_findings = 250;  // dense coverage: the regime where ranking
                          // differences are measurable (see EXPERIMENTS.md)
  kb.seed = 2021;
  auto world = GenerateWorld(eks, kb);
  EXPECT_TRUE(world.ok()) << world.status();
  p->world = std::move(*world);
  p->corpus = GenerateMonographCorpus(p->world, CorpusGeneratorOptions{});

  p->index = std::make_unique<NameIndex>(&p->world.eks.dag);
  p->matcher = std::make_unique<EditDistanceMatcher>(p->index.get(),
                                                     EditMatcherOptions{});
  auto with = RunIngestion(p->world.kb, &p->world.eks.dag, *p->matcher,
                           &p->corpus, IngestionOptions{});
  EXPECT_TRUE(with.ok()) << with.status();
  p->with_corpus = std::move(*with);

  // The QR-no-corpus configuration shares the (already customized) DAG;
  // ingestion is idempotent on shortcut edges.
  auto without = RunIngestion(p->world.kb, &p->world.eks.dag, *p->matcher,
                              nullptr, IngestionOptions{});
  EXPECT_TRUE(without.ok());
  p->without_corpus = std::move(*without);
  return p;
}

TEST(Integration, IngestionMapsMostInstances) {
  auto p = MakePipeline();
  // Drugs and link instances never map (not in the external source), but
  // findings should map at a high rate (edit matcher handles the noise).
  size_t mapped_findings = 0;
  for (const auto& [instance, concept_id] : p->with_corpus.mappings) {
    (void)concept_id;
    if (p->world.true_link.count(instance) > 0) ++mapped_findings;
  }
  EXPECT_GT(mapped_findings, p->world.finding_instances.size() * 8 / 10);
}

TEST(Integration, MappingsMostlyAgreeWithGroundTruth) {
  auto p = MakePipeline();
  size_t correct = 0, total = 0;
  for (const auto& [instance, concept_id] : p->with_corpus.mappings) {
    auto it = p->world.true_link.find(instance);
    if (it == p->world.true_link.end()) continue;
    ++total;
    if (it->second == concept_id) ++correct;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.85);
}

TEST(Integration, ShortcutsAccelerateWithoutChangingScores) {
  auto p = MakePipeline();
  // Similarity between two flagged concepts must be identical whether or
  // not shortcut edges exist (they only change *reachability* at small
  // radii, never the similarity — Example 2's "semantic similarity ...
  // remains unchanged").
  SimilarityModel model(&p->world.eks.dag, &p->with_corpus.frequencies,
                        SimilarityOptions{});
  ASSERT_GE(p->world.kb_finding_concepts.size(), 2u);
  ConceptId a = p->world.kb_finding_concepts[0];
  ConceptId b = p->world.kb_finding_concepts[1];
  double sim_with = model.Similarity(a, b, p->world.ctx_indication);
  // Distances/paths/LCS all use native edges only, so this equals the
  // pre-shortcut value by construction; sanity-check it is a valid score.
  EXPECT_GE(sim_with, 0.0);
  EXPECT_LE(sim_with, 1.0 + 1e-9);
}

TEST(Integration, FullQrBeatsAblationsOnGeneratedWorkload) {
  auto p = MakePipeline();
  GoldStandardOptions gold_opts;
  gold_opts.max_distance = 4;
  GoldStandard gold(&p->world, gold_opts);
  RelaxationWorkloadOptions qopts;
  qopts.num_queries = 60;
  std::vector<RelaxationQuery> queries =
      GenerateRelaxationQueries(p->world, qopts);
  ASSERT_GE(queries.size(), 40u);

  RelaxationOptions ropts;
  ropts.radius = 4;
  ropts.top_k = 10;

  SimilarityOptions full;
  SimilarityOptions no_context;
  no_context.use_context = false;
  SimilarityOptions ic_only;
  ic_only.use_context = false;
  ic_only.use_path_penalty = false;

  QueryRelaxer qr(&p->world.eks.dag, &p->with_corpus, p->matcher.get(), full,
                  ropts);
  QueryRelaxer qr_no_ctx(&p->world.eks.dag, &p->with_corpus, p->matcher.get(),
                         no_context, ropts);
  QueryRelaxer qr_no_corpus(&p->world.eks.dag, &p->without_corpus,
                            p->matcher.get(), full, ropts);
  QueryRelaxer ic(&p->world.eks.dag, &p->with_corpus, p->matcher.get(),
                  ic_only, ropts);

  const std::vector<ConceptId>& pool = p->world.kb_finding_concepts;
  Table2Row r_full =
      EvaluateRanker("QR", MakeRelaxerRanker(&qr), queries, gold, pool, 10);
  Table2Row r_no_ctx = EvaluateRanker("QR-no-context",
                                      MakeRelaxerRanker(&qr_no_ctx), queries,
                                      gold, pool, 10);
  Table2Row r_no_corpus = EvaluateRanker("QR-no-corpus",
                                         MakeRelaxerRanker(&qr_no_corpus),
                                         queries, gold, pool, 10);
  Table2Row r_ic =
      EvaluateRanker("IC", MakeRelaxerRanker(&ic), queries, gold, pool, 10);

  // The paper's Table 2 ordering: QR > QR-no-context > IC, and QR beats
  // the corpus-free variant.
  EXPECT_GT(r_full.f1, r_no_ctx.f1);
  EXPECT_GT(r_full.f1, r_no_corpus.f1);
  EXPECT_GT(r_full.f1, r_ic.f1);
  EXPECT_GE(r_no_ctx.f1, r_ic.f1);
  // And the absolute level is meaningful, not degenerate.
  EXPECT_GT(r_full.f1, 40.0);
}

TEST(Integration, EndToEndTermRelaxationReturnsInstances) {
  auto p = MakePipeline();
  RelaxationOptions ropts;
  ropts.top_k = 10;
  QueryRelaxer qr(&p->world.eks.dag, &p->with_corpus, p->matcher.get(),
                  SimilarityOptions{}, ropts);
  // Pick an out-of-KB finding concept and relax its (typo'd) name.
  std::vector<bool> in_kb(p->world.eks.dag.num_concepts(), false);
  for (ConceptId c : p->world.kb_finding_concepts) in_kb[c] = true;
  for (ConceptId c : p->world.eks.finding_concepts) {
    if (in_kb[c]) continue;
    auto result =
        qr.Relax(p->world.eks.dag.name(c), p->world.ctx_indication);
    if (!result.ok()) continue;
    EXPECT_EQ(result->query_concept, c);
    if (!result->instances.empty()) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "no out-of-KB concept produced relaxed instances";
}

}  // namespace
}  // namespace medrelax
