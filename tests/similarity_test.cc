// Tests of the frequency model (Equations 1-2), the IC similarity
// (Equation 3) and the direction-weighted path penalty (Equations 4-5),
// pinned against the concrete numbers the paper prints in Figures 4 and 6.

#include <cmath>

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/graph/paths.h"
#include "medrelax/relax/frequency_model.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"
#include "medrelax/relax/similarity.h"

namespace medrelax {
namespace {

// Builds the Figure 4 frequency tables: context 0 = Indication, 1 = Risk.
Result<FrequencyModel> Figure4Frequencies(const Figure4Fixture& fx,
                                          double smoothing = 0.0) {
  std::vector<std::vector<double>> direct(
      2, std::vector<double>(fx.dag.num_concepts(), 0.0));
  for (const auto& [id, count] : fx.indication_direct_counts) {
    direct[0][id] = count;
  }
  for (const auto& [id, count] : fx.risk_direct_counts) {
    direct[1][id] = count;
  }
  return PropagateFrequencies(fx.dag, direct, fx.root, smoothing);
}

TEST(Figure4, PropagatedFrequenciesMatchThePaper) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok()) << fx.status();
  auto freq = Figure4Frequencies(*fx);
  ASSERT_TRUE(freq.ok()) << freq.status();

  // Example 1: craniofacial pain = its own 0 + headache's 18878.
  EXPECT_DOUBLE_EQ(freq->Raw(fx->craniofacial_pain, 0), 18878.0);
  // pain of head and neck region = 18878 + 283 + 3 = 19164.
  EXPECT_DOUBLE_EQ(freq->Raw(fx->pain_of_head_and_neck_region, 0), 19164.0);
  // Risk context total as printed: 1656.
  EXPECT_DOUBLE_EQ(freq->Raw(fx->pain_of_head_and_neck_region, 1), 1656.0);
}

TEST(Figure4, RootNormalizesToOneAndIcZero) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, /*smoothing=*/1.0);
  ASSERT_TRUE(freq.ok());
  EXPECT_DOUBLE_EQ(freq->Frequency(fx->root, 0), 1.0);
  EXPECT_DOUBLE_EQ(freq->Ic(fx->root, 0), 0.0);
  // Deeper concepts have strictly lower frequency and higher IC.
  EXPECT_LT(freq->Frequency(fx->headache, 0), freq->Frequency(fx->root, 0));
  // headache and craniofacial pain carry the same propagated mass (18878),
  // so their ICs tie; pain-of-head-and-neck-region (19164) is strictly
  // more frequent, hence strictly less informative.
  EXPECT_DOUBLE_EQ(freq->Ic(fx->headache, 0),
                   freq->Ic(fx->craniofacial_pain, 0));
  EXPECT_GT(freq->Ic(fx->headache, 0),
            freq->Ic(fx->pain_of_head_and_neck_region, 0));
}

TEST(Figure4, AggregatedFrequencySumsContexts) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx);
  ASSERT_TRUE(freq.ok());
  // Aggregate raw of pohnr = 19164 + 1656, normalized by the root's total.
  double ind = freq->Raw(fx->pain_of_head_and_neck_region, 0);
  double risk = freq->Raw(fx->pain_of_head_and_neck_region, 1);
  double root_total = freq->Raw(fx->root, 0) + freq->Raw(fx->root, 1);
  EXPECT_NEAR(freq->Frequency(fx->pain_of_head_and_neck_region, kNoContext),
              (ind + risk) / root_total, 1e-9);
}

TEST(Figure4, ContextChangesIc) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  // headache has different frequency mass in the two contexts, so its IC
  // differs by context — the signal QR-no-context throws away.
  EXPECT_NE(freq->Ic(fx->headache, 0), freq->Ic(fx->headache, 1));
}

TEST(SimIc, IdenticalConceptsAreMaximallySimilar) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityModel model(&fx->dag, &*freq, SimilarityOptions{});
  EXPECT_DOUBLE_EQ(model.SimIc(fx->headache, fx->headache, 0), 1.0);
}

TEST(SimIc, SiblingSimilarityUsesLcs) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityModel model(&fx->dag, &*freq, SimilarityOptions{});
  // sim_IC(craniofacial pain, pain in throat) = 2 IC(pohnr) / (IC(a)+IC(b)).
  double expected =
      2.0 * freq->Ic(fx->pain_of_head_and_neck_region, 0) /
      (freq->Ic(fx->craniofacial_pain, 0) + freq->Ic(fx->pain_in_throat, 0));
  EXPECT_NEAR(model.SimIc(fx->craniofacial_pain, fx->pain_in_throat, 0),
              expected, 1e-12);
}

TEST(SimIc, AncestorPairUsesAncestorAsLcs) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityModel model(&fx->dag, &*freq, SimilarityOptions{});
  double expected = 2.0 * freq->Ic(fx->craniofacial_pain, 0) /
                    (freq->Ic(fx->headache, 0) +
                     freq->Ic(fx->craniofacial_pain, 0));
  EXPECT_NEAR(model.SimIc(fx->headache, fx->craniofacial_pain, 0), expected,
              1e-12);
}

TEST(SimIc, MoreSpecificLcsMeansMoreSimilar) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityModel model(&fx->dag, &*freq, SimilarityOptions{});
  // headache vs frequent headache share LCS headache (specific);
  // headache vs pain in throat share LCS pohnr (general).
  EXPECT_GT(model.SimIc(fx->frequent_headache, fx->headache, 0),
            model.SimIc(fx->headache, fx->pain_in_throat, 0));
}

// --- Equation 4 / Figure 6. ---

TEST(Figure6, FourHopsBetweenPneumoniaAndLrti) {
  auto fx = BuildFigure6Fixture();
  ASSERT_TRUE(fx.ok());
  TaxonomicPath forward = ShortestTaxonomicPath(
      fx->dag, fx->pneumonia, fx->lower_respiratory_tract_infection);
  ASSERT_TRUE(forward.found);
  ASSERT_EQ(forward.length(), 4u);
  // First 3 hops generalize, the last specializes (Example 4).
  EXPECT_EQ(forward.hops[0], HopDirection::kGeneralization);
  EXPECT_EQ(forward.hops[1], HopDirection::kGeneralization);
  EXPECT_EQ(forward.hops[2], HopDirection::kGeneralization);
  EXPECT_EQ(forward.hops[3], HopDirection::kSpecialization);
}

TEST(Figure6, PathPenaltyIsDirectionAsymmetric) {
  auto fx = BuildFigure6Fixture();
  ASSERT_TRUE(fx.ok());
  std::vector<std::vector<double>> direct(
      1, std::vector<double>(fx->dag.num_concepts(), 1.0));
  auto freq = PropagateFrequencies(fx->dag, direct, fx->root, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityOptions opts;  // w_gen = 0.9, w_spec = 1.0 (the paper's values)
  SimilarityModel model(&fx->dag, &*freq, opts);

  // Forward (query = pneumonia): gen,gen,gen,spec with exponents 3,2,1,0:
  // p = 0.9^(3+2+1) = 0.9^6.
  double forward =
      model.PathPenalty(fx->pneumonia, fx->lower_respiratory_tract_infection);
  EXPECT_NEAR(forward, std::pow(0.9, 6), 1e-12);

  // Reverse (query = LRTI): one generalization with exponent 3 then three
  // specializations at weight 1: p = 0.9^3.
  double reverse =
      model.PathPenalty(fx->lower_respiratory_tract_infection, fx->pneumonia);
  EXPECT_NEAR(reverse, std::pow(0.9, 3), 1e-12);

  // The early-generalization-heavy direction is penalized more.
  EXPECT_LT(forward, reverse);
}

TEST(PathPenalty, ExponentDecreasesAlongThePath) {
  SimilarityOptions opts;
  opts.generalization_weight = 0.5;
  ConceptDag dag;
  FrequencyModel dummy(1, 1);
  SimilarityModel model(&dag, &dummy, opts);
  // One generalization in a 3-hop path: position matters.
  std::vector<HopDirection> early = {HopDirection::kGeneralization,
                                     HopDirection::kSpecialization,
                                     HopDirection::kSpecialization};
  std::vector<HopDirection> late = {HopDirection::kSpecialization,
                                    HopDirection::kSpecialization,
                                    HopDirection::kGeneralization};
  EXPECT_NEAR(model.PathPenaltyForHops(early), std::pow(0.5, 2), 1e-12);
  EXPECT_NEAR(model.PathPenaltyForHops(late), 1.0, 1e-12);  // exponent 0
  EXPECT_LT(model.PathPenaltyForHops(early), model.PathPenaltyForHops(late));
}

TEST(PathPenalty, DisabledYieldsPlainIc) {
  auto fx = BuildFigure6Fixture();
  ASSERT_TRUE(fx.ok());
  std::vector<std::vector<double>> direct(
      1, std::vector<double>(fx->dag.num_concepts(), 1.0));
  auto freq = PropagateFrequencies(fx->dag, direct, fx->root, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityOptions opts;
  opts.use_path_penalty = false;
  SimilarityModel model(&fx->dag, &*freq, opts);
  EXPECT_DOUBLE_EQ(
      model.PathPenalty(fx->pneumonia, fx->lower_respiratory_tract_infection),
      1.0);
  EXPECT_DOUBLE_EQ(
      model.Similarity(fx->pneumonia, fx->lower_respiratory_tract_infection,
                       0),
      model.SimIc(fx->pneumonia, fx->lower_respiratory_tract_infection, 0));
}

TEST(Similarity, Equation5IsProductOfPenaltyAndSimIc) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityModel model(&fx->dag, &*freq, SimilarityOptions{});
  double sim = model.Similarity(fx->headache, fx->pain_in_throat, 0);
  double expected = model.PathPenalty(fx->headache, fx->pain_in_throat) *
                    model.SimIc(fx->headache, fx->pain_in_throat, 0);
  EXPECT_DOUBLE_EQ(sim, expected);
}

TEST(Similarity, NoContextOptionAggregates) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityOptions no_ctx;
  no_ctx.use_context = false;
  SimilarityModel model(&fx->dag, &*freq, no_ctx);
  // With context disabled, both context ids give the aggregated score.
  EXPECT_DOUBLE_EQ(model.Similarity(fx->headache, fx->pain_in_throat, 0),
                   model.Similarity(fx->headache, fx->pain_in_throat, 1));
}

// Property sweep: penalties are in (0, 1] for any weights in (0, 1] and
// weaken monotonically as the generalization weight drops.
class PenaltyWeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(PenaltyWeightSweep, PenaltyBoundedAndMonotone) {
  double w = GetParam();
  ConceptDag dag;
  FrequencyModel dummy(1, 1);
  SimilarityOptions opts;
  opts.generalization_weight = w;
  SimilarityModel model(&dag, &dummy, opts);
  std::vector<HopDirection> hops = {
      HopDirection::kGeneralization, HopDirection::kGeneralization,
      HopDirection::kSpecialization, HopDirection::kGeneralization};
  double p = model.PathPenaltyForHops(hops);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);

  SimilarityOptions lower;
  lower.generalization_weight = w * 0.9;
  SimilarityModel weaker(&dag, &dummy, lower);
  EXPECT_LE(weaker.PathPenaltyForHops(hops), p);
}

INSTANTIATE_TEST_SUITE_P(Weights, PenaltyWeightSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 1.0));

// Invariant sweep: for any pair in a rooted DAG, sim_IC is symmetric and
// in [0, 1]; the full similarity is bounded and direction-aware.
TEST(SimilarityInvariants, HoldOnFigure4World) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx, 1.0);
  ASSERT_TRUE(freq.ok());
  SimilarityModel model(&fx->dag, &*freq, SimilarityOptions{});
  for (ConceptId a = 0; a < fx->dag.num_concepts(); ++a) {
    for (ConceptId b = 0; b < fx->dag.num_concepts(); ++b) {
      for (ContextId ctx : {ContextId{0}, ContextId{1}, kNoContext}) {
        double sim_ic = model.SimIc(a, b, ctx);
        EXPECT_GE(sim_ic, 0.0);
        EXPECT_LE(sim_ic, 1.0 + 1e-9);
        EXPECT_DOUBLE_EQ(sim_ic, model.SimIc(b, a, ctx)) << a << "," << b;
        double sim = model.Similarity(a, b, ctx);
        EXPECT_GE(sim, 0.0);
        EXPECT_LE(sim, 1.0 + 1e-9);
        // Equation 5 never exceeds Equation 3 (the penalty only damps).
        EXPECT_LE(sim, sim_ic + 1e-12);
      }
    }
  }
}

// The introduction's motivating case: "what drugs treat pertussis" has no
// direct KB entry; a *generalized* in-KB finding ("bronchitis") several
// hops away must still be found and ranked usefully.
TEST(IntroExample, PertussisRelaxesToBronchitis) {
  // respiratory fragment: pertussis is 3 generalization hops below
  // "bronchitis"-adjacent territory.
  ConceptDag dag;
  ConceptId root = *dag.AddConcept("snomed ct concept");
  ConceptId finding = *dag.AddConcept("clinical finding");
  ConceptId resp = *dag.AddConcept("disorder of respiratory system");
  ConceptId infection = *dag.AddConcept("respiratory tract infection");
  ConceptId lower = *dag.AddConcept("lower respiratory tract infection");
  ConceptId bronchitis = *dag.AddConcept("bronchitis");
  ConceptId bacterial = *dag.AddConcept("bacterial respiratory infection");
  ConceptId pertussis = *dag.AddConcept("pertussis");
  ASSERT_TRUE(dag.AddSynonym(pertussis, "whooping cough").ok());
  ASSERT_TRUE(dag.AddSubsumption(finding, root).ok());
  ASSERT_TRUE(dag.AddSubsumption(resp, finding).ok());
  ASSERT_TRUE(dag.AddSubsumption(infection, resp).ok());
  ASSERT_TRUE(dag.AddSubsumption(lower, infection).ok());
  ASSERT_TRUE(dag.AddSubsumption(bronchitis, lower).ok());
  ASSERT_TRUE(dag.AddSubsumption(bacterial, infection).ok());
  ASSERT_TRUE(dag.AddSubsumption(pertussis, bacterial).ok());

  // Only "bronchitis" has drug information in the KB.
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  KnowledgeBase kb;
  kb.ontology = std::move(*onto);
  OntologyConceptId finding_c = kb.ontology.FindConcept("Finding");
  InstanceId bronchitis_i =
      *kb.instances.AddInstance("bronchitis", finding_c);

  NameIndex index(&dag);
  ExactMatcher matcher(&index);
  auto ingestion =
      RunIngestion(kb, &dag, matcher, nullptr, IngestionOptions{});
  ASSERT_TRUE(ingestion.ok());
  RelaxationOptions ropts;
  // Radius counts original hops (shortcuts keep their annotated
  // distance); dynamic growth widens r=2 until k instances are covered.
  ropts.radius = 2;
  QueryRelaxer relaxer(&dag, &*ingestion, &matcher, SimilarityOptions{},
                       ropts);
  auto outcome = relaxer.Relax("pertussis", 0);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_FALSE(outcome->instances.empty());
  EXPECT_EQ(outcome->instances[0], bronchitis_i);
  // The colloquial synonym resolves too.
  auto colloquial = relaxer.Relax("whooping cough", 0);
  ASSERT_TRUE(colloquial.ok());
  EXPECT_EQ(colloquial->query_concept, pertussis);
}

// --- Bounded, activity-managed geometry memo ------------------------------
//
// StoreGeometry/CachedGeometry never consult the DAG, so these tests
// drive the memo directly with synthetic pair ids against the Figure 4
// model.

PairGeometry ConnectedGeometry() {
  PairGeometry g;
  g.connected = true;
  return g;
}

TEST(GeometryMemo, BoundedCapacityAdmitsOnSecondSightingAndSweeps) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx);
  ASSERT_TRUE(freq.ok());
  SimilarityOptions opts;
  opts.geometry_cache_capacity = 4;
  opts.geometry_cache_shards = 1;
  SimilarityModel model(&fx->dag, &*freq, opts);

  for (ConceptId from = 100; from < 104; ++from) {
    model.StoreGeometry(from, 200, ConnectedGeometry());
  }
  EXPECT_EQ(model.cached_pairs(), 4u);
  // Pairs (100..102, 200) are hot; (103, 200) is never touched again.
  for (int round = 0; round < 3; ++round) {
    for (ConceptId from = 100; from < 103; ++from) {
      EXPECT_TRUE(model.CachedGeometry(from, 200).has_value());
    }
  }

  // First sighting against the full shard: rejected.
  model.StoreGeometry(300, 200, ConnectedGeometry());
  EXPECT_EQ(model.cached_pairs(), 4u);
  EXPECT_EQ(model.geometry_admission_rejects(), 1u);
  EXPECT_FALSE(model.CachedGeometry(300, 200).has_value());

  // Second sighting: admitted; the overflow sweep evicts the cold pair.
  model.StoreGeometry(300, 200, ConnectedGeometry());
  EXPECT_TRUE(model.CachedGeometry(300, 200).has_value());
  EXPECT_GE(model.geometry_sweeps(), 1u);
  EXPECT_GE(model.geometry_evictions(), 1u);
  EXPECT_LE(model.cached_pairs(), 4u);
  EXPECT_FALSE(model.CachedGeometry(103, 200).has_value())
      << "the untouched pair should be the sweep victim";
  for (ConceptId from = 100; from < 103; ++from) {
    EXPECT_TRUE(model.CachedGeometry(from, 200).has_value())
        << "hot pair " << from << " must survive the sweep";
  }
}

TEST(GeometryMemo, LruPolicyEvictsOldestStamp) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx);
  ASSERT_TRUE(freq.ok());
  SimilarityOptions opts;
  opts.geometry_cache_capacity = 2;
  opts.geometry_cache_shards = 1;
  opts.geometry_cache_policy.eviction = CachePolicy::Eviction::kLru;
  SimilarityModel model(&fx->dag, &*freq, opts);

  model.StoreGeometry(1, 2, ConnectedGeometry());
  model.StoreGeometry(3, 4, ConnectedGeometry());
  EXPECT_TRUE(model.CachedGeometry(1, 2).has_value());  // refresh (1,2)
  // No admission filter under LRU: the overflow evicts the oldest stamp.
  model.StoreGeometry(5, 6, ConnectedGeometry());
  EXPECT_EQ(model.geometry_admission_rejects(), 0u);
  EXPECT_EQ(model.cached_pairs(), 2u);
  EXPECT_FALSE(model.CachedGeometry(3, 4).has_value());
  EXPECT_TRUE(model.CachedGeometry(1, 2).has_value());
  EXPECT_TRUE(model.CachedGeometry(5, 6).has_value());
}

TEST(GeometryMemo, ZeroCapacityIsUnbounded) {
  auto fx = BuildFigure4Fixture();
  ASSERT_TRUE(fx.ok());
  auto freq = Figure4Frequencies(*fx);
  ASSERT_TRUE(freq.ok());
  SimilarityOptions opts;
  opts.geometry_cache_capacity = 0;  // legacy unbounded memo
  opts.geometry_cache_shards = 2;
  SimilarityModel model(&fx->dag, &*freq, opts);

  for (ConceptId from = 0; from < 100; ++from) {
    model.StoreGeometry(from, 500, ConnectedGeometry());
  }
  EXPECT_EQ(model.cached_pairs(), 100u);
  EXPECT_EQ(model.geometry_sweeps(), 0u);
  EXPECT_EQ(model.geometry_admission_rejects(), 0u);
}

}  // namespace
}  // namespace medrelax
