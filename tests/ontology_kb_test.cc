// Tests of the domain ontology (TBox), context generation, and the KB
// (ABox) stores.

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/kb/conjunctive_query.h"
#include "medrelax/kb/kb_query.h"
#include "medrelax/ontology/context.h"

namespace medrelax {
namespace {

TEST(DomainOntology, Figure1Shape) {
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok()) << onto.status();
  EXPECT_EQ(onto->FindConcept("Drug") != kInvalidOntologyConcept, true);
  OntologyConceptId finding = onto->FindConcept("Finding");
  ASSERT_NE(finding, kInvalidOntologyConcept);
  // Finding is the range of two hasFinding relationships (Risk and
  // Indication) — the two contexts of the paper's running example.
  std::vector<RelationshipId> rels = onto->RelationshipsWithRange(finding);
  EXPECT_EQ(rels.size(), 2u);
}

TEST(DomainOntology, DuplicateConceptRejected) {
  DomainOntology onto;
  ASSERT_TRUE(onto.AddConcept("Drug").ok());
  EXPECT_TRUE(onto.AddConcept("Drug").status().IsAlreadyExists());
}

TEST(DomainOntology, DuplicateRelationshipTripleRejected) {
  DomainOntology onto;
  OntologyConceptId a = *onto.AddConcept("A");
  OntologyConceptId b = *onto.AddConcept("B");
  ASSERT_TRUE(onto.AddRelationship("r", a, b).ok());
  EXPECT_TRUE(onto.AddRelationship("r", a, b).status().IsAlreadyExists());
  // Same name with different endpoints is fine (Figure 1's hasFinding).
  OntologyConceptId c = *onto.AddConcept("C");
  EXPECT_TRUE(onto.AddRelationship("r", c, b).ok());
}

TEST(DomainOntology, SubConcepts) {
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  OntologyConceptId risk = onto->FindConcept("Risk");
  std::vector<OntologyConceptId> subs = onto->SubConcepts(risk);
  EXPECT_EQ(subs.size(), 3u);  // BBW, Adverse Effect, Contra Indication
  OntologyConceptId bbw = onto->FindConcept("Black Box Warning");
  std::vector<OntologyConceptId> supers = onto->SuperConcepts(bbw);
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(supers[0], risk);
}

TEST(Context, LabelFormat) {
  Context c{"Indication", "hasFinding", "Finding"};
  EXPECT_EQ(c.Label(), "Indication-hasFinding-Finding");
}

TEST(Context, GenerateContextsCoversAllRelationships) {
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  std::vector<Context> contexts = GenerateContexts(*onto);
  EXPECT_EQ(contexts.size(), onto->num_relationships());
}

TEST(ContextRegistry, InternAndLookup) {
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  ContextRegistry registry = ContextRegistry::FromOntology(*onto);
  ContextId ind = registry.FindByLabel("Indication-hasFinding-Finding");
  ASSERT_NE(ind, kNoContext);
  EXPECT_EQ(registry.context(ind).relationship, "hasFinding");
  EXPECT_EQ(registry.FindByLabel("No-such-Context"), kNoContext);
  // Interning an existing context returns the same id.
  EXPECT_EQ(registry.Intern(registry.context(ind)), ind);
}

TEST(ContextRegistry, ContextsWithRange) {
  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  ContextRegistry registry = ContextRegistry::FromOntology(*onto);
  std::vector<ContextId> finding_ctxs = registry.ContextsWithRange("Finding");
  EXPECT_EQ(finding_ctxs.size(), 2u);
}

TEST(InstanceStore, AddAndLookup) {
  InstanceStore store;
  Result<InstanceId> fever = store.AddInstance("Fever", 3);
  ASSERT_TRUE(fever.ok());
  // Lookup is normalized.
  std::vector<InstanceId> hits = store.FindByName("  FEVER ");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], *fever);
  EXPECT_EQ(store.FindByNameAndConcept("fever", 3), *fever);
  EXPECT_EQ(store.FindByNameAndConcept("fever", 4), kInvalidInstance);
}

TEST(InstanceStore, DuplicatePerConceptRejected) {
  InstanceStore store;
  ASSERT_TRUE(store.AddInstance("fever", 1).ok());
  EXPECT_TRUE(store.AddInstance("Fever", 1).status().IsAlreadyExists());
  // Same name under a different concept is allowed.
  EXPECT_TRUE(store.AddInstance("fever", 2).ok());
}

TEST(InstanceStore, RejectsEmptyAndInvalid) {
  InstanceStore store;
  EXPECT_TRUE(store.AddInstance("  ", 1).status().IsInvalidArgument());
  EXPECT_TRUE(store.AddInstance("x", kInvalidOntologyConcept)
                  .status()
                  .IsInvalidArgument());
}

TEST(TripleStore, AddQueryAndIdempotence) {
  TripleStore store;
  ASSERT_TRUE(store.AddTriple(1, 2, 3).ok());
  ASSERT_TRUE(store.AddTriple(1, 2, 4).ok());
  ASSERT_TRUE(store.AddTriple(1, 2, 3).ok());  // duplicate ignored
  EXPECT_EQ(store.num_triples(), 2u);
  std::vector<InstanceId> objs = store.Objects(1, 2);
  EXPECT_EQ(objs.size(), 2u);
  std::vector<InstanceId> subs = store.Subjects(2, 3);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], 1u);
  EXPECT_TRUE(store.Contains(1, 2, 3));
  EXPECT_FALSE(store.Contains(1, 2, 9));
  EXPECT_TRUE(store.Objects(9, 9).empty());
}

TEST(TripleStore, RejectsInvalidComponents) {
  TripleStore store;
  EXPECT_TRUE(
      store.AddTriple(kInvalidInstance, 1, 2).IsInvalidArgument());
  EXPECT_TRUE(
      store.AddTriple(1, kInvalidRelationship, 2).IsInvalidArgument());
}

// A tiny end-to-end KB: aspirin treats indication which has finding fever.
struct TinyKb {
  KnowledgeBase kb;
  InstanceId aspirin, indication, fever;
  RelationshipId treat, has_finding;
};

TinyKb MakeTinyKb() {
  TinyKb t;
  auto onto = BuildFigure1Ontology();
  t.kb.ontology = std::move(*onto);
  OntologyConceptId drug = t.kb.ontology.FindConcept("Drug");
  OntologyConceptId ind = t.kb.ontology.FindConcept("Indication");
  OntologyConceptId finding = t.kb.ontology.FindConcept("Finding");
  t.aspirin = *t.kb.instances.AddInstance("aspirin", drug);
  t.indication = *t.kb.instances.AddInstance("aspirin for fever", ind);
  t.fever = *t.kb.instances.AddInstance("fever", finding);
  for (RelationshipId r = 0; r < t.kb.ontology.num_relationships(); ++r) {
    const Relationship& rel = t.kb.ontology.relationship(r);
    if (rel.name == "treat") t.treat = r;
    if (rel.name == "hasFinding" &&
        t.kb.ontology.concept_name(rel.domain) == "Indication") {
      t.has_finding = r;
    }
  }
  EXPECT_TRUE(t.kb.triples.AddTriple(t.aspirin, t.treat, t.indication).ok());
  EXPECT_TRUE(
      t.kb.triples.AddTriple(t.indication, t.has_finding, t.fever).ok());
  return t;
}

TEST(KbQuery, ResolveContext) {
  TinyKb t = MakeTinyKb();
  KbQuery query(&t.kb);
  Context ctx{"Indication", "hasFinding", "Finding"};
  auto rel = query.ResolveContext(ctx);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*rel, t.has_finding);
  Context bad{"Indication", "nope", "Finding"};
  EXPECT_TRUE(query.ResolveContext(bad).status().IsNotFound());
}

TEST(KbQuery, SubjectsForWalksBackward) {
  TinyKb t = MakeTinyKb();
  KbQuery query(&t.kb);
  Context ctx{"Indication", "hasFinding", "Finding"};
  std::vector<InstanceId> subjects = query.SubjectsFor(ctx, t.fever);
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(subjects[0], t.indication);
}

TEST(KbQuery, FollowPathForwardAndReverse) {
  TinyKb t = MakeTinyKb();
  KbQuery query(&t.kb);
  std::vector<InstanceId> found =
      query.FollowPath({t.aspirin}, {t.treat, t.has_finding});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], t.fever);
  std::vector<InstanceId> back =
      query.FollowPathReverse({t.fever}, {t.has_finding, t.treat});
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], t.aspirin);
}

TEST(KbQuery, DrugsForFinding) {
  TinyKb t = MakeTinyKb();
  KbQuery query(&t.kb);
  auto drugs = query.DrugsForFinding("treat", "hasFinding", t.fever);
  ASSERT_TRUE(drugs.ok());
  ASSERT_EQ(drugs->size(), 1u);
  EXPECT_EQ((*drugs)[0], t.aspirin);
  EXPECT_TRUE(
      query.DrugsForFinding("treat", "hasFinding", kInvalidInstance)
          .status()
          .IsInvalidArgument());
}

TEST(ConjunctiveQuery, TwoHopChainBindsAnswer) {
  TinyKb t = MakeTinyKb();
  ConjunctiveQueryEvaluator evaluator(&t.kb);
  // ?drug -treat-> ?indication -hasFinding-> ?finding, ?finding = fever.
  ConjunctiveQuery cq;
  cq.patterns.push_back({"drug", t.treat, "indication"});
  cq.patterns.push_back({"indication", t.has_finding, "finding"});
  cq.var_groundings["finding"] = {t.fever};
  cq.answer_var = "drug";
  auto result = evaluator.Evaluate(cq);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], t.aspirin);
}

TEST(ConjunctiveQuery, UnsatisfiableGroundingYieldsEmpty) {
  TinyKb t = MakeTinyKb();
  // A finding with no hasFinding assertions.
  OntologyConceptId finding = t.kb.ontology.FindConcept("Finding");
  InstanceId lonely = *t.kb.instances.AddInstance("lonely", finding);
  ConjunctiveQueryEvaluator evaluator(&t.kb);
  ConjunctiveQuery cq;
  cq.patterns.push_back({"drug", t.treat, "indication"});
  cq.patterns.push_back({"indication", t.has_finding, "finding"});
  cq.var_groundings["finding"] = {lonely};
  cq.answer_var = "drug";
  auto result = evaluator.Evaluate(cq);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ConjunctiveQuery, TypeConstraintFiltersGrounding) {
  TinyKb t = MakeTinyKb();
  ConjunctiveQueryEvaluator evaluator(&t.kb);
  ConjunctiveQuery cq;
  cq.answer_var = "x";
  cq.var_groundings["x"] = {t.fever, t.aspirin};
  cq.var_types["x"] = t.kb.ontology.FindConcept("Finding");
  auto result = evaluator.Evaluate(cq);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], t.fever);
}

TEST(ConjunctiveQuery, RejectsMalformedQueries) {
  TinyKb t = MakeTinyKb();
  ConjunctiveQueryEvaluator evaluator(&t.kb);
  ConjunctiveQuery no_answer;
  EXPECT_TRUE(evaluator.Evaluate(no_answer).status().IsInvalidArgument());
  ConjunctiveQuery unconstrained;
  unconstrained.answer_var = "x";
  EXPECT_TRUE(
      evaluator.Evaluate(unconstrained).status().IsInvalidArgument());
  ConjunctiveQuery bad_rel;
  bad_rel.answer_var = "a";
  bad_rel.patterns.push_back({"a", 9999, "b"});
  EXPECT_TRUE(evaluator.Evaluate(bad_rel).status().IsInvalidArgument());
}

TEST(ConjunctiveQuery, UntypedVariableDrawsFromPatternEndpoints) {
  TinyKb t = MakeTinyKb();
  ConjunctiveQueryEvaluator evaluator(&t.kb);
  // ?drug -treat-> ?i : untyped ?drug is still constrained by the pattern.
  ConjunctiveQuery cq;
  cq.patterns.push_back({"drug", t.treat, "i"});
  cq.answer_var = "drug";
  auto result = evaluator.Evaluate(cq);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], t.aspirin);
}

}  // namespace
}  // namespace medrelax
