// Tests of the NLI layer: training-data bootstrap, intent classification,
// entity extraction, the conversational scenarios of Figures 7/8, and the
// NLQ interpreter of Section 6.2 / Figure 9.

#include <memory>

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/nli/dialogue_manager.h"
#include "medrelax/nli/entity_extractor.h"
#include "medrelax/nli/intent_classifier.h"
#include "medrelax/nli/nlq_interpreter.h"
#include "medrelax/nli/training_data.h"
#include "medrelax/relax/feedback.h"
#include "medrelax/relax/ingestion.h"

namespace medrelax {
namespace {

// The Figure 7/9 world: Figure 5's external DAG (with "pyelectasia" leaf)
// over the Figure 1 ontology, aspirin treating kidney disease.
struct NliWorld {
  Figure5Fixture fx;
  ConceptId pyelectasia = kInvalidConcept;
  KnowledgeBase kb;
  InstanceId aspirin = kInvalidInstance;
  InstanceId indication = kInvalidInstance;
  InstanceId risk = kInvalidInstance;
  InstanceId kidney = kInvalidInstance;
  ContextRegistry contexts;
  ContextId ctx_indication = kNoContext;
  ContextId ctx_risk = kNoContext;
  std::unique_ptr<NameIndex> index;
  std::unique_ptr<ExactMatcher> exact;
  std::unique_ptr<EditDistanceMatcher> edit;
  IngestionResult ingestion;
  IntentClassifier intents;
  std::unique_ptr<EntityExtractor> entities;
  std::unique_ptr<QueryRelaxer> relaxer;
};

std::unique_ptr<NliWorld> MakeNliWorld() {
  auto w = std::make_unique<NliWorld>();
  auto fx = BuildFigure5Fixture();
  EXPECT_TRUE(fx.ok());
  w->fx = std::move(*fx);
  w->pyelectasia = *w->fx.dag.AddConcept("pyelectasia");
  EXPECT_TRUE(
      w->fx.dag.AddSubsumption(w->pyelectasia, w->fx.hypertensive_nephropathy)
          .ok());

  auto onto = BuildFigure1Ontology();
  EXPECT_TRUE(onto.ok());
  w->kb.ontology = std::move(*onto);
  OntologyConceptId drug = w->kb.ontology.FindConcept("Drug");
  OntologyConceptId ind = w->kb.ontology.FindConcept("Indication");
  OntologyConceptId risk_c = w->kb.ontology.FindConcept("Risk");
  OntologyConceptId finding = w->kb.ontology.FindConcept("Finding");
  w->aspirin = *w->kb.instances.AddInstance("aspirin", drug);
  w->indication = *w->kb.instances.AddInstance("renal indication", ind);
  w->risk = *w->kb.instances.AddInstance("renal risk", risk_c);
  w->kidney = *w->kb.instances.AddInstance("kidney disease", finding);
  // A second flagged finding so relaxation rankings have something to
  // reorder (used by the feedback tests).
  EXPECT_TRUE(
      w->kb.instances.AddInstance("hypertensive renal disease", finding)
          .ok());

  RelationshipId treat = kInvalidRelationship, cause = kInvalidRelationship;
  RelationshipId ind_has = kInvalidRelationship,
                 risk_has = kInvalidRelationship;
  for (RelationshipId r = 0; r < w->kb.ontology.num_relationships(); ++r) {
    const Relationship& rel = w->kb.ontology.relationship(r);
    const std::string& dn = w->kb.ontology.concept_name(rel.domain);
    if (rel.name == "treat") treat = r;
    if (rel.name == "cause") cause = r;
    if (rel.name == "hasFinding" && dn == "Indication") ind_has = r;
    if (rel.name == "hasFinding" && dn == "Risk") risk_has = r;
  }
  EXPECT_TRUE(w->kb.triples.AddTriple(w->aspirin, treat, w->indication).ok());
  EXPECT_TRUE(
      w->kb.triples.AddTriple(w->indication, ind_has, w->kidney).ok());
  EXPECT_TRUE(w->kb.triples.AddTriple(w->aspirin, cause, w->risk).ok());
  EXPECT_TRUE(w->kb.triples.AddTriple(w->risk, risk_has, w->kidney).ok());

  w->index = std::make_unique<NameIndex>(&w->fx.dag);
  w->exact = std::make_unique<ExactMatcher>(w->index.get());
  w->edit =
      std::make_unique<EditDistanceMatcher>(w->index.get(),
                                            EditMatcherOptions{});
  auto ingestion =
      RunIngestion(w->kb, &w->fx.dag, *w->exact, nullptr, IngestionOptions{});
  EXPECT_TRUE(ingestion.ok());
  w->ingestion = std::move(*ingestion);
  w->contexts = ContextRegistry::FromOntology(w->kb.ontology);
  w->ctx_indication =
      w->contexts.FindByLabel("Indication-hasFinding-Finding");
  w->ctx_risk = w->contexts.FindByLabel("Risk-hasFinding-Finding");

  TrainingDataOptions td;
  td.examples_per_context = 30;
  std::vector<LabeledQuery> training =
      GenerateContextTrainingData(w->kb, w->contexts, td);
  w->intents.Train(training, w->contexts.size());

  w->entities = std::make_unique<EntityExtractor>(
      &w->kb, BuildQueryVocabulary(w->kb.ontology));

  RelaxationOptions ropts;
  ropts.top_k = 5;
  w->relaxer = std::make_unique<QueryRelaxer>(
      &w->fx.dag, &w->ingestion, w->edit.get(), SimilarityOptions{}, ropts);
  return w;
}

TEST(TrainingData, GeneratesLabeledExamplesPerContext) {
  auto w = MakeNliWorld();
  TrainingDataOptions td;
  td.examples_per_context = 10;
  std::vector<LabeledQuery> data =
      GenerateContextTrainingData(w->kb, w->contexts, td);
  // Every context gets its base quota; the two headline finding contexts
  // get canonical-workload enrichment on top.
  EXPECT_GE(data.size(), w->contexts.size() * 10);
  EXPECT_EQ(data.size(), w->contexts.size() * 10 + 2 * 10);
  for (const LabeledQuery& q : data) {
    EXPECT_FALSE(q.text.empty());
    EXPECT_LT(q.context, w->contexts.size());
  }
}

TEST(IntentClassifier, LearnsTreatVsCause) {
  auto w = MakeNliWorld();
  // Drug-phrased finding questions carry the hasFinding intents
  // (Section 4's canonical workload): treat -> Indication side, cause ->
  // Risk side.
  IntentPrediction treat = w->intents.Classify("what drugs treat fever");
  EXPECT_EQ(w->contexts.context(treat.context).Label(),
            "Indication-hasFinding-Finding");
  IntentPrediction cause = w->intents.Classify("what drugs cause fever");
  EXPECT_EQ(w->contexts.context(cause.context).Label(),
            "Risk-hasFinding-Finding");
}

TEST(IntentClassifier, PosteriorSumsToOne) {
  auto w = MakeNliWorld();
  std::vector<double> post = w->intents.Posterior("what drugs treat fever");
  ASSERT_EQ(post.size(), w->contexts.size());
  double total = 0.0;
  for (double p : post) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(IntentClassifier, UntrainedReturnsNoContext) {
  IntentClassifier fresh;
  IntentPrediction p = fresh.Classify("anything");
  EXPECT_EQ(p.context, kNoContext);
}

TEST(EntityExtractor, FindsKnownInstance) {
  auto w = MakeNliWorld();
  std::vector<EntityMention> mentions =
      w->entities->Extract("what drugs treat kidney disease");
  bool found = false;
  for (const EntityMention& m : mentions) {
    if (m.instance == w->kidney) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EntityExtractor, EmitsUnknownSpans) {
  auto w = MakeNliWorld();
  std::vector<EntityMention> mentions =
      w->entities->Extract("what drugs treat pyelectasia");
  bool unknown = false;
  for (const EntityMention& m : mentions) {
    if (m.instance == kInvalidInstance && m.surface == "pyelectasia") {
      unknown = true;
    }
  }
  EXPECT_TRUE(unknown);
}

TEST(EntityExtractor, JoinsContiguousUnknownTokens) {
  auto w = MakeNliWorld();
  std::vector<EntityMention> mentions =
      w->entities->Extract("what drugs treat psychogenic fever");
  bool joined = false;
  for (const EntityMention& m : mentions) {
    if (m.instance == kInvalidInstance && m.surface == "psychogenic fever") {
      joined = true;
    }
  }
  EXPECT_TRUE(joined);
}

TEST(Dialogue, Scenario1UnknownTermIsRepaired) {
  auto w = MakeNliWorld();
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), w->relaxer.get(),
                           DialogueOptions{});
  DialogueResponse r = dialogue.Handle("what drugs treat pyelectasia");
  EXPECT_TRUE(r.used_relaxation);
  ASSERT_FALSE(r.surfaced_concepts.empty());
  // kidney disease must be among the repaired suggestions (Figure 7).
  bool kidney = false;
  for (ConceptId c : r.surfaced_concepts) {
    if (c == w->fx.kidney_disease) kidney = true;
  }
  EXPECT_TRUE(kidney);
  EXPECT_NE(r.text.find("kidney disease"), std::string::npos);
}

TEST(Dialogue, Scenario1WithoutQrSaysIDontUnderstand) {
  auto w = MakeNliWorld();
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), /*relaxer=*/nullptr,
                           DialogueOptions{});
  DialogueResponse r = dialogue.Handle("what drugs treat pyelectasia");
  EXPECT_FALSE(r.used_relaxation);
  EXPECT_TRUE(r.surfaced_concepts.empty());
  EXPECT_NE(r.text.find("I don't understand"), std::string::npos);
}

TEST(Dialogue, Scenario2KnownTermIsExpandedAndAnswered) {
  auto w = MakeNliWorld();
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), w->relaxer.get(),
                           DialogueOptions{});
  DialogueResponse r = dialogue.Handle("what drugs treat kidney disease");
  ASSERT_FALSE(r.answers.empty());
  EXPECT_EQ(r.answers[0], w->aspirin);
  // The known term's mapped concept is surfaced.
  ASSERT_FALSE(r.surfaced_concepts.empty());
  EXPECT_EQ(r.surfaced_concepts[0], w->fx.kidney_disease);
}

TEST(Dialogue, ContextCarryOverOnShortFollowUp) {
  auto w = MakeNliWorld();
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), w->relaxer.get(),
                           DialogueOptions{});
  DialogueResponse first = dialogue.Handle("which drugs treat kidney disease");
  ContextId treat_ctx = first.context;
  // "what about pyelectasia?" carries the treat context forward
  // (Section 4, Context management).
  DialogueResponse followup = dialogue.Handle("what about pyelectasia");
  EXPECT_EQ(followup.context, treat_ctx);
  dialogue.Reset();
  EXPECT_EQ(dialogue.previous_context(), kNoContext);
}

TEST(Nlq, EvidenceGenerationCoversMetadataAndDataValues) {
  auto w = MakeNliWorld();
  NlqInterpreter nlq(&w->kb, &w->ingestion, w->relaxer.get());
  std::vector<TokenEvidence> evidence =
      nlq.GenerateEvidence("what are the risks caused by aspirin");
  bool metadata_concept = false, data_value = false;
  for (const TokenEvidence& te : evidence) {
    for (const Evidence& e : te.evidences) {
      if (e.kind == EvidenceKind::kConceptMetadata) metadata_concept = true;
      if (e.kind == EvidenceKind::kDataValue) data_value = true;
    }
  }
  EXPECT_TRUE(metadata_concept);  // "risks" -> Risk
  EXPECT_TRUE(data_value);        // "aspirin" -> instance
}

TEST(Nlq, UnknownTermYieldsRelaxedEvidence) {
  auto w = MakeNliWorld();
  NlqInterpreter nlq(&w->kb, &w->ingestion, w->relaxer.get());
  std::vector<TokenEvidence> evidence =
      nlq.GenerateEvidence("risks caused by aspirin with pyelectasia");
  bool relaxed = false;
  for (const TokenEvidence& te : evidence) {
    for (const Evidence& e : te.evidences) {
      if (e.kind == EvidenceKind::kRelaxedDataValue) {
        relaxed = true;
        EXPECT_GT(e.score, 0.0);
        EXPECT_LE(e.score, 1.0);
      }
    }
  }
  EXPECT_TRUE(relaxed);
}

TEST(Nlq, WithoutRelaxerUnknownTermsProduceNoEvidence) {
  auto w = MakeNliWorld();
  NlqInterpreter nlq(&w->kb, &w->ingestion, /*relaxer=*/nullptr);
  std::vector<TokenEvidence> evidence =
      nlq.GenerateEvidence("what about pyelectasia");
  for (const TokenEvidence& te : evidence) {
    EXPECT_NE(te.surface, "pyelectasia");
  }
}

TEST(Nlq, InterpretationsAreRankedByCompactness) {
  auto w = MakeNliWorld();
  NlqInterpreter nlq(&w->kb, &w->ingestion, w->relaxer.get());
  std::vector<Interpretation> interps =
      nlq.Interpret("what are the risks caused by using aspirin with "
                    "pyelectasia",
                    5);
  ASSERT_FALSE(interps.empty());
  for (size_t i = 1; i < interps.size(); ++i) {
    EXPECT_LE(interps[i - 1].compactness, interps[i].compactness);
  }
  // The top interpretation must include the cause relationship (Figure 9's
  // Drug -cause-> Risk -hasFinding-> Finding reading).
  bool has_cause = false;
  for (RelationshipId r : interps[0].tree_edges) {
    if (w->kb.ontology.relationship(r).name == "cause") has_cause = true;
  }
  EXPECT_TRUE(has_cause);
  EXPECT_FALSE(interps[0].Describe(w->kb.ontology).empty());
}

TEST(Dialogue, FeedbackRerankingInfluencesSuggestions) {
  auto w = MakeNliWorld();
  FeedbackRelaxer feedback(w->relaxer.get(), &w->fx.dag, FeedbackOptions{});
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), w->relaxer.get(),
                           DialogueOptions{});
  dialogue.set_feedback(&feedback);

  DialogueResponse first = dialogue.Handle("what drugs treat pyelectasia");
  ASSERT_GE(first.surfaced_concepts.size(), 2u);
  ConceptId top = first.surfaced_concepts[0];

  // The user dismisses the top suggestion twice; it should drop.
  dialogue.RejectSuggestion(top);
  dialogue.RejectSuggestion(top);
  DialogueResponse second = dialogue.Handle("what drugs treat pyelectasia");
  ASSERT_FALSE(second.surfaced_concepts.empty());
  EXPECT_NE(second.surfaced_concepts[0], top);
}

TEST(Dialogue, FeedbackIsNoOpWithoutAttachedLayer) {
  auto w = MakeNliWorld();
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), w->relaxer.get(),
                           DialogueOptions{});
  DialogueResponse first = dialogue.Handle("what drugs treat pyelectasia");
  ASSERT_FALSE(first.surfaced_concepts.empty());
  dialogue.RejectSuggestion(first.surfaced_concepts[0]);  // must not crash
  DialogueResponse second = dialogue.Handle("what drugs treat pyelectasia");
  EXPECT_EQ(first.surfaced_concepts, second.surfaced_concepts);
}

TEST(Dialogue, FullFigure7FlowEndsWithDirectAnswer) {
  auto w = MakeNliWorld();
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), w->relaxer.get(),
                           DialogueOptions{});
  // Turn 1: unknown term -> repaired with suggestions.
  DialogueResponse repaired = dialogue.Handle("what drugs treat pyelectasia");
  ASSERT_TRUE(repaired.used_relaxation);
  ASSERT_FALSE(repaired.surfaced_concepts.empty());
  // Turn 2: the user picks a suggestion by name ("kidney disease") — a
  // known instance now, answered directly with the drugs (Figure 7's
  // continuation).
  DialogueResponse direct = dialogue.Handle("tell me about kidney disease");
  ASSERT_FALSE(direct.answers.empty());
  EXPECT_EQ(direct.answers[0], w->aspirin);
}

TEST(Dialogue, SuggestionCapIsRespected) {
  auto w = MakeNliWorld();
  DialogueOptions opts;
  opts.max_suggestions = 1;
  DialogueManager dialogue(&w->kb, &w->ingestion, &w->intents,
                           w->entities.get(), w->relaxer.get(), opts);
  DialogueResponse r = dialogue.Handle("what drugs treat pyelectasia");
  EXPECT_LE(r.surfaced_concepts.size(), 1u);
}

TEST(Nlq, ExecuteAnswersTheFigure9Query) {
  auto w = MakeNliWorld();
  NlqInterpreter nlq(&w->kb, &w->ingestion, w->relaxer.get());
  std::vector<Interpretation> interps =
      nlq.Interpret("what are the risks caused by using aspirin with "
                    "pyelectasia",
                    3);
  ASSERT_FALSE(interps.empty());
  // The best-scored grounding may have no KB links (a relaxed value with
  // no assertions); the executor falls through to the next reading.
  auto answer = nlq.ExecuteFirstNonEmpty(interps);
  ASSERT_TRUE(answer.ok()) << answer.status();
  // The question asks for risks: the answer concept is Risk and the only
  // instance surviving the joins is aspirin's renal risk.
  EXPECT_EQ(answer->answer_concept, w->kb.ontology.FindConcept("Risk"));
  ASSERT_EQ(answer->instances.size(), 1u);
  EXPECT_EQ(answer->instances[0], w->risk);
}

TEST(Nlq, ExecuteEnforcesGroundings) {
  auto w = MakeNliWorld();
  // Add a second drug with its own risk that has no finding link; it must
  // not survive a query grounded in aspirin.
  OntologyConceptId drug = w->kb.ontology.FindConcept("Drug");
  OntologyConceptId risk_c = w->kb.ontology.FindConcept("Risk");
  InstanceId other_drug = *w->kb.instances.AddInstance("tamoxitol", drug);
  InstanceId other_risk =
      *w->kb.instances.AddInstance("hepatic risk", risk_c);
  RelationshipId cause = kInvalidRelationship;
  for (RelationshipId r = 0; r < w->kb.ontology.num_relationships(); ++r) {
    if (w->kb.ontology.relationship(r).name == "cause") cause = r;
  }
  ASSERT_TRUE(w->kb.triples.AddTriple(other_drug, cause, other_risk).ok());

  NlqInterpreter nlq(&w->kb, &w->ingestion, w->relaxer.get());
  std::vector<Interpretation> interps =
      nlq.Interpret("what are the risks caused by aspirin", 3);
  ASSERT_FALSE(interps.empty());
  auto answer = nlq.Execute(interps[0]);
  ASSERT_TRUE(answer.ok()) << answer.status();
  for (InstanceId i : answer->instances) {
    EXPECT_NE(i, other_risk) << "ungrounded risk leaked into the answer";
  }
}

TEST(Nlq, ExecuteRejectsEmptyInterpretation) {
  auto w = MakeNliWorld();
  NlqInterpreter nlq(&w->kb, &w->ingestion, w->relaxer.get());
  Interpretation empty;
  EXPECT_TRUE(nlq.Execute(empty).status().IsInvalidArgument());
}

}  // namespace
}  // namespace medrelax
