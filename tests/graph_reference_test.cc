// Property tests of the graph algorithms against brute-force reference
// implementations on random small DAGs: shortest up-distances
// (Floyd-Warshall oracle), ancestors, LCS (direct spec transcription), and
// taxonomic path lengths. Any divergence between the optimized library
// code and the obvious-but-slow definitions fails here.

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/common/random.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/graph/geometry.h"
#include "medrelax/graph/lcs.h"
#include "medrelax/graph/paths.h"
#include "medrelax/graph/traversal.h"

namespace medrelax {
namespace {

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();

// Random rooted DAG: node 0 is the root; every other node gets 1-3 parents
// with strictly smaller index (acyclic by construction).
ConceptDag RandomDag(size_t n, uint64_t seed) {
  Rng rng(seed);
  ConceptDag dag;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(dag.AddConcept("n" + std::to_string(i)).ok());
  }
  for (ConceptId i = 1; i < n; ++i) {
    size_t parents = 1 + rng.UniformU64(3);
    for (size_t p = 0; p < parents; ++p) {
      ConceptId parent = static_cast<ConceptId>(rng.UniformU64(i));
      Status st = dag.AddSubsumption(i, parent);  // duplicate edges refused
      (void)st;
    }
  }
  return dag;
}

// Floyd-Warshall over the child->parent (upward) edges.
std::vector<std::vector<uint32_t>> RefUpDistances(const ConceptDag& dag) {
  const size_t n = dag.num_concepts();
  std::vector<std::vector<uint32_t>> d(n, std::vector<uint32_t>(n, kInf));
  for (ConceptId i = 0; i < n; ++i) {
    d[i][i] = 0;
    for (const DagEdge& e : dag.parents(i)) {
      if (!e.is_shortcut) d[i][e.target] = 1;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (d[i][k] == kInf) continue;
      for (size_t j = 0; j < n; ++j) {
        if (d[k][j] == kInf) continue;
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

class GraphReferenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphReferenceSweep, UpDistancesMatchFloydWarshall) {
  ConceptDag dag = RandomDag(22, GetParam());
  auto ref = RefUpDistances(dag);
  for (ConceptId a = 0; a < dag.num_concepts(); ++a) {
    std::vector<uint32_t> got = UpDistances(dag, a);
    for (ConceptId b = 0; b < dag.num_concepts(); ++b) {
      EXPECT_EQ(got[b], ref[a][b]) << "up(" << a << ", " << b << ")";
    }
  }
}

TEST_P(GraphReferenceSweep, AncestorsMatchReachability) {
  ConceptDag dag = RandomDag(20, GetParam() + 100);
  auto ref = RefUpDistances(dag);
  for (ConceptId a = 0; a < dag.num_concepts(); ++a) {
    std::vector<ConceptId> anc = Ancestors(dag, a);
    std::sort(anc.begin(), anc.end());
    std::vector<ConceptId> expected;
    for (ConceptId b = 0; b < dag.num_concepts(); ++b) {
      if (b != a && ref[a][b] != kInf) expected.push_back(b);
    }
    EXPECT_EQ(anc, expected) << "ancestors of " << a;
  }
}

TEST_P(GraphReferenceSweep, TaxonomicPathLengthMatchesMinOverApexes) {
  ConceptDag dag = RandomDag(18, GetParam() + 200);
  auto ref = RefUpDistances(dag);
  const size_t n = dag.num_concepts();
  for (ConceptId a = 0; a < n; ++a) {
    for (ConceptId b = 0; b < n; ++b) {
      uint32_t best = kInf;
      for (ConceptId c = 0; c < n; ++c) {
        if (ref[a][c] == kInf || ref[b][c] == kInf) continue;
        best = std::min(best, ref[a][c] + ref[b][c]);
      }
      TaxonomicPath path = ShortestTaxonomicPath(dag, a, b);
      if (best == kInf) {
        EXPECT_FALSE(path.found);
      } else {
        ASSERT_TRUE(path.found) << a << " -> " << b;
        EXPECT_EQ(path.length(), best) << a << " -> " << b;
        // The apex must actually subsume both ends at the claimed split.
        uint32_t up_a = 0, down_b = 0;
        for (HopDirection h : path.hops) {
          if (h == HopDirection::kGeneralization) {
            ++up_a;
          } else {
            ++down_b;
          }
        }
        EXPECT_EQ(ref[a][path.apex], up_a);
        EXPECT_EQ(ref[b][path.apex], down_b);
      }
    }
  }
}

TEST_P(GraphReferenceSweep, LcsMatchesSpecTranscription) {
  ConceptDag dag = RandomDag(16, GetParam() + 300);
  auto ref = RefUpDistances(dag);
  const size_t n = dag.num_concepts();
  for (ConceptId a = 0; a < n; ++a) {
    for (ConceptId b = 0; b < n; ++b) {
      // Reference: common reflexive subsumers, keep the minimal ones (no
      // native child is also common), then the shortest combined distance.
      auto common = [&](ConceptId c) {
        return ref[a][c] != kInf && ref[b][c] != kInf;
      };
      std::vector<ConceptId> minimal;
      for (ConceptId c = 0; c < n; ++c) {
        if (!common(c)) continue;
        bool is_minimal = true;
        for (const DagEdge& e : dag.children(c)) {
          if (!e.is_shortcut && common(e.target)) {
            is_minimal = false;
            break;
          }
        }
        if (is_minimal) minimal.push_back(c);
      }
      uint32_t best = kInf;
      for (ConceptId c : minimal) best = std::min(best, ref[a][c] + ref[b][c]);
      std::vector<ConceptId> expected;
      for (ConceptId c : minimal) {
        if (ref[a][c] + ref[b][c] == best) expected.push_back(c);
      }

      LcsResult got = LeastCommonSubsumers(dag, a, b);
      std::vector<ConceptId> got_sorted = got.concepts;
      std::sort(got_sorted.begin(), got_sorted.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(got_sorted, expected) << "lcs(" << a << ", " << b << ")";
      if (!expected.empty()) {
        EXPECT_EQ(got.combined_distance, best);
      }
    }
  }
}

TEST_P(GraphReferenceSweep, NeighborsHopsMatchUndirectedBfs) {
  ConceptDag dag = RandomDag(20, GetParam() + 400);
  const size_t n = dag.num_concepts();
  // Reference undirected BFS.
  for (ConceptId start = 0; start < n; ++start) {
    std::vector<uint32_t> ref_hops(n, kInf);
    ref_hops[start] = 0;
    std::vector<ConceptId> queue = {start};
    for (size_t head = 0; head < queue.size(); ++head) {
      ConceptId u = queue[head];
      auto visit = [&](ConceptId v) {
        if (ref_hops[v] == kInf) {
          ref_hops[v] = ref_hops[u] + 1;
          queue.push_back(v);
        }
      };
      for (const DagEdge& e : dag.parents(u)) visit(e.target);
      for (const DagEdge& e : dag.children(u)) visit(e.target);
    }
    const uint32_t radius = 3;
    std::vector<Neighbor> got = NeighborsWithinRadius(dag, start, radius);
    std::vector<std::pair<ConceptId, uint32_t>> got_sorted;
    for (const Neighbor& nb : got) got_sorted.emplace_back(nb.id, nb.hops);
    std::sort(got_sorted.begin(), got_sorted.end());
    std::vector<std::pair<ConceptId, uint32_t>> expected;
    for (ConceptId v = 0; v < n; ++v) {
      if (v != start && ref_hops[v] <= radius) {
        expected.emplace_back(v, ref_hops[v]);
      }
    }
    EXPECT_EQ(got_sorted, expected) << "neighbors of " << start;
  }
}

TEST_P(GraphReferenceSweep, NeighborsUnchangedByShortcuts) {
  // Shortcut edges carry their original distance, so materializing them
  // must leave every radius-bounded search result untouched.
  ConceptDag dag = RandomDag(20, GetParam() + 500);
  const size_t n = dag.num_concepts();
  const uint32_t radius = 3;
  std::vector<std::vector<Neighbor>> before(n);
  for (ConceptId start = 0; start < n; ++start) {
    before[start] = NeighborsWithinRadius(dag, start, radius);
  }
  // Materialize a shortcut for every strictly-transitive up-distance <= 4
  // (the Algorithm 1 customization, exhaustively).
  auto ref = RefUpDistances(dag);
  for (ConceptId a = 0; a < n; ++a) {
    for (ConceptId c = 0; c < n; ++c) {
      if (ref[a][c] != kInf && ref[a][c] >= 2 && ref[a][c] <= 4) {
        ASSERT_TRUE(dag.AddShortcut(a, c, ref[a][c]).ok());
      }
    }
  }
  for (ConceptId start = 0; start < n; ++start) {
    std::vector<Neighbor> after = NeighborsWithinRadius(dag, start, radius);
    auto sorted = [](std::vector<Neighbor> v) {
      std::vector<std::pair<ConceptId, uint32_t>> out;
      for (const Neighbor& nb : v) out.emplace_back(nb.id, nb.hops);
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(sorted(before[start]), sorted(after))
        << "neighbors of " << start << " changed by shortcuts";
  }
}

TEST_P(GraphReferenceSweep, GeometryEngineMatchesNaiveFormulation) {
  // The shared-frontier engine must reproduce, pair for pair, what the
  // naive formulation (ShortestTaxonomicPath + Equation 4 loop +
  // LeastCommonSubsumers) computes — including on customized graphs.
  ConceptDag dag = RandomDag(18, GetParam() + 600);
  const size_t n = dag.num_concepts();
  auto ref = RefUpDistances(dag);
  for (ConceptId a = 0; a < n; ++a) {
    for (ConceptId c = 0; c < n; ++c) {
      if (ref[a][c] != kInf && ref[a][c] >= 2 && ref[a][c] <= 3) {
        ASSERT_TRUE(dag.AddShortcut(a, c, ref[a][c]).ok());
      }
    }
  }
  GeometryEngine engine(&dag);
  for (ConceptId a = 0; a < n; ++a) {
    engine.SetSource(a);
    for (ConceptId b = 0; b < n; ++b) {
      PairGeometry got = engine.Compute(b);

      TaxonomicPath path = ShortestTaxonomicPath(dag, a, b);
      EXPECT_EQ(got.connected, path.found) << a << " -> " << b;
      if (!path.found) continue;
      double gen = 0.0, spec = 0.0;
      const double d = static_cast<double>(path.hops.size());
      for (size_t i = 0; i < path.hops.size(); ++i) {
        double exponent = d - static_cast<double>(i + 1);
        if (path.hops[i] == HopDirection::kGeneralization) {
          gen += exponent;
        } else {
          spec += exponent;
        }
      }
      EXPECT_DOUBLE_EQ(got.gen_exponent, gen) << a << " -> " << b;
      EXPECT_DOUBLE_EQ(got.spec_exponent, spec) << a << " -> " << b;

      LcsResult lcs = LeastCommonSubsumers(dag, a, b);
      std::sort(lcs.concepts.begin(), lcs.concepts.end());
      EXPECT_EQ(got.lcs, lcs.concepts) << "lcs(" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphReferenceSweep,
                         ::testing::Values(11, 23, 57, 91, 1234, 777));

}  // namespace
}  // namespace medrelax
