// Tests of multi-source merging: disjoint union, cross-source
// unification by surface form, cycle rejection, and ingestion over a
// merged external source.

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/graph/merge.h"
#include "medrelax/graph/topology.h"
#include "medrelax/graph/traversal.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {
namespace {

TEST(Merge, DisjointSourcesUnionUnderFreshRoot) {
  auto fig5 = BuildFigure5Fixture();
  auto fig6 = BuildFigure6Fixture();
  ASSERT_TRUE(fig5.ok());
  ASSERT_TRUE(fig6.ok());
  // Both fixtures name their root "snomed ct concept": unified — so the
  // merged graph keeps a single source-root layer under the fresh root.
  auto merged = MergeExternalSources(fig5->dag, fig6->dag, MergeOptions{});
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_TRUE(ValidateExternalSource(merged->dag).ok());
  // Every concept of both sources is reachable from the merged root.
  std::vector<uint32_t> down = DownDistances(merged->dag, merged->root);
  for (ConceptId id : merged->from_a) {
    EXPECT_NE(down[id], UINT32_MAX);
  }
  for (ConceptId id : merged->from_b) {
    EXPECT_NE(down[id], UINT32_MAX);
  }
  // The shared root name unified.
  EXPECT_GE(merged->unified, 1u);
  EXPECT_EQ(merged->from_a[fig5->root], merged->from_b[fig6->root]);
}

TEST(Merge, UnifiesBySynonymAndMergesParents) {
  // Source A: root <- kidney disease (synonym "nephropathy").
  ConceptDag a;
  ConceptId a_root = *a.AddConcept("root a");
  ConceptId a_kidney = *a.AddConcept("kidney disease");
  ASSERT_TRUE(a.AddSynonym(a_kidney, "nephropathy").ok());
  ASSERT_TRUE(a.AddSubsumption(a_kidney, a_root).ok());

  // Source B names the same thing "nephropathy" under its own parent.
  ConceptDag b;
  ConceptId b_root = *b.AddConcept("root b");
  ConceptId b_organ = *b.AddConcept("organ disorder");
  ConceptId b_kidney = *b.AddConcept("nephropathy");
  ASSERT_TRUE(b.AddSynonym(b_kidney, "renal disorder").ok());
  ASSERT_TRUE(b.AddSubsumption(b_organ, b_root).ok());
  ASSERT_TRUE(b.AddSubsumption(b_kidney, b_organ).ok());

  auto merged = MergeExternalSources(a, b, MergeOptions{});
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->unified, 1u);
  ConceptId unified = merged->from_a[a_kidney];
  EXPECT_EQ(merged->from_b[b_kidney], unified);
  // The unified concept inherits B's extra synonym and has parents from
  // both hierarchies.
  bool has_renal_disorder = false;
  for (const std::string& syn : merged->dag.synonyms(unified)) {
    if (syn == "renal disorder") has_renal_disorder = true;
  }
  EXPECT_TRUE(has_renal_disorder);
  EXPECT_EQ(merged->dag.parents(unified).size(), 2u);
}

TEST(Merge, NoUnificationDisambiguatesCollisions) {
  ConceptDag a;
  ConceptId a_root = *a.AddConcept("root");
  ConceptId a_x = *a.AddConcept("fever");
  ASSERT_TRUE(a.AddSubsumption(a_x, a_root).ok());
  ConceptDag b;
  ConceptId b_root = *b.AddConcept("root");
  ConceptId b_x = *b.AddConcept("fever");
  ASSERT_TRUE(b.AddSubsumption(b_x, b_root).ok());

  MergeOptions opts;
  opts.unify_by_name = false;
  auto merged = MergeExternalSources(a, b, opts);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->unified, 0u);
  EXPECT_NE(merged->from_a[a_x], merged->from_b[b_x]);
  EXPECT_EQ(merged->dag.name(merged->from_b[b_x]), "fever (source b)");
}

TEST(Merge, RejectsContradictoryHierarchies) {
  // A says x ⊑ y; B says y ⊑ x — unification makes a cycle.
  ConceptDag a;
  ConceptId a_root = *a.AddConcept("root");
  ConceptId a_y = *a.AddConcept("y");
  ConceptId a_x = *a.AddConcept("x");
  ASSERT_TRUE(a.AddSubsumption(a_y, a_root).ok());
  ASSERT_TRUE(a.AddSubsumption(a_x, a_y).ok());
  ConceptDag b;
  ConceptId b_root = *b.AddConcept("root");
  ConceptId b_x = *b.AddConcept("x");
  ConceptId b_y = *b.AddConcept("y");
  ASSERT_TRUE(b.AddSubsumption(b_x, b_root).ok());
  ASSERT_TRUE(b.AddSubsumption(b_y, b_x).ok());

  auto merged = MergeExternalSources(a, b, MergeOptions{});
  EXPECT_TRUE(merged.status().IsFailedPrecondition()) << merged.status();
}

TEST(Merge, IngestionAndRelaxationRunOverMergedSource) {
  // Figure 5's renal fragment merged with the pertussis-style respiratory
  // fragment of Figure 6; KB has one finding from each source.
  auto fig5 = BuildFigure5Fixture();
  auto fig6 = BuildFigure6Fixture();
  ASSERT_TRUE(fig5.ok());
  ASSERT_TRUE(fig6.ok());
  auto merged = MergeExternalSources(fig5->dag, fig6->dag, MergeOptions{});
  ASSERT_TRUE(merged.ok());

  auto onto = BuildFigure1Ontology();
  ASSERT_TRUE(onto.ok());
  KnowledgeBase kb;
  kb.ontology = std::move(*onto);
  OntologyConceptId finding = kb.ontology.FindConcept("Finding");
  InstanceId kidney = *kb.instances.AddInstance("kidney disease", finding);
  InstanceId pneumonia = *kb.instances.AddInstance("pneumonia", finding);

  NameIndex index(&merged->dag);
  ExactMatcher matcher(&index);
  auto ingestion = RunIngestion(kb, &merged->dag, matcher, nullptr,
                                IngestionOptions{});
  ASSERT_TRUE(ingestion.ok()) << ingestion.status();

  QueryRelaxer relaxer(&merged->dag, &*ingestion, &matcher,
                       SimilarityOptions{}, RelaxationOptions{});
  // A renal query finds the renal finding first, not the respiratory one.
  auto renal = relaxer.Relax(
      "chronic kidney disease stage 1 due to hypertension", 0);
  ASSERT_TRUE(renal.ok()) << renal.status();
  ASSERT_FALSE(renal->instances.empty());
  EXPECT_EQ(renal->instances[0], kidney);
  // And a respiratory query finds pneumonia.
  auto resp = relaxer.Relax("lower respiratory tract infection", 0);
  ASSERT_TRUE(resp.ok());
  ASSERT_FALSE(resp->instances.empty());
  EXPECT_EQ(resp->instances[0], pneumonia);
}

}  // namespace
}  // namespace medrelax
