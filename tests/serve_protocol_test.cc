// Tests of the pure protocol-parsing layer (serve/protocol.h): the
// numeric options must be overflow-checked (the strtoul predecessor
// silently wrapped k=99999999999999999999 into a small request), option
// recognition must stop at the first term token, and the error texts
// must stay exactly what the golden transcripts pin after "err ".

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "medrelax/serve/protocol.h"

namespace medrelax::serve {
namespace {

TEST(ParseVerbTest, RecognizesEveryDocumentedVerb) {
  EXPECT_EQ(ParseVerb("RELAX"), Verb::kRelax);
  EXPECT_EQ(ParseVerb("CONTEXTS"), Verb::kContexts);
  EXPECT_EQ(ParseVerb("GEN"), Verb::kGen);
  EXPECT_EQ(ParseVerb("RELOAD"), Verb::kReload);
  EXPECT_EQ(ParseVerb("STATS"), Verb::kStats);
  EXPECT_EQ(ParseVerb("QUIT"), Verb::kQuit);
}

TEST(ParseVerbTest, IsCaseSensitiveAndStrict) {
  EXPECT_EQ(ParseVerb("relax"), Verb::kUnknown);
  EXPECT_EQ(ParseVerb("Relax"), Verb::kUnknown);
  EXPECT_EQ(ParseVerb(""), Verb::kUnknown);
  EXPECT_EQ(ParseVerb("RELAXX"), Verb::kUnknown);
}

TEST(ParseProtocolCountTest, ParsesPlainDecimals) {
  Result<uint64_t> value = ParseProtocolCount("0", "k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0u);
  value = ParseProtocolCount("42", "k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42u);
  // The exact maximum fits; one more does not.
  value = ParseProtocolCount("18446744073709551615", "k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, ~uint64_t{0});
}

TEST(ParseProtocolCountTest, RejectsOverflowWithATypedError) {
  Result<uint64_t> value = ParseProtocolCount("18446744073709551616", "k");
  ASSERT_FALSE(value.ok());
  EXPECT_TRUE(value.status().IsInvalidArgument()) << value.status();
  EXPECT_EQ(value.status().message(),
            "k=18446744073709551616 does not fit in 64 bits");
  // The classic strtoul-wrapping probe from the golden transcript.
  value = ParseProtocolCount("99999999999999999999", "k");
  ASSERT_FALSE(value.ok());
  EXPECT_TRUE(value.status().IsInvalidArgument()) << value.status();
  EXPECT_EQ(value.status().message(),
            "k=99999999999999999999 does not fit in 64 bits");
}

TEST(ParseProtocolCountTest, RejectsEmptySignsAndJunk) {
  for (const char* bad : {"", "-1", "+1", " 1", "1x", "0x10", "1.5"}) {
    Result<uint64_t> value = ParseProtocolCount(bad, "k");
    ASSERT_FALSE(value.ok()) << "'" << bad << "' parsed";
    EXPECT_TRUE(value.status().IsInvalidArgument()) << value.status();
  }
}

TEST(ParseRelaxArgsTest, ParsesOptionsAndTerm) {
  Result<RelaxLine> line =
      ParseRelaxArgs(" k=3 timeout_ms=250 ctx=a|b|c disorder of kidney");
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(line->top_k, 3u);
  EXPECT_EQ(line->timeout_ms, 250u);
  EXPECT_TRUE(line->has_context);
  EXPECT_EQ(line->context_label, "a|b|c");
  EXPECT_EQ(line->term, "disorder of kidney");
}

TEST(ParseRelaxArgsTest, NormalizesTermWhitespace) {
  Result<RelaxLine> line = ParseRelaxArgs("  chronic \t kidney  disease ");
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(line->term, "chronic kidney disease");
  EXPECT_EQ(line->top_k, 0u);
  EXPECT_EQ(line->timeout_ms, 0u);
  EXPECT_FALSE(line->has_context);
}

TEST(ParseRelaxArgsTest, OptionsAfterTheFirstTermTokenAreLiteral) {
  // `k=` inside a term is part of the term — options only before it.
  Result<RelaxLine> line = ParseRelaxArgs("foo k=2 ctx=x");
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(line->top_k, 0u);
  EXPECT_FALSE(line->has_context);
  EXPECT_EQ(line->term, "foo k=2 ctx=x");
}

TEST(ParseRelaxArgsTest, RejectsMissingTerm) {
  Result<RelaxLine> line = ParseRelaxArgs("   ");
  ASSERT_FALSE(line.ok());
  EXPECT_TRUE(line.status().IsInvalidArgument()) << line.status();
  EXPECT_EQ(line.status().message(), "RELAX needs a term");

  line = ParseRelaxArgs("k=5 ctx=a|b|c");
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().message(), "RELAX needs a term");
}

TEST(ParseRelaxArgsTest, RejectsExplicitKZero) {
  Result<RelaxLine> line = ParseRelaxArgs("k=0 renal failure");
  ASSERT_FALSE(line.ok());
  EXPECT_TRUE(line.status().IsInvalidArgument()) << line.status();
  EXPECT_EQ(line.status().message(),
            "k must be positive (omit k= for the snapshot default)");
}

TEST(ParseRelaxArgsTest, RejectsOverflowingK) {
  Result<RelaxLine> line =
      ParseRelaxArgs("k=99999999999999999999 renal failure");
  ASSERT_FALSE(line.ok());
  EXPECT_TRUE(line.status().IsInvalidArgument()) << line.status();
  EXPECT_EQ(line.status().message(),
            "k=99999999999999999999 does not fit in 64 bits");
}

TEST(ParseRelaxArgsTest, CapsTimeoutAtTwentyFourHours) {
  Result<RelaxLine> line =
      ParseRelaxArgs("timeout_ms=86400000 renal failure");
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(line->timeout_ms, kMaxTimeoutMs);

  line = ParseRelaxArgs("timeout_ms=86400001 renal failure");
  ASSERT_FALSE(line.ok());
  EXPECT_TRUE(line.status().IsInvalidArgument()) << line.status();
  EXPECT_EQ(line.status().message(), "timeout_ms must be at most 86400000");
}

}  // namespace
}  // namespace medrelax::serve
