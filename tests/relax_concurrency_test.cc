// Concurrency tests of the online relaxation stack: one SimilarityModel /
// QueryRelaxer instance serving overlapping queries from many threads.
// Run under the tsan preset, these pin the thread-safety contract of the
// shared geometry cache and RelaxBatch.

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/matching/name_index.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {
namespace {

struct ConcurrencyWorld {
  Figure5Fixture fx;
  KnowledgeBase kb;
  std::unique_ptr<NameIndex> index;
  std::unique_ptr<ExactMatcher> matcher;
  IngestionResult ingestion;
};

ConcurrencyWorld MakeWorld() {
  ConcurrencyWorld w;
  auto fx = BuildFigure5Fixture();
  EXPECT_TRUE(fx.ok());
  w.fx = std::move(*fx);
  auto onto = BuildFigure1Ontology();
  EXPECT_TRUE(onto.ok());
  w.kb.ontology = std::move(*onto);
  OntologyConceptId finding = w.kb.ontology.FindConcept("Finding");
  EXPECT_TRUE(w.kb.instances.AddInstance("kidney disease", finding).ok());
  EXPECT_TRUE(
      w.kb.instances.AddInstance("hypertensive renal disease", finding).ok());
  w.index = std::make_unique<NameIndex>(&w.fx.dag);
  w.matcher = std::make_unique<ExactMatcher>(w.index.get());
  auto ingestion =
      RunIngestion(w.kb, &w.fx.dag, *w.matcher, nullptr, IngestionOptions{});
  EXPECT_TRUE(ingestion.ok());
  w.ingestion = std::move(*ingestion);
  return w;
}

TEST(Concurrency, ConcurrentSimilarityCallsShareTheCache) {
  ConcurrencyWorld w = MakeWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  const SimilarityModel& model = relaxer.similarity();
  ConceptId query = w.fx.ckd_stage1_due_to_hypertension;
  double expected_kidney = model.Similarity(query, w.fx.kidney_disease, 0);
  double expected_hrd =
      model.Similarity(query, w.fx.hypertensive_renal_disease, 0);

  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kIterations; ++i) {
        // Alternate pairs so threads race on both reads and inserts.
        double kidney = model.Similarity(query, w.fx.kidney_disease, 0);
        double hrd =
            model.Similarity(query, w.fx.hypertensive_renal_disease, 0);
        if (kidney != expected_kidney || hrd != expected_hrd) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST(Concurrency, ParallelRelaxBatchMatchesSequential) {
  ConcurrencyWorld w = MakeWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  std::vector<ConceptQuery> queries;
  const std::vector<ConceptId> rotation = {
      w.fx.ckd_stage1_due_to_hypertension, w.fx.kidney_disease,
      w.fx.hypertensive_renal_disease, w.fx.hypertensive_nephropathy};
  for (size_t i = 0; i < 64; ++i) {
    queries.push_back({rotation[i % rotation.size()], 0});
  }
  std::vector<RelaxationOutcome> parallel = relaxer.RelaxBatch(queries, 4);
  std::vector<RelaxationOutcome> sequential = relaxer.RelaxBatch(queries, 1);
  ASSERT_EQ(parallel.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(parallel[i].concepts.size(), sequential[i].concepts.size())
        << "query " << i;
    for (size_t j = 0; j < parallel[i].concepts.size(); ++j) {
      EXPECT_EQ(parallel[i].concepts[j].concept_id,
                sequential[i].concepts[j].concept_id);
      EXPECT_DOUBLE_EQ(parallel[i].concepts[j].similarity,
                       sequential[i].concepts[j].similarity);
    }
    EXPECT_EQ(parallel[i].instances, sequential[i].instances) << "query " << i;
  }
}

TEST(Concurrency, ConcurrentBatchesOnOneRelaxer) {
  ConcurrencyWorld w = MakeWorld();
  QueryRelaxer relaxer(&w.fx.dag, &w.ingestion, w.matcher.get(),
                       SimilarityOptions{}, RelaxationOptions{});
  std::vector<ConceptQuery> queries = {
      {w.fx.ckd_stage1_due_to_hypertension, 0},
      {w.fx.kidney_disease, 0},
      {w.fx.hypertensive_renal_disease, 0},
  };
  RelaxationOutcome expected = relaxer.RelaxConcept(queries[0].concept_id, 0);

  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < 20; ++i) {
        std::vector<RelaxationOutcome> got = relaxer.RelaxBatch(queries, 2);
        if (got[0].concepts.size() != expected.concepts.size() ||
            got[0].instances != expected.instances) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace medrelax
