// Tests of the evaluation harness: metrics, gold standard, mapping and
// relaxation evaluators, and the simulated user study protocol.

#include <algorithm>

#include <gtest/gtest.h>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/eval/gold_standard.h"
#include "medrelax/eval/mapping_eval.h"
#include "medrelax/eval/metrics.h"
#include "medrelax/eval/relaxation_eval.h"
#include "medrelax/eval/user_study.h"

namespace medrelax {
namespace {

TEST(Metrics, F1IsHarmonicMean) {
  EXPECT_DOUBLE_EQ(F1(100.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(F1(0.0, 100.0), 0.0);
  EXPECT_NEAR(F1(100.0, 83.33), 90.90, 0.05);
}

TEST(Metrics, PrCounter) {
  PrCounter c;
  c.AddTruePositive(8);
  c.AddFalsePositive(2);
  c.AddFalseNegative(2);
  PrF1 scores = c.Compute();
  EXPECT_DOUBLE_EQ(scores.precision, 80.0);
  EXPECT_DOUBLE_EQ(scores.recall, 80.0);
  EXPECT_DOUBLE_EQ(scores.f1, 80.0);
}

TEST(Metrics, PrCounterEmptyIsZero) {
  PrCounter c;
  PrF1 scores = c.Compute();
  EXPECT_DOUBLE_EQ(scores.precision, 0.0);
  EXPECT_DOUBLE_EQ(scores.recall, 0.0);
  EXPECT_DOUBLE_EQ(scores.f1, 0.0);
}

TEST(Metrics, PrecisionAtK) {
  std::vector<bool> ranked = {true, false, true, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, 1), 100.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, 2), 50.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, 5), 60.0);
  // k beyond the list: use what exists.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, 10), 60.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 10), 0.0);
}

TEST(Metrics, RecallAtK) {
  std::vector<bool> ranked = {true, false, true};
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, 3, 4), 50.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, 1, 4), 25.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, 3, 0), 0.0);
}

TEST(Metrics, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

struct EvalWorld {
  GeneratedWorld world;
};

EvalWorld MakeEvalWorld() {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 500;
  eks.seed = 321;
  KbGeneratorOptions kb;
  kb.num_drugs = 20;
  kb.num_findings = 60;
  kb.seed = 654;
  auto world = GenerateWorld(eks, kb);
  EXPECT_TRUE(world.ok());
  EvalWorld w;
  w.world = std::move(*world);
  return w;
}

TEST(GoldStandard, SelfIsRelevantWhenParticipating) {
  EvalWorld w = MakeEvalWorld();
  GoldStandard gold(&w.world, GoldStandardOptions{});
  for (ConceptId c : w.world.kb_finding_concepts) {
    uint8_t mask = w.world.participation[c];
    if (mask & kParticipatesTreat) {
      EXPECT_TRUE(gold.IsRelevant(c, w.world.ctx_indication, c));
    } else {
      EXPECT_FALSE(gold.IsRelevant(c, w.world.ctx_indication, c));
    }
  }
}

TEST(GoldStandard, DistanceBallLimitsRelevance) {
  EvalWorld w = MakeEvalWorld();
  GoldStandardOptions opts;
  opts.max_distance = 0;
  opts.require_context_participation = false;
  GoldStandard strict(&w.world, opts);
  ConceptId c = w.world.kb_finding_concepts[0];
  ConceptId other = w.world.kb_finding_concepts[1];
  EXPECT_TRUE(strict.IsRelevant(c, kNoContext, c));
  if (other != c) {
    EXPECT_FALSE(strict.IsRelevant(c, kNoContext, other));
  }
  // A larger ball only adds relevant items.
  GoldStandardOptions loose_opts;
  loose_opts.max_distance = 6;
  loose_opts.require_context_participation = false;
  GoldStandard loose(&w.world, loose_opts);
  size_t strict_count =
      strict.CountRelevant(c, kNoContext, w.world.kb_finding_concepts);
  size_t loose_count =
      loose.CountRelevant(c, kNoContext, w.world.kb_finding_concepts);
  EXPECT_GE(loose_count, strict_count);
}

TEST(GoldStandard, ContextParticipationFilters) {
  EvalWorld w = MakeEvalWorld();
  GoldStandard gold(&w.world, GoldStandardOptions{});
  // Find a treat-only concept: relevant under indication, not under risk.
  for (ConceptId c : w.world.kb_finding_concepts) {
    uint8_t mask = w.world.participation[c];
    if (mask == kParticipatesTreat) {
      EXPECT_TRUE(gold.IsRelevant(c, w.world.ctx_indication, c));
      EXPECT_FALSE(gold.IsRelevant(c, w.world.ctx_risk, c));
      return;
    }
  }
  GTEST_SKIP() << "no treat-only concept in this seed";
}

TEST(MappingEval, PerfectMapperScoresHundred) {
  EvalWorld w = MakeEvalWorld();
  // An oracle mapper backed by the generator's links: build queries whose
  // surfaces are exact names, then check the evaluator's arithmetic.
  class Oracle : public MappingFunction {
   public:
    explicit Oracle(const GeneratedEks* eks) : eks_(eks) {}
    std::string name() const override { return "ORACLE"; }
    std::optional<ConceptMatch> Map(std::string_view term) const override {
      ConceptId id = eks_->dag.FindByName(std::string(term));
      if (id == kInvalidConcept) return std::nullopt;
      return ConceptMatch{id, 1.0};
    }
   private:
    const GeneratedEks* eks_;
  };
  Oracle oracle(&w.world.eks);
  std::vector<MappingQuery> queries;
  for (size_t i = 0; i < 10; ++i) {
    ConceptId c = w.world.eks.finding_concepts[i * 3];
    queries.push_back({w.world.eks.dag.name(c), c, SurfaceNoise::kExactName});
  }
  MappingEvalRow row = EvaluateMappingMethod(oracle, queries);
  EXPECT_DOUBLE_EQ(row.scores.precision, 100.0);
  EXPECT_DOUBLE_EQ(row.scores.recall, 100.0);
  EXPECT_EQ(row.answered, queries.size());
}

TEST(MappingEval, AbstentionsHurtRecallNotPrecision) {
  class Mute : public MappingFunction {
   public:
    std::string name() const override { return "MUTE"; }
    std::optional<ConceptMatch> Map(std::string_view) const override {
      return std::nullopt;
    }
  };
  Mute mute;
  std::vector<MappingQuery> queries = {
      {"x", 1, SurfaceNoise::kExactName},
      {"y", 2, SurfaceNoise::kExactName},
  };
  MappingEvalRow row = EvaluateMappingMethod(mute, queries);
  EXPECT_DOUBLE_EQ(row.scores.precision, 0.0);
  EXPECT_DOUBLE_EQ(row.scores.recall, 0.0);
  EXPECT_EQ(row.answered, 0u);
}

TEST(RelaxationEval, OracleRankerBeatsReversedOracle) {
  EvalWorld w = MakeEvalWorld();
  GoldStandard gold(&w.world, GoldStandardOptions{});
  RelaxationWorkloadOptions qopts;
  qopts.num_queries = 30;
  std::vector<RelaxationQuery> queries =
      GenerateRelaxationQueries(w.world, qopts);
  ASSERT_FALSE(queries.empty());

  const std::vector<ConceptId>& pool = w.world.kb_finding_concepts;
  // The oracle returns exactly the relevant candidates (what a perfect
  // top-k system would surface); the adversary returns only irrelevant
  // ones.
  ConceptRanker oracle = [&](const RelaxationQuery& q) {
    std::vector<ConceptId> relevant;
    for (ConceptId c : pool) {
      if (gold.IsRelevant(q.concept_id, q.context, c)) relevant.push_back(c);
    }
    return relevant;
  };
  ConceptRanker anti = [&](const RelaxationQuery& q) {
    std::vector<ConceptId> irrelevant;
    for (ConceptId c : pool) {
      if (!gold.IsRelevant(q.concept_id, q.context, c)) {
        irrelevant.push_back(c);
      }
    }
    return irrelevant;
  };
  Table2Row good = EvaluateRanker("oracle", oracle, queries, gold, pool, 10);
  Table2Row bad = EvaluateRanker("anti", anti, queries, gold, pool, 10);
  EXPECT_GT(good.p_at_10, bad.p_at_10);
  EXPECT_GT(good.r_at_10, bad.r_at_10);
  EXPECT_GT(good.f1, 90.0);  // the oracle is nearly perfect by construction
}

TEST(UserStudy, PerfectSystemOutscoresBrokenSystem) {
  EvalWorld w = MakeEvalWorld();
  GoldStandard gold(&w.world, GoldStandardOptions{});
  UserStudyOptions opts;
  opts.participants = 4;
  opts.t1_questions_per_participant = 8;
  opts.t2_questions_per_participant = 4;
  opts.picky_deduction_rate = 0.0;
  opts.very_picky_deduction_rate = 0.0;
  // Perfect system: always surfaces the gold concept.
  ConversationalAnswerFn perfect =
      [](const NlQuestion& q, const std::string&) {
        return std::vector<ConceptId>{q.concept_id};
      };
  ConversationalAnswerFn broken =
      [](const NlQuestion&, const std::string&) {
        return std::vector<ConceptId>{};
      };
  UserStudyResult high = RunUserStudy(w.world, gold, perfect, opts);
  UserStudyResult low = RunUserStudy(w.world, gold, broken, opts);
  EXPECT_GT(high.t1.average, low.t1.average);
  EXPECT_GT(high.t2.average, low.t2.average);
  EXPECT_GT(high.t1.average, 4.0);
  EXPECT_LT(low.t1.average, 2.0);
  // Percentages sum to ~100.
  double sum = 0.0;
  for (double p : high.t1.pct) sum += p;
  EXPECT_NEAR(sum, 100.0, 1e-6);
}

TEST(UserStudy, GradesAreDeterministicInSeed) {
  EvalWorld w = MakeEvalWorld();
  GoldStandard gold(&w.world, GoldStandardOptions{});
  UserStudyOptions opts;
  opts.participants = 2;
  opts.t1_questions_per_participant = 5;
  opts.t2_questions_per_participant = 3;
  ConversationalAnswerFn system = [](const NlQuestion& q,
                                     const std::string&) {
    return std::vector<ConceptId>{q.concept_id};
  };
  UserStudyResult a = RunUserStudy(w.world, gold, system, opts);
  UserStudyResult b = RunUserStudy(w.world, gold, system, opts);
  EXPECT_DOUBLE_EQ(a.t1.average, b.t1.average);
  EXPECT_DOUBLE_EQ(a.t2.average, b.t2.average);
}

}  // namespace
}  // namespace medrelax
