// Framing and lifecycle tests of net/, driven two ways:
//
//  * socketpair harness — one end is a Connection on a RunOnce()-pumped
//    EventLoop, the other end is the test playing client: partial-line
//    reassembly, pipelined commands in one segment, oversized-line
//    rejection, EOF flush of a trailing unterminated line, Pause/Resume
//    ordering, slow-reader backpressure, abrupt disconnect.
//
//  * real loopback LineServer — accept, greeting, echo roundtrip, the
//    connection cap, and (for the tsan preset) connection churn from
//    several client threads racing cross-thread Post()s against the
//    loop thread.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/net/connection.h"
#include "medrelax/net/event_loop.h"
#include "medrelax/net/line_server.h"
#include "medrelax/serve/service_stats.h"

namespace medrelax {
namespace net {
namespace {

/// Records everything a Connection hands its handler; optionally pauses
/// the connection after a designated line (the async-RELAX pattern).
class RecordingHandler : public Connection::Handler {
 public:
  void OnLine(Connection& conn, std::string line) override {
    lines.push_back(line);
    if (!pause_after.empty() && line == pause_after) conn.Pause();
  }
  void OnClose(Connection&, const Status& reason) override {
    closed = true;
    close_reason = reason;
  }

  std::vector<std::string> lines;
  std::string pause_after;
  bool closed = false;
  Status close_reason;
};

/// A Connection wired to one end of a socketpair; the test drives the
/// other end. Pump() drains every ready event without blocking.
class ConnHarness {
 public:
  explicit ConnHarness(ConnectionLimits limits = ConnectionLimits{}) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            0, fds));
    client_fd_ = fds[0];
    conn_ = std::make_unique<Connection>(loop_, fds[1], /*id=*/1, limits,
                                         &handler_);
    EXPECT_TRUE(conn_->Start().ok());
  }

  ~ConnHarness() {
    if (client_fd_ >= 0) close(client_fd_);
  }

  void Pump() {
    while (loop_.RunOnce(/*timeout_ms=*/0) > 0) {
    }
  }

  void ClientSend(const std::string& data) {
    // The connection may already have hung up (oversize/backpressure
    // tests); EPIPE is part of the scenario, not a test failure.
    (void)send(client_fd_, data.data(), data.size(), MSG_NOSIGNAL);
  }

  std::string ClientDrain() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = recv(client_fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;  // EAGAIN (nonblocking) or EOF both end the drain
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  /// True once the client end has seen EOF (server closed).
  bool ClientSawEof() {
    char c;
    const ssize_t n = recv(client_fd_, &c, 1, MSG_PEEK);
    return n == 0;
  }

  /// Half-close: the server sees EOF on its next read.
  void ShutdownClientWrite() { shutdown(client_fd_, SHUT_WR); }

  /// Full abrupt hangup.
  void CloseClient() {
    close(client_fd_);
    client_fd_ = -1;
  }

  EventLoop& loop() { return loop_; }
  Connection& conn() { return *conn_; }
  RecordingHandler& handler() { return handler_; }

 private:
  EventLoop loop_;
  RecordingHandler handler_;
  std::unique_ptr<Connection> conn_;
  int client_fd_ = -1;
};

TEST(NetFraming, PartialLinesReassemble) {
  ConnHarness h;
  h.ClientSend("RELAX dia");
  h.Pump();
  EXPECT_TRUE(h.handler().lines.empty());  // no newline yet

  h.ClientSend("betes\nGE");
  h.Pump();
  ASSERT_EQ(1u, h.handler().lines.size());
  EXPECT_EQ("RELAX diabetes", h.handler().lines[0]);

  h.ClientSend("N\n");
  h.Pump();
  ASSERT_EQ(2u, h.handler().lines.size());
  EXPECT_EQ("GEN", h.handler().lines[1]);
  EXPECT_FALSE(h.handler().closed);
}

TEST(NetFraming, MultipleCommandsPerSegmentStayOrdered) {
  ConnHarness h;
  h.ClientSend("GEN\r\nCONTEXTS\nSTATS\n");
  h.Pump();
  ASSERT_EQ(3u, h.handler().lines.size());
  EXPECT_EQ("GEN", h.handler().lines[0]);  // '\r' stripped
  EXPECT_EQ("CONTEXTS", h.handler().lines[1]);
  EXPECT_EQ("STATS", h.handler().lines[2]);
}

TEST(NetFraming, OversizedLineRejectedWithTypedError) {
  ConnectionLimits limits;
  limits.max_line_bytes = 64;
  ConnHarness h(limits);
  h.ClientSend(std::string(200, 'x'));  // unframed: no newline in sight
  h.Pump();

  EXPECT_TRUE(h.handler().closed);
  EXPECT_TRUE(h.handler().close_reason.IsResourceExhausted())
      << h.handler().close_reason;
  EXPECT_EQ(1u, h.conn().stats().oversize_rejects);
  // The client got one admission-vocabulary error line, then the close.
  const std::string reply = h.ClientDrain();
  EXPECT_EQ("err ResourceExhausted: line exceeds 64 bytes\n", reply);
  EXPECT_TRUE(h.ClientSawEof());
  EXPECT_TRUE(h.handler().lines.empty());  // nothing was delivered

  // The serving stats must absorb the *count* the connection reports, the
  // way medrelax_server's on_disconnect forwards it — recording a flat
  // "one per connection" undercounted sessions that shed several
  // oversized lines before teardown.
  ServiceStats stats;
  stats.RecordLineRejected(h.conn().stats().oversize_rejects);
  EXPECT_EQ(1u, stats.Snapshot().lines_rejected);
  stats.RecordLineRejected(3);
  EXPECT_EQ(4u, stats.Snapshot().lines_rejected);
}

TEST(NetFraming, EofDeliversTrailingUnterminatedLine) {
  ConnHarness h;
  // Final line has no '\n' — the stdin transport's getline yields it at
  // EOF, so the socket transport must too.
  h.ClientSend("GEN\nQUIT");
  h.ShutdownClientWrite();
  h.Pump();
  ASSERT_EQ(2u, h.handler().lines.size());
  EXPECT_EQ("GEN", h.handler().lines[0]);
  EXPECT_EQ("QUIT", h.handler().lines[1]);
  EXPECT_TRUE(h.handler().closed);
  EXPECT_TRUE(h.handler().close_reason.ok()) << h.handler().close_reason;
}

TEST(NetFraming, PauseHoldsPipelinedCommandsResumeReleasesThem) {
  ConnHarness h;
  h.handler().pause_after = "RELAX a";
  h.ClientSend("RELAX a\nGEN\nSTATS\n");
  h.Pump();
  // The handler paused inside delivery of the first line; the pipelined
  // rest stays buffered.
  ASSERT_EQ(1u, h.handler().lines.size());
  EXPECT_TRUE(h.conn().paused());

  h.handler().pause_after.clear();
  h.conn().Resume();
  h.Pump();
  ASSERT_EQ(3u, h.handler().lines.size());
  EXPECT_EQ("GEN", h.handler().lines[1]);
  EXPECT_EQ("STATS", h.handler().lines[2]);
}

TEST(NetFraming, SlowReaderBackpressureClosesConnection) {
  ConnectionLimits limits;
  limits.max_write_buffer_bytes = 4 * 1024;
  ConnHarness h(limits);
  // The client never reads: the kernel buffer fills, sends start
  // deferring, and once the write buffer passes its high-water mark the
  // reader is cut off with the admission-control status.
  const std::string chunk(8 * 1024, 'y');
  for (int i = 0; i < 300 && !h.handler().closed; ++i) {
    h.conn().Send(chunk);
    h.Pump();
  }
  ASSERT_TRUE(h.handler().closed);
  EXPECT_TRUE(h.handler().close_reason.IsResourceExhausted())
      << h.handler().close_reason;
  EXPECT_GE(h.conn().stats().writes_deferred, 1u);
}

TEST(NetFraming, AbruptDisconnectWhileReplyPendingIsHandled) {
  ConnHarness h;
  h.ClientSend("GEN\n");
  h.Pump();
  ASSERT_EQ(1u, h.handler().lines.size());

  // The client vanishes without reading its reply.
  h.CloseClient();
  h.conn().Send("ok gen=1\n");
  h.Pump();
  EXPECT_TRUE(h.handler().closed);
  // Orderly EOF or ECONNRESET/EPIPE depending on timing — both are
  // clean teardowns, never a crash or a hang.
}

TEST(NetFraming, SendAfterCloseIsNoOp) {
  ConnHarness h;
  h.conn().Close(Status::OK());
  EXPECT_TRUE(h.handler().closed);
  h.conn().Send("late\n");
  h.conn().Resume();
  h.conn().CloseAfterFlush();
  h.Pump();
  EXPECT_EQ(0u, h.conn().stats().bytes_out);
}

TEST(NetEventLoop, PostFromManyThreadsAllRun) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  constexpr int kThreads = 4;
  constexpr int kPostsPerThread = 100;
  std::atomic<int> ran{0};

  std::vector<std::thread> posters;
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&loop, &ran] {
      for (int i = 0; i < kPostsPerThread; ++i) {
        loop.Post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : posters) t.join();
  while (loop.RunOnce(/*timeout_ms=*/0) > 0) {
  }
  EXPECT_EQ(kThreads * kPostsPerThread, ran.load());
}

// ---------------------------------------------------------------------
// LineServer over real loopback TCP.

int ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool RecvLine(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = recv(fd, &c, 1, 0);
    if (n <= 0) return false;
    if (c == '\n') return true;
    line->push_back(c);
  }
}

bool PumpUntil(EventLoop& loop, const std::function<bool()>& pred,
               int budget_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    loop.RunOnce(/*timeout_ms=*/10);
  }
  return true;
}

TEST(NetLineServer, GreetingEchoAndDeferredTeardown) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  LineServer server(loop);

  LineServerOptions options;
  options.port = 0;  // ephemeral
  options.greeting = "ok serving test\n";
  size_t lines_seen = 0;
  LineServer::Callbacks callbacks;
  callbacks.on_line = [&lines_seen](Connection& conn, std::string line) {
    ++lines_seen;
    conn.Send("echo " + line + "\n");
  };
  ASSERT_TRUE(server.Start(options, std::move(callbacks)).ok());
  ASSERT_NE(0, server.port());

  const int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(PumpUntil(loop, [&server] { return server.num_connections() == 1; }));

  std::string line;
  ASSERT_TRUE(RecvLine(fd, &line));
  EXPECT_EQ("ok serving test", line);

  const std::string ping = "ping\n";
  ASSERT_EQ(static_cast<ssize_t>(ping.size()),
            send(fd, ping.data(), ping.size(), MSG_NOSIGNAL));
  // Drive the loop until the ping was dispatched (the echo is sent and
  // flushed inline during that same dispatch).
  ASSERT_TRUE(PumpUntil(loop, [&lines_seen] { return lines_seen == 1; }));
  ASSERT_TRUE(RecvLine(fd, &line));
  EXPECT_EQ("echo ping", line);

  close(fd);
  ASSERT_TRUE(PumpUntil(loop, [&server] { return server.num_connections() == 0; }));
  EXPECT_EQ(1u, server.stats().accepted);
  EXPECT_EQ(1u, server.stats().closed);
}

TEST(NetLineServer, ConnectionCapRejectsWithAdmissionError) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  LineServer server(loop);

  LineServerOptions options;
  options.port = 0;
  options.max_connections = 1;
  options.greeting = "hello\n";
  std::atomic<int> rejected{0};
  LineServer::Callbacks callbacks;
  callbacks.on_line = [](Connection&, std::string) {};
  callbacks.on_reject = [&rejected] { rejected.fetch_add(1); };
  ASSERT_TRUE(server.Start(options, std::move(callbacks)).ok());

  const int first = ConnectLoopback(server.port());
  ASSERT_GE(first, 0);
  ASSERT_TRUE(PumpUntil(loop, [&server] { return server.num_connections() == 1; }));

  const int second = ConnectLoopback(server.port());
  ASSERT_GE(second, 0);
  ASSERT_TRUE(PumpUntil(loop, [&server] {
    return server.stats().rejected_capacity == 1;
  }));
  EXPECT_EQ(1, rejected.load());

  std::string line;
  ASSERT_TRUE(RecvLine(second, &line));
  EXPECT_EQ("err ResourceExhausted: connection limit reached (1 active)",
            line);
  char c;
  EXPECT_EQ(0, recv(second, &c, 1, 0));  // and then EOF

  // The admitted connection is unaffected.
  ASSERT_TRUE(RecvLine(first, &line));
  EXPECT_EQ("hello", line);

  close(first);
  close(second);
  ASSERT_TRUE(PumpUntil(loop, [&server] { return server.num_connections() == 0; }));
}

// The tsan-preset target: client threads churning real TCP connections
// (half of them hanging up abruptly) while racing cross-thread Post()s
// against the loop thread. Assertions are invariants — every accepted
// connection eventually closes, every posted task eventually runs.
TEST(NetLineServer, ConnectionChurnRacesCrossThreadPosts) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  LineServer server(loop);

  LineServerOptions options;
  options.port = 0;
  options.greeting = "hi\n";
  LineServer::Callbacks callbacks;
  callbacks.on_line = [](Connection& conn, std::string line) {
    conn.Send("echo " + line + "\n");
  };
  ASSERT_TRUE(server.Start(options, std::move(callbacks)).ok());
  const uint16_t port = server.port();

  std::thread loop_thread([&loop] { loop.Run(); });

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 15;
  std::atomic<int> posts_ran{0};
  std::atomic<int> echoes{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([t, port, &loop, &posts_ran, &echoes] {
      for (int i = 0; i < kItersPerClient; ++i) {
        const int fd = ConnectLoopback(port);
        if (fd < 0) continue;
        loop.Post([&posts_ran] {
          posts_ran.fetch_add(1, std::memory_order_relaxed);
        });
        std::string line;
        if (!RecvLine(fd, &line)) {  // greeting
          close(fd);
          continue;
        }
        const std::string ping = "ping\n";
        (void)send(fd, ping.data(), ping.size(), MSG_NOSIGNAL);
        if ((t + i) % 2 == 0) {
          // Orderly client: read the echo, then hang up.
          if (RecvLine(fd, &line) && line == "echo ping") {
            echoes.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Abrupt client (odd iterations): close with the reply possibly
        // still in flight — the server must treat that as teardown, not
        // an error worth crashing over.
        close(fd);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  loop.Stop();
  loop_thread.join();
  // The main thread is now the loop thread: drain what Stop() cut off
  // (pending posts, deferred erases) so the invariants below are exact.
  while (loop.RunOnce(/*timeout_ms=*/0) > 0) {
  }

  EXPECT_EQ(kClients * kItersPerClient, posts_ran.load());
  EXPECT_GT(echoes.load(), 0);
  EXPECT_EQ(server.stats().accepted,
            server.stats().closed + server.num_connections());
}

}  // namespace
}  // namespace net
}  // namespace medrelax
