// Unit tests of the serving result cache: eviction policies (LRU and
// decayed activity), admission filtering, key semantics (options
// fingerprint, snapshot generation), sharding, and counters.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/common/cache_policy.h"
#include "medrelax/serve/result_cache.h"

namespace medrelax {
namespace {

std::shared_ptr<const RelaxationOutcome> MakeOutcome(ConceptId query) {
  auto outcome = std::make_shared<RelaxationOutcome>();
  outcome->query_concept = query;
  return outcome;
}

CacheKey KeyFor(ConceptId concept_id, uint64_t generation = 1,
                uint64_t fingerprint = 42, ContextId context = 0,
                uint64_t k = 10) {
  return CacheKey{concept_id, context, k, fingerprint, generation};
}

/// The pre-policy configuration: strict LRU eviction, no admission
/// filter. The legacy eviction-order tests pin this explicitly so they
/// keep testing LRU as the selectable fallback.
ResultCacheOptions LruOptions(size_t capacity, size_t num_shards) {
  ResultCacheOptions options;
  options.capacity = capacity;
  options.num_shards = num_shards;
  options.policy.eviction = CachePolicy::Eviction::kLru;
  return options;
}

ResultCacheOptions ActivityOptions(size_t capacity, size_t num_shards,
                                   double sweep_fraction = 0.25) {
  ResultCacheOptions options;
  options.capacity = capacity;
  options.num_shards = num_shards;
  options.policy.eviction = CachePolicy::Eviction::kDecayedActivity;
  options.policy.sweep_fraction = sweep_fraction;
  return options;
}

TEST(ResultCache, LookupReturnsInsertedOutcome) {
  ResultCache cache(ActivityOptions(/*capacity=*/8, /*num_shards=*/1));
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  cache.Insert(KeyFor(1), MakeOutcome(1));
  auto hit = cache.Lookup(KeyFor(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->query_concept, 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedInOrder) {
  // One shard of capacity 3 so the LRU order is fully observable.
  ResultCache cache(LruOptions(/*capacity=*/3, /*num_shards=*/1));
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  cache.Insert(KeyFor(3), MakeOutcome(3));
  // Touch 1 so 2 becomes the eviction candidate.
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  cache.Insert(KeyFor(4), MakeOutcome(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(KeyFor(2)), nullptr) << "LRU entry should be gone";
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(3)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(4)), nullptr);
  // The verification lookups above reordered recency to 4 > 3 > 1, so
  // eviction proceeds 1 -> 3.
  cache.Insert(KeyFor(5), MakeOutcome(5));
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  cache.Insert(KeyFor(6), MakeOutcome(6));
  EXPECT_EQ(cache.Lookup(KeyFor(3)), nullptr);
}

TEST(ResultCache, ReinsertRefreshesRecencyAndValue) {
  ResultCache cache(LruOptions(/*capacity=*/2, /*num_shards=*/1));
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  cache.Insert(KeyFor(1), MakeOutcome(99));  // refresh, not a new entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Insert(KeyFor(3), MakeOutcome(3));
  EXPECT_EQ(cache.Lookup(KeyFor(2)), nullptr) << "2 was the LRU after refresh";
  auto refreshed = cache.Lookup(KeyFor(1));
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->query_concept, 99u);
}

TEST(ResultCache, DifferentOptionsFingerprintMisses) {
  ResultCache cache(ActivityOptions(/*capacity=*/8, /*num_shards=*/1));
  cache.Insert(KeyFor(1, /*generation=*/1, /*fingerprint=*/42),
               MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1, 1, /*fingerprint=*/43)), nullptr)
      << "a snapshot with different knobs must not share answers";
  EXPECT_NE(cache.Lookup(KeyFor(1, 1, 42)), nullptr);
}

TEST(ResultCache, DifferentGenerationMisses) {
  ResultCache cache(ActivityOptions(/*capacity=*/8, /*num_shards=*/1));
  cache.Insert(KeyFor(1, /*generation=*/1), MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1, /*generation=*/2)), nullptr)
      << "a snapshot swap must invalidate older entries";
}

TEST(ResultCache, KAndContextArePartOfTheKey) {
  ResultCache cache(ActivityOptions(/*capacity=*/8, /*num_shards=*/1));
  cache.Insert(KeyFor(1, 1, 42, /*context=*/0, /*k=*/10), MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1, 1, 42, /*context=*/1, /*k=*/10)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(1, 1, 42, /*context=*/0, /*k=*/5)), nullptr);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(ActivityOptions(/*capacity=*/0, /*num_shards=*/4));
  cache.Insert(KeyFor(1), MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ShardCountRoundsUpToPowerOfTwo) {
  ResultCache cache(ActivityOptions(/*capacity=*/64, /*num_shards=*/5));
  EXPECT_EQ(cache.num_shards(), 8u);
  EXPECT_EQ(cache.shard_capacity(), 8u);
  ResultCache one(ActivityOptions(/*capacity=*/1, /*num_shards=*/8));
  EXPECT_EQ(one.shard_capacity(), 1u) << "every shard stays usable";
}

TEST(ResultCache, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(ActivityOptions(/*capacity=*/8, /*num_shards=*/2));
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
}

TEST(ResultCache, EvictedEntryStaysAliveForHolders) {
  ResultCache cache(LruOptions(/*capacity=*/1, /*num_shards=*/1));
  cache.Insert(KeyFor(1), MakeOutcome(1));
  auto held = cache.Lookup(KeyFor(1));
  ASSERT_NE(held, nullptr);
  cache.Insert(KeyFor(2), MakeOutcome(2));  // evicts key 1
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_EQ(held->query_concept, 1u) << "shared_ptr keeps the answer valid";
}

TEST(ResultCache, GlobalCapacityBoundHoldsForTinyCapacities) {
  // Regression: per-shard capacities used to be rounded *up* from the
  // total, so capacity=1 over 8 shards could hold 8 entries. The bound
  // is global: num_shards * shard_capacity <= capacity, always.
  for (size_t capacity : {1u, 2u, 3u, 5u, 6u, 10u, 64u, 4096u}) {
    for (size_t shards : {1u, 4u, 5u, 8u, 16u}) {
      ResultCache cache(LruOptions(capacity, shards));
      EXPECT_LE(cache.num_shards() * cache.shard_capacity(), capacity)
          << "capacity=" << capacity << " num_shards=" << shards;
      EXPECT_GE(cache.shard_capacity(), 1u);
    }
  }
  // The concrete former failure: 8 shards of rounded-up capacity 1 held
  // 8 entries against a configured total of 1.
  ResultCache one(LruOptions(/*capacity=*/1, /*num_shards=*/8));
  for (ConceptId id = 1; id <= 16; ++id) one.Insert(KeyFor(id), MakeOutcome(id));
  EXPECT_LE(one.size(), 1u);
}

TEST(ResultCache, SecondHitAdmissionFiltersFirstTimers) {
  ResultCache cache(ActivityOptions(/*capacity=*/2, /*num_shards=*/1));
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  ASSERT_EQ(cache.size(), 2u);

  // First sighting of a new key against a full shard: rejected, the
  // residents stay.
  cache.Insert(KeyFor(3), MakeOutcome(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.admission_rejects(), 1u);
  EXPECT_EQ(cache.Lookup(KeyFor(3)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(2)), nullptr);

  // Second sighting: admitted, and the overflow triggers a sweep.
  cache.Insert(KeyFor(3), MakeOutcome(3));
  EXPECT_NE(cache.Lookup(KeyFor(3)), nullptr);
  EXPECT_EQ(cache.admission_rejects(), 1u);
  EXPECT_GE(cache.sweeps_completed(), 1u);
  EXPECT_GE(cache.activity_evictions(), 1u);
  EXPECT_LE(cache.size(), 2u);
}

TEST(ResultCache, AdmissionNeverFiltersWhileShardHasRoom) {
  // Golden-parity property: a cache that never fills behaves exactly
  // like LRU — every insert is admitted, no sweeps fire.
  ResultCache cache(ActivityOptions(/*capacity=*/8, /*num_shards=*/1));
  for (ConceptId id = 1; id <= 8; ++id) {
    cache.Insert(KeyFor(id), MakeOutcome(id));
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.admission_rejects(), 0u);
  EXPECT_EQ(cache.sweeps_completed(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ResultCache, SweepEvictsBottomActivityFractionNotLruOrder) {
  // capacity 4, sweep half: the sweep must rank by activity, with the
  // LRU end losing ties — not by recency alone.
  ResultCache cache(ActivityOptions(/*capacity=*/4, /*num_shards=*/1,
                                    /*sweep_fraction=*/0.5));
  for (ConceptId id = 1; id <= 4; ++id) {
    cache.Insert(KeyFor(id), MakeOutcome(id));
  }
  // Key 1 is hammered first (hot), then a single touch each for 2..4:
  // key 1 ends up *least recently used* but *highest activity*.
  for (int i = 0; i < 5; ++i) EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(2)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(3)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(4)), nullptr);

  // Admit key 5 through the doorkeeper; the overflow sweeps half the
  // shard. Victims are the two lowest-activity entries (2 and 3 — one
  // old touch each, and 2's was earliest); the LRU entry (1) survives
  // on activity, and the fresh admit (5, credited two sightings)
  // survives too.
  cache.Insert(KeyFor(5), MakeOutcome(5));
  cache.Insert(KeyFor(5), MakeOutcome(5));
  EXPECT_GE(cache.sweeps_completed(), 1u);
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr)
      << "highest-activity entry must survive despite being LRU";
  EXPECT_EQ(cache.Lookup(KeyFor(2)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(3)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(4)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(5)), nullptr);
}

TEST(ResultCache, DecayRescalePreservesActivityOrder) {
  // ~4500 hits grow the bump increment past the 1e100 rescale threshold
  // (bump *= 1/0.95 per hit). The rescale must preserve relative
  // activities: the hammered key stays the hottest afterwards.
  ResultCache cache(ActivityOptions(/*capacity=*/4, /*num_shards=*/1));
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  for (int i = 0; i < 5000; ++i) {
    ASSERT_NE(cache.Lookup(KeyFor(1)), nullptr);
  }
  EXPECT_GE(cache.rescales(), 1u);

  // Fill the shard, then admit a newcomer: the sweep's victim must be a
  // cold entry, never key 1, whose pre-rescale activity dominates.
  cache.Insert(KeyFor(3), MakeOutcome(3));
  cache.Insert(KeyFor(4), MakeOutcome(4));
  cache.Insert(KeyFor(5), MakeOutcome(5));
  cache.Insert(KeyFor(5), MakeOutcome(5));
  EXPECT_GE(cache.sweeps_completed(), 1u);
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr)
      << "rescale lost the hot entry's accumulated activity";
  EXPECT_EQ(cache.Lookup(KeyFor(2)), nullptr)
      << "the pre-rescale cold entry should have decayed to nothing";
}

TEST(AdmissionSketch, SecondSightingIsSeen) {
  AdmissionSketch sketch(16);
  EXPECT_FALSE(sketch.SeenOrRecord(0xdeadbeefULL));
  EXPECT_TRUE(sketch.SeenOrRecord(0xdeadbeefULL));
  sketch.Clear();
  EXPECT_FALSE(sketch.SeenOrRecord(0xdeadbeefULL));
}

TEST(AdmissionSketch, CollidingFingerprintOverwritesSlot) {
  AdmissionSketch sketch(4);  // slot = fingerprint & 3
  EXPECT_FALSE(sketch.SeenOrRecord(0x10));  // slot 0
  EXPECT_FALSE(sketch.SeenOrRecord(0x20));  // slot 0: overwrites 0x10
  EXPECT_FALSE(sketch.SeenOrRecord(0x10))
      << "an overwritten fingerprint is forgotten, not remembered";
  EXPECT_TRUE(sketch.SeenOrRecord(0x10));
}

TEST(FingerprintOptions, SensitiveToEveryKnob) {
  RelaxationOptions relaxation;
  SimilarityOptions similarity;
  const uint64_t base = FingerprintOptions(relaxation, similarity);
  EXPECT_EQ(base, FingerprintOptions(relaxation, similarity))
      << "fingerprint must be deterministic";

  std::vector<uint64_t> variants;
  {
    RelaxationOptions r = relaxation;
    r.radius = 5;
    variants.push_back(FingerprintOptions(r, similarity));
    r = relaxation;
    r.dynamic_radius = false;
    variants.push_back(FingerprintOptions(r, similarity));
    r = relaxation;
    r.max_radius = 7;
    variants.push_back(FingerprintOptions(r, similarity));
    r = relaxation;
    r.top_k = 3;
    variants.push_back(FingerprintOptions(r, similarity));
  }
  {
    SimilarityOptions s = similarity;
    s.generalization_weight = 0.8;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.specialization_weight = 0.7;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.use_path_penalty = false;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.use_context = false;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.memoize_geometry = false;
    variants.push_back(FingerprintOptions(relaxation, s));
  }
  for (size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i], base) << "knob " << i << " not fingerprinted";
  }
}

}  // namespace
}  // namespace medrelax
