// Unit tests of the serving result cache: LRU behavior, key semantics
// (options fingerprint, snapshot generation), sharding, and counters.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "medrelax/serve/result_cache.h"

namespace medrelax {
namespace {

std::shared_ptr<const RelaxationOutcome> MakeOutcome(ConceptId query) {
  auto outcome = std::make_shared<RelaxationOutcome>();
  outcome->query_concept = query;
  return outcome;
}

CacheKey KeyFor(ConceptId concept_id, uint64_t generation = 1,
                uint64_t fingerprint = 42, ContextId context = 0,
                uint64_t k = 10) {
  return CacheKey{concept_id, context, k, fingerprint, generation};
}

TEST(ResultCache, LookupReturnsInsertedOutcome) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/8, /*num_shards=*/1});
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  cache.Insert(KeyFor(1), MakeOutcome(1));
  auto hit = cache.Lookup(KeyFor(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->query_concept, 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedInOrder) {
  // One shard of capacity 3 so the LRU order is fully observable.
  ResultCache cache(ResultCacheOptions{/*capacity=*/3, /*num_shards=*/1});
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  cache.Insert(KeyFor(3), MakeOutcome(3));
  // Touch 1 so 2 becomes the eviction candidate.
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  cache.Insert(KeyFor(4), MakeOutcome(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(KeyFor(2)), nullptr) << "LRU entry should be gone";
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(3)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(4)), nullptr);
  // The verification lookups above reordered recency to 4 > 3 > 1, so
  // eviction proceeds 1 -> 3.
  cache.Insert(KeyFor(5), MakeOutcome(5));
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  cache.Insert(KeyFor(6), MakeOutcome(6));
  EXPECT_EQ(cache.Lookup(KeyFor(3)), nullptr);
}

TEST(ResultCache, ReinsertRefreshesRecencyAndValue) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/2, /*num_shards=*/1});
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  cache.Insert(KeyFor(1), MakeOutcome(99));  // refresh, not a new entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Insert(KeyFor(3), MakeOutcome(3));
  EXPECT_EQ(cache.Lookup(KeyFor(2)), nullptr) << "2 was the LRU after refresh";
  auto refreshed = cache.Lookup(KeyFor(1));
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->query_concept, 99u);
}

TEST(ResultCache, DifferentOptionsFingerprintMisses) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/8, /*num_shards=*/1});
  cache.Insert(KeyFor(1, /*generation=*/1, /*fingerprint=*/42),
               MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1, 1, /*fingerprint=*/43)), nullptr)
      << "a snapshot with different knobs must not share answers";
  EXPECT_NE(cache.Lookup(KeyFor(1, 1, 42)), nullptr);
}

TEST(ResultCache, DifferentGenerationMisses) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/8, /*num_shards=*/1});
  cache.Insert(KeyFor(1, /*generation=*/1), MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1, /*generation=*/2)), nullptr)
      << "a snapshot swap must invalidate older entries";
}

TEST(ResultCache, KAndContextArePartOfTheKey) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/8, /*num_shards=*/1});
  cache.Insert(KeyFor(1, 1, 42, /*context=*/0, /*k=*/10), MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1, 1, 42, /*context=*/1, /*k=*/10)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(1, 1, 42, /*context=*/0, /*k=*/5)), nullptr);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/0, /*num_shards=*/4});
  cache.Insert(KeyFor(1), MakeOutcome(1));
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ShardCountRoundsUpToPowerOfTwo) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/64, /*num_shards=*/5});
  EXPECT_EQ(cache.num_shards(), 8u);
  EXPECT_EQ(cache.shard_capacity(), 8u);
  ResultCache one(ResultCacheOptions{/*capacity=*/1, /*num_shards=*/8});
  EXPECT_EQ(one.shard_capacity(), 1u) << "every shard stays usable";
}

TEST(ResultCache, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/8, /*num_shards=*/2});
  cache.Insert(KeyFor(1), MakeOutcome(1));
  cache.Insert(KeyFor(2), MakeOutcome(2));
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
}

TEST(ResultCache, EvictedEntryStaysAliveForHolders) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/1, /*num_shards=*/1});
  cache.Insert(KeyFor(1), MakeOutcome(1));
  auto held = cache.Lookup(KeyFor(1));
  ASSERT_NE(held, nullptr);
  cache.Insert(KeyFor(2), MakeOutcome(2));  // evicts key 1
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_EQ(held->query_concept, 1u) << "shared_ptr keeps the answer valid";
}

TEST(FingerprintOptions, SensitiveToEveryKnob) {
  RelaxationOptions relaxation;
  SimilarityOptions similarity;
  const uint64_t base = FingerprintOptions(relaxation, similarity);
  EXPECT_EQ(base, FingerprintOptions(relaxation, similarity))
      << "fingerprint must be deterministic";

  std::vector<uint64_t> variants;
  {
    RelaxationOptions r = relaxation;
    r.radius = 5;
    variants.push_back(FingerprintOptions(r, similarity));
    r = relaxation;
    r.dynamic_radius = false;
    variants.push_back(FingerprintOptions(r, similarity));
    r = relaxation;
    r.max_radius = 7;
    variants.push_back(FingerprintOptions(r, similarity));
    r = relaxation;
    r.top_k = 3;
    variants.push_back(FingerprintOptions(r, similarity));
  }
  {
    SimilarityOptions s = similarity;
    s.generalization_weight = 0.8;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.specialization_weight = 0.7;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.use_path_penalty = false;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.use_context = false;
    variants.push_back(FingerprintOptions(relaxation, s));
    s = similarity;
    s.memoize_geometry = false;
    variants.push_back(FingerprintOptions(relaxation, s));
  }
  for (size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i], base) << "knob " << i << " not fingerprinted";
  }
}

}  // namespace
}  // namespace medrelax
