// Tests of the common substrate: Status/Result, PRNG, string utilities.

#include <set>

#include <gtest/gtest.h>

#include "medrelax/common/random.h"
#include "medrelax/common/result.h"
#include "medrelax/common/status.h"
#include "medrelax/common/string_util.h"

namespace medrelax {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(Status, ServingCodesHaveFactoriesAndPredicates) {
  Status full = Status::ResourceExhausted("queue full");
  EXPECT_TRUE(full.IsResourceExhausted());
  EXPECT_FALSE(full.IsDeadlineExceeded());
  EXPECT_EQ(full.ToString(), "ResourceExhausted: queue full");

  Status late = Status::DeadlineExceeded("expired in queue");
  EXPECT_TRUE(late.IsDeadlineExceeded());
  EXPECT_FALSE(late.IsResourceExhausted());
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: expired in queue");
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    MEDRELAX_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsInternal());
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("x");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    MEDRELAX_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).value(), 11);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(9);
  size_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.2) <= 10) ++low;
  }
  // With s=1.2 the first 10 ranks carry well over a third of the mass.
  EXPECT_GT(low, static_cast<size_t>(n / 3));
}

TEST(Rng, GaussianMeanRoughlyZero) {
  Rng rng(11);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Gaussian();
  EXPECT_NEAR(total / n, 0.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsZeros) {
  Rng rng(13);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(w), 1u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtil, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC-9 Z"), "abc-9 z");
}

TEST(StringUtil, Strip) {
  EXPECT_EQ(StripAscii("  hi \n"), "hi");
  EXPECT_EQ(StripAscii(""), "");
  EXPECT_EQ(StripAscii("   "), "");
}

TEST(StringUtil, SplitAndJoin) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "-"), "a-b--c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("headache", "head"));
  EXPECT_FALSE(StartsWith("head", "headache"));
  EXPECT_TRUE(EndsWith("headache", "ache"));
  EXPECT_FALSE(EndsWith("ache", "headache"));
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "x", 7), "x=7");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

}  // namespace
}  // namespace medrelax
