// Tests of the external-knowledge-source substrate: DAG construction,
// topological sort, traversal, LCS (with the footnote-1 tie policy), and
// taxonomic paths.

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "medrelax/datasets/snomed_generator.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/graph/lcs.h"
#include "medrelax/graph/paths.h"
#include "medrelax/graph/topology.h"
#include "medrelax/graph/traversal.h"

namespace medrelax {
namespace {

// Small diamond: root on top of {a, b}, both subsuming ab, which
// subsumes leaf — the minimal polyhierarchy shape.
struct Diamond {
  ConceptDag dag;
  ConceptId root, a, b, ab, leaf;
};

Diamond MakeDiamond() {
  Diamond d;
  d.root = *d.dag.AddConcept("root");
  d.a = *d.dag.AddConcept("a");
  d.b = *d.dag.AddConcept("b");
  d.ab = *d.dag.AddConcept("ab");
  d.leaf = *d.dag.AddConcept("leaf");
  EXPECT_TRUE(d.dag.AddSubsumption(d.a, d.root).ok());
  EXPECT_TRUE(d.dag.AddSubsumption(d.b, d.root).ok());
  EXPECT_TRUE(d.dag.AddSubsumption(d.ab, d.a).ok());
  EXPECT_TRUE(d.dag.AddSubsumption(d.ab, d.b).ok());
  EXPECT_TRUE(d.dag.AddSubsumption(d.leaf, d.ab).ok());
  return d;
}

TEST(ConceptDag, RejectsDuplicateNames) {
  ConceptDag dag;
  ASSERT_TRUE(dag.AddConcept("x").ok());
  EXPECT_TRUE(dag.AddConcept("x").status().IsAlreadyExists());
}

TEST(ConceptDag, RejectsSelfEdge) {
  ConceptDag dag;
  ConceptId x = *dag.AddConcept("x");
  EXPECT_TRUE(dag.AddSubsumption(x, x).IsInvalidArgument());
}

TEST(ConceptDag, RejectsDuplicateNativeEdge) {
  Diamond d = MakeDiamond();
  EXPECT_TRUE(d.dag.AddSubsumption(d.a, d.root).IsAlreadyExists());
}

TEST(ConceptDag, RejectsInvalidIds) {
  ConceptDag dag;
  ConceptId x = *dag.AddConcept("x");
  EXPECT_TRUE(dag.AddSubsumption(x, 999).IsInvalidArgument());
  EXPECT_TRUE(dag.AddSynonym(999, "y").IsInvalidArgument());
}

TEST(ConceptDag, ShortcutRequiresDistanceAtLeastTwo) {
  Diamond d = MakeDiamond();
  EXPECT_TRUE(d.dag.AddShortcut(d.leaf, d.root, 1).IsInvalidArgument());
  EXPECT_TRUE(d.dag.AddShortcut(d.leaf, d.root, 3).ok());
  EXPECT_EQ(d.dag.num_shortcut_edges(), 1u);
  // Idempotent: adding again is a no-op.
  EXPECT_TRUE(d.dag.AddShortcut(d.leaf, d.root, 3).ok());
  EXPECT_EQ(d.dag.num_shortcut_edges(), 1u);
}

TEST(ConceptDag, FindByNameAndRoots) {
  Diamond d = MakeDiamond();
  EXPECT_EQ(d.dag.FindByName("ab"), d.ab);
  EXPECT_EQ(d.dag.FindByName("nope"), kInvalidConcept);
  std::vector<ConceptId> roots = d.dag.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], d.root);
}

TEST(Topology, ChildrenBeforeParents) {
  Diamond d = MakeDiamond();
  auto order = TopologicalSortChildrenFirst(d.dag);
  ASSERT_TRUE(order.ok());
  std::vector<size_t> position(d.dag.num_concepts());
  for (size_t i = 0; i < order->size(); ++i) position[(*order)[i]] = i;
  EXPECT_LT(position[d.leaf], position[d.ab]);
  EXPECT_LT(position[d.ab], position[d.a]);
  EXPECT_LT(position[d.ab], position[d.b]);
  EXPECT_LT(position[d.a], position[d.root]);
}

TEST(Topology, DetectsCycle) {
  ConceptDag dag;
  ConceptId x = *dag.AddConcept("x");
  ConceptId y = *dag.AddConcept("y");
  ASSERT_TRUE(dag.AddSubsumption(x, y).ok());
  ASSERT_TRUE(dag.AddSubsumption(y, x).ok());
  EXPECT_TRUE(ValidateAcyclic(dag).IsFailedPrecondition());
}

TEST(Topology, ValidatesSingleRoot) {
  ConceptDag dag;
  ASSERT_TRUE(dag.AddConcept("r1").ok());
  ASSERT_TRUE(dag.AddConcept("r2").ok());
  EXPECT_TRUE(ValidateExternalSource(dag).IsFailedPrecondition());
}

TEST(Topology, ValidatesEmptyGraph) {
  ConceptDag dag;
  EXPECT_TRUE(ValidateExternalSource(dag).IsFailedPrecondition());
}

TEST(Topology, DepthsFollowLongestChain) {
  Diamond d = MakeDiamond();
  auto depths = DepthsFromRoot(d.dag);
  ASSERT_TRUE(depths.ok());
  EXPECT_EQ((*depths)[d.root], 0u);
  EXPECT_EQ((*depths)[d.a], 1u);
  EXPECT_EQ((*depths)[d.ab], 2u);
  EXPECT_EQ((*depths)[d.leaf], 3u);
}

TEST(Traversal, AncestorsAndDescendants) {
  Diamond d = MakeDiamond();
  std::vector<ConceptId> anc = Ancestors(d.dag, d.leaf);
  EXPECT_EQ(anc.size(), 4u);  // ab, a, b, root
  EXPECT_TRUE(std::find(anc.begin(), anc.end(), d.leaf) == anc.end());

  std::vector<ConceptId> desc = Descendants(d.dag, d.root);
  EXPECT_EQ(desc.size(), 4u);
  EXPECT_TRUE(IsAncestorOf(d.dag, d.root, d.leaf));
  EXPECT_FALSE(IsAncestorOf(d.dag, d.leaf, d.root));
  EXPECT_FALSE(IsAncestorOf(d.dag, d.a, d.b));
}

TEST(Traversal, UpDistanceIsShortest) {
  Diamond d = MakeDiamond();
  EXPECT_EQ(UpDistance(d.dag, d.leaf, d.root), 3u);
  EXPECT_EQ(UpDistance(d.dag, d.leaf, d.ab), 1u);
  EXPECT_EQ(UpDistance(d.dag, d.a, d.b),
            std::numeric_limits<uint32_t>::max());
}

TEST(Traversal, NeighborsRespectRadius) {
  Diamond d = MakeDiamond();
  std::vector<Neighbor> r1 = NeighborsWithinRadius(d.dag, d.ab, 1);
  // a, b (parents) + leaf (child).
  EXPECT_EQ(r1.size(), 3u);
  std::vector<Neighbor> r2 = NeighborsWithinRadius(d.dag, d.ab, 2);
  EXPECT_EQ(r2.size(), 4u);  // + root
  EXPECT_TRUE(NeighborsWithinRadius(d.dag, d.ab, 0).empty());
}

TEST(Traversal, ShortcutPreservesOriginalDistance) {
  Diamond d = MakeDiamond();
  // Without shortcut, root is 3 hops from leaf.
  auto hops_of = [&](uint32_t radius) {
    for (const Neighbor& n : NeighborsWithinRadius(d.dag, d.leaf, radius)) {
      if (n.id == d.root) return n.hops;
    }
    return UINT32_MAX;
  };
  EXPECT_EQ(hops_of(2), UINT32_MAX);
  EXPECT_EQ(hops_of(3), 3u);
  // A shortcut carries the original distance it replaces, so the radius-r
  // ball (and every reported hop count) is unchanged by customization.
  ASSERT_TRUE(d.dag.AddShortcut(d.leaf, d.root, 3).ok());
  EXPECT_EQ(hops_of(2), UINT32_MAX);
  EXPECT_EQ(hops_of(3), 3u);
  // Original distances are unchanged: UpDistance still 3 (native edges).
  EXPECT_EQ(UpDistance(d.dag, d.leaf, d.root), 3u);
}

TEST(Traversal, ShortcutNeverShortensBelowOriginalDistance) {
  // Chain a <- b <- c <- d plus a shortcut (d -> a, distance 3): nodes on
  // the native path keep their distances even though the shortcut edge
  // could otherwise act as a 1-hop bypass.
  ConceptDag dag;
  ConceptId a = *dag.AddConcept("a");
  ConceptId b = *dag.AddConcept("b");
  ConceptId c = *dag.AddConcept("c");
  ConceptId e = *dag.AddConcept("e");
  ASSERT_TRUE(dag.AddSubsumption(b, a).ok());
  ASSERT_TRUE(dag.AddSubsumption(c, b).ok());
  ASSERT_TRUE(dag.AddSubsumption(e, c).ok());
  ASSERT_TRUE(dag.AddShortcut(e, a, 3).ok());
  std::vector<Neighbor> within = NeighborsWithinRadius(dag, e, 4);
  ASSERT_EQ(within.size(), 3u);
  for (const Neighbor& n : within) {
    if (n.id == c) {
      EXPECT_EQ(n.hops, 1u);
    } else if (n.id == b) {
      EXPECT_EQ(n.hops, 2u);
    } else {
      EXPECT_EQ(n.id, a);
      EXPECT_EQ(n.hops, 3u);
    }
  }
}

TEST(Traversal, RadiusExpanderResumesIncrementally) {
  Diamond d = MakeDiamond();
  RadiusExpander expander(d.dag, d.leaf);
  std::vector<Neighbor> out;
  expander.ExpandTo(1, &out);
  EXPECT_EQ(out.size(), 1u);  // ab
  EXPECT_EQ(out[0].id, d.ab);
  expander.ExpandTo(2, &out);
  EXPECT_EQ(out.size(), 3u);  // + a, b
  expander.ExpandTo(3, &out);
  EXPECT_EQ(out.size(), 4u);  // + root
  // Results match the one-shot search at the final radius.
  std::vector<Neighbor> oneshot = NeighborsWithinRadius(d.dag, d.leaf, 3);
  ASSERT_EQ(oneshot.size(), out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, oneshot[i].id);
    EXPECT_EQ(out[i].hops, oneshot[i].hops);
  }
  // Re-expanding to an already-covered radius adds nothing.
  expander.ExpandTo(3, &out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(Lcs, SelfLcsIsSelf) {
  Diamond d = MakeDiamond();
  LcsResult lcs = LeastCommonSubsumers(d.dag, d.ab, d.ab);
  ASSERT_EQ(lcs.concepts.size(), 1u);
  EXPECT_EQ(lcs.concepts[0], d.ab);
  EXPECT_EQ(lcs.combined_distance, 0u);
}

TEST(Lcs, AncestorPairLcsIsTheAncestor) {
  Diamond d = MakeDiamond();
  LcsResult lcs = LeastCommonSubsumers(d.dag, d.leaf, d.a);
  ASSERT_EQ(lcs.concepts.size(), 1u);
  EXPECT_EQ(lcs.concepts[0], d.a);
  EXPECT_EQ(lcs.combined_distance, 2u);
}

TEST(Lcs, SiblingsWithTwoMinimalSubsumersReturnTies) {
  Diamond d = MakeDiamond();
  // a and b have two minimal common subsumers? No — only root. But ab's
  // parents a, b are both minimal common subsumers of (a-child, b-child)
  // style pairs; construct one: leaf vs a sibling under both a and b.
  ConceptId other = *d.dag.AddConcept("other");
  ASSERT_TRUE(d.dag.AddSubsumption(other, d.a).ok());
  ASSERT_TRUE(d.dag.AddSubsumption(other, d.b).ok());
  LcsResult lcs = LeastCommonSubsumers(d.dag, d.leaf, other);
  // Common subsumers: a, b (distance 2+1), root (3+2): minimal are a and b,
  // tied at combined distance 3.
  ASSERT_EQ(lcs.concepts.size(), 2u);
  EXPECT_EQ(lcs.combined_distance, 3u);
  EXPECT_TRUE((lcs.concepts[0] == d.a && lcs.concepts[1] == d.b) ||
              (lcs.concepts[0] == d.b && lcs.concepts[1] == d.a));
}

TEST(Lcs, ShortestPathTieBreakPrefersCloserSubsumer) {
  // Chain root <- mid <- x ; root <- y. LCS(x, y) should be root (the only
  // common subsumer), at combined distance 2 + 1.
  ConceptDag dag;
  ConceptId root = *dag.AddConcept("root");
  ConceptId mid = *dag.AddConcept("mid");
  ConceptId x = *dag.AddConcept("x");
  ConceptId y = *dag.AddConcept("y");
  ASSERT_TRUE(dag.AddSubsumption(mid, root).ok());
  ASSERT_TRUE(dag.AddSubsumption(x, mid).ok());
  ASSERT_TRUE(dag.AddSubsumption(y, root).ok());
  LcsResult lcs = LeastCommonSubsumers(dag, x, y);
  ASSERT_EQ(lcs.concepts.size(), 1u);
  EXPECT_EQ(lcs.concepts[0], root);
  EXPECT_EQ(lcs.combined_distance, 3u);
}

TEST(Paths, SelfPathIsEmpty) {
  Diamond d = MakeDiamond();
  TaxonomicPath p = ShortestTaxonomicPath(d.dag, d.a, d.a);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.length(), 0u);
  EXPECT_EQ(p.apex, d.a);
}

TEST(Paths, PureGeneralizationPath) {
  Diamond d = MakeDiamond();
  TaxonomicPath p = ShortestTaxonomicPath(d.dag, d.leaf, d.root);
  ASSERT_TRUE(p.found);
  ASSERT_EQ(p.length(), 3u);
  for (HopDirection h : p.hops) {
    EXPECT_EQ(h, HopDirection::kGeneralization);
  }
  EXPECT_EQ(p.apex, d.root);
}

TEST(Paths, PureSpecializationPath) {
  Diamond d = MakeDiamond();
  TaxonomicPath p = ShortestTaxonomicPath(d.dag, d.root, d.leaf);
  ASSERT_TRUE(p.found);
  ASSERT_EQ(p.length(), 3u);
  for (HopDirection h : p.hops) {
    EXPECT_EQ(h, HopDirection::kSpecialization);
  }
}

TEST(Paths, SiblingPathGoesThroughApex) {
  Diamond d = MakeDiamond();
  TaxonomicPath p = ShortestTaxonomicPath(d.dag, d.a, d.b);
  ASSERT_TRUE(p.found);
  ASSERT_EQ(p.length(), 2u);
  EXPECT_EQ(p.apex, d.root);
  EXPECT_EQ(p.hops[0], HopDirection::kGeneralization);
  EXPECT_EQ(p.hops[1], HopDirection::kSpecialization);
}

TEST(Paths, InvalidIdsAreNotFound) {
  Diamond d = MakeDiamond();
  EXPECT_FALSE(ShortestTaxonomicPath(d.dag, d.a, 999).found);
  EXPECT_FALSE(ShortestTaxonomicPath(d.dag, 999, d.a).found);
}

TEST(Paths, SubsumptionDistanceMatchesUpDistance) {
  Diamond d = MakeDiamond();
  EXPECT_EQ(SubsumptionDistance(d.dag, d.leaf, d.root), 3u);
  EXPECT_EQ(SubsumptionDistance(d.dag, d.root, d.leaf),
            std::numeric_limits<uint32_t>::max());
}

// Property sweep over generated DAGs: topo order exists, every concept is
// a descendant of the root, and neighborhood growth is monotone in radius.

class GeneratedDagSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedDagSweep, StructuralInvariants) {
  SnomedGeneratorOptions opts;
  opts.num_concepts = 400;
  opts.seed = GetParam();
  auto eks = GenerateSnomedLike(opts);
  ASSERT_TRUE(eks.ok()) << eks.status();
  ASSERT_TRUE(ValidateExternalSource(eks->dag).ok());

  std::vector<uint32_t> down = DownDistances(eks->dag, eks->root);
  for (ConceptId id = 0; id < eks->dag.num_concepts(); ++id) {
    EXPECT_NE(down[id], std::numeric_limits<uint32_t>::max())
        << "concept " << eks->dag.name(id) << " unreachable from root";
  }

  ConceptId probe = eks->finding_concepts[eks->finding_concepts.size() / 2];
  size_t prev = 0;
  for (uint32_t r = 1; r <= 4; ++r) {
    size_t now = NeighborsWithinRadius(eks->dag, probe, r).size();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedDagSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace medrelax
