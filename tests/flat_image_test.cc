// Tests of the flat snapshot image subsystem: a built snapshot must
// round-trip through WriteImage/LoadFromImage with bit-identical serving
// state, and every class of file corruption must surface as a typed
// Status from the validation pipeline — never UB (the asan job keeps
// this honest).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/flat/format.h"
#include "medrelax/flat/image_view.h"
#include "medrelax/relax/frequency_model.h"
#include "medrelax/serve/snapshot.h"

namespace medrelax {
namespace {

using flat::FlatEdge;
using flat::FlatImageView;
using flat::ImageHeader;
using flat::SectionEntry;
using flat::SectionId;

Result<GeneratedWorld> SmallWorld(uint64_t seed = 7) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 600;
  eks.seed = seed;
  KbGeneratorOptions kb;
  kb.num_findings = 40;
  kb.seed = seed + 1;
  return GenerateWorld(eks, kb);
}

std::shared_ptr<Snapshot> BuildSmallSnapshot(
    uint64_t seed = 7, const SnapshotOptions& options = SnapshotOptions{}) {
  Result<GeneratedWorld> world = SmallWorld(seed);
  EXPECT_TRUE(world.ok()) << world.status();
  Result<std::shared_ptr<Snapshot>> snapshot = Snapshot::Build(
      std::move(world->eks.dag), std::move(world->kb), nullptr, options);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status();
  return *snapshot;
}

/// One image of the seed-7 world, written once and shared read-only by
/// every test in this file (the corruption tests copy its bytes and
/// patch their own throwaway files). Empty on write failure. The path is
/// process-unique: ctest runs each case as its own process, and parallel
/// cases racing one shared filename can map a half-written image.
const std::string& SharedImagePath() {
  static const std::string path = []() -> std::string {
    std::shared_ptr<Snapshot> snap = BuildSmallSnapshot();
    if (snap == nullptr) return {};
    std::string candidate = testing::TempDir() + "flat_image_shared." +
                            std::to_string(::getpid()) + ".img";
    Status written = snap->WriteImage(candidate);
    if (!written.ok()) return {};
    return candidate;
  }();
  return path;
}

std::vector<std::byte> ReadFileBytes(const std::string& path) {
  std::vector<std::byte> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  std::fseek(f, 0, SEEK_END);
  bytes.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    bytes.clear();
  }
  std::fclose(f);
  return bytes;
}

bool WriteFileBytes(const std::string& path,
                    const std::vector<std::byte>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

/// Recomputes the payload checksum after a patch past the header. Header
/// patches (magic, version, file_size) need no restamp: the checksum
/// covers [sizeof(ImageHeader), end) only.
void Restamp(std::vector<std::byte>& bytes) {
  ASSERT_GE(bytes.size(), sizeof(ImageHeader));
  const uint64_t checksum = flat::FnvChecksum(
      std::span<const std::byte>(bytes).subspan(sizeof(ImageHeader)));
  std::memcpy(bytes.data() + offsetof(ImageHeader, payload_checksum),
              &checksum, sizeof(checksum));
}

/// Locates a section's directory entry by walking the directory the way
/// a reader would. `entry_pos` receives the entry's own byte offset so
/// tests can also patch the directory itself.
bool FindSection(const std::vector<std::byte>& bytes, SectionId id,
                 SectionEntry* entry, size_t* entry_pos = nullptr) {
  ImageHeader header;
  if (bytes.size() < sizeof(header)) return false;
  std::memcpy(&header, bytes.data(), sizeof(header));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    const size_t pos = static_cast<size_t>(header.directory_offset) +
                       static_cast<size_t>(i) * sizeof(SectionEntry);
    if (pos + sizeof(SectionEntry) > bytes.size()) return false;
    SectionEntry candidate;
    std::memcpy(&candidate, bytes.data() + pos, sizeof(candidate));
    if (candidate.id == static_cast<uint32_t>(id)) {
      *entry = candidate;
      if (entry_pos != nullptr) *entry_pos = pos;
      return true;
    }
  }
  return false;
}

/// Writes a patched copy of the shared image and returns its path.
std::string WriteCorrupted(const std::string& name,
                           const std::vector<std::byte>& bytes) {
  const std::string path = testing::TempDir() + name;
  EXPECT_TRUE(WriteFileBytes(path, bytes));
  return path;
}

TEST(FlatImageRoundTrip, MappedSnapshotMatchesTheBuiltOne) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::shared_ptr<Snapshot> built = BuildSmallSnapshot();
  Result<std::shared_ptr<Snapshot>> mapped =
      Snapshot::LoadFromImage(SharedImagePath());
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  EXPECT_EQ((*mapped)->source(), SnapshotSource::kMapped);
  EXPECT_EQ(built->source(), SnapshotSource::kBuilt);
  EXPECT_GT((*mapped)->load_micros(), 0u);
  EXPECT_EQ((*mapped)->options_fingerprint(), built->options_fingerprint());

  // The customized DAG round-trips structurally: same concepts, same
  // native + shortcut edge counts, same names and adjacency per concept.
  const ConceptDag& a = built->dag();
  const ConceptDag& b = (*mapped)->dag();
  ASSERT_EQ(a.num_concepts(), b.num_concepts());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_shortcut_edges(), b.num_shortcut_edges());
  for (ConceptId id = 0; id < a.num_concepts(); ++id) {
    ASSERT_EQ(a.name(id), b.name(id)) << "concept " << id;
    const auto& ap = a.parents(id);
    const auto& bp = b.parents(id);
    ASSERT_EQ(ap.size(), bp.size()) << "parents of " << id;
    for (size_t e = 0; e < ap.size(); ++e) {
      EXPECT_EQ(ap[e].target, bp[e].target);
      EXPECT_EQ(ap[e].original_distance, bp[e].original_distance);
      EXPECT_EQ(ap[e].is_shortcut, bp[e].is_shortcut);
    }
  }

  // Ingestion artifacts: contexts, mappings, FEC flags, and the
  // zero-copy frequency table must agree bit-for-bit (doubles were
  // memcpy'd, so exact equality is the correct assertion).
  const IngestionResult& ia = built->ingestion();
  const IngestionResult& ib = (*mapped)->ingestion();
  ASSERT_EQ(ia.contexts.size(), ib.contexts.size());
  for (ContextId c = 0; c < ia.contexts.size(); ++c) {
    EXPECT_EQ(ia.contexts.context(c), ib.contexts.context(c));
  }
  EXPECT_EQ(ia.mappings, ib.mappings);
  EXPECT_EQ(ia.flagged, ib.flagged);
  EXPECT_EQ(ia.unmapped_instances, ib.unmapped_instances);
  EXPECT_EQ(ia.shortcuts_added, ib.shortcuts_added);
  for (ConceptId id = 0; id < a.num_concepts(); ++id) {
    EXPECT_EQ(ia.frequencies.Frequency(id, kNoContext),
              ib.frequencies.Frequency(id, kNoContext));
    for (ContextId c = 0; c < ia.contexts.size(); ++c) {
      ASSERT_EQ(ia.frequencies.Frequency(id, c),
                ib.frequencies.Frequency(id, c))
          << "concept " << id << " ctx " << c;
    }
  }

  // End to end: the mapped snapshot's relaxer produces the identical
  // ranked answer for a mapped instance's concept.
  const ConceptId query = ia.mappings.front().second;
  RelaxationOutcome oa = built->relaxer().RelaxConcept(query, kNoContext);
  RelaxationOutcome ob = (*mapped)->relaxer().RelaxConcept(query, kNoContext);
  EXPECT_EQ(oa.instances, ob.instances);
  ASSERT_EQ(oa.concepts.size(), ob.concepts.size());
  for (size_t i = 0; i < oa.concepts.size(); ++i) {
    EXPECT_EQ(oa.concepts[i].concept_id, ob.concepts[i].concept_id);
    EXPECT_EQ(oa.concepts[i].similarity, ob.concepts[i].similarity);
    EXPECT_EQ(oa.concepts[i].instances, ob.concepts[i].instances);
  }
}

TEST(FlatImageRoundTrip, IngestOptionsRoundTripThroughTheMeta) {
  SnapshotOptions tweaked;
  tweaked.use_exact_mapper = true;
  tweaked.relaxation.top_k = 3;
  std::shared_ptr<Snapshot> built = BuildSmallSnapshot(11, tweaked);
  const std::string path = testing::TempDir() + "flat_image_tweaked.img";
  ASSERT_TRUE(built->WriteImage(path).ok());

  Result<std::shared_ptr<Snapshot>> mapped = Snapshot::LoadFromImage(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE((*mapped)->options().use_exact_mapper);
  EXPECT_EQ((*mapped)->options().relaxation.top_k, 3u);
  EXPECT_EQ((*mapped)->options_fingerprint(), built->options_fingerprint());
}

TEST(FlatImageHardening, MissingFileIsNotFound) {
  Result<std::unique_ptr<FlatImageView>> image =
      FlatImageView::Open(testing::TempDir() + "no_such_image.img");
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsNotFound()) << image.status();

  // The serving entry point surfaces the same typed error (what the
  // server's RELOAD handler prints as `err NotFound: ...`).
  Result<std::shared_ptr<Snapshot>> snap =
      Snapshot::LoadFromImage(testing::TempDir() + "no_such_image.img");
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsNotFound()) << snap.status();
}

TEST(FlatImageHardening, DirectoryPathIsInvalidArgument) {
  Result<std::unique_ptr<FlatImageView>> image =
      FlatImageView::Open(testing::TempDir());
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, FileSmallerThanTheHeaderIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  ASSERT_GE(bytes.size(), sizeof(ImageHeader));
  bytes.resize(sizeof(ImageHeader) - 1);
  const std::string path = WriteCorrupted("flat_tiny.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, TruncatedPayloadIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  ASSERT_GT(bytes.size(), sizeof(ImageHeader) + 256);
  bytes.resize(bytes.size() - 128);
  const std::string path = WriteCorrupted("flat_truncated.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, BadMagicIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  bytes[0] = std::byte{'X'};
  const std::string path = WriteCorrupted("flat_bad_magic.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, WrongVersionIsFailedPrecondition) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  const uint32_t future_version = flat::kImageVersion + 1;
  std::memcpy(bytes.data() + offsetof(ImageHeader, version), &future_version,
              sizeof(future_version));
  const std::string path = WriteCorrupted("flat_wrong_version.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsFailedPrecondition()) << image.status();
}

TEST(FlatImageHardening, DeclaredSizeMismatchIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  const uint64_t wrong_size = bytes.size() + 4096;
  std::memcpy(bytes.data() + offsetof(ImageHeader, file_size), &wrong_size,
              sizeof(wrong_size));
  const std::string path = WriteCorrupted("flat_wrong_size.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, PayloadBitFlipFailsTheChecksum) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  bytes.back() ^= std::byte{0x01};
  const std::string path = WriteCorrupted("flat_bit_flip.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, OutOfBoundsSectionOffsetIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  SectionEntry entry;
  size_t entry_pos = 0;
  ASSERT_TRUE(
      FindSection(bytes, SectionId::kFrequencyTable, &entry, &entry_pos));
  // Point the section past the end of the file, restamp so only the
  // bounds check (not the checksum) can reject it.
  const uint64_t oob_offset = bytes.size() + flat::kSectionAlignment;
  std::memcpy(bytes.data() + entry_pos + offsetof(SectionEntry, offset),
              &oob_offset, sizeof(oob_offset));
  Restamp(bytes);
  const std::string path = WriteCorrupted("flat_oob_section.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, MisalignedSectionOffsetIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  SectionEntry entry;
  size_t entry_pos = 0;
  ASSERT_TRUE(
      FindSection(bytes, SectionId::kFrequencyTable, &entry, &entry_pos));
  const uint64_t skewed = entry.offset + 1;
  std::memcpy(bytes.data() + entry_pos + offsetof(SectionEntry, offset),
              &skewed, sizeof(skewed));
  Restamp(bytes);
  const std::string path = WriteCorrupted("flat_misaligned.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
}

TEST(FlatImageHardening, OverlappingSectionsAreInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  SectionEntry parent_offsets;
  ASSERT_TRUE(
      FindSection(bytes, SectionId::kDagParentOffsets, &parent_offsets));
  SectionEntry child_offsets;
  size_t child_entry_pos = 0;
  ASSERT_TRUE(FindSection(bytes, SectionId::kDagChildOffsets, &child_offsets,
                          &child_entry_pos));
  // Alias the child-offsets section onto the parent-offsets bytes. The
  // entry stays in bounds, aligned, and uniquely-id'd — only the
  // overlap check can reject the aliasing.
  std::memcpy(bytes.data() + child_entry_pos + offsetof(SectionEntry, offset),
              &parent_offsets.offset, sizeof(parent_offsets.offset));
  Restamp(bytes);
  const std::string path = WriteCorrupted("flat_overlap.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
  EXPECT_NE(image.status().message().find("overlaps"), std::string::npos)
      << image.status();
}

TEST(FlatImageHardening, SectionAliasingTheHeaderIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  SectionEntry entry;
  size_t entry_pos = 0;
  ASSERT_TRUE(
      FindSection(bytes, SectionId::kFrequencyTable, &entry, &entry_pos));
  // Offset 0 is 16-byte aligned and in bounds, but the first 48 bytes
  // belong to the header — a section may not serve them as payload.
  const uint64_t zero_offset = 0;
  std::memcpy(bytes.data() + entry_pos + offsetof(SectionEntry, offset),
              &zero_offset, sizeof(zero_offset));
  Restamp(bytes);
  const std::string path = WriteCorrupted("flat_header_alias.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
  EXPECT_NE(image.status().message().find("overlaps"), std::string::npos)
      << image.status();
}

TEST(FlatImageHardening, OversizedMetaCountIsInvalidArgument) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  SectionEntry entry;
  ASSERT_TRUE(FindSection(bytes, SectionId::kMeta, &entry));
  // num_concepts = 2^64 - 1 used to sail through Open: downstream,
  // `expected_count + 1` wrapped to 0 in Strings and vector reserves
  // amplified the lie into bad_alloc. Open's count sanity check (no
  // count can exceed the file size) now rejects it up front.
  const uint64_t huge = ~uint64_t{0};
  std::memcpy(bytes.data() + entry.offset +
                  offsetof(flat::FlatMeta, num_concepts),
              &huge, sizeof(huge));
  Restamp(bytes);
  const std::string path = WriteCorrupted("flat_huge_meta.img", bytes);
  Result<std::unique_ptr<FlatImageView>> image = FlatImageView::Open(path);
  ASSERT_FALSE(image.ok());
  EXPECT_TRUE(image.status().IsInvalidArgument()) << image.status();
  EXPECT_NE(image.status().message().find("num_concepts"), std::string::npos)
      << image.status();
}

TEST(FlatImageHardening, CorruptEdgeTargetIsRejectedByTheCodec) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  SectionEntry entry;
  ASSERT_TRUE(FindSection(bytes, SectionId::kDagParentEdges, &entry));
  ASSERT_GE(entry.size, sizeof(FlatEdge));
  // A structurally valid image whose first parent edge points at a
  // nonexistent concept: the view opens fine (checksum restamped), the
  // codec's semantic validation must catch it.
  const uint32_t bogus_target = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + entry.offset + offsetof(FlatEdge, target),
              &bogus_target, sizeof(bogus_target));
  Restamp(bytes);
  const std::string path = WriteCorrupted("flat_bad_edge.img", bytes);
  ASSERT_TRUE(FlatImageView::Open(path).ok())
      << "restamped image must pass whole-file validation";
  Result<std::shared_ptr<Snapshot>> snap = Snapshot::LoadFromImage(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsInvalidArgument()) << snap.status();
}

TEST(FlatImageHardening, TamperedOptionsFingerprintIsRejectedAtLoad) {
  ASSERT_FALSE(SharedImagePath().empty());
  std::vector<std::byte> bytes = ReadFileBytes(SharedImagePath());
  SectionEntry entry;
  ASSERT_TRUE(FindSection(bytes, SectionId::kMeta, &entry));
  uint64_t fingerprint = 0;
  std::memcpy(&fingerprint,
              bytes.data() + entry.offset +
                  offsetof(flat::FlatMeta, options_fingerprint),
              sizeof(fingerprint));
  fingerprint ^= 0xDEADBEEFull;
  std::memcpy(bytes.data() + entry.offset +
                  offsetof(flat::FlatMeta, options_fingerprint),
              &fingerprint, sizeof(fingerprint));
  Restamp(bytes);
  const std::string path = WriteCorrupted("flat_bad_fingerprint.img", bytes);
  ASSERT_TRUE(FlatImageView::Open(path).ok());
  Result<std::shared_ptr<Snapshot>> snap = Snapshot::LoadFromImage(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsInvalidArgument()) << snap.status();
}

TEST(FrequencyModel, FromNormalizedTableServesTheBorrowedRows) {
  // 2 concepts x 1 context: one context row plus the aggregate row last.
  const std::vector<double> table = {1.0, 0.25,   // context 0
                                     1.0, 0.5};   // aggregate
  FrequencyModel model = FrequencyModel::FromNormalizedTable(
      /*num_concepts=*/2, /*num_contexts=*/1, /*smoothing=*/1.0,
      std::span<const double>(table));
  EXPECT_EQ(model.num_concepts(), 2u);
  EXPECT_EQ(model.num_contexts(), 1u);
  EXPECT_DOUBLE_EQ(model.Frequency(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.Frequency(1, 0), 0.25);
  EXPECT_DOUBLE_EQ(model.Frequency(0, kNoContext), 1.0);
  EXPECT_DOUBLE_EQ(model.Frequency(1, kNoContext), 0.5);
  EXPECT_DOUBLE_EQ(model.Ic(0, kNoContext), 0.0);
  // The exposed table is the borrowed span itself — zero-copy.
  EXPECT_EQ(model.NormalizedTable().data(), table.data());
}

}  // namespace
}  // namespace medrelax
