// Negative-path coverage for the dag_io and kb_io text loaders: truncated
// input, bad headers, duplicate ids, and out-of-range references. These are
// the first code paths the sanitizer presets exercise, so every rejection
// here must come back as a clean error Status, never UB or a crash.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "medrelax/io/dag_io.h"
#include "medrelax/io/kb_io.h"

namespace medrelax {
namespace {

// A well-formed two-concept DAG in the v1 text format.
constexpr const char kGoodDag[] =
    "# medrelax-dag v1\n"
    "C\theart disease\n"
    "C\tcardiomyopathy\n"
    "S\t1\tcmp\n"
    "E\t1\t0\t1\t0\n";

// A well-formed KB: two ontology concepts, one relationship, one
// subsumption, two instances, one triple.
constexpr const char kGoodKb[] =
    "# medrelax-kb v1\n"
    "OC\tDrug\n"
    "OC\tIndication\n"
    "OR\ttreat\t0\t1\n"
    "OS\t1\t0\n"
    "I\t0\taspirin\n"
    "I\t1\trenal disease\n"
    "T\t0\t0\t1\n";

std::string WriteTempFile(const std::string& contents) {
  std::string path =
      testing::TempDir() + "/io_malformed_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::ofstream out(path);
  out << contents;
  return path;
}

// --- dag_io ----------------------------------------------------------------

TEST(DagIoMalformed, GoodFixtureParses) {
  std::stringstream in(kGoodDag);
  auto dag = LoadDag(in);
  ASSERT_TRUE(dag.ok()) << dag.status();
  EXPECT_EQ(dag->num_concepts(), 2u);
  EXPECT_EQ(dag->num_edges(), 1u);
}

TEST(DagIoMalformed, EmptyInputIsBadHeader) {
  std::stringstream in("");
  auto dag = LoadDag(in);
  ASSERT_FALSE(dag.ok());
  EXPECT_TRUE(dag.status().IsInvalidArgument());
}

TEST(DagIoMalformed, WrongHeaderVersionRejected) {
  std::stringstream in("# medrelax-dag v2\nC\tfoo\n");
  EXPECT_TRUE(LoadDag(in).status().IsInvalidArgument());
}

TEST(DagIoMalformed, TruncatedRecordRejected) {
  // "E" with too few fields after a valid prefix of the file.
  std::stringstream in(
      "# medrelax-dag v1\n"
      "C\ta\n"
      "C\tb\n"
      "E\t1\n");
  auto dag = LoadDag(in);
  ASSERT_FALSE(dag.ok());
  EXPECT_TRUE(dag.status().IsInvalidArgument());
}

TEST(DagIoMalformed, DuplicateConceptNameRejected) {
  std::stringstream in(
      "# medrelax-dag v1\n"
      "C\theart disease\n"
      "C\theart disease\n");
  auto dag = LoadDag(in);
  ASSERT_FALSE(dag.ok());
  EXPECT_TRUE(dag.status().IsAlreadyExists()) << dag.status();
}

TEST(DagIoMalformed, EdgeToUndeclaredConceptRejected) {
  // Concept id 7 is never declared; the loader must bound-check, not index.
  std::stringstream in(
      "# medrelax-dag v1\n"
      "C\ta\n"
      "E\t0\t7\t1\t0\n");
  auto dag = LoadDag(in);
  ASSERT_FALSE(dag.ok());
  EXPECT_TRUE(dag.status().IsInvalidArgument());
}

TEST(DagIoMalformed, NonNumericIdRejected) {
  std::stringstream in(
      "# medrelax-dag v1\n"
      "C\ta\n"
      "S\tzero\tsyn\n");
  EXPECT_TRUE(LoadDag(in).status().IsInvalidArgument());
}

TEST(DagIoMalformed, SelfEdgeRejected) {
  std::stringstream in(
      "# medrelax-dag v1\n"
      "C\ta\n"
      "E\t0\t0\t1\t0\n");
  EXPECT_TRUE(LoadDag(in).status().IsInvalidArgument());
}

TEST(DagIoMalformed, TruncatedFileOnDiskRejected) {
  // Cut the good fixture mid-record, as a crashed writer would leave it.
  std::string truncated(kGoodDag, sizeof(kGoodDag) - 8);
  std::string path = WriteTempFile(truncated);
  auto dag = LoadDagFromFile(path);
  EXPECT_FALSE(dag.ok());
  std::remove(path.c_str());
}

TEST(DagIoMalformed, MissingFileIsNotFound) {
  auto dag = LoadDagFromFile("/nonexistent/medrelax/dag.txt");
  ASSERT_FALSE(dag.ok());
  EXPECT_TRUE(dag.status().IsNotFound());
}

// --- kb_io -----------------------------------------------------------------

TEST(KbIoMalformed, GoodFixtureParses) {
  std::stringstream in(kGoodKb);
  auto kb = LoadKb(in);
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(kb->ontology.num_concepts(), 2u);
  EXPECT_EQ(kb->instances.num_instances(), 2u);
  EXPECT_EQ(kb->triples.triples().size(), 1u);
}

TEST(KbIoMalformed, DagHeaderOnKbLoaderRejected) {
  std::stringstream in("# medrelax-dag v1\n");
  EXPECT_TRUE(LoadKb(in).status().IsInvalidArgument());
}

TEST(KbIoMalformed, TruncatedTripleRejected) {
  std::string text(kGoodKb);
  // Drop the last two fields of the trailing "T" record.
  text.resize(text.size() - 5);
  text += "\n";
  std::stringstream in(text);
  auto kb = LoadKb(in);
  ASSERT_FALSE(kb.ok());
  EXPECT_TRUE(kb.status().IsInvalidArgument());
}

TEST(KbIoMalformed, DuplicateOntologyConceptRejected) {
  std::stringstream in(
      "# medrelax-kb v1\n"
      "OC\tDrug\n"
      "OC\tDrug\n");
  auto kb = LoadKb(in);
  ASSERT_FALSE(kb.ok());
  EXPECT_TRUE(kb.status().IsAlreadyExists()) << kb.status();
}

TEST(KbIoMalformed, DuplicateInstanceRejected) {
  std::stringstream in(
      "# medrelax-kb v1\n"
      "OC\tDrug\n"
      "I\t0\taspirin\n"
      "I\t0\tAspirin\n");  // normalizes to the same name + concept
  auto kb = LoadKb(in);
  ASSERT_FALSE(kb.ok());
  EXPECT_TRUE(kb.status().IsAlreadyExists()) << kb.status();
}

TEST(KbIoMalformed, RelationshipEndpointOutOfRangeRejected) {
  std::stringstream in(
      "# medrelax-kb v1\n"
      "OC\tDrug\n"
      "OR\ttreat\t0\t9\n");
  EXPECT_TRUE(LoadKb(in).status().IsInvalidArgument());
}

TEST(KbIoMalformed, TripleWithUnknownInstanceRejected) {
  std::stringstream in(
      "# medrelax-kb v1\n"
      "OC\tDrug\n"
      "OC\tIndication\n"
      "OR\ttreat\t0\t1\n"
      "I\t0\taspirin\n"
      "T\t0\t0\t5\n");
  EXPECT_TRUE(LoadKb(in).status().IsInvalidArgument());
}

TEST(KbIoMalformed, TripleBeforeRelationshipsRejected) {
  // num_relationships() is still 0, so relationship id 0 is out of range.
  std::stringstream in(
      "# medrelax-kb v1\n"
      "OC\tDrug\n"
      "I\t0\taspirin\n"
      "I\t0\tibuprofen\n"
      "T\t0\t0\t1\n");
  EXPECT_TRUE(LoadKb(in).status().IsInvalidArgument());
}

TEST(KbIoMalformed, UnknownRecordTagRejected) {
  std::stringstream in(
      "# medrelax-kb v1\n"
      "ZZ\tDrug\n");
  EXPECT_TRUE(LoadKb(in).status().IsInvalidArgument());
}

TEST(KbIoMalformed, TruncatedFileOnDiskRejected) {
  std::string truncated(kGoodKb, sizeof(kGoodKb) - 6);
  std::string path = WriteTempFile(truncated);
  auto kb = LoadKbFromFile(path);
  EXPECT_FALSE(kb.ok());
  std::remove(path.c_str());
}

TEST(KbIoMalformed, MissingFileIsNotFound) {
  auto kb = LoadKbFromFile("/nonexistent/medrelax/kb.txt");
  ASSERT_FALSE(kb.ok());
  EXPECT_TRUE(kb.status().IsNotFound());
}

// Round-trip after rejection: a loader failure must not leave partially
// constructed state that breaks a subsequent good parse (regression guard
// for reused-stream patterns in callers).
TEST(KbIoMalformed, GoodParseAfterFailedParse) {
  std::stringstream bad("# medrelax-kb v1\nZZ\tx\n");
  EXPECT_FALSE(LoadKb(bad).ok());
  std::stringstream good(kGoodKb);
  EXPECT_TRUE(LoadKb(good).ok());
}

}  // namespace
}  // namespace medrelax
