// Tests of the text substrate: normalization, tokenization, edit
// distances, and tf-idf.

#include <gtest/gtest.h>

#include "medrelax/text/edit_distance.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tfidf.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {
namespace {

TEST(Normalize, LowercasesAndCollapses) {
  EXPECT_EQ(NormalizeTerm("  Pain  In   THROAT "), "pain in throat");
}

TEST(Normalize, StripsPunctuation) {
  EXPECT_EQ(NormalizeTerm("chronic-kidney_disease (stage 1)"),
            "chronic kidney disease stage 1");
}

TEST(Normalize, OptionsCanDisableSteps) {
  NormalizeOptions opts;
  opts.lowercase = false;
  EXPECT_EQ(NormalizeTerm("Ab-c", opts), "Ab c");
  opts.lowercase = true;
  opts.strip_punctuation = false;
  EXPECT_EQ(NormalizeTerm("Ab-c", opts), "ab-c");
}

TEST(Normalize, EmptyInput) { EXPECT_EQ(NormalizeTerm(""), ""); }

TEST(Tokenize, SplitsOnNonWordChars) {
  std::vector<std::string> toks = Tokenize("pain in throat, stage 2");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "pain");
  EXPECT_EQ(toks[4], "2");
}

TEST(Tokenize, EmptyAndAllPunct) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("--- ,, !").empty());
}

TEST(CharNgrams, BasicAndShortInput) {
  std::vector<std::string> grams = CharNgrams("abcd", 3);
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "abc");
  EXPECT_EQ(grams[1], "bcd");
  grams = CharNgrams("ab", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
  EXPECT_TRUE(CharNgrams("", 3).empty());
}

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
}

TEST(Levenshtein, Symmetric) {
  EXPECT_EQ(Levenshtein("headache", "headace"),
            Levenshtein("headace", "headache"));
}

TEST(BoundedLevenshtein, MatchesUnboundedWithinThreshold) {
  const char* pairs[][2] = {
      {"pertussis", "pertusis"}, {"fever", "feever"},
      {"asthma", "astma"},       {"bronchitis", "bronchitis"},
      {"kidney", "kidnye"},
  };
  for (const auto& p : pairs) {
    size_t full = Levenshtein(p[0], p[1]);
    auto bounded = BoundedLevenshtein(p[0], p[1], 2);
    if (full <= 2) {
      ASSERT_TRUE(bounded.has_value()) << p[0] << " vs " << p[1];
      EXPECT_EQ(*bounded, full);
    } else {
      EXPECT_FALSE(bounded.has_value());
    }
  }
}

TEST(BoundedLevenshtein, RejectsBeyondThreshold) {
  EXPECT_FALSE(BoundedLevenshtein("pneumonia", "hypothermia", 2).has_value());
  EXPECT_FALSE(BoundedLevenshtein("abc", "abcdef", 2).has_value());
}

TEST(BoundedLevenshtein, ZeroThresholdIsExactMatch) {
  EXPECT_TRUE(BoundedLevenshtein("x", "x", 0).has_value());
  EXPECT_FALSE(BoundedLevenshtein("x", "y", 0).has_value());
}

// Property sweep: bounded distance agrees with the full DP on random-ish
// string pairs for every threshold.
class BoundedSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BoundedSweep, AgreesWithFullDp) {
  size_t tau = GetParam();
  const char* words[] = {"inflammation", "infection",  "informatics",
                         "infarction",   "insufficiency", "inflamation",
                         "a",            "",           "infla"};
  for (const char* a : words) {
    for (const char* b : words) {
      size_t full = Levenshtein(a, b);
      auto bounded = BoundedLevenshtein(a, b, tau);
      if (full <= tau) {
        ASSERT_TRUE(bounded.has_value()) << a << " vs " << b << " tau " << tau;
        EXPECT_EQ(*bounded, full) << a << " vs " << b;
      } else {
        EXPECT_FALSE(bounded.has_value()) << a << " vs " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BoundedSweep,
                         ::testing::Values(0, 1, 2, 3, 5));

TEST(JaroWinkler, KnownBehaviors) {
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", "xyz"), 0.0);
  // Shared prefix boosts similarity.
  EXPECT_GT(JaroWinkler("headache", "headaches"),
            JaroWinkler("headache", "backache"));
  double jw = JaroWinkler("martha", "marhta");
  EXPECT_GT(jw, 0.94);
  EXPECT_LT(jw, 1.0);
}

TEST(TfIdf, CountsAndWeights) {
  TfIdfModel model;
  model.AddDocument({{"fever", 3}, {"cough", 1}});
  model.AddDocument({{"fever", 1}});
  model.AddDocument({{"rash", 2}});
  EXPECT_EQ(model.num_documents(), 3u);
  EXPECT_EQ(model.TermFrequency("fever"), 4u);
  EXPECT_EQ(model.DocumentFrequency("fever"), 2u);
  EXPECT_EQ(model.TermFrequency("nope"), 0u);
  EXPECT_DOUBLE_EQ(model.Idf("nope"), 0.0);
  // Rarer terms get a higher idf.
  EXPECT_GT(model.Idf("rash"), model.Idf("fever"));
  // Weight = tf * idf.
  EXPECT_DOUBLE_EQ(model.Weight("fever"), 4.0 * model.Idf("fever"));
}

TEST(TfIdf, ZeroCountEntriesIgnored) {
  TfIdfModel model;
  model.AddDocument({{"x", 0}});
  EXPECT_EQ(model.DocumentFrequency("x"), 0u);
}

}  // namespace
}  // namespace medrelax
