#ifndef MEDRELAX_BENCH_BENCH_COMMON_H_
#define MEDRELAX_BENCH_BENCH_COMMON_H_

// Shared setup for the reproduction benches: the "standard world" every
// table is generated against — a SNOMED-like external source, a MED-shaped
// KB, the monograph corpus, and both ingestion variants. Parameters follow
// the paper's scale cues (100-query workloads, k = 10, τ = 2, w_gen = 0.9).

#include <cstdio>
#include <memory>

#include "medrelax/datasets/corpus_generator.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/datasets/query_generator.h"
#include "medrelax/eval/gold_standard.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax::bench {

struct StandardWorld {
  GeneratedWorld world;
  Corpus corpus;           // in-domain monographs (the "MED corpus")
  Corpus general_corpus;   // out-of-domain corpus for Embedding-pre-trained
  std::unique_ptr<NameIndex> index;
  std::unique_ptr<ExactMatcher> exact;
  std::unique_ptr<EditDistanceMatcher> edit;
  IngestionResult with_corpus;
  IngestionResult without_corpus;
};

inline std::unique_ptr<StandardWorld> BuildStandardWorld(
    size_t eks_concepts = 4000, size_t drugs = 120, size_t findings = 800,
    uint64_t seed = 2026) {
  auto s = std::make_unique<StandardWorld>();
  SnomedGeneratorOptions eks;
  eks.num_concepts = eks_concepts;
  eks.seed = seed;
  KbGeneratorOptions kb;
  kb.num_drugs = drugs;
  kb.num_findings = findings;
  kb.seed = seed + 1;
  Result<GeneratedWorld> world = GenerateWorld(eks, kb);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return nullptr;
  }
  s->world = std::move(*world);

  CorpusGeneratorOptions corpus_opts;
  corpus_opts.seed = seed + 2;
  s->corpus = GenerateMonographCorpus(s->world, corpus_opts);
  GeneralCorpusOptions general_opts;
  general_opts.seed = seed + 3;
  s->general_corpus = GenerateGeneralCorpus(s->world.eks, general_opts);

  s->index = std::make_unique<NameIndex>(&s->world.eks.dag);
  s->exact = std::make_unique<ExactMatcher>(s->index.get());
  s->edit = std::make_unique<EditDistanceMatcher>(s->index.get(),
                                                  EditMatcherOptions{});
  Result<IngestionResult> with = RunIngestion(
      s->world.kb, &s->world.eks.dag, *s->edit, &s->corpus,
      IngestionOptions{});
  if (!with.ok()) {
    std::fprintf(stderr, "ingestion failed: %s\n",
                 with.status().ToString().c_str());
    return nullptr;
  }
  s->with_corpus = std::move(*with);
  Result<IngestionResult> without = RunIngestion(
      s->world.kb, &s->world.eks.dag, *s->edit, nullptr, IngestionOptions{});
  if (!without.ok()) return nullptr;
  s->without_corpus = std::move(*without);
  return s;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace medrelax::bench

#endif  // MEDRELAX_BENCH_BENCH_COMMON_H_
