// Table 1 reproduction: accuracy of the three instance-mapping methods
// (EXACT, EDIT with τ = 2, EMBEDDING) on 100 commonly used condition
// surfaces with realistic noise (typos, synonyms, reorderings, drops).
//
// Paper reference values (Section 7.2, Table 1):
//   EXACT      P=100.00  R=83.33  F1=90.01
//   EDIT       P= 96.36  R=88.33  F1=92.17
//   EMBEDDING  P= 96.49  R=91.67  F1=94.02
// Absolute numbers depend on the (synthetic) noise mix; the shape to check
// is: EXACT has the highest precision and lowest recall, EMBEDDING the
// highest recall and F1, EDIT in between.

#include <cstdio>

#include "bench/bench_common.h"
#include "medrelax/embedding/sif.h"
#include "medrelax/eval/mapping_eval.h"
#include "medrelax/matching/embedding_matcher.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

using namespace medrelax;         // NOLINT — bench brevity
using namespace medrelax::bench;  // NOLINT

int main() {
  std::printf("Building the standard world...\n");
  auto s = BuildStandardWorld();
  if (s == nullptr) return 1;

  // Train in-domain word vectors + SIF for the EMBEDDING method.
  WordVectorOptions wv;
  wv.dimensions = 50;
  WordVectors vectors = WordVectors::Train(s->corpus, wv);
  std::vector<std::vector<std::string>> reference;
  for (ConceptId id = 0; id < s->world.eks.dag.num_concepts(); ++id) {
    reference.push_back(Tokenize(NormalizeTerm(s->world.eks.dag.name(id))));
  }
  SifModel sif(&vectors, reference, SifOptions{});
  EmbeddingMatcher embedding(s->index.get(), &sif, EmbeddingMatcherOptions{});

  MappingWorkloadOptions workload;
  workload.num_queries = 100;
  std::vector<MappingQuery> queries =
      GenerateMappingQueries(s->world.eks, workload);

  std::printf("\nTable 1: Accuracy of mapping methods "
              "(100 noisy condition surfaces)\n");
  PrintRule(56);
  std::printf("%-12s %10s %10s %10s %9s\n", "Methods", "Precision", "Recall",
              "F1", "answered");
  PrintRule(56);
  for (const MappingFunction* method :
       {static_cast<const MappingFunction*>(s->exact.get()),
        static_cast<const MappingFunction*>(s->edit.get()),
        static_cast<const MappingFunction*>(&embedding)}) {
    MappingEvalRow row = EvaluateMappingMethod(*method, queries);
    std::printf("%-12s %10.2f %10.2f %10.2f %6zu/%zu\n", row.method.c_str(),
                row.scores.precision, row.scores.recall, row.scores.f1,
                row.answered, row.total);
  }
  PrintRule(56);
  std::printf("paper:       EXACT 100.00/83.33/90.01   EDIT 96.36/88.33/"
              "92.17   EMBEDDING 96.49/91.67/94.02\n");
  return 0;
}
