// Closed-loop throughput benches for the serve/ subsystem:
//
//   * BM_ServingCold — result cache disabled: every request pays the full
//     relaxation (mapper + radius search + geometry scoring). This is the
//     pre-serving cost of the workload.
//   * BM_ServingWarm — cache enabled and pre-warmed over the query pool:
//     the steady state of a production mix dominated by repeated
//     near-identical queries. The warm/cold ratio is the headline number;
//     the serving layer targets >= 5x.
//   * BM_ServingDuplicateHeavy — cache disabled, every request hits the
//     same key: the single-flight + batch-drain path. The counter
//     requests_per_invocation (completed / relaxer invocations) is the
//     coalescing headline; the serving layer targets >= 5x.
//   * BM_ServingSameContextBatch — cache disabled, pool cycled so each
//     key repeats within a burst: batch drain groups same-context
//     requests through one shared-frontier RelaxBatch pass.
//   * BM_ServingSkewedMix — a Zipf hot set with scan-pollution bursts
//     against a cache smaller than one burst: the decayed-activity
//     policy's reason to exist. An untimed strict-LRU twin replays the
//     identical trace; hit_rate_advantage (activity minus LRU) is the
//     counter CI floors (scripts/bench_diff.py --floor).
//   * BM_GeometryMemoSkewedMix — the same trace shape against the
//     SimilarityModel geometry memo, policy vs strict-LRU twin.
//
// All run closed-loop (submit a batch, wait for every future) over
// worker-count args. Worker threads do the serving, so wall time is the
// meaningful axis: UseRealTime(). Pre-1.8 google-benchmark binary — pass
// plain-double --benchmark_min_time=0.05 and filter with
// --benchmark_filter='BM_Serving(Cold|Warm)/...'.
//
// Cold/Warm pin max_batch = 1 so their numbers keep meaning "per-request
// cost without coalescing" across the introduction of batch drain.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/graph/geometry.h"
#include "medrelax/relax/similarity.h"
#include "medrelax/serve/relaxation_service.h"
#include "medrelax/serve/result_cache.h"

using namespace medrelax;  // NOLINT — bench brevity

namespace {

constexpr size_t kBatch = 64;       // requests in flight per iteration
constexpr size_t kPoolSize = 16;    // distinct queries cycled through

// One snapshot shared by every bench registration (1-core box: the
// offline build dominates startup, pay it once).
std::shared_ptr<Snapshot>& SharedSnapshot() {
  static std::shared_ptr<Snapshot> snapshot = [] {
    SnomedGeneratorOptions eks;
    eks.num_concepts = 2000;
    eks.seed = 2026;
    KbGeneratorOptions kb;
    kb.num_drugs = 80;
    kb.num_findings = 120;
    kb.seed = 2027;
    Result<GeneratedWorld> world = GenerateWorld(eks, kb);
    if (!world.ok()) return std::shared_ptr<Snapshot>{};
    Result<std::shared_ptr<Snapshot>> built =
        Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                        nullptr, SnapshotOptions{});
    if (!built.ok()) return std::shared_ptr<Snapshot>{};
    return *built;
  }();
  return snapshot;
}

std::vector<ConceptId> QueryPool(const Snapshot& snap) {
  std::vector<ConceptId> pool;
  const std::vector<bool>& flagged = snap.ingestion().flagged;
  for (ConceptId id = 0; id < flagged.size() && pool.size() < kPoolSize;
       ++id) {
    if (flagged[id]) pool.push_back(id);
  }
  return pool;
}

// Submits one closed-loop batch and blocks until every answer lands.
void ServeBatch(RelaxationService& service,
                const std::vector<ConceptId>& pool, size_t offset) {
  std::vector<std::future<Result<RelaxResponse>>> futures;
  futures.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    RelaxRequest request;
    request.concept_id = pool[(offset + i) % pool.size()];
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    Result<RelaxResponse> response = future.get();
    benchmark::DoNotOptimize(response);
  }
}

void RunServingBench(benchmark::State& state, bool warm_cache) {
  std::shared_ptr<Snapshot> snap = SharedSnapshot();
  if (snap == nullptr) {
    state.SkipWithError("snapshot build failed");
    return;
  }
  std::vector<ConceptId> pool = QueryPool(*snap);
  if (pool.empty()) {
    state.SkipWithError("no flagged query pool");
    return;
  }

  ServiceOptions options;
  options.num_workers = static_cast<unsigned>(state.range(0));
  options.queue_capacity = 4 * kBatch;
  options.cache.capacity = warm_cache ? 4096 : 0;
  options.max_batch = 1;  // measure uncoalesced per-request cost
  RelaxationService service(snap, options);
  if (warm_cache) ServeBatch(service, pool, 0);  // populate every key

  size_t offset = 0;
  for (auto _ : state) {
    ServeBatch(service, pool, offset);
    offset += kBatch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.SetLabel(warm_cache ? "cache=warm" : "cache=off");
}

// Duplicate-heavy / same-context mixes: cache disabled so every saved
// relaxation is attributable to single-flight coalescing or batch drain,
// not the result cache. With the cache off, cache_misses counts exactly
// the requests that reached the relaxer (group leaders), so
//   requests_per_invocation = completed / cache_misses
// is the coalescing ratio the serving layer gates on (>= 5x).
void RunCoalescingBench(benchmark::State& state, size_t pool_stride) {
  std::shared_ptr<Snapshot> snap = SharedSnapshot();
  if (snap == nullptr) {
    state.SkipWithError("snapshot build failed");
    return;
  }
  std::vector<ConceptId> pool = QueryPool(*snap);
  if (pool.empty()) {
    state.SkipWithError("no flagged query pool");
    return;
  }
  if (pool_stride < pool.size()) pool.resize(pool_stride);

  ServiceOptions options;
  options.num_workers = static_cast<unsigned>(state.range(0));
  options.queue_capacity = 4 * kBatch;
  options.cache.capacity = 0;   // isolate coalescing from caching
  options.max_batch = kBatch;   // drain whole bursts in one pass
  RelaxationService service(snap, options);

  for (auto _ : state) {
    ServeBatch(service, pool, 0);  // fixed offset: bursts repeat keys
  }
  const ServiceStatsSnapshot stats = service.Stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["relaxer_invocations"] =
      benchmark::Counter(static_cast<double>(stats.cache_misses),
                         benchmark::Counter::kAvgIterations);
  state.counters["requests_per_invocation"] =
      stats.cache_misses > 0 ? static_cast<double>(stats.completed) /
                                   static_cast<double>(stats.cache_misses)
                             : 0.0;
  state.SetLabel(pool_stride == 1 ? "mix=duplicate-heavy"
                                  : "mix=same-context");
}

void BM_ServingDuplicateHeavy(benchmark::State& state) {
  RunCoalescingBench(state, /*pool_stride=*/1);  // one hot key
}
BENCHMARK(BM_ServingDuplicateHeavy)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServingSameContextBatch(benchmark::State& state) {
  RunCoalescingBench(state, /*pool_stride=*/8);  // 8 keys x 8 repeats
}
BENCHMARK(BM_ServingSameContextBatch)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServingCold(benchmark::State& state) {
  RunServingBench(state, /*warm_cache=*/false);
}
BENCHMARK(BM_ServingCold)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServingWarm(benchmark::State& state) {
  RunServingBench(state, /*warm_cache=*/true);
}
BENCHMARK(BM_ServingWarm)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- Skewed-mix cache-policy benches -------------------------------------
//
// The workload the activity policy is built for: a Zipf(1.1)-popular hot
// set alternating with scan-pollution bursts as large as the whole
// cache. Strict LRU lets every burst flush the hot set; decayed activity
// plus the second-hit admission doorkeeper keeps it resident. Both
// benches time the activity side only and replay the identical trace
// through an untimed strict-LRU twin, reporting
//   hit_rate           — the timed activity cache
//   hit_rate_lru       — the LRU twin on the same trace
//   hit_rate_advantage — activity minus LRU; CI floors this above zero
// so a regression back toward recency-only eviction fails the gate.

constexpr size_t kSkewCacheCapacity = 32;  // one scan burst == capacity
constexpr size_t kSkewHotKeys = 16;
constexpr double kSkewZipfTheta = 1.1;
constexpr size_t kSkewTraceLen = 2048;

// One trace slot: a Zipf-ranked hot key, or the serial number of a
// scan-pollution key (minted into distinct cache keys by the bench).
struct SkewSlot {
  bool scan = false;
  size_t index = 0;  // hot rank, or scan serial
};

// Alternating blocks: kSkewCacheCapacity Zipf-hot draws, then a
// kSkewCacheCapacity-request scan burst — each burst large enough to
// evict every resident entry under strict LRU. Seeded, so every run (and
// the LRU twin replay) sees the same sequence.
std::vector<SkewSlot> SkewedMixSlots() {
  std::vector<double> cdf(kSkewHotKeys);
  double total = 0;
  for (size_t r = 0; r < kSkewHotKeys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), kSkewZipfTheta);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;

  std::mt19937_64 rng(2028);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<SkewSlot> trace;
  trace.reserve(kSkewTraceLen);
  size_t scan_serial = 0;
  while (trace.size() < kSkewTraceLen) {
    for (size_t i = 0; i < kSkewCacheCapacity && trace.size() < kSkewTraceLen;
         ++i) {
      const size_t rank = static_cast<size_t>(
          std::upper_bound(cdf.begin(), cdf.end(), unit(rng)) - cdf.begin());
      trace.push_back({false, std::min(rank, kSkewHotKeys - 1)});
    }
    for (size_t i = 0; i < kSkewCacheCapacity && trace.size() < kSkewTraceLen;
         ++i) {
      trace.push_back({true, scan_serial++});
    }
  }
  return trace;
}

void BM_ServingSkewedMix(benchmark::State& state) {
  std::shared_ptr<Snapshot> snap = SharedSnapshot();
  if (snap == nullptr) {
    state.SkipWithError("snapshot build failed");
    return;
  }
  // Hot pool and a disjoint scan pool of flagged concepts; scan keys are
  // minted distinct as (concept, top_k) combinations, so they recur only
  // every |scan| * 8 scans — far beyond the cache's lifetime.
  std::vector<ConceptId> flagged;
  const std::vector<bool>& mask = snap->ingestion().flagged;
  for (ConceptId id = 0; id < mask.size() && flagged.size() < kSkewHotKeys + 64;
       ++id) {
    if (mask[id]) flagged.push_back(id);
  }
  if (flagged.size() < kSkewHotKeys + 8) {
    state.SkipWithError("not enough flagged concepts");
    return;
  }
  const std::vector<ConceptId> hot(flagged.begin(),
                                   flagged.begin() + kSkewHotKeys);
  const std::vector<ConceptId> scan(flagged.begin() + kSkewHotKeys,
                                    flagged.end());
  const std::vector<SkewSlot> trace = SkewedMixSlots();
  const auto request_for = [&](const SkewSlot& slot) {
    RelaxRequest request;
    if (slot.scan) {
      request.concept_id = scan[slot.index % scan.size()];
      request.top_k = 1 + (slot.index / scan.size()) % 8;
    } else {
      request.concept_id = hot[slot.index];
    }
    return request;
  };

  ServiceOptions options;
  options.num_workers = static_cast<unsigned>(state.range(0));
  options.queue_capacity = 4 * kBatch;
  options.cache.capacity = kSkewCacheCapacity;
  options.cache.num_shards = 1;  // one ranked pool, same shape as the twin
  options.max_batch = 1;
  RelaxationService service(snap, options);

  size_t offset = 0;
  for (auto _ : state) {
    std::vector<std::future<Result<RelaxResponse>>> futures;
    futures.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      futures.push_back(
          service.Submit(request_for(trace[(offset + i) % trace.size()])));
    }
    for (auto& future : futures) {
      Result<RelaxResponse> response = future.get();
      benchmark::DoNotOptimize(response);
    }
    offset += kBatch;
  }

  // Untimed strict-LRU twin over the identical key sequence. Only the
  // eviction decisions matter, so misses insert a shared dummy outcome;
  // top_k is resolved to the snapshot default exactly like the service
  // keys its cache.
  ResultCacheOptions lru;
  lru.capacity = kSkewCacheCapacity;
  lru.num_shards = 1;
  lru.policy.eviction = CachePolicy::Eviction::kLru;
  ResultCache twin(lru);
  const std::shared_ptr<const RelaxationOutcome> dummy =
      std::make_shared<RelaxationOutcome>();
  const uint64_t default_k = snap->relaxer().options().top_k;
  for (size_t i = 0; i < offset; ++i) {
    const RelaxRequest request = request_for(trace[i % trace.size()]);
    const CacheKey key{request.concept_id, kNoContext,
                       request.top_k != 0 ? request.top_k : default_k,
                       /*options_fingerprint=*/0, /*generation=*/1};
    if (twin.Lookup(key) == nullptr) twin.Insert(key, dummy);
  }

  const ServiceStatsSnapshot stats = service.Stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  const double completed =
      stats.completed > 0 ? static_cast<double>(stats.completed) : 1.0;
  const double twin_total =
      static_cast<double>(twin.hits() + twin.misses());
  const double hit_rate = static_cast<double>(stats.cache_hits) / completed;
  const double hit_rate_lru =
      twin_total > 0 ? static_cast<double>(twin.hits()) / twin_total : 0.0;
  state.counters["hit_rate"] = hit_rate;
  state.counters["hit_rate_lru"] = hit_rate_lru;
  state.counters["hit_rate_advantage"] = hit_rate - hit_rate_lru;
  state.counters["admission_rejects"] =
      static_cast<double>(service.cache().admission_rejects());
  state.counters["sweeps_completed"] =
      static_cast<double>(service.cache().sweeps_completed());
  state.SetLabel("mix=zipf+scan");
}
BENCHMARK(BM_ServingSkewedMix)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GeometryMemoSkewedMix(benchmark::State& state) {
  std::shared_ptr<Snapshot> snap = SharedSnapshot();
  if (snap == nullptr) {
    state.SkipWithError("snapshot build failed");
    return;
  }
  // Hot pairs live on low concept ids; scan pairs are minted from two
  // disjoint id ranges (400 x 3 combinations, so a scan pair recurs only
  // every 1200 scans). The memo keys on the pair alone, which is all the
  // policy comparison needs — stored geometries are never re-read for
  // answers here, so misses store an empty placeholder.
  const auto pair_for = [](const SkewSlot& slot) {
    if (slot.scan) {
      return std::pair<ConceptId, ConceptId>(
          100 + slot.index % 400, 600 + (slot.index / 400) % 3);
    }
    return std::pair<ConceptId, ConceptId>(2 * slot.index, 2 * slot.index + 1);
  };

  SimilarityOptions sim = snap->relaxer().similarity().options();
  sim.memoize_geometry = true;
  sim.geometry_cache_capacity = kSkewCacheCapacity;
  sim.geometry_cache_shards = 1;
  sim.geometry_cache_policy.eviction = CachePolicy::Eviction::kDecayedActivity;
  const SimilarityModel model(&snap->dag(), &snap->ingestion().frequencies,
                              sim);
  SimilarityOptions lru_sim = sim;
  lru_sim.geometry_cache_policy.eviction = CachePolicy::Eviction::kLru;
  const SimilarityModel twin(&snap->dag(), &snap->ingestion().frequencies,
                             lru_sim);

  const std::vector<SkewSlot> trace = SkewedMixSlots();
  uint64_t hits = 0;
  uint64_t lookups = 0;
  size_t offset = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < kBatch; ++i) {
      const auto [from, to] = pair_for(trace[(offset + i) % trace.size()]);
      if (model.CachedGeometry(from, to).has_value()) {
        ++hits;
      } else {
        model.StoreGeometry(from, to, PairGeometry{});
      }
      ++lookups;
    }
    offset += kBatch;
  }

  uint64_t twin_hits = 0;
  for (size_t i = 0; i < offset; ++i) {
    const auto [from, to] = pair_for(trace[i % trace.size()]);
    if (twin.CachedGeometry(from, to).has_value()) {
      ++twin_hits;
    } else {
      twin.StoreGeometry(from, to, PairGeometry{});
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(lookups));
  const double total = lookups > 0 ? static_cast<double>(lookups) : 1.0;
  const double hit_rate = static_cast<double>(hits) / total;
  const double hit_rate_lru = static_cast<double>(twin_hits) / total;
  state.counters["hit_rate"] = hit_rate;
  state.counters["hit_rate_lru"] = hit_rate_lru;
  state.counters["hit_rate_advantage"] = hit_rate - hit_rate_lru;
  state.SetLabel("mix=zipf+scan");
}
BENCHMARK(BM_GeometryMemoSkewedMix)->Unit(benchmark::kMicrosecond);

// Offline-image pipeline headline: BM_SnapshotBuild is the full offline
// phase (Algorithm 1 + mapper + relaxer wiring) on a 64k-concept world;
// BM_SnapshotLoadImage boots the identical serving state from the flat
// image medrelax_ingest freezes. Their ratio is the O(1)-RELOAD claim —
// the serving layer gates on load >= 50x faster than build.

Result<GeneratedWorld> BigWorld() {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 65536;
  eks.seed = 2026;
  KbGeneratorOptions kb;
  kb.num_drugs = 120;
  kb.num_findings = 400;
  kb.seed = 2027;
  return GenerateWorld(eks, kb);
}

// The 64k-concept image, ingested once per bench process. Empty on
// failure.
const std::string& BigImagePath() {
  static const std::string path = []() -> std::string {
    Result<GeneratedWorld> world = BigWorld();
    if (!world.ok()) return {};
    Result<std::shared_ptr<Snapshot>> built =
        Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                        nullptr, SnapshotOptions{});
    if (!built.ok()) return {};
    const char* tmp = std::getenv("TMPDIR");
    std::string candidate = std::string(tmp != nullptr ? tmp : "/tmp") +
                            "/medrelax_bench_snapshot.img";
    if (!(*built)->WriteImage(candidate).ok()) return {};
    return candidate;
  }();
  return path;
}

void BM_SnapshotBuild(benchmark::State& state) {
  for (auto _ : state) {
    // World generation happens off the clock: the bench measures the
    // offline phase, not the synthetic data generator.
    state.PauseTiming();
    Result<GeneratedWorld> world = BigWorld();
    if (!world.ok()) {
      state.SkipWithError("world generation failed");
      return;
    }
    state.ResumeTiming();
    Result<std::shared_ptr<Snapshot>> built =
        Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                        nullptr, SnapshotOptions{});
    benchmark::DoNotOptimize(built);
    if (!built.ok()) {
      state.SkipWithError("snapshot build failed");
      return;
    }
  }
  state.SetLabel("concepts=64k");
}
BENCHMARK(BM_SnapshotBuild)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoadImage(benchmark::State& state) {
  const std::string& path = BigImagePath();
  if (path.empty()) {
    state.SkipWithError("image ingest failed");
    return;
  }
  for (auto _ : state) {
    Result<std::shared_ptr<Snapshot>> mapped = Snapshot::LoadFromImage(path);
    benchmark::DoNotOptimize(mapped);
    if (!mapped.ok()) {
      state.SkipWithError("image load failed");
      return;
    }
  }
  state.SetLabel("concepts=64k");
}
BENCHMARK(BM_SnapshotLoadImage)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
