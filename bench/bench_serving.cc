// Closed-loop throughput benches for the serve/ subsystem:
//
//   * BM_ServingCold — result cache disabled: every request pays the full
//     relaxation (mapper + radius search + geometry scoring). This is the
//     pre-serving cost of the workload.
//   * BM_ServingWarm — cache enabled and pre-warmed over the query pool:
//     the steady state of a production mix dominated by repeated
//     near-identical queries. The warm/cold ratio is the headline number;
//     the serving layer targets >= 5x.
//   * BM_ServingDuplicateHeavy — cache disabled, every request hits the
//     same key: the single-flight + batch-drain path. The counter
//     requests_per_invocation (completed / relaxer invocations) is the
//     coalescing headline; the serving layer targets >= 5x.
//   * BM_ServingSameContextBatch — cache disabled, pool cycled so each
//     key repeats within a burst: batch drain groups same-context
//     requests through one shared-frontier RelaxBatch pass.
//
// All run closed-loop (submit a batch, wait for every future) over
// worker-count args. Worker threads do the serving, so wall time is the
// meaningful axis: UseRealTime(). Pre-1.8 google-benchmark binary — pass
// plain-double --benchmark_min_time=0.05 and filter with
// --benchmark_filter='BM_Serving(Cold|Warm)/...'.
//
// Cold/Warm pin max_batch = 1 so their numbers keep meaning "per-request
// cost without coalescing" across the introduction of batch drain.

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/serve/relaxation_service.h"

using namespace medrelax;  // NOLINT — bench brevity

namespace {

constexpr size_t kBatch = 64;       // requests in flight per iteration
constexpr size_t kPoolSize = 16;    // distinct queries cycled through

// One snapshot shared by every bench registration (1-core box: the
// offline build dominates startup, pay it once).
std::shared_ptr<Snapshot>& SharedSnapshot() {
  static std::shared_ptr<Snapshot> snapshot = [] {
    SnomedGeneratorOptions eks;
    eks.num_concepts = 2000;
    eks.seed = 2026;
    KbGeneratorOptions kb;
    kb.num_drugs = 80;
    kb.num_findings = 120;
    kb.seed = 2027;
    Result<GeneratedWorld> world = GenerateWorld(eks, kb);
    if (!world.ok()) return std::shared_ptr<Snapshot>{};
    Result<std::shared_ptr<Snapshot>> built =
        Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                        nullptr, SnapshotOptions{});
    if (!built.ok()) return std::shared_ptr<Snapshot>{};
    return *built;
  }();
  return snapshot;
}

std::vector<ConceptId> QueryPool(const Snapshot& snap) {
  std::vector<ConceptId> pool;
  const std::vector<bool>& flagged = snap.ingestion().flagged;
  for (ConceptId id = 0; id < flagged.size() && pool.size() < kPoolSize;
       ++id) {
    if (flagged[id]) pool.push_back(id);
  }
  return pool;
}

// Submits one closed-loop batch and blocks until every answer lands.
void ServeBatch(RelaxationService& service,
                const std::vector<ConceptId>& pool, size_t offset) {
  std::vector<std::future<Result<RelaxResponse>>> futures;
  futures.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    RelaxRequest request;
    request.concept_id = pool[(offset + i) % pool.size()];
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    Result<RelaxResponse> response = future.get();
    benchmark::DoNotOptimize(response);
  }
}

void RunServingBench(benchmark::State& state, bool warm_cache) {
  std::shared_ptr<Snapshot> snap = SharedSnapshot();
  if (snap == nullptr) {
    state.SkipWithError("snapshot build failed");
    return;
  }
  std::vector<ConceptId> pool = QueryPool(*snap);
  if (pool.empty()) {
    state.SkipWithError("no flagged query pool");
    return;
  }

  ServiceOptions options;
  options.num_workers = static_cast<unsigned>(state.range(0));
  options.queue_capacity = 4 * kBatch;
  options.cache.capacity = warm_cache ? 4096 : 0;
  options.max_batch = 1;  // measure uncoalesced per-request cost
  RelaxationService service(snap, options);
  if (warm_cache) ServeBatch(service, pool, 0);  // populate every key

  size_t offset = 0;
  for (auto _ : state) {
    ServeBatch(service, pool, offset);
    offset += kBatch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.SetLabel(warm_cache ? "cache=warm" : "cache=off");
}

// Duplicate-heavy / same-context mixes: cache disabled so every saved
// relaxation is attributable to single-flight coalescing or batch drain,
// not the result cache. With the cache off, cache_misses counts exactly
// the requests that reached the relaxer (group leaders), so
//   requests_per_invocation = completed / cache_misses
// is the coalescing ratio the serving layer gates on (>= 5x).
void RunCoalescingBench(benchmark::State& state, size_t pool_stride) {
  std::shared_ptr<Snapshot> snap = SharedSnapshot();
  if (snap == nullptr) {
    state.SkipWithError("snapshot build failed");
    return;
  }
  std::vector<ConceptId> pool = QueryPool(*snap);
  if (pool.empty()) {
    state.SkipWithError("no flagged query pool");
    return;
  }
  if (pool_stride < pool.size()) pool.resize(pool_stride);

  ServiceOptions options;
  options.num_workers = static_cast<unsigned>(state.range(0));
  options.queue_capacity = 4 * kBatch;
  options.cache.capacity = 0;   // isolate coalescing from caching
  options.max_batch = kBatch;   // drain whole bursts in one pass
  RelaxationService service(snap, options);

  for (auto _ : state) {
    ServeBatch(service, pool, 0);  // fixed offset: bursts repeat keys
  }
  const ServiceStatsSnapshot stats = service.Stats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  state.counters["relaxer_invocations"] =
      benchmark::Counter(static_cast<double>(stats.cache_misses),
                         benchmark::Counter::kAvgIterations);
  state.counters["requests_per_invocation"] =
      stats.cache_misses > 0 ? static_cast<double>(stats.completed) /
                                   static_cast<double>(stats.cache_misses)
                             : 0.0;
  state.SetLabel(pool_stride == 1 ? "mix=duplicate-heavy"
                                  : "mix=same-context");
}

void BM_ServingDuplicateHeavy(benchmark::State& state) {
  RunCoalescingBench(state, /*pool_stride=*/1);  // one hot key
}
BENCHMARK(BM_ServingDuplicateHeavy)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServingSameContextBatch(benchmark::State& state) {
  RunCoalescingBench(state, /*pool_stride=*/8);  // 8 keys x 8 repeats
}
BENCHMARK(BM_ServingSameContextBatch)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServingCold(benchmark::State& state) {
  RunServingBench(state, /*warm_cache=*/false);
}
BENCHMARK(BM_ServingCold)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServingWarm(benchmark::State& state) {
  RunServingBench(state, /*warm_cache=*/true);
}
BENCHMARK(BM_ServingWarm)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Offline-image pipeline headline: BM_SnapshotBuild is the full offline
// phase (Algorithm 1 + mapper + relaxer wiring) on a 64k-concept world;
// BM_SnapshotLoadImage boots the identical serving state from the flat
// image medrelax_ingest freezes. Their ratio is the O(1)-RELOAD claim —
// the serving layer gates on load >= 50x faster than build.

Result<GeneratedWorld> BigWorld() {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 65536;
  eks.seed = 2026;
  KbGeneratorOptions kb;
  kb.num_drugs = 120;
  kb.num_findings = 400;
  kb.seed = 2027;
  return GenerateWorld(eks, kb);
}

// The 64k-concept image, ingested once per bench process. Empty on
// failure.
const std::string& BigImagePath() {
  static const std::string path = []() -> std::string {
    Result<GeneratedWorld> world = BigWorld();
    if (!world.ok()) return {};
    Result<std::shared_ptr<Snapshot>> built =
        Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                        nullptr, SnapshotOptions{});
    if (!built.ok()) return {};
    const char* tmp = std::getenv("TMPDIR");
    std::string candidate = std::string(tmp != nullptr ? tmp : "/tmp") +
                            "/medrelax_bench_snapshot.img";
    if (!(*built)->WriteImage(candidate).ok()) return {};
    return candidate;
  }();
  return path;
}

void BM_SnapshotBuild(benchmark::State& state) {
  for (auto _ : state) {
    // World generation happens off the clock: the bench measures the
    // offline phase, not the synthetic data generator.
    state.PauseTiming();
    Result<GeneratedWorld> world = BigWorld();
    if (!world.ok()) {
      state.SkipWithError("world generation failed");
      return;
    }
    state.ResumeTiming();
    Result<std::shared_ptr<Snapshot>> built =
        Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                        nullptr, SnapshotOptions{});
    benchmark::DoNotOptimize(built);
    if (!built.ok()) {
      state.SkipWithError("snapshot build failed");
      return;
    }
  }
  state.SetLabel("concepts=64k");
}
BENCHMARK(BM_SnapshotBuild)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoadImage(benchmark::State& state) {
  const std::string& path = BigImagePath();
  if (path.empty()) {
    state.SkipWithError("image ingest failed");
    return;
  }
  for (auto _ : state) {
    Result<std::shared_ptr<Snapshot>> mapped = Snapshot::LoadFromImage(path);
    benchmark::DoNotOptimize(mapped);
    if (!mapped.ok()) {
      state.SkipWithError("image load failed");
      return;
    }
  }
  state.SetLabel("concepts=64k");
}
BENCHMARK(BM_SnapshotLoadImage)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
