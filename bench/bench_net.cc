// Microbenches for the net/ frontend, socketpair-driven so they measure
// our framing and wakeup machinery rather than the TCP stack:
//
//   * BM_LineFraming/<line_bytes> — bytes through Connection's read
//     path: the client end writes batches of '\n'-framed lines, the
//     loop is pumped until every line was delivered. Reassembly, lazy
//     buffer compaction, and handler dispatch are the costs under test.
//   * BM_EventLoopPostWakeup — cross-thread Post() round trip: a worker
//     thread posts, the loop thread (this thread, via RunOnce) drains.
//     This is the path every completed RELAX reply takes back to its
//     connection, so its latency bounds reply latency under load.
//
// Pre-1.8 google-benchmark binary — plain-double --benchmark_min_time.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "medrelax/net/connection.h"
#include "medrelax/net/event_loop.h"

using namespace medrelax;  // NOLINT — bench brevity

namespace {

class CountingHandler : public net::Connection::Handler {
 public:
  void OnLine(net::Connection&, std::string) override { ++lines; }
  void OnClose(net::Connection&, const Status&) override { closed = true; }
  size_t lines = 0;
  bool closed = false;
};

void BM_LineFraming(benchmark::State& state) {
  const size_t line_bytes = static_cast<size_t>(state.range(0));
  net::EventLoop loop;
  CountingHandler handler;
  int fds[2] = {-1, -1};
  if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                 fds) != 0) {
    state.SkipWithError("socketpair failed");
    return;
  }
  net::ConnectionLimits limits;
  limits.max_line_bytes = line_bytes + 16;
  net::Connection conn(loop, fds[1], /*id=*/1, limits, &handler);
  if (!conn.Start().ok()) {
    state.SkipWithError("Connection::Start failed");
    close(fds[0]);
    return;
  }

  // One batch per iteration, sized to fit the socketpair buffer so the
  // writer never blocks (nonblocking send would short-write otherwise).
  constexpr size_t kLinesPerBatch = 32;
  std::string batch;
  for (size_t i = 0; i < kLinesPerBatch; ++i) {
    batch += std::string(line_bytes, 'q');
    batch += '\n';
  }

  size_t expected = 0;
  for (auto _ : state) {
    size_t off = 0;
    expected += kLinesPerBatch;
    while (off < batch.size()) {
      const ssize_t n =
          send(fds[0], batch.data() + off, batch.size() - off, MSG_NOSIGNAL);
      if (n > 0) off += static_cast<size_t>(n);
      // Socket full: let the connection drain it before writing more.
      while (handler.lines < expected && loop.RunOnce(0) > 0) {
      }
    }
    while (handler.lines < expected) loop.RunOnce(/*timeout_ms=*/-1);
  }
  state.SetBytesProcessed(static_cast<int64_t>(
      state.iterations() * batch.size()));
  state.counters["lines/s"] = benchmark::Counter(
      static_cast<double>(expected), benchmark::Counter::kIsRate);
  close(fds[0]);
}
BENCHMARK(BM_LineFraming)->Arg(16)->Arg(128)->Arg(1024);

void BM_EventLoopPostWakeup(benchmark::State& state) {
  net::EventLoop loop;
  std::atomic<size_t> posted{0};
  std::atomic<size_t> drained{0};
  std::atomic<bool> done{false};

  // The worker plays RelaxationService: it completes "requests" by
  // posting tasks at the loop. Keeping a small window in flight mimics
  // the closed-loop server (replies never pile up unboundedly).
  std::thread worker([&] {
    constexpr size_t kWindow = 64;
    while (!done.load(std::memory_order_acquire)) {
      if (posted.load(std::memory_order_relaxed) -
              drained.load(std::memory_order_acquire) < kWindow) {
        loop.Post([&drained] {
          drained.fetch_add(1, std::memory_order_release);
        });
        posted.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (auto _ : state) {
    loop.RunOnce(/*timeout_ms=*/1);
  }
  done.store(true, std::memory_order_release);
  worker.join();
  while (loop.RunOnce(0) > 0) {
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(drained.load()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventLoopPostWakeup)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
