// Table 3 reproduction: the simulated user study of Section 7.2 — 20
// participants grade the conversational system with and without query
// relaxation on two tasks (T1: 20 questions around given in-KB conditions;
// T2: 10 free-form questions, possibly out-of-KB, colloquially phrased).
// The 1-5 grading protocol deducts one point per failed attempt (up to 4
// rephrasings); the paper's orthogonal incident classes (missing answers,
// flow complaints, unexplained lows, overwhelming output) are injected at
// matching rates.
//
// Paper reference averages: QR T1 3.73, T2 3.31; no-QR T1 3.06, T2 2.67 —
// i.e. roughly a 20% lift from relaxation, larger on T1 than T2.

#include <cstdio>

#include "bench/bench_common.h"
#include "medrelax/embedding/sif.h"
#include "medrelax/eval/user_study.h"
#include "medrelax/matching/embedding_matcher.h"
#include "medrelax/nli/dialogue_manager.h"
#include "medrelax/nli/training_data.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

using namespace medrelax;         // NOLINT — bench brevity
using namespace medrelax::bench;  // NOLINT

namespace {

void PrintDistribution(const char* label, const GradeDistribution& qr,
                       const GradeDistribution& no_qr) {
  static const char* kNames[] = {"1 (Very dissatisfied)", "2 (Dissatisfied)",
                                 "3 (Okay)", "4 (Satisfied)",
                                 "5 (Very satisfied)"};
  std::printf("%s\n", label);
  for (size_t g = 0; g < 5; ++g) {
    std::printf("  %-22s %7.2f%% %10.2f%%\n", kNames[g], qr.pct[g],
                no_qr.pct[g]);
  }
  std::printf("  %-22s %8.2f %11.2f\n", "AVG", qr.average, no_qr.average);
}

}  // namespace

int main() {
  std::printf("Building the standard world...\n");
  auto s = BuildStandardWorld();
  if (s == nullptr) return 1;

  IntentClassifier intents;
  TrainingDataOptions td;
  intents.Train(
      GenerateContextTrainingData(s->world.kb, s->with_corpus.contexts, td),
      s->with_corpus.contexts.size());
  EntityExtractor entities(&s->world.kb,
                           BuildQueryVocabulary(s->world.kb.ontology));
  // Section 7.2 adopts the EMBEDDING mapping method after Table 1; the
  // conversational system resolves colloquial/reordered/typo'd terms
  // through it.
  std::printf("Training in-domain embeddings for the term mapper...\n");
  WordVectorOptions wv;
  wv.dimensions = 50;
  WordVectors vectors = WordVectors::Train(s->corpus, wv);
  std::vector<std::vector<std::string>> reference;
  for (ConceptId id = 0; id < s->world.eks.dag.num_concepts(); ++id) {
    reference.push_back(Tokenize(NormalizeTerm(s->world.eks.dag.name(id))));
  }
  SifModel sif(&vectors, reference, SifOptions{});
  EmbeddingMatcher mapper(s->index.get(), &sif, EmbeddingMatcherOptions{});

  RelaxationOptions ropts;
  ropts.top_k = 7;
  QueryRelaxer relaxer(&s->world.eks.dag, &s->with_corpus, &mapper,
                       SimilarityOptions{}, ropts);

  DialogueManager with_qr(&s->world.kb, &s->with_corpus, &intents, &entities,
                          &relaxer, DialogueOptions{});
  DialogueManager without_qr(&s->world.kb, &s->with_corpus, &intents,
                             &entities, nullptr, DialogueOptions{});

  auto make_system = [](DialogueManager* dialogue) {
    return [dialogue](const NlQuestion& question,
                      const std::string& surface) {
      dialogue->Reset();
      // The participant re-words the question with this attempt's surface.
      std::string text = question.text;
      size_t pos = text.find(question.term_surface);
      if (pos != std::string::npos) {
        text = text.substr(0, pos) + surface +
               text.substr(pos + question.term_surface.size());
      }
      return dialogue->Handle(text).surfaced_concepts;
    };
  };

  GoldStandardOptions gold_opts;
  gold_opts.max_distance = 4;  // the SME relatedness ball on this world
  GoldStandard gold(&s->world, gold_opts);
  UserStudyOptions opts;  // 20 participants, 20 + 10 questions
  std::printf("Running the simulated study (%zu participants, %zu + %zu "
              "questions each, both systems)...\n\n",
              opts.participants, opts.t1_questions_per_participant,
              opts.t2_questions_per_participant);
  UserStudyResult qr =
      RunUserStudy(s->world, gold, make_system(&with_qr), opts);
  UserStudyResult no_qr =
      RunUserStudy(s->world, gold, make_system(&without_qr), opts);

  std::printf("Table 3: Watson-style assistant with and without QR\n");
  PrintRule(52);
  std::printf("  %-22s %8s %11s\n", "Score", "QR", "no QR");
  PrintRule(52);
  PrintDistribution("T1 (20 given concepts):", qr.t1, no_qr.t1);
  PrintDistribution("T2 (10 free-form):", qr.t2, no_qr.t2);
  PrintRule(52);
  std::printf("paper AVG: QR T1 3.73, T2 3.31; no-QR T1 3.06, T2 2.67\n");
  return 0;
}
