// Scaling benchmarks backing the complexity claims of Sections 5.1-5.2:
//
//   * offline ingestion is a one-time cost that scales near-linearly in
//     |V| + |E| (plus the mapping and frequency terms);
//   * online relaxation is Θ(N log N) in the candidate count and is kept
//     fast by the shortcut edges (small radius suffices);
//   * the shortcut customization shrinks the radius needed to reach the
//     flagged set;
//   * before/after: BM_OnlineRelaxationLegacy replays the pre-engine hot
//     path (per-radius re-search + per-pair full-graph geometry, no
//     memoization) against BM_OnlineRelaxation's shared-frontier engine;
//   * BM_RelaxBatch measures multi-threaded batch throughput.
//
// google-benchmark binary: run with --benchmark_filter=... to narrow.

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "medrelax/graph/traversal.h"
#include "medrelax/relax/relax_stats.h"

using namespace medrelax;         // NOLINT — bench brevity
using namespace medrelax::bench;  // NOLINT

namespace {

// Shared worlds per size, built once (1-core box: keep them modest).
std::unique_ptr<StandardWorld>& WorldForSize(size_t num_concepts) {
  static std::map<size_t, std::unique_ptr<StandardWorld>> cache;
  auto& slot = cache[num_concepts];
  if (slot == nullptr) {
    slot = BuildStandardWorld(num_concepts, /*drugs=*/80,
                              /*findings=*/num_concepts / 16,
                              /*seed=*/2026);
  }
  return slot;
}

void BM_OfflineIngestion(benchmark::State& state) {
  const size_t num_concepts = static_cast<size_t>(state.range(0));
  SnomedGeneratorOptions eks_opts;
  eks_opts.num_concepts = num_concepts;
  eks_opts.seed = 99;
  KbGeneratorOptions kb_opts;
  kb_opts.num_drugs = 60;
  kb_opts.num_findings = num_concepts / 16;
  kb_opts.seed = 100;
  for (auto _ : state) {
    state.PauseTiming();
    // Regenerate the DAG each iteration: ingestion mutates it (shortcuts).
    Result<GeneratedWorld> world = GenerateWorld(eks_opts, kb_opts);
    if (!world.ok()) state.SkipWithError("world generation failed");
    NameIndex index(&world->eks.dag);
    EditDistanceMatcher matcher(&index, EditMatcherOptions{});
    state.ResumeTiming();
    Result<IngestionResult> result = RunIngestion(
        world->kb, &world->eks.dag, matcher, nullptr, IngestionOptions{});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("concepts=" + std::to_string(num_concepts));
}
BENCHMARK(BM_OfflineIngestion)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

// The pre-engine online path, kept verbatim as the before/after baseline:
// every radius increment re-runs the bounded search from scratch, and
// every candidate pair pays the naive full-graph geometry (pass a model
// with memoize_geometry = false to reproduce the original cost profile).
RelaxationOutcome LegacyRelaxConcept(const ConceptDag& dag,
                                     const IngestionResult& ingestion,
                                     const SimilarityModel& model,
                                     ConceptId query, ContextId context,
                                     const RelaxationOptions& options) {
  RelaxationOutcome outcome;
  outcome.query_concept = query;
  const size_t k = options.top_k;
  const std::vector<bool>& flagged = ingestion.flagged;
  uint32_t radius = options.radius;
  std::vector<ConceptId> candidates;
  for (;;) {
    candidates.clear();
    if (query < flagged.size() && flagged[query]) candidates.push_back(query);
    for (const Neighbor& n : NeighborsWithinRadius(dag, query, radius)) {
      if (n.id < flagged.size() && flagged[n.id]) candidates.push_back(n.id);
    }
    size_t covered = 0;
    for (ConceptId b : candidates) {
      auto it = ingestion.concept_instances.find(b);
      if (it != ingestion.concept_instances.end()) {
        covered += it->second.size();
      }
    }
    if (!options.dynamic_radius || covered >= k ||
        radius >= options.max_radius) {
      break;
    }
    ++radius;
  }
  outcome.effective_radius = radius;
  std::vector<ScoredConcept> scored;
  scored.reserve(candidates.size());
  for (ConceptId b : candidates) {
    ScoredConcept sc;
    sc.concept_id = b;
    sc.similarity = model.Similarity(query, b, context);
    auto it = ingestion.concept_instances.find(b);
    if (it != ingestion.concept_instances.end()) sc.instances = it->second;
    scored.push_back(std::move(sc));
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredConcept& a, const ScoredConcept& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.concept_id < b.concept_id;
            });
  for (ScoredConcept& sc : scored) {
    if (outcome.instances.size() >= k) break;
    for (InstanceId inst : sc.instances) {
      if (outcome.instances.size() >= k) break;
      outcome.instances.push_back(inst);
    }
    outcome.concepts.push_back(std::move(sc));
  }
  return outcome;
}

void BM_OnlineRelaxation(benchmark::State& state) {
  const size_t num_concepts = static_cast<size_t>(state.range(0));
  auto& s = WorldForSize(num_concepts);
  if (s == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  RelaxationOptions ropts;
  ropts.radius = 4;
  ropts.top_k = 10;
  QueryRelaxer relaxer(&s->world.eks.dag, &s->with_corpus, s->edit.get(),
                       SimilarityOptions{}, ropts);
  const std::vector<ConceptId>& region = s->world.eks.finding_concepts;
  size_t i = 0;
  RelaxStats total;
  for (auto _ : state) {
    RelaxationOutcome outcome = relaxer.RelaxConcept(
        region[i % region.size()], s->world.ctx_indication);
    total.Accumulate(outcome.stats);
    benchmark::DoNotOptimize(outcome);
    ++i;
  }
  const double runs = std::max<double>(1.0, static_cast<double>(i));
  state.counters["avg_candidates"] =
      static_cast<double>(total.candidates_scanned) / runs;
  state.counters["avg_neighbors"] =
      static_cast<double>(total.neighbors_visited) / runs;
  state.counters["cache_hit_rate"] =
      total.geometry_cache_hits + total.geometry_cache_misses == 0
          ? 0.0
          : static_cast<double>(total.geometry_cache_hits) /
                static_cast<double>(total.geometry_cache_hits +
                                    total.geometry_cache_misses);
  state.SetLabel("concepts=" + std::to_string(num_concepts));
}
BENCHMARK(BM_OnlineRelaxation)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMicrosecond);

void BM_OnlineRelaxationLegacy(benchmark::State& state) {
  const size_t num_concepts = static_cast<size_t>(state.range(0));
  auto& s = WorldForSize(num_concepts);
  if (s == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  RelaxationOptions ropts;
  ropts.radius = 4;
  ropts.top_k = 10;
  SimilarityOptions sopts;
  sopts.memoize_geometry = false;  // the legacy path cached nothing
  SimilarityModel model(&s->world.eks.dag, &s->with_corpus.frequencies,
                        sopts);
  const std::vector<ConceptId>& region = s->world.eks.finding_concepts;
  size_t i = 0;
  for (auto _ : state) {
    RelaxationOutcome outcome =
        LegacyRelaxConcept(s->world.eks.dag, s->with_corpus, model,
                           region[i % region.size()],
                           s->world.ctx_indication, ropts);
    benchmark::DoNotOptimize(outcome);
    ++i;
  }
  state.SetLabel("concepts=" + std::to_string(num_concepts));
}
BENCHMARK(BM_OnlineRelaxationLegacy)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMicrosecond);

void BM_RelaxBatch(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  auto& s = WorldForSize(8000);
  if (s == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  RelaxationOptions ropts;
  ropts.radius = 4;
  ropts.top_k = 10;
  QueryRelaxer relaxer(&s->world.eks.dag, &s->with_corpus, s->edit.get(),
                       SimilarityOptions{}, ropts);
  const std::vector<ConceptId>& region = s->world.eks.finding_concepts;
  std::vector<ConceptQuery> queries;
  queries.reserve(64);
  for (size_t i = 0; i < 64; ++i) {
    queries.push_back({region[i % region.size()], s->world.ctx_indication});
  }
  for (auto _ : state) {
    std::vector<RelaxationOutcome> outcomes =
        relaxer.RelaxBatch(queries, threads);
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_RelaxBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_OnlineRelaxationByRadius(benchmark::State& state) {
  auto& s = WorldForSize(4000);
  if (s == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  RelaxationOptions ropts;
  ropts.radius = static_cast<uint32_t>(state.range(0));
  ropts.dynamic_radius = false;
  ropts.top_k = 10;
  QueryRelaxer relaxer(&s->world.eks.dag, &s->with_corpus, s->edit.get(),
                       SimilarityOptions{}, ropts);
  const std::vector<ConceptId>& region = s->world.eks.finding_concepts;
  size_t i = 0;
  size_t candidates = 0, runs = 0;
  for (auto _ : state) {
    RelaxationOutcome outcome = relaxer.RelaxConcept(
        region[i % region.size()], s->world.ctx_indication);
    candidates += outcome.concepts.size();
    ++runs;
    benchmark::DoNotOptimize(outcome);
    ++i;
  }
  state.counters["avg_concepts"] =
      runs == 0 ? 0.0 : static_cast<double>(candidates) / runs;
}
BENCHMARK(BM_OnlineRelaxationByRadius)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_NeighborhoodWithVsWithoutShortcuts(benchmark::State& state) {
  const bool with_shortcuts = state.range(0) == 1;
  // Build two DAG variants once.
  static std::unique_ptr<StandardWorld> customized =
      BuildStandardWorld(4000, 80, 250, 1234);
  static std::unique_ptr<GeneratedWorld> plain = [] {
    SnomedGeneratorOptions eks;
    eks.num_concepts = 4000;
    eks.seed = 1234;
    KbGeneratorOptions kb;
    kb.num_drugs = 80;
    kb.num_findings = 250;
    kb.seed = 1235;
    auto w = GenerateWorld(eks, kb);
    return w.ok() ? std::make_unique<GeneratedWorld>(std::move(*w)) : nullptr;
  }();
  if (customized == nullptr || plain == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  const ConceptDag& dag =
      with_shortcuts ? customized->world.eks.dag : plain->eks.dag;
  const std::vector<ConceptId>& region =
      with_shortcuts ? customized->world.eks.finding_concepts
                     : plain->eks.finding_concepts;
  size_t i = 0;
  size_t reached = 0, runs = 0;
  for (auto _ : state) {
    std::vector<Neighbor> n =
        NeighborsWithinRadius(dag, region[i % region.size()], 2);
    reached += n.size();
    ++runs;
    benchmark::DoNotOptimize(n);
    ++i;
  }
  state.counters["avg_reached"] =
      runs == 0 ? 0.0 : static_cast<double>(reached) / runs;
  state.SetLabel(with_shortcuts ? "with-shortcuts" : "without-shortcuts");
}
BENCHMARK(BM_NeighborhoodWithVsWithoutShortcuts)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_PrecomputeSimilarities(benchmark::State& state) {
  auto& s = WorldForSize(2000);
  if (s == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  RelaxationOptions ropts;
  ropts.radius = 4;
  for (auto _ : state) {
    // A fresh relaxer each iteration so the cache starts cold.
    QueryRelaxer relaxer(&s->world.eks.dag, &s->with_corpus, s->edit.get(),
                         SimilarityOptions{}, ropts);
    size_t pairs = relaxer.PrecomputeSimilarities();
    benchmark::DoNotOptimize(pairs);
    state.counters["pairs"] = static_cast<double>(pairs);
  }
}
BENCHMARK(BM_PrecomputeSimilarities)->Unit(benchmark::kMillisecond);

void BM_OnlineRelaxationWarm(benchmark::State& state) {
  auto& s = WorldForSize(4000);
  if (s == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  RelaxationOptions ropts;
  ropts.radius = 4;
  ropts.top_k = 10;
  static std::unique_ptr<QueryRelaxer> warm = [&] {
    auto r = std::make_unique<QueryRelaxer>(&s->world.eks.dag, &s->with_corpus,
                                            s->edit.get(), SimilarityOptions{},
                                            ropts);
    r->PrecomputeSimilarities();
    return r;
  }();
  const std::vector<ConceptId>& pool = s->world.kb_finding_concepts;
  size_t i = 0;
  for (auto _ : state) {
    RelaxationOutcome outcome =
        warm->RelaxConcept(pool[i % pool.size()], s->world.ctx_indication);
    benchmark::DoNotOptimize(outcome);
    ++i;
  }
}
BENCHMARK(BM_OnlineRelaxationWarm)->Unit(benchmark::kMicrosecond);

void BM_SimilarityComputation(benchmark::State& state) {
  auto& s = WorldForSize(4000);
  if (s == nullptr) {
    state.SkipWithError("world build failed");
    return;
  }
  SimilarityModel model(&s->world.eks.dag, &s->with_corpus.frequencies,
                        SimilarityOptions{});
  const std::vector<ConceptId>& pool = s->world.kb_finding_concepts;
  size_t i = 0;
  for (auto _ : state) {
    double sim = model.Similarity(pool[i % pool.size()],
                                  pool[(i + 7) % pool.size()],
                                  s->world.ctx_indication);
    benchmark::DoNotOptimize(sim);
    ++i;
  }
}
BENCHMARK(BM_SimilarityComputation)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
