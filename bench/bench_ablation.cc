// Ablation benches for the design choices DESIGN.md calls out:
//
//   1. generalization weight w_gen sweep (the paper fixes 0.9 empirically;
//      the sweep shows the quality curve and where 0.9 sits);
//   2. learned weights via logistic regression vs the fixed 0.9/1.0;
//   3. radius policy: fixed r vs dynamic growth;
//   4. tf-idf adjustment of raw mention counts on/off;
//   5. shortcut edges on/off at small radius (a semantics-invariance
//      check: shortcuts carry original distances, so quality must match
//      and only traversal latency may differ).

#include <cstdio>

#include "bench/bench_common.h"
#include "medrelax/common/random.h"
#include "medrelax/eval/relaxation_eval.h"
#include "medrelax/relax/feedback.h"
#include "medrelax/relax/weight_learner.h"

using namespace medrelax;         // NOLINT — bench brevity
using namespace medrelax::bench;  // NOLINT

namespace {

Table2Row RunConfig(const StandardWorld& s,
                    const std::vector<RelaxationQuery>& queries,
                    const GoldStandard& gold, const IngestionResult& ingestion,
                    const SimilarityOptions& sim,
                    const RelaxationOptions& relax, const char* name) {
  QueryRelaxer relaxer(&s.world.eks.dag, &ingestion, s.edit.get(), sim,
                       relax);
  return EvaluateRanker(name, MakeRelaxerRanker(&relaxer), queries, gold,
                        s.world.kb_finding_concepts, 10);
}

}  // namespace

int main() {
  std::printf("Building the standard world...\n");
  auto s = BuildStandardWorld();
  if (s == nullptr) return 1;
  GoldStandardOptions gold_opts;
  gold_opts.max_distance = 4;  // the SME relatedness ball on this world
  GoldStandard gold(&s->world, gold_opts);
  RelaxationWorkloadOptions workload;
  workload.num_queries = 100;
  std::vector<RelaxationQuery> queries =
      GenerateRelaxationQueries(s->world, workload);

  RelaxationOptions ropts;
  ropts.radius = 4;
  ropts.top_k = 10;

  // --- 1. w_gen sweep. ---
  std::printf("\nAblation 1: generalization weight sweep "
              "(w_spec = 1.0, radius 4, k = 10)\n");
  PrintRule(46);
  std::printf("%8s %9s %9s %9s\n", "w_gen", "P@10", "R@10", "F1");
  PrintRule(46);
  for (double w : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    SimilarityOptions sim;
    sim.generalization_weight = w;
    Table2Row row =
        RunConfig(*s, queries, gold, s->with_corpus, sim, ropts, "sweep");
    std::printf("%8.2f %9.2f %9.2f %9.2f%s\n", w, row.p_at_10, row.r_at_10,
                row.f1, w == 0.9 ? "   <- paper's setting" : "");
  }

  // --- 2. learned weights. ---
  std::printf("\nAblation 2: learned direction weights "
              "(logistic regression on gold-labeled pairs)\n");
  {
    Rng rng(77);
    std::vector<WeightExample> examples;
    const std::vector<ConceptId>& pool = s->world.kb_finding_concepts;
    for (const RelaxationQuery& q : queries) {
      for (int draw = 0; draw < 4; ++draw) {
        ConceptId candidate = pool[rng.UniformU64(pool.size())];
        examples.push_back({q.concept_id, candidate,
                            gold.IsRelevant(q.concept_id, q.context,
                                            candidate)});
      }
    }
    LearnedWeights learned = LearnDirectionWeights(
        s->world.eks.dag, examples, WeightLearnerOptions{});
    std::printf("  learned: w_gen = %.3f, w_spec = %.3f "
                "(train accuracy %.1f%%, %zu examples)\n",
                learned.generalization_weight, learned.specialization_weight,
                100.0 * learned.train_accuracy, learned.num_examples);
    SimilarityOptions sim;
    sim.generalization_weight = learned.generalization_weight;
    sim.specialization_weight = learned.specialization_weight;
    Table2Row row =
        RunConfig(*s, queries, gold, s->with_corpus, sim, ropts, "learned");
    SimilarityOptions fixed;
    Table2Row base =
        RunConfig(*s, queries, gold, s->with_corpus, fixed, ropts, "fixed");
    std::printf("  fixed 0.9/1.0: F1 = %.2f ; learned: F1 = %.2f\n", base.f1,
                row.f1);
  }

  // --- 3. radius policy. ---
  std::printf("\nAblation 3: radius policy (k = 10)\n");
  PrintRule(56);
  std::printf("%-22s %9s %9s %9s\n", "policy", "P@10", "R@10", "F1");
  PrintRule(56);
  for (uint32_t r : {1u, 2u, 4u, 8u}) {
    RelaxationOptions fixed = ropts;
    fixed.radius = r;
    fixed.dynamic_radius = false;
    Table2Row row = RunConfig(*s, queries, gold, s->with_corpus,
                              SimilarityOptions{}, fixed, "fixed");
    std::printf("fixed r=%-14u %9.2f %9.2f %9.2f\n", r, row.p_at_10,
                row.r_at_10, row.f1);
  }
  {
    RelaxationOptions dynamic = ropts;
    dynamic.radius = 1;
    dynamic.dynamic_radius = true;
    dynamic.max_radius = 16;
    Table2Row row = RunConfig(*s, queries, gold, s->with_corpus,
                              SimilarityOptions{}, dynamic, "dynamic");
    std::printf("%-22s %9.2f %9.2f %9.2f\n", "dynamic (grow from 1)",
                row.p_at_10, row.r_at_10, row.f1);
  }

  // --- 4. tf-idf on/off. ---
  std::printf("\nAblation 4: tf-idf adjustment of mention counts\n");
  {
    // Raw-count ingestion (fresh run; DAG already customized, idempotent).
    IngestionOptions raw_opts;
    raw_opts.use_tfidf = false;
    Result<IngestionResult> raw = RunIngestion(
        s->world.kb, &s->world.eks.dag, *s->edit, &s->corpus, raw_opts);
    if (raw.ok()) {
      Table2Row with_tfidf =
          RunConfig(*s, queries, gold, s->with_corpus, SimilarityOptions{},
                    ropts, "tfidf");
      Table2Row without = RunConfig(*s, queries, gold, *raw,
                                    SimilarityOptions{}, ropts, "raw");
      std::printf("  tf-idf on : F1 = %.2f\n", with_tfidf.f1);
      std::printf("  tf-idf off: F1 = %.2f\n", without.f1);
    }
  }

  // --- 5. shortcuts at small radius. ---
  std::printf("\nAblation 5: shortcut edges at radius 1 "
              "(invariance check: same quality either way, since shortcut "
              "edges keep original distances)\n");
  {
    // A fresh, never-customized world for the "off" arm.
    SnomedGeneratorOptions eks;
    eks.num_concepts = 4000;
    eks.seed = 2026;
    KbGeneratorOptions kb;
    kb.num_drugs = 120;
    kb.num_findings = 800;
    kb.seed = 2027;
    Result<GeneratedWorld> plain_world = GenerateWorld(eks, kb);
    if (plain_world.ok()) {
      CorpusGeneratorOptions corpus_opts;
      corpus_opts.seed = 2028;
      Corpus plain_corpus =
          GenerateMonographCorpus(*plain_world, corpus_opts);
      NameIndex plain_index(&plain_world->eks.dag);
      EditDistanceMatcher plain_matcher(&plain_index, EditMatcherOptions{});
      IngestionOptions no_shortcut;
      no_shortcut.add_shortcut_edges = false;
      Result<IngestionResult> plain_ingestion =
          RunIngestion(plain_world->kb, &plain_world->eks.dag, plain_matcher,
                       &plain_corpus, no_shortcut);
      if (plain_ingestion.ok()) {
        RelaxationOptions tight = ropts;
        tight.radius = 1;
        tight.dynamic_radius = false;
        RelaxationWorkloadOptions plain_workload = workload;
        std::vector<RelaxationQuery> plain_queries =
            GenerateRelaxationQueries(*plain_world, plain_workload);
        GoldStandardOptions plain_gold_opts;
        plain_gold_opts.max_distance = 4;
        GoldStandard plain_gold(&*plain_world, plain_gold_opts);
        QueryRelaxer off(&plain_world->eks.dag, &*plain_ingestion,
                         &plain_matcher, SimilarityOptions{}, tight);
        Table2Row off_row = EvaluateRanker(
            "off", MakeRelaxerRanker(&off), plain_queries, plain_gold,
            plain_world->kb_finding_concepts, 10);
        Table2Row on_row = RunConfig(*s, queries, gold, s->with_corpus,
                                     SimilarityOptions{}, tight, "on");
        std::printf("  shortcuts on : F1 = %.2f at radius 1\n", on_row.f1);
        std::printf("  shortcuts off: F1 = %.2f at radius 1\n", off_row.f1);
      }
    }
  }
  // --- 6. relevance feedback rounds (the paper's proposed improvement). ---
  std::printf("\nAblation 6: relevance feedback (oracle accepts/rejects the "
              "top 3 per round)\n");
  {
    QueryRelaxer base(&s->world.eks.dag, &s->with_corpus, s->edit.get(),
                      SimilarityOptions{}, ropts);
    FeedbackRelaxer feedback(&base, &s->world.eks.dag, FeedbackOptions{});
    for (int round = 1; round <= 4; ++round) {
      ConceptRanker ranker = [&](const RelaxationQuery& q) {
        RelaxationOutcome outcome =
            feedback.RelaxConcept(q.concept_id, q.context);
        std::vector<ConceptId> ranked;
        for (const ScoredConcept& sc : outcome.concepts) {
          ranked.push_back(sc.concept_id);
        }
        return ranked;
      };
      Table2Row row = EvaluateRanker("feedback", ranker, queries, gold,
                                     s->world.kb_finding_concepts, 10);
      std::printf("  round %d: P@10 = %.2f  R@10 = %.2f  F1 = %.2f\n", round,
                  row.p_at_10, row.r_at_10, row.f1);
      // Oracle feedback on the top 3 of every query.
      for (const RelaxationQuery& q : queries) {
        RelaxationOutcome outcome =
            feedback.RelaxConcept(q.concept_id, q.context);
        for (size_t i = 0; i < outcome.concepts.size() && i < 3; ++i) {
          ConceptId c = outcome.concepts[i].concept_id;
          if (gold.IsRelevant(q.concept_id, q.context, c)) {
            feedback.Accept(c, q.context);
          } else {
            feedback.Reject(c, q.context);
          }
        }
      }
    }
  }
  return 0;
}
