// Table 2 reproduction: overall effectiveness of query relaxation on 100
// condition concepts — the six methods of Section 7.2:
//
//   QR                      full method (context + corpus + path penalty)
//   QR-no-context           frequencies aggregated over all contexts
//   QR-no-corpus            structural (intrinsic) frequencies only
//   IC                      plain IC similarity, no path penalty/context
//   Embedding-pre-trained   SIF over out-of-domain vectors (OOV-heavy)
//   Embedding-trained       SIF over in-domain vectors
//
// Paper reference values (P@10 / R@10 / F1):
//   QR 90.51/82.64/86.40 > QR-no-context 85.45/77.27/81.15 >
//   Embedding-trained 79.37/71.81/75.40 ~ QR-no-corpus 78.23/70.91/74.39 >
//   IC 75.55/68.18/71.68 > Embedding-pre-trained 66.14/60.13/62.99
// The shape to check: the full QR wins, context > corpus ablation > IC,
// and the pre-trained embedding baseline is last.

#include <cstdio>

#include "bench/bench_common.h"
#include "medrelax/embedding/sif.h"
#include "medrelax/eval/relaxation_eval.h"
#include "medrelax/relax/baseline_measures.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

using namespace medrelax;         // NOLINT — bench brevity
using namespace medrelax::bench;  // NOLINT

int main() {
  std::printf("Building the standard world...\n");
  auto s = BuildStandardWorld();
  if (s == nullptr) return 1;

  GoldStandardOptions gold_opts;
  gold_opts.max_distance = 4;  // the SME relatedness ball on this world
  GoldStandard gold(&s->world, gold_opts);
  RelaxationWorkloadOptions workload;
  workload.num_queries = 100;
  std::vector<RelaxationQuery> queries =
      GenerateRelaxationQueries(s->world, workload);
  const std::vector<ConceptId>& pool = s->world.kb_finding_concepts;

  RelaxationOptions ropts;
  ropts.radius = 4;
  ropts.top_k = 10;

  SimilarityOptions full;
  SimilarityOptions no_context;
  no_context.use_context = false;
  SimilarityOptions ic_only;
  ic_only.use_context = false;
  ic_only.use_path_penalty = false;

  QueryRelaxer qr(&s->world.eks.dag, &s->with_corpus, s->edit.get(), full,
                  ropts);
  QueryRelaxer qr_no_ctx(&s->world.eks.dag, &s->with_corpus, s->edit.get(),
                         no_context, ropts);
  QueryRelaxer qr_no_corpus(&s->world.eks.dag, &s->without_corpus,
                            s->edit.get(), full, ropts);
  QueryRelaxer ic(&s->world.eks.dag, &s->with_corpus, s->edit.get(), ic_only,
                  ropts);

  // Embedding baselines: SIF sentence embeddings ranking the flagged pool.
  std::printf("Training in-domain and out-of-domain embeddings...\n");
  WordVectorOptions wv;
  wv.dimensions = 50;
  wv.window = 8;  // spans co-mentioned findings inside monograph sections
  WordVectors trained = WordVectors::Train(s->corpus, wv);
  // The pre-trained baseline stands in for word2vec-style vectors [32]:
  // no subword information, so specific concept names are simply OOV.
  WordVectorOptions wv_pre = wv;
  wv_pre.use_subword = false;
  WordVectors pretrained = WordVectors::Train(s->general_corpus, wv_pre);
  std::vector<std::vector<std::string>> reference;
  for (ConceptId id = 0; id < s->world.eks.dag.num_concepts(); ++id) {
    reference.push_back(Tokenize(NormalizeTerm(s->world.eks.dag.name(id))));
  }
  SifModel sif_trained(&trained, reference, SifOptions{});
  // The paper averages word embeddings for pre-trained multi-word terms.
  SifOptions plain;
  plain.remove_first_component = false;
  plain.subword_backoff = false;
  SifModel sif_pretrained(&pretrained, {}, plain);

  // Report the vocabulary mismatch that sinks Embedding-pre-trained.
  std::vector<std::string> all_words;
  for (const auto& phrase : reference) {
    for (const std::string& w : phrase) all_words.push_back(w);
  }
  std::printf("OOV rate on concept names: trained %.1f%%, pre-trained "
              "%.1f%%\n",
              100.0 * trained.OovRate(all_words),
              100.0 * pretrained.OovRate(all_words));

  struct NamedRanker {
    const char* name;
    ConceptRanker ranker;
  };
  std::vector<NamedRanker> methods;
  methods.push_back({"QR", MakeRelaxerRanker(&qr)});
  methods.push_back({"QR-no-context", MakeRelaxerRanker(&qr_no_ctx)});
  methods.push_back({"QR-no-corpus", MakeRelaxerRanker(&qr_no_corpus)});
  methods.push_back({"IC", MakeRelaxerRanker(&ic)});
  methods.push_back({"Embedding-pre-trained",
                     MakeEmbeddingRanker(&s->world.eks.dag, &sif_pretrained,
                                         pool)});
  methods.push_back({"Embedding-trained",
                     MakeEmbeddingRanker(&s->world.eks.dag, &sif_trained,
                                         pool)});

  // Classic knowledge-based measures (Section 8's related work) as extra
  // rows beyond the paper's table: rank the flagged pool directly.
  Result<BaselineMeasures> classic =
      BaselineMeasures::Create(&s->world.eks.dag, &s->with_corpus.frequencies);
  if (classic.ok()) {
    auto rank_by = [&](auto score_fn) {
      return [&, score_fn](const RelaxationQuery& q) {
        std::vector<std::pair<double, ConceptId>> scored;
        for (ConceptId c : pool) scored.emplace_back(score_fn(q, c), c);
        std::sort(scored.begin(), scored.end(), [](auto& a, auto& b) {
          if (a.first != b.first) return a.first > b.first;
          return a.second < b.second;
        });
        std::vector<ConceptId> ranked;
        for (auto& [sc, c] : scored) {
          (void)sc;
          ranked.push_back(c);
        }
        return ranked;
      };
    };
    methods.push_back(
        {"Wu-Palmer (extra)", rank_by([&](const RelaxationQuery& q,
                                          ConceptId c) {
           return classic->WuPalmer(q.concept_id, c);
         })});
    methods.push_back(
        {"Path (extra)", rank_by([&](const RelaxationQuery& q, ConceptId c) {
           return classic->PathSimilarity(q.concept_id, c);
         })});
    methods.push_back(
        {"Resnik (extra)", rank_by([&](const RelaxationQuery& q,
                                       ConceptId c) {
           return classic->Resnik(q.concept_id, c, q.context);
         })});
  }

  std::printf("\nTable 2: Overall effectiveness "
              "(%zu condition queries, k = 10)\n",
              queries.size());
  PrintRule(58);
  std::printf("%-24s %9s %9s %9s\n", "Methods", "P@10", "R@10", "F1");
  PrintRule(58);
  for (const NamedRanker& m : methods) {
    Table2Row row =
        EvaluateRanker(m.name, m.ranker, queries, gold, pool, 10);
    std::printf("%-24s %9.2f %9.2f %9.2f\n", row.method.c_str(), row.p_at_10,
                row.r_at_10, row.f1);
  }
  PrintRule(58);
  std::printf("paper: QR 90.51/82.64/86.40; QR-no-context 85.45/77.27/81.15;"
              "\n       QR-no-corpus 78.23/70.91/74.39; IC 75.55/68.18/71.68;"
              "\n       Emb-pre 66.14/60.13/62.99; Emb-trained "
              "79.37/71.81/75.40\n");
  return 0;
}
