// Conversation demo: the two Watson Assistant integration scenarios of
// Section 6.1, replayed against the self-contained conversational layer.
//
//   Scenario 1 (Figure 7): the user asks about "pyelectasia", which is not
//   in the KB; query relaxation repairs the conversation with semantically
//   related in-KB conditions.
//
//   Scenario 2 (Figure 8): the user asks about a condition the KB knows;
//   relaxation expands the answer with related conditions before the
//   direct drug information.
//
// The demo runs each scenario twice — with and without query relaxation —
// so the "I don't understand" counterfactual is visible.

#include <cstdio>
#include <memory>

#include "medrelax/datasets/corpus_generator.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/nli/dialogue_manager.h"
#include "medrelax/relax/feedback.h"
#include "medrelax/relax/ingestion.h"

using namespace medrelax;  // NOLINT — example brevity

namespace {

void Turn(DialogueManager* dialogue, const std::string& utterance) {
  std::printf("  user  > %s\n", utterance.c_str());
  DialogueResponse r = dialogue->Handle(utterance);
  std::printf("  watson> %s%s\n\n", r.text.c_str(),
              r.used_relaxation ? "   [query relaxation used]" : "");
}

}  // namespace

int main() {
  SnomedGeneratorOptions eks_opts;
  eks_opts.num_concepts = 1500;
  eks_opts.seed = 7;
  KbGeneratorOptions kb_opts;
  kb_opts.num_drugs = 50;
  kb_opts.num_findings = 150;
  kb_opts.seed = 8;
  Result<GeneratedWorld> world = GenerateWorld(eks_opts, kb_opts);
  if (!world.ok()) return 1;
  Corpus corpus = GenerateMonographCorpus(*world, CorpusGeneratorOptions{});

  NameIndex index(&world->eks.dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  Result<IngestionResult> ingestion = RunIngestion(
      world->kb, &world->eks.dag, matcher, &corpus, IngestionOptions{});
  if (!ingestion.ok()) return 1;

  // Bootstrap the intent classifier from the ontology (Section 4).
  IntentClassifier intents;
  TrainingDataOptions td;
  intents.Train(
      GenerateContextTrainingData(world->kb, ingestion->contexts, td),
      ingestion->contexts.size());
  EntityExtractor entities(&world->kb,
                           BuildQueryVocabulary(world->kb.ontology));
  RelaxationOptions relax_opts;
  relax_opts.top_k = 7;  // Figure 8 surfaces 7 additional concepts
  QueryRelaxer relaxer(&world->eks.dag, &*ingestion, &matcher,
                       SimilarityOptions{}, relax_opts);

  DialogueManager with_qr(&world->kb, &*ingestion, &intents, &entities,
                          &relaxer, DialogueOptions{});
  DialogueManager without_qr(&world->kb, &*ingestion, &intents, &entities,
                             nullptr, DialogueOptions{});

  // Pick a known in-KB condition and an out-of-KB one from the generated
  // world (the synthetic stand-ins for "fever" and "pyelectasia").
  std::vector<bool> in_kb(world->eks.dag.num_concepts(), false);
  for (ConceptId c : world->kb_finding_concepts) in_kb[c] = true;
  std::string known;
  for (InstanceId f : world->finding_instances) {
    if ((world->participation[world->true_link.at(f)] & kParticipatesTreat) !=
        0) {
      known = world->kb.instances.instance(f).name;
      break;
    }
  }
  std::string unknown;
  for (ConceptId c : world->eks.finding_concepts) {
    if (!in_kb[c] && world->eks.depth[c] >= 4) {
      unknown = world->eks.dag.name(c);
      break;
    }
  }

  std::printf("=== Scenario 1 (Figure 7): unknown term, WITH relaxation ===\n");
  Turn(&with_qr, "what drugs treat " + unknown);
  std::printf("=== Scenario 1 counterfactual: unknown term, NO relaxation ===\n");
  Turn(&without_qr, "what drugs treat " + unknown);

  std::printf("=== Scenario 2 (Figure 8): known term, WITH relaxation ===\n");
  Turn(&with_qr, "what drugs treat " + known);

  std::printf("=== Context carry-over (Section 4): short follow-up ===\n");
  Turn(&with_qr, "what about " + unknown);

  // Relevance feedback (the improvement Section 7.2 proposes): the user
  // dismisses the top suggestion; the next answer ranks differently.
  std::printf("=== Relevance feedback: 'not that one' ===\n");
  FeedbackRelaxer feedback(&relaxer, &world->eks.dag, FeedbackOptions{});
  with_qr.set_feedback(&feedback);
  DialogueResponse before = with_qr.Handle("what drugs treat " + unknown);
  std::printf("  user  > what drugs treat %s\n", unknown.c_str());
  std::printf("  watson> %s\n", before.text.c_str());
  if (!before.surfaced_concepts.empty()) {
    ConceptId top = before.surfaced_concepts[0];
    std::printf("  user  > (dismisses \"%s\")\n",
                world->eks.dag.name(top).c_str());
    with_qr.RejectSuggestion(top);
    with_qr.RejectSuggestion(top);
    DialogueResponse after = with_qr.Handle("what drugs treat " + unknown);
    std::printf("  watson> %s\n", after.text.c_str());
  }
  return 0;
}
