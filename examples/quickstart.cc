// Quickstart: the full medrelax pipeline in one file.
//
//   1. Generate a synthetic SNOMED-like external knowledge source and a
//      MED-shaped knowledge base against it (stand-ins for the paper's
//      license-gated data, see DESIGN.md).
//   2. Run the offline ingestion (Algorithm 1) — contexts, mappings,
//      per-context frequencies, shortcut edges.
//   3. Relax a query term online (Algorithm 2) and print the expanded
//      answers.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "medrelax/datasets/corpus_generator.h"
#include "medrelax/datasets/kb_generator.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

using namespace medrelax;  // NOLINT — example brevity

int main() {
  // --- 1. Build the world. ---
  SnomedGeneratorOptions eks_opts;
  eks_opts.num_concepts = 2000;
  eks_opts.seed = 42;
  KbGeneratorOptions kb_opts;
  kb_opts.num_drugs = 60;
  kb_opts.num_findings = 200;
  kb_opts.seed = 43;
  Result<GeneratedWorld> world = GenerateWorld(eks_opts, kb_opts);
  if (!world.ok()) {
    std::fprintf(stderr, "world generation failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  Corpus corpus = GenerateMonographCorpus(*world, CorpusGeneratorOptions{});
  std::printf("external source: %zu concepts, %zu edges\n",
              world->eks.dag.num_concepts(), world->eks.dag.num_edges());
  std::printf("knowledge base : %zu instances, %zu assertions, "
              "%zu relationships\n",
              world->kb.instances.num_instances(),
              world->kb.triples.num_triples(),
              world->kb.ontology.num_relationships());
  std::printf("corpus         : %zu monographs, %zu tokens\n\n",
              corpus.size(), corpus.TotalTokens());

  // --- 2. Offline ingestion (Algorithm 1). ---
  NameIndex index(&world->eks.dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  Result<IngestionResult> ingestion = RunIngestion(
      world->kb, &world->eks.dag, matcher, &corpus, IngestionOptions{});
  if (!ingestion.ok()) {
    std::fprintf(stderr, "ingestion failed: %s\n",
                 ingestion.status().ToString().c_str());
    return 1;
  }
  size_t flagged = 0;
  for (bool f : ingestion->flagged) flagged += f ? 1 : 0;
  std::printf("ingestion      : %zu contexts, %zu mappings, %zu flagged "
              "concepts, %zu shortcut edges\n\n",
              ingestion->contexts.size(), ingestion->mappings.size(), flagged,
              ingestion->shortcuts_added);

  // --- 3. Online relaxation (Algorithm 2). ---
  RelaxationOptions relax_opts;
  relax_opts.top_k = 10;
  QueryRelaxer relaxer(&world->eks.dag, &*ingestion, &matcher,
                       SimilarityOptions{}, relax_opts);

  // Pick an out-of-KB condition so relaxation has real work to do.
  std::vector<bool> in_kb(world->eks.dag.num_concepts(), false);
  for (ConceptId c : world->kb_finding_concepts) in_kb[c] = true;
  ConceptId query = kInvalidConcept;
  for (ConceptId c : world->eks.finding_concepts) {
    if (!in_kb[c] && world->eks.depth[c] >= 4) {
      query = c;
      break;
    }
  }
  if (query == kInvalidConcept) query = world->eks.finding_concepts.front();

  const std::string term = world->eks.dag.name(query);
  std::printf("query term     : \"%s\" (not in the KB)\n", term.c_str());
  std::printf("context        : %s\n\n",
              ingestion->contexts.context(world->ctx_indication)
                  .Label()
                  .c_str());

  Result<RelaxationOutcome> outcome =
      relaxer.Relax(term, world->ctx_indication);
  if (!outcome.ok()) {
    std::fprintf(stderr, "relaxation failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("top relaxed concepts (radius %u):\n",
              outcome->effective_radius);
  for (const ScoredConcept& sc : outcome->concepts) {
    std::printf("  %-55s sim=%.4f  (%zu KB instance%s)\n",
                world->eks.dag.name(sc.concept_id).c_str(), sc.similarity,
                sc.instances.size(), sc.instances.size() == 1 ? "" : "s");
  }
  std::printf("\nexpanded KB answers:\n");
  for (InstanceId i : outcome->instances) {
    std::printf("  %s\n", world->kb.instances.instance(i).name.c_str());
  }
  return 0;
}
