// Frequency walkthrough: reproduces, number for number, the worked
// examples the paper prints in Figures 4, 5, and 6.
//
//   Figure 4 — per-context frequency propagation (Equation 2):
//              19164 = 18878 + 283 + 3 in the Indication context.
//   Figure 5 — shortcut edges: a 3-hop chain becomes one traversable edge
//              with the original distance preserved, so search semantics
//              never change.
//   Figure 6 — direction-dependent path penalty (Equation 4): pneumonia ->
//              LRTI is punished more than LRTI -> pneumonia.

#include <cmath>
#include <cstdio>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/graph/traversal.h"
#include "medrelax/matching/exact_matcher.h"
#include "medrelax/relax/frequency_model.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/similarity.h"

using namespace medrelax;  // NOLINT — example brevity

int main() {
  // --- Figure 4. ---
  Result<Figure4Fixture> fig4 = BuildFigure4Fixture();
  if (!fig4.ok()) return 1;
  std::vector<std::vector<double>> direct(
      2, std::vector<double>(fig4->dag.num_concepts(), 0.0));
  for (const auto& [id, count] : fig4->indication_direct_counts) {
    direct[0][id] = count;
  }
  for (const auto& [id, count] : fig4->risk_direct_counts) {
    direct[1][id] = count;
  }
  Result<FrequencyModel> freq =
      PropagateFrequencies(fig4->dag, direct, fig4->root, 0.0);
  if (!freq.ok()) return 1;

  std::printf("=== Figure 4: frequency propagation (Equation 2) ===\n");
  auto row = [&](ConceptId id) {
    std::printf("  %-32s Indication=%7.0f  Risk=%6.0f\n",
                fig4->dag.name(id).c_str(), freq->Raw(id, 0),
                freq->Raw(id, 1));
  };
  row(fig4->headache);
  row(fig4->pain_in_throat);
  row(fig4->craniofacial_pain);
  row(fig4->pain_of_head_and_neck_region);
  std::printf("  paper prints: 19164 (= 18878 + 283 + 3) and 1656  -> %s\n\n",
              freq->Raw(fig4->pain_of_head_and_neck_region, 0) == 19164.0 &&
                      freq->Raw(fig4->pain_of_head_and_neck_region, 1) ==
                          1656.0
                  ? "reproduced"
                  : "MISMATCH");

  // --- Figure 5. ---
  Result<Figure5Fixture> fig5 = BuildFigure5Fixture();
  if (!fig5.ok()) return 1;
  KnowledgeBase kb;
  Result<DomainOntology> onto = BuildFigure1Ontology();
  if (!onto.ok()) return 1;
  kb.ontology = std::move(*onto);
  OntologyConceptId finding = kb.ontology.FindConcept("Finding");
  // Demo setup on an empty store; a name collision is impossible here.
  (void)kb.instances.AddInstance("kidney disease", finding);

  std::printf("=== Figure 5: shortcut edges (Example 2) ===\n");
  uint32_t before = UpDistance(fig5->dag, fig5->ckd_stage1_due_to_hypertension,
                               fig5->kidney_disease);
  NameIndex index(&fig5->dag);
  ExactMatcher matcher(&index);
  Result<IngestionResult> ingestion =
      RunIngestion(kb, &fig5->dag, matcher, nullptr, IngestionOptions{});
  if (!ingestion.ok()) return 1;
  uint32_t ball_hops = 0;
  uint32_t preserved = 0;
  bool direct_edge = false;
  for (const Neighbor& n : NeighborsWithinRadius(
           fig5->dag, fig5->ckd_stage1_due_to_hypertension, before)) {
    if (n.id == fig5->kidney_disease) ball_hops = n.hops;
  }
  for (const DagEdge& e :
       fig5->dag.parents(fig5->ckd_stage1_due_to_hypertension)) {
    if (e.target == fig5->kidney_disease && e.is_shortcut) {
      direct_edge = true;
      preserved = e.original_distance;
    }
  }
  std::printf("  \"chronic kidney disease stage 1 due to hypertension\" -> "
              "\"kidney disease\"\n");
  std::printf("  native distance: %u hops; after customization: %s edge "
              "carrying original distance %u, radius search still reports "
              "%u hops\n\n",
              before, direct_edge ? "one direct" : "no", preserved,
              ball_hops);

  // --- Figure 6. ---
  Result<Figure6Fixture> fig6 = BuildFigure6Fixture();
  if (!fig6.ok()) return 1;
  std::vector<std::vector<double>> uniform(
      1, std::vector<double>(fig6->dag.num_concepts(), 1.0));
  Result<FrequencyModel> freq6 =
      PropagateFrequencies(fig6->dag, uniform, fig6->root, 1.0);
  if (!freq6.ok()) return 1;
  SimilarityModel model(&fig6->dag, &*freq6, SimilarityOptions{});

  std::printf("=== Figure 6: direction-dependent penalty (Equation 4) ===\n");
  double fwd = model.PathPenalty(fig6->pneumonia,
                                 fig6->lower_respiratory_tract_infection);
  double rev = model.PathPenalty(fig6->lower_respiratory_tract_infection,
                                 fig6->pneumonia);
  std::printf("  query = pneumonia                 : p = %.6f (0.9^6 = %.6f)\n",
              fwd, std::pow(0.9, 6));
  std::printf("  query = lower resp tract infection: p = %.6f (0.9^3 = %.6f)\n",
              rev, std::pow(0.9, 3));
  std::printf("  early generalizations are penalized more -> %s\n",
              fwd < rev ? "reproduced" : "MISMATCH");
  return 0;
}
