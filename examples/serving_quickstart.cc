// serving_quickstart: the serve/ subsystem end to end, in-process.
//
// Builds a generated world into a Snapshot, stands up a RelaxationService
// (bounded queue + workers + result cache), serves the same query twice to
// show the cache hit, hot-swaps a freshly ingested snapshot while the
// service is live, and prints the stats block. See docs/SERVING.md for the
// full semantics; tools/medrelax_server.cc is the stdin/stdout front end.

#include <cstdio>
#include <memory>
#include <utility>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/serve/relaxation_service.h"

using namespace medrelax;  // NOLINT — example brevity

namespace {

Result<std::shared_ptr<Snapshot>> BuildWorldSnapshot(uint64_t seed) {
  SnomedGeneratorOptions eks;
  eks.num_concepts = 2000;
  eks.seed = seed;
  KbGeneratorOptions kb;
  kb.num_findings = 120;
  kb.seed = seed + 1;
  Result<GeneratedWorld> world = GenerateWorld(eks, kb);
  if (!world.ok()) return world.status();
  return Snapshot::Build(std::move(world->eks.dag), std::move(world->kb),
                         nullptr, SnapshotOptions{});
}

void Report(const char* label, const Result<RelaxResponse>& response) {
  if (!response.ok()) {
    std::printf("%-28s -> %s\n", label, response.status().ToString().c_str());
    return;
  }
  std::printf("%-28s -> gen=%llu hit=%d concepts=%zu instances=%zu\n", label,
              static_cast<unsigned long long>(response->generation),
              response->cache_hit ? 1 : 0, response->outcome->concepts.size(),
              response->outcome->instances.size());
}

}  // namespace

int main() {
  Result<std::shared_ptr<Snapshot>> snapshot = BuildWorldSnapshot(/*seed=*/7);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  // Pick a KB-backed term so the EDIT mapper resolves it exactly.
  const Snapshot& snap = **snapshot;
  const std::string term =
      snap.kb().instances.instance(snap.ingestion().mappings.front().first)
          .name;

  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 32;
  options.cache.capacity = 256;
  RelaxationService service(std::move(*snapshot), options);

  RelaxRequest request;
  request.term = term;
  Report("first query (cold)", service.Relax(request));
  Report("same query (cached)", service.Relax(request));

  // Re-run the offline phase and publish, with the service still live;
  // the new generation makes every cached answer unreachable.
  Result<std::shared_ptr<Snapshot>> replacement = BuildWorldSnapshot(7);
  if (replacement.ok()) {
    uint64_t generation = service.PublishSnapshot(std::move(*replacement));
    std::printf("hot-swapped snapshot         -> gen=%llu\n",
                static_cast<unsigned long long>(generation));
  }
  Report("same query after swap", service.Relax(request));

  std::printf("\nstats:\n%s", service.Stats().ToString().c_str());
  return 0;
}
