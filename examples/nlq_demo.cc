// NLQ demo: the ATHENA-style natural-language-query integration of
// Section 6.2 / Figure 9, on the curated Figure 1 + Figure 5 fixtures.
//
// The running example is the paper's own: "What are the risks caused by
// using Aspirin with pyelectasia" — "risks" and "caused" match ontology
// metadata, "aspirin" matches instance data, and "pyelectasia" (absent
// from KB and ontology) is resolved through query relaxation into in-KB
// findings with similarity scores that feed the interpretation ranking.

#include <cstdio>

#include "medrelax/datasets/paper_fixtures.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/nli/nlq_interpreter.h"
#include "medrelax/relax/ingestion.h"

using namespace medrelax;  // NOLINT — example brevity

int main() {
  // Figure 5's external DAG, extended with the pyelectasia leaf.
  Result<Figure5Fixture> fx = BuildFigure5Fixture();
  if (!fx.ok()) return 1;
  ConceptId pyelectasia = *fx->dag.AddConcept("pyelectasia");
  if (!fx->dag.AddSubsumption(pyelectasia, fx->hypertensive_nephropathy)
           .ok()) {
    return 1;
  }

  // Figure 1's ontology with a small ABox: aspirin treats + risks kidney
  // disease.
  KnowledgeBase kb;
  Result<DomainOntology> onto = BuildFigure1Ontology();
  if (!onto.ok()) return 1;
  kb.ontology = std::move(*onto);
  OntologyConceptId drug = kb.ontology.FindConcept("Drug");
  OntologyConceptId indication = kb.ontology.FindConcept("Indication");
  OntologyConceptId risk = kb.ontology.FindConcept("Risk");
  OntologyConceptId finding = kb.ontology.FindConcept("Finding");
  InstanceId aspirin = *kb.instances.AddInstance("aspirin", drug);
  InstanceId renal_ind = *kb.instances.AddInstance("renal care", indication);
  InstanceId renal_risk = *kb.instances.AddInstance("renal harm", risk);
  InstanceId kidney = *kb.instances.AddInstance("kidney disease", finding);
  for (RelationshipId r = 0; r < kb.ontology.num_relationships(); ++r) {
    const Relationship& rel = kb.ontology.relationship(r);
    const std::string& dn = kb.ontology.concept_name(rel.domain);
    if (rel.name == "treat") {
      // Freshly created ids in an empty store: AddTriple cannot fail.
      (void)kb.triples.AddTriple(aspirin, r, renal_ind);
    } else if (rel.name == "cause") {
      // Freshly created ids in an empty store: AddTriple cannot fail.
      (void)kb.triples.AddTriple(aspirin, r, renal_risk);
    } else if (rel.name == "hasFinding" && dn == "Indication") {
      // Freshly created ids in an empty store: AddTriple cannot fail.
      (void)kb.triples.AddTriple(renal_ind, r, kidney);
    } else if (rel.name == "hasFinding" && dn == "Risk") {
      // Freshly created ids in an empty store: AddTriple cannot fail.
      (void)kb.triples.AddTriple(renal_risk, r, kidney);
    }
  }

  NameIndex index(&fx->dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  Result<IngestionResult> ingestion =
      RunIngestion(kb, &fx->dag, matcher, nullptr, IngestionOptions{});
  if (!ingestion.ok()) return 1;
  RelaxationOptions relax_opts;
  relax_opts.top_k = 5;
  QueryRelaxer relaxer(&fx->dag, &*ingestion, &matcher, SimilarityOptions{},
                       relax_opts);
  NlqInterpreter nlq(&kb, &*ingestion, &relaxer);

  const std::string query =
      "what are the risks caused by using aspirin with pyelectasia";
  std::printf("NL query: %s\n\n", query.c_str());

  std::printf("--- Evidence generation (Section 6.2) ---\n");
  for (const TokenEvidence& te : nlq.GenerateEvidence(query)) {
    std::printf("  \"%s\":\n", te.surface.c_str());
    for (const Evidence& e : te.evidences) {
      switch (e.kind) {
        case EvidenceKind::kConceptMetadata:
          std::printf("    metadata concept: %s\n",
                      kb.ontology.concept_name(e.concept_id).c_str());
          break;
        case EvidenceKind::kRelationshipMetadata:
          std::printf("    metadata relationship: %s\n",
                      kb.ontology.relationship(e.relationship).name.c_str());
          break;
        case EvidenceKind::kDataValue:
          std::printf("    data value: %s\n",
                      kb.instances.instance(e.instance).name.c_str());
          break;
        case EvidenceKind::kRelaxedDataValue:
          std::printf("    relaxed data value: %s (score %.3f)\n",
                      kb.instances.instance(e.instance).name.c_str(),
                      e.score);
          break;
      }
    }
  }

  std::printf("\n--- Ranked interpretations ---\n");
  std::vector<Interpretation> interps = nlq.Interpret(query, 3);
  for (size_t i = 0; i < interps.size(); ++i) {
    std::printf("  #%zu  compactness=%zu  evidence-score=%.3f\n", i + 1,
                interps[i].compactness, interps[i].evidence_score);
    std::printf("      ITree = { %s }\n",
                interps[i].Describe(kb.ontology).c_str());
  }
  if (interps.empty()) return 1;

  std::printf("\n--- Executing the best non-empty interpretation ---\n");
  Result<NlqAnswer> answer = nlq.ExecuteFirstNonEmpty(interps);
  if (!answer.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("  answer concept: %s\n",
              kb.ontology.concept_name(answer->answer_concept).c_str());
  for (InstanceId i : answer->instances) {
    std::printf("  -> %s\n", kb.instances.instance(i).name.c_str());
  }
  return 0;
}
