// medrelax_tool: a small command-line front end for the library.
//
//   medrelax_tool generate <dir> [--concepts N] [--findings N] [--seed S]
//       Generates a synthetic world and writes eks.tsv + kb.tsv into <dir>.
//
//   medrelax_tool ingest <dir>
//       Runs the offline ingestion (Algorithm 1) over <dir>/eks.tsv +
//       <dir>/kb.tsv, then writes the customized DAG back and the
//       ingestion snapshot to <dir>/ingestion.tsv — the batch half of the
//       paper's two-phase design.
//
//   medrelax_tool relax <dir> <term> [--context LABEL] [--k N] [--radius R]
//       Loads <dir>/eks.tsv + <dir>/kb.tsv (+ the ingestion snapshot when
//       present, re-ingesting otherwise), then relaxes <term> and prints
//       the expanded answers.
//
//   medrelax_tool contexts <dir>
//       Lists the context labels available for --context.
//
// The files are the plain text formats of medrelax/io, so a downstream
// user can swap in their own external source and KB.

#include <cstdio>
#include <cstring>
#include <string>

#include "medrelax/datasets/kb_generator.h"
#include "medrelax/io/dag_io.h"
#include "medrelax/io/ingestion_io.h"
#include "medrelax/io/kb_io.h"
#include "medrelax/matching/edit_matcher.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"

using namespace medrelax;  // NOLINT — example brevity

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  medrelax_tool generate <dir> [--concepts N] [--findings N]"
               " [--seed S]\n"
               "  medrelax_tool ingest <dir>\n"
               "  medrelax_tool relax <dir> <term> [--context LABEL]"
               " [--k N] [--radius R]\n"
               "  medrelax_tool contexts <dir>\n");
  return 2;
}

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

int Generate(int argc, char** argv) {
  std::string dir = argv[2];
  SnomedGeneratorOptions eks;
  KbGeneratorOptions kb;
  if (const char* v = FlagValue(argc, argv, "--concepts")) {
    eks.num_concepts = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--findings")) {
    kb.num_findings = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    eks.seed = std::strtoull(v, nullptr, 10);
    kb.seed = eks.seed + 1;
  }
  Result<GeneratedWorld> world = GenerateWorld(eks, kb);
  if (!world.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  Status s1 = SaveDagToFile(world->eks.dag, dir + "/eks.tsv");
  Status s2 = SaveKbToFile(world->kb, dir + "/kb.tsv");
  if (!s1.ok() || !s2.ok()) {
    std::fprintf(stderr, "save failed: %s %s\n", s1.ToString().c_str(),
                 s2.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s/eks.tsv (%zu concepts) and %s/kb.tsv "
              "(%zu instances)\n",
              dir.c_str(), world->eks.dag.num_concepts(), dir.c_str(),
              world->kb.instances.num_instances());
  return 0;
}

int Contexts(const std::string& dir) {
  Result<KnowledgeBase> kb = LoadKbFromFile(dir + "/kb.tsv");
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }
  for (const Context& c : GenerateContexts(kb->ontology)) {
    std::printf("%s\n", c.Label().c_str());
  }
  return 0;
}

int Ingest(const std::string& dir) {
  Result<ConceptDag> dag = LoadDagFromFile(dir + "/eks.tsv");
  Result<KnowledgeBase> kb = LoadKbFromFile(dir + "/kb.tsv");
  if (!dag.ok() || !kb.ok()) {
    std::fprintf(stderr, "load failed: %s %s\n",
                 dag.status().ToString().c_str(),
                 kb.status().ToString().c_str());
    return 1;
  }
  NameIndex index(&*dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  Result<IngestionResult> ingestion =
      RunIngestion(*kb, &*dag, matcher, nullptr, IngestionOptions{});
  if (!ingestion.ok()) {
    std::fprintf(stderr, "ingestion failed: %s\n",
                 ingestion.status().ToString().c_str());
    return 1;
  }
  // Persist the customized DAG (shortcut edges) and the snapshot.
  Status s1 = SaveDagToFile(*dag, dir + "/eks.tsv");
  Status s2 = SaveIngestionToFile(*ingestion, dir + "/ingestion.tsv");
  if (!s1.ok() || !s2.ok()) {
    std::fprintf(stderr, "save failed: %s %s\n", s1.ToString().c_str(),
                 s2.ToString().c_str());
    return 1;
  }
  size_t flagged = 0;
  for (bool f : ingestion->flagged) flagged += f ? 1 : 0;
  std::printf("ingested: %zu contexts, %zu mappings, %zu flagged concepts, "
              "%zu shortcut edges -> %s/ingestion.tsv\n",
              ingestion->contexts.size(), ingestion->mappings.size(), flagged,
              ingestion->shortcuts_added, dir.c_str());
  return 0;
}

int Relax(int argc, char** argv) {
  std::string dir = argv[2];
  std::string term = argv[3];
  Result<ConceptDag> dag = LoadDagFromFile(dir + "/eks.tsv");
  Result<KnowledgeBase> kb = LoadKbFromFile(dir + "/kb.tsv");
  if (!dag.ok() || !kb.ok()) {
    std::fprintf(stderr, "load failed: %s %s\n",
                 dag.status().ToString().c_str(),
                 kb.status().ToString().c_str());
    return 1;
  }

  NameIndex index(&*dag);
  EditDistanceMatcher matcher(&index, EditMatcherOptions{});
  // Prefer the persisted snapshot (the online half of the two-phase
  // split); fall back to ingesting in-process.
  Result<IngestionResult> ingestion =
      LoadIngestionFromFile(dir + "/ingestion.tsv", *dag);
  if (!ingestion.ok()) {
    ingestion = RunIngestion(*kb, &*dag, matcher, nullptr, IngestionOptions{});
  }
  if (!ingestion.ok()) {
    std::fprintf(stderr, "ingestion failed: %s\n",
                 ingestion.status().ToString().c_str());
    return 1;
  }

  ContextId context = kNoContext;
  if (const char* v = FlagValue(argc, argv, "--context")) {
    context = ingestion->contexts.FindByLabel(v);
    if (context == kNoContext) {
      std::fprintf(stderr, "unknown context '%s' (see `contexts`)\n", v);
      return 1;
    }
  }
  RelaxationOptions ropts;
  if (const char* v = FlagValue(argc, argv, "--k")) {
    ropts.top_k = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--radius")) {
    ropts.radius = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
  }

  QueryRelaxer relaxer(&*dag, &*ingestion, &matcher, SimilarityOptions{},
                       ropts);
  Result<RelaxationOutcome> outcome = relaxer.Relax(term, context);
  if (!outcome.ok()) {
    std::fprintf(stderr, "relaxation failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("query concept: %s (radius %u)\n",
              dag->name(outcome->query_concept).c_str(),
              outcome->effective_radius);
  for (const ScoredConcept& sc : outcome->concepts) {
    std::printf("  %-55s sim=%.4f\n", dag->name(sc.concept_id).c_str(),
                sc.similarity);
    for (InstanceId i : sc.instances) {
      std::printf("      -> %s\n", kb->instances.instance(i).name.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "ingest") == 0) return Ingest(argv[2]);
  if (std::strcmp(argv[1], "contexts") == 0) return Contexts(argv[2]);
  if (std::strcmp(argv[1], "relax") == 0 && argc >= 4) {
    return Relax(argc, argv);
  }
  return Usage();
}
