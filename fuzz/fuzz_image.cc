// libFuzzer harness for the flat snapshot image pipeline: each input is
// written to a scratch file and pushed through the full
// Open -> validate -> decode path (flat/image_view.cc +
// flat/snapshot_codec.cc), exactly what a RELOAD <path> executes on
// operator-supplied bytes. Any outcome is fine except a crash or UB —
// corruption must always surface as a typed Status.
//
// The custom mutator keeps inputs plausible enough to reach the deep
// checks: libFuzzer mutates freely, then the header is re-stamped with
// the right magic/version/endianness/declared-size and the payload
// checksum is recomputed (it covers [sizeof(ImageHeader), end), so the
// header patch itself needs no second pass). Without this, virtually
// every mutation dies at the checksum and the section/meta validation
// never sees coverage.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "medrelax/flat/format.h"
#include "medrelax/flat/snapshot_codec.h"

namespace {

// One scratch file per process: FlatImageView::Open maps a path, so the
// bytes have to hit a filesystem. /tmp keeps this off the source tree;
// the pid keeps parallel fuzzer jobs from clobbering each other.
const std::string& ScratchPath() {
  static const std::string path = "/tmp/medrelax_fuzz_image_" +
                                  std::to_string(::getpid()) + ".img";
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::FILE* out = std::fopen(ScratchPath().c_str(), "wb");
  if (out == nullptr) return 0;
  const bool written =
      size == 0 || std::fwrite(data, 1, size, out) == size;
  if (std::fclose(out) != 0 || !written) return 0;

  medrelax::Result<medrelax::flat::DecodedSnapshotImage> decoded =
      medrelax::flat::ReadSnapshotImage(ScratchPath());
  (void)decoded;
  return 0;
}

#if defined(MEDRELAX_FUZZER_BUILD)

extern "C" size_t LLVMFuzzerMutate(uint8_t* data, size_t size,
                                   size_t max_size);

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned seed) {
  (void)seed;
  const size_t new_size = LLVMFuzzerMutate(data, size, max_size);
  using medrelax::flat::ImageHeader;
  if (new_size < sizeof(ImageHeader)) return new_size;
  ImageHeader header;
  std::memcpy(&header, data, sizeof(header));
  std::memcpy(header.magic, medrelax::flat::kImageMagic,
              sizeof(header.magic));
  header.version = medrelax::flat::kImageVersion;
  header.endian = medrelax::flat::kEndianMarker;
  header.file_size = new_size;
  header.payload_checksum = medrelax::flat::FnvChecksum(
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(data) + sizeof(ImageHeader),
          new_size - sizeof(ImageHeader)));
  std::memcpy(data, &header, sizeof(header));
  return new_size;
}

#endif  // MEDRELAX_FUZZER_BUILD
