// libFuzzer harness for the serving line protocol: the input is treated
// as a client's inbound byte stream, framed into newline-delimited
// lines and pushed through the same pure-parse layer both transports
// use (serve/protocol.h) — verb classification, RELAX option/term
// parsing, and the overflow-checked numeric option parser. The parsers
// allocate nothing per byte and touch no service state, so this runs at
// full fuzzer speed; any outcome but a crash or UB is a pass.

#include <cstdint>
#include <string_view>

#include "medrelax/serve/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  while (!input.empty()) {
    const size_t nl = input.find('\n');
    const std::string_view line =
        input.substr(0, nl == std::string_view::npos ? input.size() : nl);
    input.remove_prefix(
        nl == std::string_view::npos ? input.size() : nl + 1);

    // Split verb from arguments the way the transports do (first
    // whitespace-delimited word).
    const size_t sp = line.find_first_of(" \t");
    const std::string_view verb_token =
        line.substr(0, sp == std::string_view::npos ? line.size() : sp);
    const std::string_view args =
        sp == std::string_view::npos ? std::string_view()
                                     : line.substr(sp + 1);

    const medrelax::serve::Verb verb =
        medrelax::serve::ParseVerb(verb_token);
    (void)verb;

    // Every line's arguments go through the RELAX parser — the other
    // verbs take no arguments, so this is where all the parsing depth
    // lives. The raw numeric parser gets the verb token too: it must
    // reject any non-decimal junk without wrapping.
    medrelax::Result<medrelax::serve::RelaxLine> parsed =
        medrelax::serve::ParseRelaxArgs(args);
    (void)parsed;
    medrelax::Result<uint64_t> count =
        medrelax::serve::ParseProtocolCount(verb_token, "k");
    (void)count;
  }
  return 0;
}
