// Corpus replay driver: a plain main() that runs LLVMFuzzerTestOneInput
// over every file named on the command line (directories are walked one
// level, sorted for determinism). Linked against each harness in place
// of libFuzzer, it builds with any compiler — which is what lets the
// committed regression corpus (fuzz/corpus/<harness>/) re-run through
// ctest on every build, gcc and sanitizer presets included, without
// clang or libFuzzer anywhere on the machine.

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadAll(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->assign(static_cast<size_t>(len > 0 ? len : 0), 0);
  const bool ok = out->empty() ||
                  std::fread(out->data(), 1, out->size(), f) == out->size();
  std::fclose(f);
  return ok;
}

bool CollectInputs(const std::string& arg, std::vector<std::string>* files) {
  struct stat st{};
  if (::stat(arg.c_str(), &st) != 0) {
    std::fprintf(stderr, "replay: cannot stat '%s'\n", arg.c_str());
    return false;
  }
  if (!S_ISDIR(st.st_mode)) {
    files->push_back(arg);
    return true;
  }
  DIR* dir = ::opendir(arg.c_str());
  if (dir == nullptr) {
    std::fprintf(stderr, "replay: cannot open '%s'\n", arg.c_str());
    return false;
  }
  std::vector<std::string> entries;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string full = arg + "/" + name;
    struct stat est{};
    if (::stat(full.c_str(), &est) == 0 && S_ISREG(est.st_mode)) {
      entries.push_back(full);
    }
  }
  ::closedir(dir);
  std::sort(entries.begin(), entries.end());
  files->insert(files->end(), entries.begin(), entries.end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-input-file>...\n",
                 argv[0]);
    return 2;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (!CollectInputs(argv[i], &files)) return 1;
  }
  size_t replayed = 0;
  for (const std::string& path : files) {
    std::vector<uint8_t> bytes;
    if (!ReadAll(path, &bytes)) {
      std::fprintf(stderr, "replay: cannot read '%s'\n", path.c_str());
      return 1;
    }
    // libFuzzer never hands a harness a null pointer, even for empty
    // inputs — the replay path honors the same contract.
    static const uint8_t kEmpty = 0;
    LLVMFuzzerTestOneInput(bytes.empty() ? &kEmpty : bytes.data(),
                           bytes.size());
    ++replayed;
  }
  std::printf("replayed %zu corpus inputs\n", replayed);
  return 0;
}
