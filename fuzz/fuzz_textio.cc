// libFuzzer harness for the line-oriented text loaders and the name
// pipeline: the input is parsed as both a medrelax-dag and a
// medrelax-kb document (io/dag_io.h, io/kb_io.h — what medrelax_ingest
// and the server's directory RELOAD read from disk), and when a DAG
// parses, its names are pushed through NormalizeTerm and a NameIndex
// exact lookup — the same path every query term takes. Typed errors are
// the expected outcome for almost every input; crashes and UB are the
// only failures.

#include <cstdint>
#include <sstream>
#include <string>

#include "medrelax/io/dag_io.h"
#include "medrelax/io/kb_io.h"
#include "medrelax/matching/name_index.h"
#include "medrelax/text/normalize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // The loaders are line-oriented with per-line work; a cap keeps one
  // giant input from turning into a timeout instead of a finding.
  if (size > (1u << 20)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  {
    std::istringstream in(text);
    medrelax::Result<medrelax::ConceptDag> dag = medrelax::LoadDag(in);
    if (dag.ok() && dag->num_concepts() > 0) {
      medrelax::NameIndex index(&*dag);
      const std::string probe =
          medrelax::NormalizeTerm(text.substr(0, 64));
      (void)index.FindExact(probe);
      (void)index.CandidatesByTrigram(probe, 8);
    }
  }
  {
    std::istringstream in(text);
    medrelax::Result<medrelax::KnowledgeBase> kb = medrelax::LoadKb(in);
    (void)kb;
  }
  (void)medrelax::NormalizeTerm(text);
  return 0;
}
