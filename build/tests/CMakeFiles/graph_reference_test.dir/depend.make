# Empty dependencies file for graph_reference_test.
# This may be replaced when dependencies are built.
