file(REMOVE_RECURSE
  "CMakeFiles/relax_extras_test.dir/relax_extras_test.cc.o"
  "CMakeFiles/relax_extras_test.dir/relax_extras_test.cc.o.d"
  "relax_extras_test"
  "relax_extras_test.pdb"
  "relax_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relax_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
