# Empty dependencies file for relax_extras_test.
# This may be replaced when dependencies are built.
