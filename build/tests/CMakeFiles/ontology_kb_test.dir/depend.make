# Empty dependencies file for ontology_kb_test.
# This may be replaced when dependencies are built.
