file(REMOVE_RECURSE
  "CMakeFiles/ontology_kb_test.dir/ontology_kb_test.cc.o"
  "CMakeFiles/ontology_kb_test.dir/ontology_kb_test.cc.o.d"
  "ontology_kb_test"
  "ontology_kb_test.pdb"
  "ontology_kb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_kb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
