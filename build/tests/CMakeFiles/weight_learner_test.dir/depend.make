# Empty dependencies file for weight_learner_test.
# This may be replaced when dependencies are built.
