file(REMOVE_RECURSE
  "CMakeFiles/weight_learner_test.dir/weight_learner_test.cc.o"
  "CMakeFiles/weight_learner_test.dir/weight_learner_test.cc.o.d"
  "weight_learner_test"
  "weight_learner_test.pdb"
  "weight_learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
