file(REMOVE_RECURSE
  "CMakeFiles/nli_test.dir/nli_test.cc.o"
  "CMakeFiles/nli_test.dir/nli_test.cc.o.d"
  "nli_test"
  "nli_test.pdb"
  "nli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
