# Empty dependencies file for nli_test.
# This may be replaced when dependencies are built.
