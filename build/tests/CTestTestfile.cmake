# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/graph_reference_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/ontology_kb_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/embedding_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/ingestion_test[1]_include.cmake")
include("/root/repo/build/tests/relaxer_test[1]_include.cmake")
include("/root/repo/build/tests/weight_learner_test[1]_include.cmake")
include("/root/repo/build/tests/relax_extras_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/nli_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
