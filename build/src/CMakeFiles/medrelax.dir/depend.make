# Empty dependencies file for medrelax.
# This may be replaced when dependencies are built.
