
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/medrelax/common/logging.cc" "src/CMakeFiles/medrelax.dir/medrelax/common/logging.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/common/logging.cc.o.d"
  "/root/repo/src/medrelax/common/random.cc" "src/CMakeFiles/medrelax.dir/medrelax/common/random.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/common/random.cc.o.d"
  "/root/repo/src/medrelax/common/status.cc" "src/CMakeFiles/medrelax.dir/medrelax/common/status.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/common/status.cc.o.d"
  "/root/repo/src/medrelax/common/string_util.cc" "src/CMakeFiles/medrelax.dir/medrelax/common/string_util.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/common/string_util.cc.o.d"
  "/root/repo/src/medrelax/corpus/corpus_stats.cc" "src/CMakeFiles/medrelax.dir/medrelax/corpus/corpus_stats.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/corpus/corpus_stats.cc.o.d"
  "/root/repo/src/medrelax/corpus/document.cc" "src/CMakeFiles/medrelax.dir/medrelax/corpus/document.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/corpus/document.cc.o.d"
  "/root/repo/src/medrelax/datasets/corpus_generator.cc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/corpus_generator.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/corpus_generator.cc.o.d"
  "/root/repo/src/medrelax/datasets/kb_generator.cc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/kb_generator.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/kb_generator.cc.o.d"
  "/root/repo/src/medrelax/datasets/paper_fixtures.cc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/paper_fixtures.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/paper_fixtures.cc.o.d"
  "/root/repo/src/medrelax/datasets/query_generator.cc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/query_generator.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/query_generator.cc.o.d"
  "/root/repo/src/medrelax/datasets/snomed_generator.cc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/snomed_generator.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/datasets/snomed_generator.cc.o.d"
  "/root/repo/src/medrelax/embedding/cooccurrence.cc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/cooccurrence.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/cooccurrence.cc.o.d"
  "/root/repo/src/medrelax/embedding/ppmi.cc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/ppmi.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/ppmi.cc.o.d"
  "/root/repo/src/medrelax/embedding/sif.cc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/sif.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/sif.cc.o.d"
  "/root/repo/src/medrelax/embedding/svd.cc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/svd.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/svd.cc.o.d"
  "/root/repo/src/medrelax/embedding/word_vectors.cc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/word_vectors.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/embedding/word_vectors.cc.o.d"
  "/root/repo/src/medrelax/eval/gold_standard.cc" "src/CMakeFiles/medrelax.dir/medrelax/eval/gold_standard.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/eval/gold_standard.cc.o.d"
  "/root/repo/src/medrelax/eval/mapping_eval.cc" "src/CMakeFiles/medrelax.dir/medrelax/eval/mapping_eval.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/eval/mapping_eval.cc.o.d"
  "/root/repo/src/medrelax/eval/metrics.cc" "src/CMakeFiles/medrelax.dir/medrelax/eval/metrics.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/eval/metrics.cc.o.d"
  "/root/repo/src/medrelax/eval/relaxation_eval.cc" "src/CMakeFiles/medrelax.dir/medrelax/eval/relaxation_eval.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/eval/relaxation_eval.cc.o.d"
  "/root/repo/src/medrelax/eval/user_study.cc" "src/CMakeFiles/medrelax.dir/medrelax/eval/user_study.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/eval/user_study.cc.o.d"
  "/root/repo/src/medrelax/graph/concept_dag.cc" "src/CMakeFiles/medrelax.dir/medrelax/graph/concept_dag.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/graph/concept_dag.cc.o.d"
  "/root/repo/src/medrelax/graph/lcs.cc" "src/CMakeFiles/medrelax.dir/medrelax/graph/lcs.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/graph/lcs.cc.o.d"
  "/root/repo/src/medrelax/graph/merge.cc" "src/CMakeFiles/medrelax.dir/medrelax/graph/merge.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/graph/merge.cc.o.d"
  "/root/repo/src/medrelax/graph/paths.cc" "src/CMakeFiles/medrelax.dir/medrelax/graph/paths.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/graph/paths.cc.o.d"
  "/root/repo/src/medrelax/graph/topology.cc" "src/CMakeFiles/medrelax.dir/medrelax/graph/topology.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/graph/topology.cc.o.d"
  "/root/repo/src/medrelax/graph/traversal.cc" "src/CMakeFiles/medrelax.dir/medrelax/graph/traversal.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/graph/traversal.cc.o.d"
  "/root/repo/src/medrelax/io/corpus_io.cc" "src/CMakeFiles/medrelax.dir/medrelax/io/corpus_io.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/io/corpus_io.cc.o.d"
  "/root/repo/src/medrelax/io/dag_io.cc" "src/CMakeFiles/medrelax.dir/medrelax/io/dag_io.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/io/dag_io.cc.o.d"
  "/root/repo/src/medrelax/io/ingestion_io.cc" "src/CMakeFiles/medrelax.dir/medrelax/io/ingestion_io.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/io/ingestion_io.cc.o.d"
  "/root/repo/src/medrelax/io/kb_io.cc" "src/CMakeFiles/medrelax.dir/medrelax/io/kb_io.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/io/kb_io.cc.o.d"
  "/root/repo/src/medrelax/kb/conjunctive_query.cc" "src/CMakeFiles/medrelax.dir/medrelax/kb/conjunctive_query.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/kb/conjunctive_query.cc.o.d"
  "/root/repo/src/medrelax/kb/instance_store.cc" "src/CMakeFiles/medrelax.dir/medrelax/kb/instance_store.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/kb/instance_store.cc.o.d"
  "/root/repo/src/medrelax/kb/kb_query.cc" "src/CMakeFiles/medrelax.dir/medrelax/kb/kb_query.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/kb/kb_query.cc.o.d"
  "/root/repo/src/medrelax/kb/triple_store.cc" "src/CMakeFiles/medrelax.dir/medrelax/kb/triple_store.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/kb/triple_store.cc.o.d"
  "/root/repo/src/medrelax/matching/edit_matcher.cc" "src/CMakeFiles/medrelax.dir/medrelax/matching/edit_matcher.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/matching/edit_matcher.cc.o.d"
  "/root/repo/src/medrelax/matching/embedding_matcher.cc" "src/CMakeFiles/medrelax.dir/medrelax/matching/embedding_matcher.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/matching/embedding_matcher.cc.o.d"
  "/root/repo/src/medrelax/matching/exact_matcher.cc" "src/CMakeFiles/medrelax.dir/medrelax/matching/exact_matcher.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/matching/exact_matcher.cc.o.d"
  "/root/repo/src/medrelax/matching/name_index.cc" "src/CMakeFiles/medrelax.dir/medrelax/matching/name_index.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/matching/name_index.cc.o.d"
  "/root/repo/src/medrelax/nli/dialogue_manager.cc" "src/CMakeFiles/medrelax.dir/medrelax/nli/dialogue_manager.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/nli/dialogue_manager.cc.o.d"
  "/root/repo/src/medrelax/nli/entity_extractor.cc" "src/CMakeFiles/medrelax.dir/medrelax/nli/entity_extractor.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/nli/entity_extractor.cc.o.d"
  "/root/repo/src/medrelax/nli/intent_classifier.cc" "src/CMakeFiles/medrelax.dir/medrelax/nli/intent_classifier.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/nli/intent_classifier.cc.o.d"
  "/root/repo/src/medrelax/nli/nlq_interpreter.cc" "src/CMakeFiles/medrelax.dir/medrelax/nli/nlq_interpreter.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/nli/nlq_interpreter.cc.o.d"
  "/root/repo/src/medrelax/nli/training_data.cc" "src/CMakeFiles/medrelax.dir/medrelax/nli/training_data.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/nli/training_data.cc.o.d"
  "/root/repo/src/medrelax/ontology/context.cc" "src/CMakeFiles/medrelax.dir/medrelax/ontology/context.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/ontology/context.cc.o.d"
  "/root/repo/src/medrelax/ontology/domain_ontology.cc" "src/CMakeFiles/medrelax.dir/medrelax/ontology/domain_ontology.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/ontology/domain_ontology.cc.o.d"
  "/root/repo/src/medrelax/relax/baseline_measures.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/baseline_measures.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/baseline_measures.cc.o.d"
  "/root/repo/src/medrelax/relax/explain.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/explain.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/explain.cc.o.d"
  "/root/repo/src/medrelax/relax/feedback.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/feedback.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/feedback.cc.o.d"
  "/root/repo/src/medrelax/relax/frequency_model.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/frequency_model.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/frequency_model.cc.o.d"
  "/root/repo/src/medrelax/relax/ingestion.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/ingestion.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/ingestion.cc.o.d"
  "/root/repo/src/medrelax/relax/query_relaxer.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/query_relaxer.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/query_relaxer.cc.o.d"
  "/root/repo/src/medrelax/relax/similarity.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/similarity.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/similarity.cc.o.d"
  "/root/repo/src/medrelax/relax/weight_learner.cc" "src/CMakeFiles/medrelax.dir/medrelax/relax/weight_learner.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/relax/weight_learner.cc.o.d"
  "/root/repo/src/medrelax/text/edit_distance.cc" "src/CMakeFiles/medrelax.dir/medrelax/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/text/edit_distance.cc.o.d"
  "/root/repo/src/medrelax/text/normalize.cc" "src/CMakeFiles/medrelax.dir/medrelax/text/normalize.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/text/normalize.cc.o.d"
  "/root/repo/src/medrelax/text/tfidf.cc" "src/CMakeFiles/medrelax.dir/medrelax/text/tfidf.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/text/tfidf.cc.o.d"
  "/root/repo/src/medrelax/text/tokenize.cc" "src/CMakeFiles/medrelax.dir/medrelax/text/tokenize.cc.o" "gcc" "src/CMakeFiles/medrelax.dir/medrelax/text/tokenize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
