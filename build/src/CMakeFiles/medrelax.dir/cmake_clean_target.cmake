file(REMOVE_RECURSE
  "libmedrelax.a"
)
