# Empty dependencies file for bench_table2_effectiveness.
# This may be replaced when dependencies are built.
