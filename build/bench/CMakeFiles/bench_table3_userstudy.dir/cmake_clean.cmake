file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_userstudy.dir/bench_table3_userstudy.cc.o"
  "CMakeFiles/bench_table3_userstudy.dir/bench_table3_userstudy.cc.o.d"
  "bench_table3_userstudy"
  "bench_table3_userstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_userstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
