file(REMOVE_RECURSE
  "CMakeFiles/conversation_demo.dir/conversation_demo.cc.o"
  "CMakeFiles/conversation_demo.dir/conversation_demo.cc.o.d"
  "conversation_demo"
  "conversation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conversation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
