# Empty dependencies file for conversation_demo.
# This may be replaced when dependencies are built.
