file(REMOVE_RECURSE
  "CMakeFiles/frequency_walkthrough.dir/frequency_walkthrough.cc.o"
  "CMakeFiles/frequency_walkthrough.dir/frequency_walkthrough.cc.o.d"
  "frequency_walkthrough"
  "frequency_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
