# Empty dependencies file for frequency_walkthrough.
# This may be replaced when dependencies are built.
