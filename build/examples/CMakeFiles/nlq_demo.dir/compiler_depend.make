# Empty compiler generated dependencies file for nlq_demo.
# This may be replaced when dependencies are built.
