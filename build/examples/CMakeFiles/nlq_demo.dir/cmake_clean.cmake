file(REMOVE_RECURSE
  "CMakeFiles/nlq_demo.dir/nlq_demo.cc.o"
  "CMakeFiles/nlq_demo.dir/nlq_demo.cc.o.d"
  "nlq_demo"
  "nlq_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlq_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
