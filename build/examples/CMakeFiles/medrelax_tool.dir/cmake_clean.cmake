file(REMOVE_RECURSE
  "CMakeFiles/medrelax_tool.dir/medrelax_tool.cc.o"
  "CMakeFiles/medrelax_tool.dir/medrelax_tool.cc.o.d"
  "medrelax_tool"
  "medrelax_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medrelax_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
