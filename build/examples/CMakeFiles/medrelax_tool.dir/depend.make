# Empty dependencies file for medrelax_tool.
# This may be replaced when dependencies are built.
