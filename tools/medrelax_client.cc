// medrelax_client: the counterpart to `medrelax_server --listen` — a
// scripted session pipe and a closed-loop load driver over the TCP
// transport, both loopback-only like the server.
//
//   medrelax_client session <port>
//       Streams stdin to 127.0.0.1:<port> and everything the server
//       sends back to stdout, until both sides are done (stdin EOF
//       half-closes the socket; a server "ok bye" close ends the read
//       side). Piping the golden session file through this must produce
//       the same transcript as piping it into the stdin transport —
//       scripts/server_smoke.sh diffs exactly that.
//
//   medrelax_client load <port> [--requests N] [--connections C]
//                        [--line 'RELAX ...' | --replay FILE]
//                        [--zipf THETA] [--seed S]
//       C concurrent sessions issue N requests total, each waiting for
//       its full reply frame before sending the next (closed loop).
//       With --replay FILE the request stream is a session replay: every
//       session cycles through FILE's command lines in order (blank and
//       '#' lines skipped), so a recorded session with repeated or
//       correlated keys reproduces the duplicate-heavy mix that
//       exercises the server's single-flight coalescing and batch drain
//       (docs/SERVING.md "Coalescing & batching"). With --zipf THETA the
//       replay lines are not cycled in order: each request draws a line
//       by Zipf(THETA) popularity rank (line 1 of FILE is the hottest),
//       from a per-session mt19937 seeded with S + session index — the
//       skewed-popularity mix the result cache's activity policy is
//       built for (scripts/server_smoke.sh "cache-stress"). Prints
//       "ok load requests=N answered=A errors=E" on stdout; timing goes
//       to stderr so stdout stays machine-diffable.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  medrelax_client session <port>\n"
               "  medrelax_client load <port> [--requests N]"
               " [--connections C] [--line 'RELAX ...' | --replay FILE]"
               " [--zipf THETA] [--seed S]\n");
  return 2;
}

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

size_t SizeFlag(int argc, char** argv, const char* flag, size_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::strtoul(v, nullptr, 10) : fallback;
}

double DoubleFlag(int argc, char** argv, const char* flag, double fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::strtod(v, nullptr) : fallback;
}

/// Cumulative Zipf(theta) popularity over `ranks` items: weight of rank r
/// is 1/(r+1)^theta. Sampling is an upper_bound over this prefix table,
/// so two runs with the same seed draw the same request sequence.
std::vector<double> ZipfCdf(size_t ranks, double theta) {
  std::vector<double> cdf(ranks);
  double total = 0;
  for (size_t r = 0; r < ranks; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

/// Blocking connect to 127.0.0.1:port. Returns the fd, or -1 with the
/// reason on stderr.
int ConnectLoopback(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "connect 127.0.0.1:%u: %s\n",
                 static_cast<unsigned>(port), std::strerror(errno));
    close(fd);
    return -1;
  }
  return fd;
}

/// Writes all of `data`, looping over partial sends. False on error.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reassembles '\n'-framed lines from a blocking socket; mirrors the
/// server's framing (trailing '\r' stripped, EOF flushes a final
/// unterminated line).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False only when the stream is exhausted (EOF or error) and no
  /// buffered line remains.
  bool ReadLine(std::string* line) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      if (eof_) {
        if (buf_.empty()) return false;
        *line = std::move(buf_);
        buf_.clear();
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      eof_ = true;  // orderly EOF and hard errors end the stream alike
    }
  }

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

int RunSession(uint16_t port) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return 1;

  // Writer: stdin → socket; half-close on input EOF so a session file
  // without QUIT still terminates (the server treats EOF like QUIT).
  std::thread writer([fd] {
    std::string line;
    while (std::getline(std::cin, line)) {
      line += '\n';
      if (!SendAll(fd, line)) break;
    }
    shutdown(fd, SHUT_WR);
  });

  // Reader: socket → stdout until the server closes.
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      std::fwrite(buf, 1, static_cast<size_t>(n), stdout);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  std::fflush(stdout);
  writer.join();
  close(fd);
  return 0;
}

/// Whether `command`'s "ok" reply is a multi-line frame terminated by
/// "end" (mirrors how the server formats each verb's answer).
bool IsMultiLineReply(const std::string& command) {
  return command.rfind("RELAX", 0) == 0 || command.rfind("CONTEXTS", 0) == 0 ||
         command.rfind("STATS", 0) == 0;
}

/// One load session: greet, then `requests` closed-loop command/reply
/// rounds over `script` — in order (one entry for --line, the whole
/// replay file otherwise), or by Zipf popularity rank when `zipf_cdf` is
/// non-null (--zipf; `seed` makes the draw sequence reproducible).
/// Replies are framed like the server formats them: "err ..." is one
/// line, multi-line "ok" frames end with "end", other "ok" replies are
/// one line.
void LoadWorker(uint16_t port, size_t requests,
                const std::vector<std::string>& script,
                const std::vector<double>* zipf_cdf, uint64_t seed,
                std::atomic<uint64_t>* answered, std::atomic<uint64_t>* errors) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) {
    errors->fetch_add(requests, std::memory_order_relaxed);
    return;
  }
  LineReader reader(fd);
  std::string line;
  if (!reader.ReadLine(&line) || line.rfind("ok serving", 0) != 0) {
    // No greeting: likely rejected at the connection cap.
    errors->fetch_add(requests, std::memory_order_relaxed);
    close(fd);
    return;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (size_t i = 0; i < requests; ++i) {
    size_t slot = i % script.size();
    if (zipf_cdf != nullptr) {
      slot = static_cast<size_t>(
          std::upper_bound(zipf_cdf->begin(), zipf_cdf->end(), unit(rng)) -
          zipf_cdf->begin());
      if (slot >= script.size()) slot = script.size() - 1;
    }
    const std::string& command = script[slot];
    if (!SendAll(fd, command + "\n") || !reader.ReadLine(&line)) {
      errors->fetch_add(requests - i, std::memory_order_relaxed);
      close(fd);
      return;
    }
    if (line.rfind("err", 0) == 0) {
      errors->fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (IsMultiLineReply(command)) {
      bool closed = false;
      while (line != "end") {
        if (!reader.ReadLine(&line)) {
          closed = true;
          break;
        }
      }
      if (closed) {
        errors->fetch_add(requests - i, std::memory_order_relaxed);
        close(fd);
        return;
      }
    }
    answered->fetch_add(1, std::memory_order_relaxed);
  }
  SendAll(fd, "QUIT\n");
  while (reader.ReadLine(&line)) {
  }
  close(fd);
}

int RunLoad(int argc, char** argv, uint16_t port) {
  const size_t requests = SizeFlag(argc, argv, "--requests", 100);
  const size_t connections = SizeFlag(argc, argv, "--connections", 1);
  const char* line_flag = FlagValue(argc, argv, "--line");
  const char* replay_flag = FlagValue(argc, argv, "--replay");
  if (line_flag != nullptr && replay_flag != nullptr) return Usage();
  std::vector<std::string> script;
  if (replay_flag != nullptr) {
    std::ifstream file(replay_flag);
    if (!file) {
      std::fprintf(stderr, "cannot read replay file '%s'\n", replay_flag);
      return 1;
    }
    std::string line;
    while (std::getline(file, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      if (line == "QUIT") continue;  // every session QUITs on its own
      script.push_back(line);
    }
    if (script.empty()) {
      std::fprintf(stderr, "replay file '%s' has no commands\n", replay_flag);
      return 1;
    }
  } else {
    script.push_back(line_flag != nullptr ? line_flag : "GEN");
  }
  if (connections == 0 || requests == 0) return Usage();
  const double zipf_theta = DoubleFlag(argc, argv, "--zipf", 0.0);
  if (zipf_theta < 0) return Usage();
  const uint64_t seed = SizeFlag(argc, argv, "--seed", 42);
  std::vector<double> zipf_cdf;
  if (zipf_theta > 0) zipf_cdf = ZipfCdf(script.size(), zipf_theta);

  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> errors{0};
  const auto t_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    // Spread the total across sessions; the first takes the remainder.
    size_t share = requests / connections;
    if (c == 0) share += requests % connections;
    threads.emplace_back(LoadWorker, port, share, std::cref(script),
                         zipf_theta > 0 ? &zipf_cdf : nullptr, seed + c,
                         &answered, &errors);
  }
  for (std::thread& t : threads) t.join();
  const auto t_end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(t_end - t_start).count();

  std::printf("ok load requests=%zu answered=%llu errors=%llu\n", requests,
              static_cast<unsigned long long>(
                  answered.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  errors.load(std::memory_order_relaxed)));
  std::fprintf(stderr, "connections=%zu wall=%.3fs throughput=%.0f req/s\n",
               connections, seconds,
               seconds > 0 ? static_cast<double>(requests) / seconds : 0);
  return errors.load(std::memory_order_relaxed) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const uint16_t port =
      static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10));
  if (port == 0) return Usage();
  if (std::strcmp(argv[1], "session") == 0) return RunSession(port);
  if (std::strcmp(argv[1], "load") == 0) return RunLoad(argc, argv, port);
  return Usage();
}
