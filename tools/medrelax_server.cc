// medrelax_server: the long-lived serving front end over medrelax/serve.
//
//   medrelax_server serve <dir> [--image FILE] [--workers N] [--queue N]
//                         [--cache N] [--cache-policy lru|activity]
//                         [--deadline-ms D] [--exact] [--batch N]
//                         [--listen PORT] [--max-conns N] [--max-line N]
//       Loads <dir>/eks.tsv + <dir>/kb.tsv (as written by
//       `medrelax_tool generate`), runs the offline ingestion into a
//       serving snapshot, and answers a newline-delimited text protocol
//       (grammar in docs/SERVING.md). With --image FILE the offline
//       phase is skipped entirely: FILE is a flat snapshot image frozen
//       by medrelax_ingest, mmapped read-only and served zero-copy
//       (<dir> may then be omitted).
//
//         RELAX [k=N] [ctx=LABEL] <term...>   relax a [term, context] pair
//         CONTEXTS                            list context labels
//         GEN                                 current snapshot generation
//         RELOAD [path]                       hot-swap: map `path` (a flat
//                                             image) when given, else
//                                             re-load the boot source
//         STATS                               deterministic counter block
//         QUIT                                end the session (EOF too)
//
//       Without --listen the session is stdin/stdout: one client, zero
//       dependencies, the CI smoke surface. With --listen PORT the same
//       protocol is served to many concurrent sessions over TCP on
//       127.0.0.1:PORT (PORT 0 = ephemeral; the chosen port is printed
//       as "ok listening port=N" on stdout). One epoll thread owns all
//       sockets; RELAX answers are computed by the service workers, and
//       RELOAD rebuilds run on a dedicated reload thread (other sessions
//       keep answering during a re-ingest); both deliver their replies
//       back to the owning connection through the loop's wakeup queue,
//       so the same scripted session yields byte-identical transcripts
//       over both transports (scripts/server_smoke.sh diffs exactly
//       that).
//
//       Lines starting with '#' and blank lines are ignored, so a
//       scripted session file can be commented.
//
//   medrelax_server load <dir> [--requests N] [--workers N] [--queue N]
//                        [--cache N] [--deadline-ms D] [--distinct N]
//       Closed-loop load driver: submits N requests (rotating over
//       --distinct flagged concepts, so the cache hit rate is tunable) as
//       fast as the admission queue accepts them, then reports throughput
//       and the full stats block. Timing figures go to stderr; stdout
//       stays machine-diffable. (For load over TCP, see medrelax_client.)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "medrelax/common/mutex.h"
#include "medrelax/common/string_util.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/io/dag_io.h"
#include "medrelax/io/kb_io.h"
#include "medrelax/net/event_loop.h"
#include "medrelax/net/line_server.h"
#include "medrelax/serve/protocol.h"
#include "medrelax/serve/relaxation_service.h"

using namespace medrelax;  // NOLINT — tool brevity

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  medrelax_server serve <dir> [--image FILE] [--workers N]"
      " [--queue N] [--cache N] [--cache-policy lru|activity]\n"
      "                       [--deadline-ms D] [--exact] [--batch N]"
      " [--listen PORT] [--max-conns N]\n"
      "                       [--max-line BYTES]\n"
      "      (--image FILE boots from a medrelax_ingest snapshot image;"
      " <dir> may be omitted)\n"
      "  medrelax_server load <dir> [--requests N] [--workers N]"
      " [--queue N] [--cache N] [--deadline-ms D] [--distinct N]\n");
  return 2;
}

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

size_t SizeFlag(int argc, char** argv, const char* flag, size_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::strtoul(v, nullptr, 10) : fallback;
}

/// Loads <dir>/{eks,kb}.tsv fresh and runs the offline phase into a new
/// snapshot. Used at startup and by RELOAD: re-reading from disk means an
/// operator can regenerate or hand-edit the world files and hot-swap the
/// result without restarting the server.
Result<std::shared_ptr<Snapshot>> BuildSnapshotFromDir(
    const std::string& dir, const SnapshotOptions& options) MEDRELAX_BLOCKING {
  Result<ConceptDag> dag = LoadDagFromFile(dir + "/eks.tsv");
  if (!dag.ok()) return dag.status();
  Result<KnowledgeBase> kb = LoadKbFromFile(dir + "/kb.tsv");
  if (!kb.ok()) return kb.status();
  return Snapshot::Build(std::move(*dag), std::move(*kb), nullptr, options);
}

/// Everything a session (stdin or one TCP connection) needs to answer
/// protocol verbs. One per server process. `image_path` is the flat
/// image the current snapshot was mapped from, empty for dir-built
/// servers; only the reload path (one thread at a time — the stdio
/// session or the single ReloadExecutor worker) touches it after setup.
struct ServerState {
  RelaxationService& service;
  std::string dir;
  std::string image_path;
  SnapshotOptions snapshot_options;
};

/// Runs one RELOAD end-to-end and renders the protocol reply. With an
/// explicit `image_arg` (RELOAD <path>) or an image-booted server, the
/// swap is map-and-publish — O(image validation), no Algorithm 1;
/// otherwise <dir> is re-read from disk and the offline phase reruns.
/// A failed reload replies a typed err and leaves the current generation
/// serving untouched. Both transports produce their RELOAD replies
/// through this one function, so the transcripts cannot drift.
/// MEDRELAX_BLOCKING: a dir rebuild is seconds of CPU at scale; the TCP
/// transport runs it on the ReloadExecutor thread, never on the event
/// loop.
std::string DoReload(ServerState& state,
                     const std::string& image_arg) MEDRELAX_BLOCKING {
  // Test hook: scripts/server_smoke.sh stretches the rebuild window to
  // prove other sessions keep answering while a RELOAD is in flight.
  if (const char* delay_ms = std::getenv("MEDRELAX_RELOAD_TEST_DELAY_MS")) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::strtoul(delay_ms, nullptr, 10)));
  }
  const std::string image =
      !image_arg.empty() ? image_arg : state.image_path;
  Result<std::shared_ptr<Snapshot>> reloaded =
      !image.empty() ? Snapshot::LoadFromImage(image)
                     : BuildSnapshotFromDir(state.dir, state.snapshot_options);
  if (!reloaded.ok()) {
    return StrFormat("err %s\n", reloaded.status().ToString().c_str());
  }
  // A successful explicit-path reload makes that image the boot source
  // for later plain RELOADs (sticky, like booting with --image).
  if (!image_arg.empty()) state.image_path = image_arg;
  state.service.TransportStats().RecordSnapshotSource(
      (*reloaded)->source() == SnapshotSource::kMapped,
      (*reloaded)->load_micros());
  const uint64_t generation =
      state.service.PublishSnapshot(std::move(*reloaded));
  state.service.TransportStats().RecordReloadCompleted();
  return StrFormat("ok reload gen=%llu\n",
                   static_cast<unsigned long long>(generation));
}

/// One dedicated worker draining RELOAD jobs, so a rebuild borrows no
/// RelaxationService worker (with --workers 1 the single query worker
/// would otherwise stall every session's RELAX behind the rebuild) and
/// never touches the service's queue bound or counters. A deque, not a
/// single slot: pile-up is bounded by the number of paused connections,
/// each of which can have at most one RELOAD in flight.
class ReloadExecutor {
 public:
  ReloadExecutor() : worker_([this] { WorkerLoop(); }) {}

  /// Drains queued jobs, then joins. Runs after EventLoop::Run has
  /// returned (declaration order in RunTcpServer), so in-flight replies
  /// still Post() safely into the outlived-but-stopped loop.
  ~ReloadExecutor() {
    {
      MutexLock lock(mu_);
      stopped_ = true;
    }
    cv_.NotifyOne();
    if (worker_.joinable()) worker_.join();
  }

  ReloadExecutor(const ReloadExecutor&) = delete;
  ReloadExecutor& operator=(const ReloadExecutor&) = delete;

  /// Enqueues `job` for the worker. Never blocks beyond the push: safe
  /// to call from the event loop.
  void Submit(std::function<void()> job) MEDRELAX_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      queue_.push_back(std::move(job));
    }
    cv_.NotifyOne();
  }

 private:
  void WorkerLoop() MEDRELAX_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> job;
      {
        MutexLock lock(mu_);
        while (queue_.empty() && !stopped_) cv_.Wait(mu_);
        if (queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      // Invoked with no lock held: jobs block for seconds by design, and
      // their completion lambdas must be free to take their own locks.
      job();
    }
  }

  Mutex mu_{"ReloadExecutor::mu"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ MEDRELAX_GUARDED_BY(mu_);
  bool stopped_ MEDRELAX_GUARDED_BY(mu_) = false;
  /// Touched only by the constructor and the destructor's join, both on
  /// the owning thread.
  std::thread worker_;  // lint:allow(guarded-by) ctor/join only
};

std::string FormatOutcome(const Snapshot& snap, const RelaxResponse& response,
                          const std::string& term) {
  const RelaxationOutcome& outcome = *response.outcome;
  std::string out = StrFormat(
      "ok relax term='%s' gen=%llu hit=%d radius=%u concepts=%zu"
      " instances=%zu\n",
      term.c_str(), static_cast<unsigned long long>(response.generation),
      response.cache_hit ? 1 : 0, outcome.effective_radius,
      outcome.concepts.size(), outcome.instances.size());
  for (const ScoredConcept& sc : outcome.concepts) {
    out += StrFormat("concept %s sim=%.3f\n",
                     snap.dag().name(sc.concept_id).c_str(), sc.similarity);
    for (InstanceId i : sc.instances) {
      out += StrFormat("  instance %s\n",
                       snap.kb().instances.instance(i).name.c_str());
    }
  }
  out += "end\n";
  return out;
}

/// Renders a RELAX answer (or typed error) exactly like the stdin
/// transport always did; called on whichever thread completed the
/// request.
std::string FormatRelaxReply(RelaxationService& service,
                             const std::string& term,
                             const Result<RelaxResponse>& response) {
  if (!response.ok()) {
    return StrFormat("err %s\n", response.status().ToString().c_str());
  }
  // The response pins no snapshot; re-grab the one that answered. The
  // generation check protects the names against a racing RELOAD.
  std::shared_ptr<const Snapshot> snap = service.snapshot();
  if (snap->generation() != response->generation) {
    return "err FailedPrecondition: snapshot swapped mid-print\n";
  }
  return FormatOutcome(*snap, *response, term);
}

/// RELAX [k=N] [timeout_ms=N] [ctx=LABEL] <term...> — the grammar and
/// the overflow-checked numeric parsing live in serve/protocol.cc (the
/// fuzzed surface); this adapter only resolves the context label against
/// the live snapshot and fills the request. Returns an "err ...\n" reply
/// on failure, "" on success (with *request/*term filled in).
std::string ParseRelaxLine(RelaxationService& service, std::istringstream& in,
                           RelaxRequest* request, std::string* term) {
  std::string rest;
  std::getline(in, rest);
  Result<serve::RelaxLine> parsed = serve::ParseRelaxArgs(rest);
  if (!parsed.ok()) {
    return StrFormat("err %s\n", parsed.status().ToString().c_str());
  }
  if (parsed->has_context) {
    std::shared_ptr<const Snapshot> snap = service.snapshot();
    request->context =
        snap->ingestion().contexts.FindByLabel(parsed->context_label);
    if (request->context == kNoContext) {
      return StrFormat("err InvalidArgument: unknown context '%s'\n",
                       parsed->context_label.c_str());
    }
  }
  request->top_k = static_cast<size_t>(parsed->top_k);
  if (parsed->timeout_ms != 0) {
    request->timeout = std::chrono::milliseconds(parsed->timeout_ms);
  }
  *term = parsed->term;
  request->term = *term;
  return "";
}

/// Answers the quick control verbs — everything except RELAX, RELOAD
/// and QUIT, whose handling is transport-specific. Nothing here blocks
/// (snapshot reads and counter formatting only), so the TCP transport
/// answers these inline on the event loop. Shared verbatim between the
/// stdin and TCP transports so their transcripts cannot drift apart.
std::string HandleControlVerb(ServerState& state, const std::string& verb,
                              std::istringstream& in) {
  (void)in;  // no control verb takes arguments today
  if (verb == "CONTEXTS") {
    std::shared_ptr<const Snapshot> snap = state.service.snapshot();
    const ContextRegistry& contexts = snap->ingestion().contexts;
    std::string out = StrFormat("ok contexts n=%zu\n", contexts.size());
    for (const Context& c : contexts.contexts()) {
      out += StrFormat("context %s\n", c.Label().c_str());
    }
    out += "end\n";
    return out;
  }
  if (verb == "GEN") {
    return StrFormat("ok gen=%llu\n",
                     static_cast<unsigned long long>(
                         state.service.snapshot()->generation()));
  }
  if (verb == "STATS") {
    return StrFormat("ok stats\n%send\n",
                     state.service.Stats()
                         .ToString(/*deterministic_only=*/true)
                         .c_str());
  }
  return StrFormat("err InvalidArgument: unknown verb '%s'\n", verb.c_str());
}

std::string ServingBanner(const RelaxationService& service,
                          const ServiceOptions& options) {
  return StrFormat(
      "ok serving gen=%llu workers=%u queue=%zu cache=%zu\n",
      static_cast<unsigned long long>(service.snapshot()->generation()),
      options.num_workers, options.queue_capacity, options.cache.capacity);
}

/// The stdin/stdout transport: one synchronous session on this thread.
/// RELOAD runs inline — with a single client there is nobody else to
/// keep serving, and the synchronous reply keeps the scripted-session
/// transcript byte-identical to the TCP transport's.
int RunStdioSession(ServerState& state) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb == "QUIT") {
      std::printf("ok bye\n");
      break;
    }
    if (verb == "RELOAD") {
      std::string image_arg;
      in >> image_arg;
      std::fputs(DoReload(state, image_arg).c_str(), stdout);
      std::fflush(stdout);
      continue;
    }
    if (verb == "RELAX") {
      RelaxRequest request;
      std::string term;
      std::string parse_error = ParseRelaxLine(state.service, in, &request,
                                               &term);
      if (!parse_error.empty()) {
        std::fputs(parse_error.c_str(), stdout);
      } else {
        Result<RelaxResponse> response =
            state.service.Relax(std::move(request));
        std::fputs(FormatRelaxReply(state.service, term, response).c_str(),
                   stdout);
      }
    } else {
      std::fputs(HandleControlVerb(state, verb, in).c_str(), stdout);
    }
    std::fflush(stdout);
  }
  return 0;
}

/// The TCP transport: one epoll thread owns every socket; service
/// workers complete RELAX requests and Post() the formatted reply back
/// to the loop, which routes it to the owning connection by id (the
/// connection may be gone — ids, unlike pointers, fail safely).
///
/// Per-session command order is preserved by pausing the connection
/// while a RELAX or RELOAD is in flight: later pipelined commands wait
/// in the buffers until the answer is on the wire. Different sessions
/// proceed concurrently — that is the point of the frontend. RELOAD
/// follows the same shape as RELAX but runs on the dedicated
/// ReloadExecutor thread: the rebuild never blocks the event loop (every
/// other session keeps answering) and never occupies a query worker.
///
/// MEDRELAX_LOOP_THREAD_ONLY: EventLoop::Run turns the calling thread
/// into the loop thread, so everything this function touches after
/// setup runs under loop affinity.
int RunTcpServer(ServerState& state, const ServiceOptions& service_options,
                 uint16_t port, size_t max_conns,
                 size_t max_line) MEDRELAX_LOOP_THREAD_ONLY {
  net::EventLoop loop;
  if (!loop.ok()) {
    std::fprintf(stderr, "event loop init failed (epoll/eventfd)\n");
    return 1;
  }
  net::LineServer server(loop);
  // Declared after loop and server: destroyed (drained + joined) first,
  // so a reload finishing during shutdown still Posts into a live loop.
  ReloadExecutor reload_executor;

  net::LineServerOptions options;
  options.port = port;
  options.max_connections = max_conns;
  if (max_line != 0) options.limits.max_line_bytes = max_line;
  options.greeting = ServingBanner(state.service, service_options);

  auto on_line = [&state, &loop, &server, &reload_executor](
                     net::Connection& conn, std::string line) {
    if (line.empty() || line[0] == '#') return;
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb == "QUIT") {
      conn.Send("ok bye\n");
      conn.CloseAfterFlush();
      return;
    }
    if (verb == "RELOAD") {
      // Same pause-then-post shape as RELAX below, but the heavy work
      // runs on the reload thread: this session waits for its answer,
      // every other session keeps being served by the loop meanwhile.
      std::string image_arg;
      in >> image_arg;
      conn.Pause();
      const uint64_t conn_id = conn.id();
      reload_executor.Submit([&state, &loop, &server, conn_id,
                              image_arg = std::move(image_arg)]() {
        std::string reply = DoReload(state, image_arg);
        loop.Post([&server, conn_id, reply = std::move(reply)]() {
          net::Connection* target = server.Find(conn_id);
          if (target == nullptr) return;  // client disconnected mid-flight
          target->Send(reply);
          target->Resume();
        });
      });
      return;
    }
    if (verb != "RELAX") {
      conn.Send(HandleControlVerb(state, verb, in));
      return;
    }
    RelaxRequest request;
    std::string term;
    std::string parse_error =
        ParseRelaxLine(state.service, in, &request, &term);
    if (!parse_error.empty()) {
      conn.Send(parse_error);
      return;
    }
    // Hold this session's later commands until the answer is out, then
    // hand the request to the workers. The completion runs on a worker
    // thread: it formats the reply (strings, no sockets) and posts it to
    // the loop, keyed by connection id in case the client vanished.
    conn.Pause();
    const uint64_t conn_id = conn.id();
    state.service.SubmitAsync(
        std::move(request),
        [&state, &loop, &server, conn_id,
         term](Result<RelaxResponse> response) {
          std::string reply = FormatRelaxReply(state.service, term, response);
          loop.Post([&server, conn_id, reply = std::move(reply)]() {
            net::Connection* target = server.Find(conn_id);
            if (target == nullptr) return;  // client disconnected mid-flight
            target->Send(reply);
            target->Resume();
          });
        });
  };

  net::LineServer::Callbacks callbacks;
  callbacks.on_line = on_line;
  callbacks.on_accept = [&state](net::Connection&) {
    state.service.TransportStats().RecordConnectionOpened();
  };
  callbacks.on_reject = [&state]() {
    state.service.TransportStats().RecordConnectionRejected();
  };
  callbacks.on_disconnect = [&state](const net::Connection& conn,
                                     const Status& reason) {
    const net::ConnectionStats& stats = conn.stats();
    state.service.TransportStats().RecordConnectionClosed();
    if (stats.oversize_rejects > 0) {
      // The true count, not a per-connection flag: a session can shed
      // several oversized lines before it is finally torn down.
      state.service.TransportStats().RecordLineRejected(
          stats.oversize_rejects);
    }
    std::fprintf(stderr,
                 "conn %llu closed (%s): lines_in=%llu bytes_in=%llu"
                 " bytes_out=%llu writes_deferred=%llu\n",
                 static_cast<unsigned long long>(conn.id()),
                 reason.ok() ? "ok" : reason.ToString().c_str(),
                 static_cast<unsigned long long>(stats.lines_in),
                 static_cast<unsigned long long>(stats.bytes_in),
                 static_cast<unsigned long long>(stats.bytes_out),
                 static_cast<unsigned long long>(stats.writes_deferred));
  };

  Status started = server.Start(options, std::move(callbacks));
  if (!started.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ok listening port=%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  loop.Run();
  return 0;
}

int RunServe(int argc, char** argv) {
  // With --image the positional <dir> may be omitted (argv[2] is then
  // the first flag); without it the dir stays mandatory.
  const std::string dir =
      std::strncmp(argv[2], "--", 2) != 0 ? argv[2] : "";
  const char* image_flag = FlagValue(argc, argv, "--image");
  const std::string image = image_flag != nullptr ? image_flag : "";
  if (dir.empty() && image.empty()) return Usage();
  SnapshotOptions snapshot_options;
  snapshot_options.use_exact_mapper = HasFlag(argc, argv, "--exact");
  ServiceOptions service_options;
  service_options.num_workers =
      static_cast<unsigned>(SizeFlag(argc, argv, "--workers", 1));
  service_options.queue_capacity = SizeFlag(argc, argv, "--queue", 64);
  service_options.cache.capacity = SizeFlag(argc, argv, "--cache", 1024);
  service_options.default_deadline =
      std::chrono::milliseconds(SizeFlag(argc, argv, "--deadline-ms", 0));
  service_options.max_batch =
      SizeFlag(argc, argv, "--batch", service_options.max_batch);
  // --cache-policy lru|activity: "lru" pins the pre-activity strict-LRU
  // behavior (the golden-parity escape hatch and the A/B baseline the
  // smoke script's cache-stress stage compares against); the default is
  // the decayed-activity policy from ResultCacheOptions.
  if (const char* policy = FlagValue(argc, argv, "--cache-policy")) {
    if (std::strcmp(policy, "lru") == 0) {
      service_options.cache.policy.eviction = CachePolicy::Eviction::kLru;
    } else if (std::strcmp(policy, "activity") == 0) {
      service_options.cache.policy.eviction =
          CachePolicy::Eviction::kDecayedActivity;
    } else {
      std::fprintf(stderr, "unknown --cache-policy '%s'\n", policy);
      return Usage();
    }
  }
  // Test hook: scripts/server_smoke.sh pads every computed (cache-miss)
  // answer so concurrent duplicate requests deterministically pile onto
  // the in-flight leader and `coalesced_hits` is provably non-zero.
  if (const char* delay_ms = std::getenv("MEDRELAX_COMPUTE_TEST_DELAY_MS")) {
    const unsigned long ms = std::strtoul(delay_ms, nullptr, 10);
    service_options.pre_compute_hook_for_test = [ms]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }

  Result<std::shared_ptr<Snapshot>> snapshot =
      !image.empty() ? Snapshot::LoadFromImage(image)
                     : BuildSnapshotFromDir(dir, snapshot_options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot %s failed: %s\n",
                 !image.empty() ? "image load" : "build",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const bool mapped = (*snapshot)->source() == SnapshotSource::kMapped;
  const uint64_t load_micros = (*snapshot)->load_micros();
  if (mapped) {
    // An image carries its build-time knobs; later dir RELOADs (only
    // possible when a <dir> was also given) reuse them.
    snapshot_options = (*snapshot)->options();
  }
  RelaxationService service(std::move(*snapshot), service_options);
  service.TransportStats().RecordSnapshotSource(mapped, load_micros);
  ServerState state{service, dir, image, snapshot_options};

  if (FlagValue(argc, argv, "--listen") != nullptr) {
    const uint16_t port =
        static_cast<uint16_t>(SizeFlag(argc, argv, "--listen", 0));
    const size_t max_conns = SizeFlag(argc, argv, "--max-conns", 64);
    const size_t max_line = SizeFlag(argc, argv, "--max-line", 0);
    // lint:allow(loop-affinity) EventLoop::Run makes this thread the loop
    return RunTcpServer(state, service_options, port, max_conns, max_line);
  }

  std::fputs(ServingBanner(service, service_options).c_str(), stdout);
  std::fflush(stdout);
  return RunStdioSession(state);
}

int RunLoad(int argc, char** argv) {
  const std::string dir = argv[2];
  SnapshotOptions snapshot_options;
  ServiceOptions service_options;
  service_options.num_workers =
      static_cast<unsigned>(SizeFlag(argc, argv, "--workers", 2));
  service_options.queue_capacity = SizeFlag(argc, argv, "--queue", 64);
  service_options.cache.capacity = SizeFlag(argc, argv, "--cache", 1024);
  service_options.default_deadline =
      std::chrono::milliseconds(SizeFlag(argc, argv, "--deadline-ms", 0));
  const size_t num_requests = SizeFlag(argc, argv, "--requests", 2000);
  const size_t distinct = SizeFlag(argc, argv, "--distinct", 32);

  Result<std::shared_ptr<Snapshot>> snapshot =
      BuildSnapshotFromDir(dir, snapshot_options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  // The query pool: flagged concepts, i.e. exactly the concepts real
  // traffic resolves to.
  std::vector<ConceptId> pool;
  {
    const std::vector<bool>& flagged = (*snapshot)->ingestion().flagged;
    for (ConceptId id = 0; id < flagged.size() && pool.size() < distinct;
         ++id) {
      if (flagged[id]) pool.push_back(id);
    }
  }
  if (pool.empty()) {
    std::fprintf(stderr, "no flagged concepts to query\n");
    return 1;
  }

  RelaxationService service(std::move(*snapshot), service_options);
  std::vector<std::future<Result<RelaxResponse>>> futures;
  futures.reserve(num_requests);
  const auto t_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < num_requests; ++i) {
    RelaxRequest request;
    request.concept_id = pool[i % pool.size()];
    futures.push_back(service.Submit(std::move(request)));
  }
  size_t ok = 0, queue_full = 0, deadline = 0, other = 0;
  for (auto& future : futures) {
    Result<RelaxResponse> response = future.get();
    if (response.ok()) {
      ++ok;
    } else if (response.status().IsResourceExhausted()) {
      ++queue_full;
    } else if (response.status().IsDeadlineExceeded()) {
      ++deadline;
    } else {
      ++other;
    }
  }
  const auto t_end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(t_end - t_start).count();
  std::printf("ok load requests=%zu answered=%zu rejected_queue_full=%zu"
              " rejected_deadline=%zu failed=%zu\n",
              num_requests, ok, queue_full, deadline, other);
  std::printf("%s", service.Stats().ToString().c_str());
  std::fprintf(stderr, "wall=%.3fs throughput=%.0f req/s\n", seconds,
               seconds > 0 ? static_cast<double>(num_requests) / seconds : 0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (std::strcmp(argv[1], "serve") == 0) return RunServe(argc, argv);
  if (std::strcmp(argv[1], "load") == 0) return RunLoad(argc, argv);
  return Usage();
}
