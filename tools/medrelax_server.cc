// medrelax_server: the long-lived serving front end over medrelax/serve.
//
//   medrelax_server serve <dir> [--workers N] [--queue N] [--cache N]
//                         [--deadline-ms D] [--exact]
//       Loads <dir>/eks.tsv + <dir>/kb.tsv (as written by
//       `medrelax_tool generate`), runs the offline ingestion into a
//       serving snapshot, and answers a newline-delimited text protocol on
//       stdin/stdout (grammar in docs/SERVING.md):
//
//         RELAX [k=N] [ctx=LABEL] <term...>   relax a [term, context] pair
//         CONTEXTS                            list context labels
//         GEN                                 current snapshot generation
//         RELOAD                              re-ingest <dir>, hot-swap
//         STATS                               deterministic counter block
//         QUIT                                exit (EOF also exits)
//
//       Lines starting with '#' and blank lines are ignored, so a scripted
//       session file can be commented (the CI smoke test pipes one in and
//       diffs the output against a golden file).
//
//   medrelax_server load <dir> [--requests N] [--workers N] [--queue N]
//                        [--cache N] [--deadline-ms D] [--distinct N]
//       Closed-loop load driver: submits N requests (rotating over
//       --distinct flagged concepts, so the cache hit rate is tunable) as
//       fast as the admission queue accepts them, then reports throughput
//       and the full stats block. Timing figures go to stderr; stdout
//       stays machine-diffable.
//
// No sockets on purpose: stdin/stdout keeps the service exercisable
// end-to-end with zero dependencies; a TCP frontend is a ROADMAP item.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "medrelax/io/dag_io.h"
#include "medrelax/io/kb_io.h"
#include "medrelax/serve/relaxation_service.h"

using namespace medrelax;  // NOLINT — tool brevity

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  medrelax_server serve <dir> [--workers N] [--queue N]"
               " [--cache N] [--deadline-ms D] [--exact]\n"
               "  medrelax_server load <dir> [--requests N] [--workers N]"
               " [--queue N] [--cache N] [--deadline-ms D] [--distinct N]\n");
  return 2;
}

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

size_t SizeFlag(int argc, char** argv, const char* flag, size_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::strtoul(v, nullptr, 10) : fallback;
}

/// Loads <dir>/{eks,kb}.tsv fresh and runs the offline phase into a new
/// snapshot. Used at startup and by RELOAD: re-reading from disk means an
/// operator can regenerate or hand-edit the world files and hot-swap the
/// result without restarting the server.
Result<std::shared_ptr<Snapshot>> BuildSnapshotFromDir(
    const std::string& dir, const SnapshotOptions& options) {
  Result<ConceptDag> dag = LoadDagFromFile(dir + "/eks.tsv");
  if (!dag.ok()) return dag.status();
  Result<KnowledgeBase> kb = LoadKbFromFile(dir + "/kb.tsv");
  if (!kb.ok()) return kb.status();
  return Snapshot::Build(std::move(*dag), std::move(*kb), nullptr, options);
}

void PrintOutcome(const Snapshot& snap, const RelaxResponse& response,
                  const std::string& term) {
  const RelaxationOutcome& outcome = *response.outcome;
  std::printf("ok relax term='%s' gen=%llu hit=%d radius=%u concepts=%zu"
              " instances=%zu\n",
              term.c_str(),
              static_cast<unsigned long long>(response.generation),
              response.cache_hit ? 1 : 0, outcome.effective_radius,
              outcome.concepts.size(), outcome.instances.size());
  for (const ScoredConcept& sc : outcome.concepts) {
    std::printf("concept %s sim=%.3f\n", snap.dag().name(sc.concept_id).c_str(),
                sc.similarity);
    for (InstanceId i : sc.instances) {
      std::printf("  instance %s\n",
                  snap.kb().instances.instance(i).name.c_str());
    }
  }
  std::printf("end\n");
}

/// RELAX [k=N] [ctx=LABEL] <term...> — options first, the rest is the term.
int HandleRelax(RelaxationService& service, std::istringstream& in) {
  RelaxRequest request;
  std::string token;
  std::string term;
  while (in >> token) {
    if (term.empty() && token.rfind("k=", 0) == 0) {
      request.top_k = std::strtoul(token.c_str() + 2, nullptr, 10);
      continue;
    }
    if (term.empty() && token.rfind("ctx=", 0) == 0) {
      std::shared_ptr<const Snapshot> snap = service.snapshot();
      const std::string label = token.substr(4);
      request.context = snap->ingestion().contexts.FindByLabel(label);
      if (request.context == kNoContext) {
        std::printf("err InvalidArgument: unknown context '%s'\n",
                    label.c_str());
        return 0;
      }
      continue;
    }
    if (!term.empty()) term += ' ';
    term += token;
  }
  if (term.empty()) {
    std::printf("err InvalidArgument: RELAX needs a term\n");
    return 0;
  }
  request.term = term;
  Result<RelaxResponse> response = service.Relax(std::move(request));
  if (!response.ok()) {
    std::printf("err %s\n", response.status().ToString().c_str());
    return 0;
  }
  // The response pins no snapshot; re-grab the one that answered. The
  // generation check protects the names against a racing RELOAD.
  std::shared_ptr<const Snapshot> snap = service.snapshot();
  if (snap->generation() != response->generation) {
    std::printf("err FailedPrecondition: snapshot swapped mid-print\n");
    return 0;
  }
  PrintOutcome(*snap, *response, term);
  return 0;
}

int RunServe(int argc, char** argv) {
  const std::string dir = argv[2];
  SnapshotOptions snapshot_options;
  snapshot_options.use_exact_mapper = HasFlag(argc, argv, "--exact");
  ServiceOptions service_options;
  service_options.num_workers =
      static_cast<unsigned>(SizeFlag(argc, argv, "--workers", 1));
  service_options.queue_capacity = SizeFlag(argc, argv, "--queue", 64);
  service_options.cache.capacity = SizeFlag(argc, argv, "--cache", 1024);
  service_options.default_deadline =
      std::chrono::milliseconds(SizeFlag(argc, argv, "--deadline-ms", 0));

  Result<std::shared_ptr<Snapshot>> snapshot =
      BuildSnapshotFromDir(dir, snapshot_options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  RelaxationService service(std::move(*snapshot), service_options);
  std::printf("ok serving gen=%llu workers=%u queue=%zu cache=%zu\n",
              static_cast<unsigned long long>(service.snapshot()->generation()),
              service_options.num_workers, service_options.queue_capacity,
              service_options.cache.capacity);
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb == "QUIT") {
      std::printf("ok bye\n");
      break;
    } else if (verb == "RELAX") {
      HandleRelax(service, in);
    } else if (verb == "CONTEXTS") {
      std::shared_ptr<const Snapshot> snap = service.snapshot();
      const ContextRegistry& contexts = snap->ingestion().contexts;
      std::printf("ok contexts n=%zu\n", contexts.size());
      for (const Context& c : contexts.contexts()) {
        std::printf("context %s\n", c.Label().c_str());
      }
      std::printf("end\n");
    } else if (verb == "GEN") {
      std::printf("ok gen=%llu\n", static_cast<unsigned long long>(
                                       service.snapshot()->generation()));
    } else if (verb == "RELOAD") {
      Result<std::shared_ptr<Snapshot>> reloaded =
          BuildSnapshotFromDir(dir, snapshot_options);
      if (!reloaded.ok()) {
        std::printf("err %s\n", reloaded.status().ToString().c_str());
      } else {
        uint64_t generation = service.PublishSnapshot(std::move(*reloaded));
        std::printf("ok reload gen=%llu\n",
                    static_cast<unsigned long long>(generation));
      }
    } else if (verb == "STATS") {
      std::printf("ok stats\n%send\n",
                  service.Stats().ToString(/*deterministic_only=*/true)
                      .c_str());
    } else {
      std::printf("err InvalidArgument: unknown verb '%s'\n", verb.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

int RunLoad(int argc, char** argv) {
  const std::string dir = argv[2];
  SnapshotOptions snapshot_options;
  ServiceOptions service_options;
  service_options.num_workers =
      static_cast<unsigned>(SizeFlag(argc, argv, "--workers", 2));
  service_options.queue_capacity = SizeFlag(argc, argv, "--queue", 64);
  service_options.cache.capacity = SizeFlag(argc, argv, "--cache", 1024);
  service_options.default_deadline =
      std::chrono::milliseconds(SizeFlag(argc, argv, "--deadline-ms", 0));
  const size_t num_requests = SizeFlag(argc, argv, "--requests", 2000);
  const size_t distinct = SizeFlag(argc, argv, "--distinct", 32);

  Result<std::shared_ptr<Snapshot>> snapshot =
      BuildSnapshotFromDir(dir, snapshot_options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  // The query pool: flagged concepts, i.e. exactly the concepts real
  // traffic resolves to.
  std::vector<ConceptId> pool;
  {
    const std::vector<bool>& flagged = (*snapshot)->ingestion().flagged;
    for (ConceptId id = 0; id < flagged.size() && pool.size() < distinct;
         ++id) {
      if (flagged[id]) pool.push_back(id);
    }
  }
  if (pool.empty()) {
    std::fprintf(stderr, "no flagged concepts to query\n");
    return 1;
  }

  RelaxationService service(std::move(*snapshot), service_options);
  std::vector<std::future<Result<RelaxResponse>>> futures;
  futures.reserve(num_requests);
  const auto t_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < num_requests; ++i) {
    RelaxRequest request;
    request.concept_id = pool[i % pool.size()];
    futures.push_back(service.Submit(std::move(request)));
  }
  size_t ok = 0, queue_full = 0, deadline = 0, other = 0;
  for (auto& future : futures) {
    Result<RelaxResponse> response = future.get();
    if (response.ok()) {
      ++ok;
    } else if (response.status().IsResourceExhausted()) {
      ++queue_full;
    } else if (response.status().IsDeadlineExceeded()) {
      ++deadline;
    } else {
      ++other;
    }
  }
  const auto t_end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(t_end - t_start).count();
  std::printf("ok load requests=%zu answered=%zu rejected_queue_full=%zu"
              " rejected_deadline=%zu failed=%zu\n",
              num_requests, ok, queue_full, deadline, other);
  std::printf("%s", service.Stats().ToString().c_str());
  std::fprintf(stderr, "wall=%.3fs throughput=%.0f req/s\n", seconds,
               seconds > 0 ? static_cast<double>(num_requests) / seconds : 0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (std::strcmp(argv[1], "serve") == 0) return RunServe(argc, argv);
  if (std::strcmp(argv[1], "load") == 0) return RunLoad(argc, argv);
  return Usage();
}
