// medrelax_ingest: the offline half of the flat-image serving pipeline.
//
//   medrelax_ingest <dir> <out-image> [--exact] [--precompute]
//       Loads <dir>/eks.tsv + <dir>/kb.tsv (as written by
//       `medrelax_tool generate`), runs the full offline phase
//       (Algorithm 1: contexts, mappings, frequency propagation,
//       shortcut edges) exactly as `medrelax_server serve <dir>` would,
//       then freezes the result into a flat snapshot image at
//       <out-image> (format: docs/SNAPSHOT_FORMAT.md). A server boots
//       from it with `medrelax_server serve --image <out-image>` — or
//       hot-swaps onto it with `RELOAD <out-image>` — without ever
//       rerunning the offline phase.
//
//   medrelax_ingest info <image>
//       Prints the image's meta block (counts, options fingerprint,
//       file size) without rebuilding anything — the operator's sanity
//       check before pointing a server at it.
//
// Summary lines go to stdout (machine-greppable "ok ingest ..."), timing
// to stderr, mirroring the medrelax_server convention.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "medrelax/common/string_util.h"
#include "medrelax/flat/image_view.h"
#include "medrelax/io/dag_io.h"
#include "medrelax/io/kb_io.h"
#include "medrelax/serve/snapshot.h"

using namespace medrelax;  // NOLINT — tool brevity

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  medrelax_ingest <dir> <out-image> [--exact]"
               " [--precompute]\n"
               "  medrelax_ingest info <image>\n");
  return 2;
}

int RunInfo(const std::string& path) {
  Result<std::unique_ptr<flat::FlatImageView>> image =
      flat::FlatImageView::Open(path);
  if (!image.ok()) {
    std::printf("err %s\n", image.status().ToString().c_str());
    return 1;
  }
  const flat::FlatMeta& meta = (*image)->meta();
  std::printf(
      "ok image bytes=%zu concepts=%llu edges=%llu shortcuts=%llu"
      " synonyms=%llu contexts=%llu mappings=%llu instances=%llu"
      " triples=%llu fingerprint=%016llx\n",
      (*image)->file_size(),
      static_cast<unsigned long long>(meta.num_concepts),
      static_cast<unsigned long long>(meta.num_edges),
      static_cast<unsigned long long>(meta.num_shortcut_edges),
      static_cast<unsigned long long>(meta.num_synonyms),
      static_cast<unsigned long long>(meta.num_contexts),
      static_cast<unsigned long long>(meta.num_mappings),
      static_cast<unsigned long long>(meta.num_instances),
      static_cast<unsigned long long>(meta.num_triples),
      static_cast<unsigned long long>(meta.options_fingerprint));
  return 0;
}

int RunIngest(int argc, char** argv) {
  const std::string dir = argv[1];
  const std::string out_path = argv[2];
  SnapshotOptions options;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--exact") == 0) {
      options.use_exact_mapper = true;
    } else if (std::strcmp(argv[i], "--precompute") == 0) {
      options.precompute_similarities = true;
    } else {
      return Usage();
    }
  }

  const auto t_start = std::chrono::steady_clock::now();
  Result<ConceptDag> dag = LoadDagFromFile(dir + "/eks.tsv");
  if (!dag.ok()) {
    std::fprintf(stderr, "eks load failed: %s\n",
                 dag.status().ToString().c_str());
    return 1;
  }
  Result<KnowledgeBase> kb = LoadKbFromFile(dir + "/kb.tsv");
  if (!kb.ok()) {
    std::fprintf(stderr, "kb load failed: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  Result<std::shared_ptr<Snapshot>> snapshot =
      Snapshot::Build(std::move(*dag), std::move(*kb), nullptr, options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "offline phase failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const auto t_built = std::chrono::steady_clock::now();
  Status written = (*snapshot)->WriteImage(out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "image write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  const auto t_end = std::chrono::steady_clock::now();

  // Re-open what was just written: the summary reports the image's own
  // meta (not the in-memory state), so "ok ingest" also proves the file
  // round-trips its validation pipeline.
  Result<std::unique_ptr<flat::FlatImageView>> image =
      flat::FlatImageView::Open(out_path);
  if (!image.ok()) {
    std::fprintf(stderr, "image verify failed: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  const flat::FlatMeta& meta = (*image)->meta();
  std::printf(
      "ok ingest concepts=%llu edges=%llu shortcuts=%llu contexts=%llu"
      " instances=%llu triples=%llu bytes=%zu\n",
      static_cast<unsigned long long>(meta.num_concepts),
      static_cast<unsigned long long>(meta.num_edges),
      static_cast<unsigned long long>(meta.num_shortcut_edges),
      static_cast<unsigned long long>(meta.num_contexts),
      static_cast<unsigned long long>(meta.num_instances),
      static_cast<unsigned long long>(meta.num_triples),
      (*image)->file_size());
  std::fprintf(
      stderr, "build=%.3fs write=%.3fs\n",
      std::chrono::duration<double>(t_built - t_start).count(),
      std::chrono::duration<double>(t_end - t_built).count());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "info") == 0) {
    return RunInfo(argv[2]);
  }
  if (argc < 3) return Usage();
  return RunIngest(argc, argv);
}
