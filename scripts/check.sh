#!/usr/bin/env bash
# Lint suite for medrelax: format check, clang-tidy, project-invariant
# lints, the semantic (annotation-driven) lint, and both lint self-tests.
#
# Usage:
#   scripts/check.sh            # run everything available on this machine
#   scripts/check.sh --fix      # let clang-format rewrite files in place
#
# clang-format and clang-tidy are used when installed and skipped with a
# warning otherwise (CI always has them); the Python invariant lints always
# run. clang-tidy needs a compile_commands.json — configure any build dir
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default) or set MEDRELAX_BUILD_DIR.
set -u -o pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
BUILD_DIR=${MEDRELAX_BUILD_DIR:-"${REPO_ROOT}/build"}
FIX=0
[[ "${1:-}" == "--fix" ]] && FIX=1

failures=0
note() { printf '== %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*" >&2; failures=$((failures + 1)); }
skip() { printf 'SKIP: %s\n' "$*" >&2; }

# tests/lint_selftest holds lint fixtures with deliberate violations and
# deliberately unformatted code; only the lint self-test reads them.
mapfile -t CXX_FILES < <(find src tests bench examples tools fuzz \
  \( -name '*.cc' -o -name '*.h' \) -type f \
  -not -path '*/lint_selftest/*' | sort)

# 1. clang-format ------------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format ($([[ ${FIX} == 1 ]] && echo fix || echo check) mode)"
  if [[ ${FIX} == 1 ]]; then
    clang-format -i "${CXX_FILES[@]}" || fail "clang-format --fix"
  else
    if ! clang-format --dry-run -Werror "${CXX_FILES[@]}"; then
      fail "clang-format (run scripts/check.sh --fix to apply)"
    fi
  fi
else
  skip "clang-format not installed"
fi

# 2. clang-tidy --------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f "${BUILD_DIR}/compile_commands.json" ]]; then
    note "clang-tidy (compile db: ${BUILD_DIR})"
    mapfile -t SRC_CC < <(find src tools -name '*.cc' -type f | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p "${BUILD_DIR}" "${SRC_CC[@]}" || fail "clang-tidy"
    else
      clang-tidy -quiet -p "${BUILD_DIR}" "${SRC_CC[@]}" || fail "clang-tidy"
    fi
  else
    skip "clang-tidy: no ${BUILD_DIR}/compile_commands.json (configure a build first)"
  fi
else
  skip "clang-tidy not installed"
fi

# 3. project-invariant lints -------------------------------------------------
note "invariant lints (scripts/lint/check_invariants.py)"
python3 scripts/lint/check_invariants.py || fail "invariant lints"

# 4. semantic lint -----------------------------------------------------------
# Annotation-driven thread-affinity / blocking / callback-scope /
# ignored-status / lifetime rules (docs/TOOLING.md). The textual frontend
# needs nothing beyond python3; when clang.cindex is importable AND the
# build dir exports a compile db, a second precise pass runs via libclang.
note "semantic lint (scripts/lint/run_semantic_lint.py, textual frontend)"
python3 scripts/lint/run_semantic_lint.py || fail "semantic lint (textual)"

if python3 -c 'import clang.cindex' >/dev/null 2>&1; then
  if [[ -f "${BUILD_DIR}/compile_commands.json" ]]; then
    note "semantic lint (clang frontend, compile db: ${BUILD_DIR})"
    python3 scripts/lint/run_semantic_lint.py --frontend clang \
      --compile-db "${BUILD_DIR}/compile_commands.json" \
      || fail "semantic lint (clang)"
  else
    skip "semantic lint (clang): no ${BUILD_DIR}/compile_commands.json"
  fi
else
  skip "semantic lint (clang): python clang.cindex not installed (textual pass above still ran)"
fi

# 5. lint self-tests ---------------------------------------------------------
note "lint self-test (tests/lint_selftest)"
python3 tests/lint_selftest/run_lint_selftest.py || fail "lint self-test"

note "semantic lint self-test (tests/lint_selftest/semantic)"
python3 tests/lint_selftest/semantic/run_semantic_selftest.py \
  || fail "semantic lint self-test"

# 6. fuzz regression-corpus replay ------------------------------------------
# The committed corpus (fuzz/corpus/<harness>/) pins every crash/UB the
# fuzzers ever found; replaying it needs only the plain replay drivers —
# no clang, no libFuzzer — so a lint run catches a reintroduced parser
# bug even on a gcc-only machine. Skipped (not failed) when the drivers
# are not built: ctest runs the same replay as <harness>_corpus_replay.
replayed_any=0
for harness in fuzz_image fuzz_protocol fuzz_textio; do
  replay="${BUILD_DIR}/fuzz/${harness}_replay"
  if [[ -x "${replay}" ]]; then
    note "fuzz corpus replay (${harness})"
    "${replay}" "fuzz/corpus/${harness}" || fail "corpus replay (${harness})"
    replayed_any=1
  fi
done
if [[ ${replayed_any} -eq 0 ]]; then
  skip "fuzz corpus replay: no replay drivers in ${BUILD_DIR}/fuzz (build first)"
fi

if [[ ${failures} -gt 0 ]]; then
  printf '\ncheck.sh: %d stage(s) failed\n' "${failures}" >&2
  exit 1
fi
printf '\ncheck.sh: all stages passed\n'
