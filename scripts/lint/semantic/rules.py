"""The five semantic rules, evaluated over model.Program.

Rule catalog (docs/TOOLING.md has the operator-facing version):

  loop-affinity    a MEDRELAX_LOOP_THREAD_ONLY function (or a call through
                   a LOOP_THREAD_ONLY std::function member) may only be
                   called from loop-thread context: another loop-only
                   function, or a lambda handed to a MEDRELAX_POSTS_TO_LOOP
                   sink / a LOOP_THREAD_ONLY callback member.
  loop-blocking    a MEDRELAX_BLOCKING function must be unreachable from
                   loop-thread context (transitively, through unannotated
                   callees the analyzer has bodies for).
  callback-scope   no call through a stored std::function member while a
                   medrelax Mutex is held — a callback that re-enters the
                   lock deadlocks, and one that blocks convoys it.
  ignored-status   the result of a Status/Result-returning call must be
                   consumed (assigned, tested, returned, or cast to void).
  lifetime-escape  a string_view/span parameter must not be stored into a
                   data member: the member outlives the caller's buffer.
  untrusted-bytes  no reinterpret_cast, pointer arithmetic, or raw
                   indexing on a value tainted by a
                   MEDRELAX_UNTRUSTED_BYTES accessor or member outside the
                   blessed accessor files — untrusted bytes (a mapped
                   snapshot image, a connection's inbound buffer) are only
                   touched through the bounds-checked typed readers.

Context derivation is deliberately conservative: a lambda whose sink is
unknown has *unknown* context — it is exempt from loop-affinity (we
cannot prove it runs off-loop) and from loop-blocking (we cannot prove it
runs on-loop). Only provable violations report.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from . import model

ALL_RULES = (
    "loop-affinity",
    "loop-blocking",
    "callback-scope",
    "ignored-status",
    "lifetime-escape",
    "untrusted-bytes",
)

# Files allowed to do raw-byte work on tainted values: the validating
# accessors themselves. Everything else goes through their typed,
# bounds-checked results. Matched against the end of the reported path so
# both repo-relative and absolute spellings resolve.
UNTRUSTED_BLESSED_FILES = (
    "flat/image_view.h",
    "flat/image_view.cc",
    "io/mmap_file.h",
    "io/mmap_file.cc",
)


def _untrusted_blessed(path: str) -> bool:
    norm = path.replace("\\", "/")
    return any(norm.endswith(suffix) for suffix in UNTRUSTED_BLESSED_FILES)


def _loop_context_uids(program: model.Program,
                       enabled: Set[str]) -> Set[str]:
    """uids of functions/lambdas that (can) run on the loop thread."""
    loop: Set[str] = set()
    for fn in program.functions:
        if model.LOOP_ONLY in fn.annotations:
            loop.add(fn.uid)
        elif model.LOOP_ONLY in program.annotations_of(fn.cls, fn.name):
            # Out-of-line definition of a method annotated in the header.
            loop.add(fn.uid)
        elif fn.is_lambda:
            if fn.sink_kind == "call" and fn.sink_call is not None:
                flags = program.resolve_call(fn.sink_call, fn.cls)
                if model.POSTS_TO_LOOP in flags:
                    loop.add(fn.uid)
            elif fn.sink_kind == "field" and fn.sink_field:
                cls, _, name = fn.sink_field.partition("::")
                fld = program.field_decl(cls, name)
                if fld is not None and model.LOOP_ONLY in fld.annotations:
                    loop.add(fn.uid)
    # Transitive closure: an unannotated function whose body we have and
    # that a loop-context function calls also runs on the loop thread.
    by_key: Dict[Tuple[str, str], List[model.FunctionInfo]] = {}
    for fn in program.functions:
        by_key.setdefault((fn.cls, fn.name), []).append(fn)
        if fn.cls:  # a plain self-less call may still hit a free function
            by_key.setdefault(("", fn.name), []).append(fn)
    changed = True
    while changed:
        changed = False
        for fn in program.functions:
            if fn.uid not in loop:
                continue
            for site in fn.calls:
                targets = _call_targets(program, by_key, site, fn.cls)
                for target in targets:
                    if target.uid in loop:
                        continue
                    if model.BLOCKING in target.annotations:
                        continue  # reported by loop-blocking, not spread
                    loop.add(target.uid)
                    changed = True
    return loop


def _call_targets(program: model.Program,
                  by_key: Dict[Tuple[str, str], List[model.FunctionInfo]],
                  site: model.CallSite,
                  caller_cls: str) -> List[model.FunctionInfo]:
    """FunctionInfos a call might land in — only confident matches."""
    if site.through_member_callback:
        return []
    if site.qualifier:
        return by_key.get((site.qualifier, site.name), [])
    if site.receiver_type:
        return by_key.get((site.receiver_type, site.name), [])
    if site.is_self_call:
        if caller_cls and (caller_cls, site.name) in by_key:
            return by_key[(caller_cls, site.name)]
        # Fall through to free functions of that name — but only when the
        # name is unambiguous across classes.
        classes = program.classes_by_method.get(site.name, set())
        if classes == {""}:
            return by_key.get(("", site.name), [])
    return []


def check(program: model.Program,
          enabled: Set[str] = None) -> List[model.Finding]:
    rules = set(enabled) if enabled is not None else set(ALL_RULES)
    findings: List[model.Finding] = []
    loop_uids = _loop_context_uids(program, rules)

    for fn in program.functions:
        in_loop = fn.uid in loop_uids
        provably_off_loop = not in_loop and not (
            fn.is_lambda and not fn.sink_kind)

        for site in fn.calls:
            flags = program.resolve_call(site, fn.cls)

            if "loop-affinity" in rules and provably_off_loop:
                callee_loop_only = model.LOOP_ONLY in flags
                if site.through_member_callback:
                    fld = program.field_decl(site.callback_class,
                                             site.through_member_callback)
                    callee_loop_only = (
                        fld is not None and model.LOOP_ONLY in fld.annotations)
                if callee_loop_only:
                    findings.append(model.Finding(
                        fn.file, site.line, "loop-affinity",
                        f"'{site.name}' is MEDRELAX_LOOP_THREAD_ONLY but"
                        f" '{fn.qualname}' does not run on the loop thread;"
                        " hand the work to EventLoop::Post or annotate the"
                        " caller"))

            if "loop-blocking" in rules and in_loop \
                    and model.BLOCKING in flags:
                findings.append(model.Finding(
                    fn.file, site.line, "loop-blocking",
                    f"'{site.name}' is MEDRELAX_BLOCKING and"
                    f" '{fn.qualname}' runs on the loop thread; move the"
                    " work to a worker and Post the result back"))

            if "callback-scope" in rules and site.through_member_callback \
                    and site.locks_held:
                held = ", ".join(site.locks_held)
                findings.append(model.Finding(
                    fn.file, site.line, "callback-scope",
                    f"call through stored callback"
                    f" '{site.through_member_callback}' while holding"
                    f" {held}; invoke callbacks after releasing the lock"))

            if "ignored-status" in rules \
                    and program.call_returns_status(site, fn.cls):
                if site.discarded:
                    findings.append(model.Finding(
                        fn.file, site.line, "ignored-status",
                        f"result of '{site.name}' (Status/Result) is"
                        " ignored; check it or cast to void with a"
                        " justifying comment"))
                elif site.void_discarded:
                    findings.append(model.Finding(
                        fn.file, site.line, "ignored-status",
                        f"(void)-discard of '{site.name}' (Status/Result)"
                        " needs a comment explaining why the error is"
                        " ignorable", comment_waivable=True))

        if "untrusted-bytes" in rules and fn.taint_uses \
                and not _untrusted_blessed(fn.file):
            verbs = {
                "reinterpret-cast": "reinterpret_cast on",
                "pointer-arith": "pointer arithmetic on",
                "index": "unchecked indexing into",
            }
            for use in fn.taint_uses:
                findings.append(model.Finding(
                    fn.file, use.line, "untrusted-bytes",
                    f"{verbs.get(use.kind, use.kind)} '{use.source}',"
                    " which carries MEDRELAX_UNTRUSTED_BYTES data; go"
                    " through the bounds-checked typed accessors"
                    " (SectionArray/Strings) instead of raw bytes"))

        if "lifetime-escape" in rules and fn.view_params:
            views = set(fn.view_params)
            for store in fn.field_stores:
                if store.param in views:
                    findings.append(model.Finding(
                        fn.file, store.line, "lifetime-escape",
                        f"view parameter '{store.param}' is stored into"
                        f" field '{store.field}', which outlives the"
                        " caller's buffer; copy into an owning type"))

    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings
