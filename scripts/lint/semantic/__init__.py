"""medrelax semantic lint: thread-affinity and resource-flow analysis.

A small whole-program analyzer behind scripts/lint/run_semantic_lint.py.
Two interchangeable frontends lower C++ sources into one shared IR
(model.Program):

  * frontend_clang    -- libclang (clang.cindex) over compile_commands.json;
                         the precise frontend, used in CI where a pinned
                         libclang is installed.
  * frontend_textual  -- a dependency-free tokenizer/mini-parser; runs
                         everywhere (the container toolchain has no
                         libclang) and is what ctest exercises.

rules.py evaluates the five semantic rules over the IR; both frontends
must make every selftest fixture pass identically (the fixture runner
enforces set-equality of reports). docs/TOOLING.md has the rule catalog.
"""
