"""The frontend-neutral IR of the semantic lint.

Both frontends lower C++ into exactly these shapes; rules.py never sees
tokens or cursors. The IR is deliberately name-based rather than
symbol-based: rules resolve a call through (receiver type, method name)
against the declaration tables, and skip — never guess — when a name is
ambiguous across classes and the receiver type is unknown. A semantic
lint that sometimes cannot prove a violation is fine; one that reports
violations that are not there gets deleted within a month.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

# Annotation macro -> canonical flag. The macros expand to
# [[clang::annotate]] attributes (src/medrelax/common/thread_annotations.h);
# the clang frontend reads the expanded spellings, the textual frontend the
# macro names.
ANNOTATION_MACROS = {
    "MEDRELAX_LOOP_THREAD_ONLY": "loop_thread_only",
    "MEDRELAX_BLOCKING": "blocking",
    "MEDRELAX_POSTS_TO_LOOP": "posts_to_loop",
    "MEDRELAX_UNTRUSTED_BYTES": "untrusted_bytes",
}

ANNOTATION_SPELLINGS = {
    "medrelax::loop_thread_only": "loop_thread_only",
    "medrelax::blocking": "blocking",
    "medrelax::posts_to_loop": "posts_to_loop",
    "medrelax::untrusted_bytes": "untrusted_bytes",
}

LOOP_ONLY = "loop_thread_only"
BLOCKING = "blocking"
POSTS_TO_LOOP = "posts_to_loop"
UNTRUSTED = "untrusted_bytes"

# RAII lock types of common/mutex.h: a local of one of these types holds
# its mutex until the end of the enclosing block.
SCOPED_LOCK_TYPES = {"MutexLock", "ReaderLock", "WriterLock"}

# Return types whose silent discard the ignored-status rule reports.
STATUS_RETURN_TYPES = {"Status", "Result"}

# Types whose parameters must not be stored into fields (lifetime-escape):
# non-owning views over caller-owned memory.
VIEW_TYPES = {"string_view", "span"}


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str  # unqualified callee name as written
    line: int
    receiver_type: str = ""  # resolved class of the receiver; "" = unknown
    # True when the receiver is implicit (a self-call inside a method) or
    # written Class::name; rules then qualify by the enclosing class.
    is_self_call: bool = False
    qualifier: str = ""  # explicit Foo:: qualifier, if written
    locks_held: Tuple[str, ...] = ()
    # Field name when the call goes through a stored std::function member
    # (directly or via a typed member chain), else "".
    through_member_callback: str = ""
    # Class owning that callback member, when known.
    callback_class: str = ""
    # True when the whole statement is this call and nothing consumes the
    # result (no assignment, no (void), not a condition, not returned).
    discarded: bool = False
    # True when the statement is `(void)call(...);` — legal for
    # Status/Result returns only with a justifying comment, which the
    # driver (the only layer that still sees comments) checks.
    void_discarded: bool = False


@dataclasses.dataclass
class TaintUse:
    """One raw-byte operation on an untrusted-tainted value.

    A value is tainted when it came (directly or through local
    assignment) from a MEDRELAX_UNTRUSTED_BYTES-annotated accessor or
    data member: bytes an attacker fully controls (a mapped snapshot
    image, a connection's inbound buffer). The untrusted-bytes rule
    reports these uses outside the blessed accessor files.
    """

    kind: str  # "reinterpret-cast" | "pointer-arith" | "index"
    source: str  # the tainted expression/variable, for the message
    line: int


@dataclasses.dataclass
class FieldStore:
    """`member_ = <param>` (or ctor-init `member_(param)`) inside a method."""

    field: str
    param: str
    line: int


@dataclasses.dataclass
class FunctionInfo:
    """One function/method/lambda body the frontend parsed."""

    uid: str  # unique per program, e.g. "file:line:qualname"
    name: str  # unqualified; lambdas use "<lambda>"
    qualname: str  # "Class::name", "name", or "<lambda@file:line>"
    file: str
    line: int
    cls: str = ""  # enclosing class for methods; "" for free functions
    annotations: frozenset = frozenset()
    is_lambda: bool = False
    # How the lambda leaves its definition site: ("call", CallSite) when
    # passed as an argument, ("field", "Class::member") when assigned to a
    # data member, ("", None) when unknown (e.g. stored in a local and
    # never seen escaping).
    sink_kind: str = ""
    sink_call: Optional[CallSite] = None
    sink_field: str = ""
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    # Parameter names of view type (string_view/span), for lifetime-escape.
    view_params: Tuple[str, ...] = ()
    field_stores: List[FieldStore] = dataclasses.field(default_factory=list)
    returns_status: bool = False
    # Raw-byte operations on untrusted-tainted values (untrusted-bytes).
    taint_uses: List[TaintUse] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FieldDecl:
    """One data member declaration (from a class body)."""

    cls: str
    name: str
    type_text: str
    line: int
    file: str = ""
    is_callback: bool = False  # std::function (directly or via alias)
    annotations: frozenset = frozenset()


@dataclasses.dataclass
class MethodDecl:
    """One method/function declaration (header knowledge; no body needed)."""

    cls: str  # "" for free functions
    name: str
    annotations: frozenset = frozenset()
    returns_status: bool = False
    file: str = ""
    line: int = 0


class Program:
    """Whole-program tables the rules run over. Frontends only append."""

    def __init__(self) -> None:
        self.functions: List[FunctionInfo] = []
        # (cls, name) -> merged annotation flags from every declaration
        # and definition seen.
        self.method_annotations: Dict[Tuple[str, str], Set[str]] = {}
        # name -> set of classes declaring it ("" = free function); the
        # ambiguity oracle for name-only resolution.
        self.classes_by_method: Dict[str, Set[str]] = {}
        # (cls, name) -> True when the declared return type is
        # Status/Result<...>.
        self.returns_status: Dict[Tuple[str, str], bool] = {}
        # cls -> field name -> FieldDecl.
        self.fields: Dict[str, Dict[str, FieldDecl]] = {}
        # `using Alias = std::function<...>` names, so fields typed by
        # alias still count as callbacks.
        self.callback_aliases: Set[str] = set()

    # -- registration -----------------------------------------------------

    def add_method(self, decl: MethodDecl) -> None:
        key = (decl.cls, decl.name)
        self.method_annotations.setdefault(key, set()).update(decl.annotations)
        self.classes_by_method.setdefault(decl.name, set()).add(decl.cls)
        if decl.returns_status:
            self.returns_status[key] = True

    def add_field(self, field: FieldDecl) -> None:
        self.fields.setdefault(field.cls, {})[field.name] = field

    def add_function(self, fn: FunctionInfo) -> None:
        self.functions.append(fn)
        self.add_method(
            MethodDecl(
                cls=fn.cls,
                name=fn.name,
                annotations=fn.annotations,
                returns_status=fn.returns_status,
                file=fn.file,
                line=fn.line,
            )
        )

    # -- resolution -------------------------------------------------------

    def annotations_of(self, cls: str, name: str) -> Set[str]:
        return self.method_annotations.get((cls, name), set())

    def resolve_call(self, site: CallSite, caller_cls: str) -> Set[str]:
        """Annotation flags of a call's target; set() when unresolvable.

        Resolution order: explicit qualifier, typed receiver, self-call
        through the enclosing class, then name-only — accepted only when
        every class declaring the name agrees on the flags (otherwise an
        unknown receiver could pin the wrong overload's contract on the
        call).
        """
        if site.qualifier:
            return self.annotations_of(site.qualifier, site.name)
        if site.receiver_type:
            return self.annotations_of(site.receiver_type, site.name)
        if site.is_self_call and caller_cls:
            found = self.annotations_of(caller_cls, site.name)
            if found or (caller_cls in self.classes_by_method.get(site.name, set())):
                return found
        classes = self.classes_by_method.get(site.name, set())
        if not classes:
            return set()
        flag_sets = [frozenset(self.annotations_of(c, site.name)) for c in classes]
        if len(set(flag_sets)) == 1:
            return set(flag_sets[0])
        return set()  # ambiguous: refuse to guess

    def call_returns_status(self, site: CallSite, caller_cls: str) -> bool:
        """Whether the call's target declares a Status/Result return."""
        if site.qualifier:
            return self.returns_status.get((site.qualifier, site.name), False)
        if site.receiver_type:
            return self.returns_status.get((site.receiver_type, site.name), False)
        if site.is_self_call and caller_cls:
            if (caller_cls, site.name) in self.returns_status:
                return True
        classes = self.classes_by_method.get(site.name, set())
        if not classes:
            return False
        # Name-only: report only when every declarer returns Status/Result
        # (mirrors the declaration-collection contract of the old regex
        # rule, minus its false positives on multiline calls).
        return all(self.returns_status.get((c, site.name), False) for c in classes)

    def field_decl(self, cls: str, name: str) -> Optional[FieldDecl]:
        return self.fields.get(cls, {}).get(name)


@dataclasses.dataclass
class Finding:
    """One report line: path:line: [rule] message."""

    file: str
    line: int
    rule: str
    message: str
    # Set on (void)-discard findings: the driver drops the finding when a
    # justifying comment sits on the reported line or the one above it.
    comment_waivable: bool = False

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
