"""Dependency-free C++ frontend for the semantic lint.

Lowers sources into model.Program with a tokenizer and a two-pass
mini-parser:

  pass A  (declarations)  namespace/class structure, method and field
          declarations with their MEDRELAX_* annotations, std::function
          aliases, constructor init lists, and the token span of every
          function body.
  pass B  (bodies)        walks the recorded body spans with the complete
          declaration tables in hand: local symbol tables, RAII lock
          scopes, call sites with receiver typing, lambda sink
          resolution, and discarded-result detection.

The parser is deliberately approximate — it understands the project's
style guide, not C++. Everywhere the approximation runs out (an
unresolvable receiver, an ambiguous name) it records *nothing*, so the
rules stay silent rather than wrong; the clang frontend provides the
precise view in CI. The selftest fixtures pin down exactly what this
frontend must see.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import model

# ---------------------------------------------------------------------------
# Lexing

_MULTI_OPS = (
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
)

_KEYWORD_NON_CALLEES = {
    "if", "while", "for", "switch", "return", "sizeof", "catch", "throw",
    "alignof", "decltype", "new", "delete", "co_await", "co_return",
    "static_assert", "noexcept", "assert",
}

_TYPE_NOISE = {
    "const", "mutable", "volatile", "struct", "class", "typename",
    "unsigned", "signed", "long", "short", "auto", "register", "inline",
    "static", "constexpr", "explicit", "virtual", "friend", "extern",
    "std", "net", "medrelax",
}


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind  # 'id' | 'num' | 'str' | 'p' (punctuation)
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.text}@{self.line}"


def strip_noncode(text: str) -> str:
    """Blanks comments, string/char literal contents, and preprocessor
    lines, preserving every newline so token lines stay true."""
    out: List[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | str | chr
    at_line_start = True
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if at_line_start and c in " \t#":
                # Peek: a preprocessor directive? blank the logical line
                # (including backslash continuations).
                j = i
                while j < n and text[j] in " \t":
                    j += 1
                if j < n and text[j] == "#":
                    while j < n:
                        if text[j] == "\n":
                            if j > 0 and text[j - 1] == "\\":
                                out.append("\n")
                                j += 1
                                continue
                            break
                        out.append("\n" if text[j] == "\n" else " ")
                        j += 1
                    i = j
                    at_line_start = True
                    continue
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
            at_line_start = c == "\n"
            i += 1
            continue
        if state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
                at_line_start = True
            else:
                out.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
            continue
        # str / chr: blank contents, keep the delimiters.
        quote = '"' if state == "str" else "'"
        if c == "\\":
            out.append("  ")
            i += 2
            continue
        if c == quote:
            state = "code"
            out.append(quote)
        else:
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


_ID_RE = re.compile(r"[A-Za-z_]\w*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F]+|\d+(?:\.\d*)?(?:[eE][+-]?\d+)?)[uUlLfF]*")


def tokenize(clean: str) -> List[Tok]:
    toks: List[Tok] = []
    i, n, line = 0, len(clean), 1
    while i < n:
        c = clean[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if c == '"' or c == "'":
            # Literal contents were blanked; consume to the closing quote.
            j = clean.find(c, i + 1)
            j = j if j != -1 else n - 1
            toks.append(Tok("str", c + c, line))
            line += clean.count("\n", i, j + 1)
            i = j + 1
            continue
        m = _ID_RE.match(clean, i)
        if m:
            toks.append(Tok("id", m.group(), line))
            i = m.end()
            continue
        m = _NUM_RE.match(clean, i)
        if m:
            toks.append(Tok("num", m.group(), line))
            i = m.end()
            continue
        for op in _MULTI_OPS:
            if clean.startswith(op, i):
                toks.append(Tok("p", op, line))
                i += len(op)
                break
        else:
            toks.append(Tok("p", c, line))
            i += 1
    return toks


# ---------------------------------------------------------------------------
# Shared helpers


def last_type_component(type_tokens: List[Tok]) -> str:
    """'const net::Connection&' -> 'Connection'; '' when nothing usable."""
    depth = 0
    best = ""
    for t in type_tokens:
        if t.kind == "p":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth = max(0, depth - 1)
            elif t.text == ">>":
                depth = max(0, depth - 2)
            continue
        if depth == 0 and t.kind == "id" and t.text not in _TYPE_NOISE:
            best = t.text
    return best


def _strip_decl_noise(tokens: List[Tok]) -> Tuple[List[Tok], frozenset]:
    """Removes [[...]] attributes and MEDRELAX_* macro invocations from a
    declaration run. Returns (cleaned tokens, our annotation flags)."""
    flags = set()
    out: List[Tok] = []
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.kind == "p" and t.text == "[" and i + 1 < len(tokens) \
                and tokens[i + 1].kind == "p" and tokens[i + 1].text == "[":
            depth = 0
            while i < len(tokens):
                if tokens[i].text == "[":
                    depth += 1
                elif tokens[i].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            i += 1
            continue
        if t.kind == "id" and t.text in model.ANNOTATION_MACROS:
            flags.add(model.ANNOTATION_MACROS[t.text])
            i += 1
            continue
        if t.kind == "id" and t.text.startswith("MEDRELAX_"):
            # Other project macros (GUARDED_BY, REQUIRES, ...): drop the
            # macro and, if present, its parenthesized arguments, so
            # their parens cannot masquerade as a parameter list.
            i += 1
            if i < len(tokens) and tokens[i].kind == "p" and tokens[i].text == "(":
                depth = 0
                while i < len(tokens):
                    if tokens[i].text == "(":
                        depth += 1
                    elif tokens[i].text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                i += 1
            continue
        out.append(t)
        i += 1
    return out, frozenset(flags)


def _first_toplevel_paren(tokens: List[Tok]) -> int:
    """Index of the first '(' outside <...> nesting; -1 when none."""
    angle = 0
    for idx, t in enumerate(tokens):
        if t.kind != "p":
            continue
        if t.text == "<" and idx > 0 and tokens[idx - 1].kind == "id":
            angle += 1
        elif t.text == ">" and angle:
            angle -= 1
        elif t.text == ">>" and angle:
            angle = max(0, angle - 2)
        elif t.text == "(" and angle == 0:
            return idx
    return -1


def _split_args(tokens: List[Tok]) -> List[List[Tok]]:
    """Splits a paren-free token run on top-level commas."""
    parts: List[List[Tok]] = [[]]
    depth = 0
    angle = 0
    for idx, t in enumerate(tokens):
        if t.kind == "p":
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text == "<" and idx > 0 and tokens[idx - 1].kind == "id":
                angle += 1
            elif t.text == ">" and angle:
                angle -= 1
            elif t.text == ">>" and angle:
                angle = max(0, angle - 2)
            elif t.text == "," and depth == 0 and angle == 0:
                parts.append([])
                continue
        parts[-1].append(t)
    return [p for p in parts if p]


def _param_entry(part: List[Tok]) -> Optional[Tuple[str, str, bool]]:
    """(name, type_component, is_view) for one parameter declaration."""
    # Cut a default argument off.
    cut = len(part)
    for idx, t in enumerate(part):
        if t.kind == "p" and t.text == "=":
            cut = idx
            break
    part = part[:cut]
    name = ""
    for t in reversed(part):
        if t.kind == "id" and t.text not in _TYPE_NOISE:
            name = t.text
            break
    if not name:
        return None
    type_toks = []
    for t in part:
        if t.kind == "id" and t.text == name and t is part[-1]:
            break
        type_toks.append(t)
    # The name is the last identifier; everything before it is the type.
    idx_name = max(i for i, t in enumerate(part) if t.kind == "id" and t.text == name)
    type_toks = part[:idx_name]
    is_view = any(t.kind == "id" and t.text in model.VIEW_TYPES for t in type_toks)
    return name, last_type_component(type_toks), is_view


# ---------------------------------------------------------------------------
# Pass A: declarations


class _BodySpan:
    __slots__ = ("fn", "start", "end", "param_tokens")

    def __init__(self, fn: model.FunctionInfo, start: int, end: int,
                 param_tokens: List[Tok]) -> None:
        self.fn = fn
        self.start = start  # token index just after the body '{'
        self.end = end  # token index of the matching '}'
        self.param_tokens = param_tokens


class _FileParse:
    def __init__(self, path: str, toks: List[Tok]) -> None:
        self.path = path
        self.toks = toks
        self.bodies: List[_BodySpan] = []


def _match_brace(toks: List[Tok], open_idx: int) -> int:
    depth = 0
    i = open_idx
    while i < len(toks):
        t = toks[i]
        if t.kind == "p":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return len(toks) - 1


def _parse_decls(fp: _FileParse, program: model.Program, start: int, end: int,
                 cls: str) -> None:
    """Walks [start, end) at namespace or class scope."""
    toks = fp.toks
    i = start
    while i < end:
        t = toks[i]
        if t.kind == "p":
            if t.text == "~":  # destructor declaration
                i = _parse_decl_run(fp, program, i, end, cls)
                continue
            if t.text in ";:}":
                i += 1
                continue
            if t.text == "{":  # stray block (e.g. extern "C")
                i = _match_brace(toks, i) + 1
                continue
            i += 1
            continue
        if t.kind != "id":
            i += 1
            continue
        word = t.text
        if word in ("public", "private", "protected"):
            i += 1  # the ':' is skipped by the punctuation branch
            continue
        if word == "namespace":
            j = i + 1
            while j < end and not (toks[j].kind == "p" and toks[j].text in "{;"):
                j += 1
            if j < end and toks[j].text == "{":
                close = _match_brace(toks, j)
                _parse_decls(fp, program, j + 1, close, cls)
                i = close + 1
            else:
                i = j + 1
            continue
        if word == "template":
            # Skip the parameter list; the following declaration parses
            # normally.
            j = i + 1
            if j < end and toks[j].kind == "p" and toks[j].text == "<":
                depth = 0
                while j < end:
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif toks[j].text == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    j += 1
                i = j + 1
            else:
                i += 1
            continue
        if word == "enum":
            j = i + 1
            while j < end and not (toks[j].kind == "p" and toks[j].text in "{;"):
                j += 1
            if j < end and toks[j].text == "{":
                j = _match_brace(toks, j)
            while j < end and not (toks[j].kind == "p" and toks[j].text == ";"):
                j += 1
            i = j + 1
            continue
        if word == "using" or word == "typedef":
            j = i + 1
            run = []
            while j < end and not (toks[j].kind == "p" and toks[j].text == ";"):
                run.append(toks[j])
                j += 1
            texts = [r.text for r in run]
            if "function" in texts and "=" in texts and run and run[0].kind == "id":
                if run[0].text != "namespace":
                    program.callback_aliases.add(run[0].text)
            i = j + 1
            continue
        if word in ("class", "struct") and not _looks_like_elaborated_type(toks, i, end):
            j = i + 1
            # Skip attributes and API macros before the name.
            while j < end and not (toks[j].kind == "id"):
                j += 1
            name = toks[j].text if j < end else ""
            j += 1
            # Forward declaration, base list, or body.
            while j < end and not (toks[j].kind == "p" and toks[j].text in "{;"):
                j += 1
            if j < end and toks[j].text == "{":
                close = _match_brace(toks, j)
                _parse_decls(fp, program, j + 1, close, name)
                i = close + 1
                # consume a trailing "; " or variable name
                while i < end and not (toks[i].kind == "p" and toks[i].text == ";"):
                    i += 1
                i += 1
            else:
                i = j + 1
            continue
        # A declaration run: everything to the first top-level ';' or '{'.
        i = _parse_decl_run(fp, program, i, end, cls)


def _looks_like_elaborated_type(toks: List[Tok], i: int, end: int) -> bool:
    """`class X` used as a type in a declaration (e.g. friend class X;
    handled elsewhere) — here: detect `enum class`/`struct` return uses.
    Kept trivial: a class keyword directly preceded by 'enum'."""
    return i > 0 and toks[i - 1].kind == "id" and toks[i - 1].text == "enum"


def _parse_decl_run(fp: _FileParse, program: model.Program, start: int,
                    end: int, cls: str) -> int:
    """Parses one declaration starting at `start`; returns the index just
    past it (past the ';' or the body's '}')."""
    toks = fp.toks
    run: List[Tok] = []
    i = start
    paren = 0
    while i < end:
        t = toks[i]
        if t.kind == "p":
            if t.text == "(":
                paren += 1
            elif t.text == ")":
                paren -= 1
            elif t.text == ";" and paren == 0:
                _classify_decl(fp, program, run, cls, body_at=None)
                return i + 1
            elif t.text == "{" and paren == 0:
                close = _match_brace(toks, i)
                _classify_decl(fp, program, run, cls, body_at=(i + 1, close))
                # `};` after an inline lambda-as-default-member is rare;
                # a plain '}' ends the definition.
                return close + 1
        run.append(t)
        i += 1
    _classify_decl(fp, program, run, cls, body_at=None)
    return end


def _classify_decl(fp: _FileParse, program: model.Program, run: List[Tok],
                   cls: str, body_at: Optional[Tuple[int, int]]) -> None:
    if not run:
        return
    stripped, flags = _strip_decl_noise(run)
    if not stripped:
        return
    if stripped[0].kind == "id" and stripped[0].text in ("return", "if", "for",
                                                         "while", "switch"):
        return  # statement fragment (should not happen at decl scope)
    paren_at = _first_toplevel_paren(stripped)
    if paren_at <= 0:
        _classify_field(fp, program, stripped, flags, cls)
        return
    # Function-shaped: name is the identifier just before the paren.
    name_tok = stripped[paren_at - 1]
    if name_tok.kind != "id":
        return
    name = name_tok.text
    if name in _KEYWORD_NON_CALLEES or name == "operator":
        return
    # `~Dtor(`?
    k = paren_at - 2
    if k >= 0 and stripped[k].kind == "p" and stripped[k].text == "~":
        name = "~" + name
        k -= 1
    # Out-of-line `Class::name(` qualification.
    owner = cls
    while k >= 1 and stripped[k].kind == "p" and stripped[k].text == "::" \
            and stripped[k - 1].kind == "id":
        qual = stripped[k - 1].text
        if qual[:1].isupper():
            owner = qual
        k -= 2
    ret_toks = stripped[:max(k + 1, 0)]
    returns_status = any(
        t.kind == "id" and t.text in model.STATUS_RETURN_TYPES for t in ret_toks)
    # Collect the parameter tokens (for pass B symbol tables).
    depth = 0
    close = paren_at
    for idx in range(paren_at, len(stripped)):
        if stripped[idx].kind == "p":
            if stripped[idx].text == "(":
                depth += 1
            elif stripped[idx].text == ")":
                depth -= 1
                if depth == 0:
                    close = idx
                    break
    param_tokens = stripped[paren_at + 1:close]

    program.add_method(model.MethodDecl(
        cls=owner, name=name, annotations=flags,
        returns_status=returns_status, file=fp.path, line=name_tok.line))

    if body_at is None:
        return
    fn = model.FunctionInfo(
        uid=f"{fp.path}:{name_tok.line}:{owner}::{name}",
        name=name,
        qualname=f"{owner}::{name}" if owner else name,
        file=fp.path,
        line=name_tok.line,
        cls=owner,
        annotations=flags,
        returns_status=returns_status,
    )
    # Constructor init list: tokens between the param close and the body,
    # shaped `: field(arg), field{arg}, ...` — record single-identifier
    # stores for the lifetime-escape rule.
    init_toks = stripped[close + 1:]
    _record_ctor_inits(fn, init_toks)
    fp.bodies.append(_BodySpan(fn, body_at[0], body_at[1], param_tokens))


def _record_ctor_inits(fn: model.FunctionInfo, toks: List[Tok]) -> None:
    i = 0
    if not (toks and toks[0].kind == "p" and toks[0].text == ":"):
        return
    i = 1
    while i < len(toks):
        if toks[i].kind != "id":
            i += 1
            continue
        field = toks[i]
        if i + 1 < len(toks) and toks[i + 1].kind == "p" \
                and toks[i + 1].text in "({":
            open_ch = toks[i + 1].text
            close_ch = ")" if open_ch == "(" else "}"
            depth = 0
            j = i + 1
            args: List[Tok] = []
            while j < len(toks):
                if toks[j].kind == "p" and toks[j].text == open_ch:
                    depth += 1
                elif toks[j].kind == "p" and toks[j].text == close_ch:
                    depth -= 1
                    if depth == 0:
                        break
                elif depth == 1:
                    args.append(toks[j])
                j += 1
            if len(args) == 1 and args[0].kind == "id":
                fn.field_stores.append(model.FieldStore(
                    field=field.text, param=args[0].text, line=field.line))
            i = j + 1
        else:
            i += 1


def _classify_field(fp: _FileParse, program: model.Program, run: List[Tok],
                    flags: frozenset, cls: str) -> None:
    if not cls:
        return  # namespace-scope variables are out of scope
    # name = last top-angle-level identifier before '=', '{', or ';' end.
    angle = 0
    name_tok = None
    type_end = 0
    for idx, t in enumerate(run):
        if t.kind == "p":
            if t.text == "<" and idx > 0 and run[idx - 1].kind == "id":
                angle += 1
            elif t.text == ">" and angle:
                angle -= 1
            elif t.text == ">>" and angle:
                angle = max(0, angle - 2)
            elif t.text in ("=", "{") and angle == 0:
                break
            continue
        if angle == 0 and t.kind == "id" and t.text not in _TYPE_NOISE:
            name_tok = t
            type_end = idx
    if name_tok is None:
        return
    type_text = " ".join(t.text for t in run[:type_end])
    is_callback = "function" in type_text or any(
        alias in type_text.split() for alias in program.callback_aliases)
    program.add_field(model.FieldDecl(
        cls=cls, name=name_tok.text, type_text=type_text,
        line=name_tok.line, file=fp.path, is_callback=is_callback,
        annotations=flags))


# ---------------------------------------------------------------------------
# Pass B: bodies


class _Scope:
    """Lexical symbol table chained to the enclosing function (captures)."""

    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.vars: Dict[str, str] = {}  # name -> type component
        self.lambda_vars: Dict[str, model.FunctionInfo] = {}
        self.tainted: set = set()  # locals carrying untrusted bytes

    def type_of(self, name: str) -> str:
        s: Optional[_Scope] = self
        while s is not None:
            if name in s.vars:
                return s.vars[name]
            s = s.parent
        return ""

    def is_tainted(self, name: str) -> bool:
        s: Optional[_Scope] = self
        while s is not None:
            if name in s.tainted:
                return True
            s = s.parent
        return False

    def taint(self, name: str) -> None:
        self.tainted.add(name)

    def untaint(self, name: str) -> None:
        s: Optional[_Scope] = self
        while s is not None:
            s.tainted.discard(name)
            s = s.parent

    def lambda_of(self, name: str) -> Optional[model.FunctionInfo]:
        s: Optional[_Scope] = self
        while s is not None:
            if name in s.lambda_vars:
                return s.lambda_vars[name]
            s = s.parent
        return None


class _BodyWalker:
    def __init__(self, fp: _FileParse, program: model.Program) -> None:
        self.fp = fp
        self.program = program

    # -- receiver typing ---------------------------------------------------

    def _chain_type(self, chain: List[str], fn: model.FunctionInfo,
                    scope: _Scope) -> str:
        """Resolves `a.b.c` to the class of the last link; '' = unknown."""
        if not chain:
            return ""
        head = chain[0]
        if head == "this":
            cur = fn.cls
        else:
            cur = scope.type_of(head)
            if not cur:
                fld = self.program.field_decl(fn.cls, head)
                if fld is not None:
                    cur = last_type_component(
                        tokenize(strip_noncode(fld.type_text)))
                elif head[:1].isupper():
                    cur = head  # Class::static or enum-style qualifier
                else:
                    return ""
        for link in chain[1:]:
            fld = self.program.field_decl(cur, link)
            if fld is None:
                return ""
            cur = last_type_component(tokenize(strip_noncode(fld.type_text)))
            if not cur:
                return ""
        return cur

    # -- body walking ------------------------------------------------------

    def walk(self, span: _BodySpan, parent_scope: Optional[_Scope]) -> None:
        fn = span.fn
        scope = _Scope(parent_scope)
        # Parameters.
        views: List[str] = []
        for part in _split_args(span.param_tokens):
            entry = _param_entry(part)
            if entry is None:
                continue
            pname, ptype, is_view = entry
            scope.vars[pname] = ptype
            if is_view:
                views.append(pname)
        fn.view_params = tuple(views)
        self.program.add_function(fn)
        self._walk_tokens_with_frames(span.start, span.end, fn, scope,
                                      [set()])

    def _walk_tokens_with_frames(self, start: int, end: int,
                                 fn: model.FunctionInfo, scope: _Scope,
                                 lock_frames: List[set]) -> None:
        toks = self.fp.toks
        stmt_start = start
        pending_calls: List[Tuple[model.CallSite, int]] = []
        stmt_calls: List[Tuple[model.CallSite, int]] = []
        paren = 0
        has_assign = False
        i = start
        while i < end:
            t = toks[i]
            if t.kind == "p":
                if t.text == "{":
                    # The statement-so-far is a control-flow header (`if
                    # (...)`, `while (...)`) — taint uses in the condition
                    # still count.
                    self._analyze_stmt_taint(toks, stmt_start, i, fn, scope)
                    close = _match_brace(toks, i)
                    lock_frames.append(set())
                    self._walk_tokens_with_frames(i + 1, close, fn,
                                                  _Scope(scope), lock_frames)
                    lock_frames.pop()
                    i = close + 1
                    stmt_start = i
                    stmt_calls = []
                    has_assign = False
                    continue
                if t.text == "(":
                    paren += 1
                elif t.text == ")":
                    paren -= 1
                    while pending_calls and pending_calls[-1][1] > paren:
                        pending_calls.pop()
                elif t.text == ";" and paren == 0:
                    self._finalize_stmt(toks, stmt_start, i, stmt_calls,
                                        has_assign)
                    self._analyze_stmt_taint(toks, stmt_start, i, fn, scope)
                    stmt_start = i + 1
                    stmt_calls = []
                    has_assign = False
                elif t.text in ("=", "+=", "-=", "*=", "/=", "%=", "&=",
                                "|=", "^=") and paren == 0:
                    has_assign = True
                    self._maybe_lambda_var_assignment(toks, stmt_start, i, fn,
                                                      scope)
                    if t.text == "=":
                        self._maybe_field_store(toks, stmt_start, i, end, fn,
                                                scope)
                elif t.text == "[" and self._is_lambda_intro(toks, i):
                    i = self._parse_lambda(toks, i, end, fn, scope,
                                           pending_calls, lock_frames)
                    continue
                i += 1
                continue
            if t.kind == "id" and i + 1 < end and toks[i + 1].kind == "p" \
                    and toks[i + 1].text == "(":
                handled, new_i = self._on_identifier_paren(
                    toks, i, stmt_start, fn, scope, lock_frames,
                    pending_calls, stmt_calls, paren)
                if handled:
                    i = new_i
                    continue
            i += 1
        self._finalize_stmt(toks, stmt_start, end, stmt_calls, has_assign)
        self._analyze_stmt_taint(toks, stmt_start, end, fn, scope)

    # -- untrusted-bytes taint ---------------------------------------------

    def _call_is_untrusted(self, toks: List[Tok], idx: int,
                           fn: model.FunctionInfo, scope: _Scope) -> bool:
        """Whether the call whose callee id sits at `idx` resolves to a
        MEDRELAX_UNTRUSTED_BYTES function. Resolution demands a known
        receiver (chain type, qualifier, or self) — a name-only match
        would taint every std:: `.data()` in the tree."""
        name = toks[idx].text
        k = idx - 1
        if k >= 0 and toks[k].kind == "p" and toks[k].text == "::":
            if k - 1 >= 0 and toks[k - 1].kind == "id":
                return model.UNTRUSTED in self.program.annotations_of(
                    toks[k - 1].text, name)
            return False
        if k >= 0 and toks[k].kind == "p" and toks[k].text in (".", "->"):
            chain: List[str] = []
            k -= 1
            while k >= 0:
                t = toks[k]
                if t.kind == "id":
                    chain.append(t.text)
                elif not (t.kind == "p" and t.text in (".", "->")):
                    break
                k -= 1
            if k >= 0 and toks[k].kind == "p" and toks[k].text == ")":
                return False  # computed receiver: refuse to guess
            chain.reverse()
            rtype = self._chain_type(chain, fn, scope)
            if not rtype:
                return False
            return model.UNTRUSTED in self.program.annotations_of(rtype, name)
        if fn.cls:
            return model.UNTRUSTED in self.program.annotations_of(
                fn.cls, name)
        return False

    def _stmt_taint_atoms(self, toks: List[Tok], start: int, end: int,
                          fn: model.FunctionInfo,
                          scope: _Scope) -> List[Tuple[int, int, str]]:
        """(first_tok, last_tok, display) spans of tainted atoms in
        [start, end): untrusted-annotated calls, tainted locals, and
        MEDRELAX_UNTRUSTED_BYTES fields (bare or through a resolvable
        member chain)."""
        atoms: List[Tuple[int, int, str]] = []
        i = start
        while i < end:
            t = toks[i]
            if t.kind != "id":
                i += 1
                continue
            nxt = toks[i + 1] if i + 1 < end else None
            if nxt is not None and nxt.kind == "p" and nxt.text == "(":
                if self._call_is_untrusted(toks, i, fn, scope):
                    depth = 0
                    j = i + 1
                    while j < end:
                        if toks[j].kind == "p" and toks[j].text == "(":
                            depth += 1
                        elif toks[j].kind == "p" and toks[j].text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    atoms.append((i, min(j, end - 1), t.text + "()"))
                    i = j + 1
                    continue
                i += 1
                continue
            prev = toks[i - 1] if i > 0 else None
            member_access = prev is not None and prev.kind == "p" \
                and prev.text in (".", "->")
            if not member_access:
                if scope.is_tainted(t.text):
                    atoms.append((i, i, t.text))
                    i += 1
                    continue
                fld = self.program.field_decl(fn.cls, t.text)
                if fld is not None and model.UNTRUSTED in fld.annotations:
                    atoms.append((i, i, t.text))
                i += 1
                continue
            # `chain.member` — resolve the owner, then check its field.
            chain: List[str] = []
            k = i - 2
            while k >= 0:
                tt = toks[k]
                if tt.kind == "id":
                    chain.append(tt.text)
                elif not (tt.kind == "p" and tt.text in (".", "->")):
                    break
                k -= 1
            chain.reverse()
            if chain:
                owner = self._chain_type(chain, fn, scope)
                if owner:
                    fld = self.program.field_decl(owner, t.text)
                    if fld is not None \
                            and model.UNTRUSTED in fld.annotations:
                        atoms.append((i, i, t.text))
            i += 1
        return atoms

    _ARITH_AFTER = {"+", "-", "+=", "-=", "++", "--"}
    _ARITH_BEFORE = {"++", "--"}

    def _analyze_stmt_taint(self, toks: List[Tok], start: int, end: int,
                            fn: model.FunctionInfo, scope: _Scope) -> None:
        """Records TaintUse facts for one statement and propagates taint
        through `lhs = <tainted expr>` assignments/declarations."""
        if start >= end:
            return
        atoms = self._stmt_taint_atoms(toks, start, end, fn, scope)

        # reinterpret_cast<T>(...) with a tainted atom in its argument.
        for i in range(start, end):
            if toks[i].kind != "id" or toks[i].text != "reinterpret_cast":
                continue
            j = i + 1
            while j < end and not (toks[j].kind == "p"
                                   and toks[j].text == "("):
                j += 1
            if j >= end:
                continue
            depth = 0
            close = j
            while close < end:
                if toks[close].kind == "p" and toks[close].text == "(":
                    depth += 1
                elif toks[close].kind == "p" and toks[close].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                close += 1
            hit = next((a for a in atoms if j < a[0] < close), None)
            if hit is not None:
                fn.taint_uses.append(model.TaintUse(
                    kind="reinterpret-cast", source=hit[2],
                    line=toks[i].line))

        for first, last, display in atoms:
            after = toks[last + 1] if last + 1 < end else None
            before = toks[first - 1] if first > 0 else None
            if after is not None and after.kind == "p" \
                    and after.text == "[":
                fn.taint_uses.append(model.TaintUse(
                    kind="index", source=display, line=toks[last].line))
            if (after is not None and after.kind == "p"
                    and after.text in self._ARITH_AFTER) \
                    or (before is not None and before.kind == "p"
                        and before.text in self._ARITH_BEFORE):
                fn.taint_uses.append(model.TaintUse(
                    kind="pointer-arith", source=display,
                    line=toks[last].line))

        # Propagation: `... name = <rhs>;` taints (or clears) `name`.
        eq_at = -1
        depth = 0
        for i in range(start, end):
            t = toks[i]
            if t.kind != "p":
                continue
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text == "=" and depth == 0:
                eq_at = i
                break
        if eq_at <= start:
            return
        # The assigned variable is a plain identifier directly before the
        # '=' (not a member access or subscript — those are not locals).
        lhs_tok = toks[eq_at - 1]
        if lhs_tok.kind != "id":
            return
        before_lhs = toks[eq_at - 2] if eq_at - 2 >= start else None
        if before_lhs is not None and before_lhs.kind == "p" \
                and before_lhs.text in (".", "->", "::"):
            return
        # An atom whose next token is '.'/'->' feeds a member call
        # (`in_.find(...)`): the *result* is a plain value, not the raw
        # bytes, so it does not propagate taint.
        def _flows(a: Tuple[int, int, str]) -> bool:
            after = toks[a[1] + 1] if a[1] + 1 < end else None
            return after is None or not (after.kind == "p"
                                         and after.text in (".", "->"))
        rhs_tainted = any(a[0] > eq_at and _flows(a) for a in atoms)
        if rhs_tainted:
            scope.taint(lhs_tok.text)
        elif scope.is_tainted(lhs_tok.text):
            scope.untaint(lhs_tok.text)

    # -- pieces ------------------------------------------------------------

    def _is_lambda_intro(self, toks: List[Tok], i: int) -> bool:
        if i == 0:
            return True
        prev = toks[i - 1]
        if prev.kind == "p" and prev.text in ("(", ",", "=", "{", ";", ":",
                                              "&&", "||", "return"):
            return True
        if prev.kind == "id" and prev.text == "return":
            return True
        return False

    def _parse_lambda(self, toks: List[Tok], i: int, end: int,
                      fn: model.FunctionInfo, scope: _Scope,
                      pending_calls: List[Tuple[model.CallSite, int]],
                      lock_frames: List[set]) -> int:
        """Parses `[caps](params) specs { body }`; returns index past it."""
        # Capture list.
        depth = 0
        j = i
        while j < end:
            if toks[j].kind == "p" and toks[j].text == "[":
                depth += 1
            elif toks[j].kind == "p" and toks[j].text == "]":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        j += 1
        param_tokens: List[Tok] = []
        if j < end and toks[j].kind == "p" and toks[j].text == "(":
            depth = 0
            open_j = j
            while j < end:
                if toks[j].kind == "p" and toks[j].text == "(":
                    depth += 1
                elif toks[j].kind == "p" and toks[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            param_tokens = toks[open_j + 1:j]
            j += 1
        # Specifiers (mutable, noexcept, -> ret) up to the body.
        while j < end and not (toks[j].kind == "p" and toks[j].text == "{"):
            j += 1
        if j >= end:
            return i + 1
        close = _match_brace(toks, j)
        lam = model.FunctionInfo(
            uid=f"{self.fp.path}:{toks[i].line}:lambda",
            name="<lambda>",
            qualname=f"<lambda@{self.fp.path}:{toks[i].line}>",
            file=self.fp.path,
            line=toks[i].line,
            cls=fn.cls,  # captures resolve against the enclosing class
            is_lambda=True,
        )
        if pending_calls:
            lam.sink_kind = "call"
            lam.sink_call = pending_calls[-1][0]
        else:
            # `chain = [..](..) {..}` — an assignment sink?
            sink_field = self._assignment_target_field(toks, i, fn, scope)
            if sink_field:
                lam.sink_kind = "field"
                lam.sink_field = sink_field
            else:
                # `auto name = [..]` — remember the variable so a later
                # `field = name;` can patch the sink.
                var = self._assignment_target_var(toks, i)
                if var:
                    scope.lambda_vars[var] = lam
                    scope.vars[var] = ""
        span = _BodySpan(lam, j + 1, close, param_tokens)
        self.walk(span, scope)
        return close + 1

    def _assignment_target_tokens(self, toks: List[Tok],
                                  lam_at: int) -> List[Tok]:
        """Tokens of `<target> =` directly before a lambda intro."""
        k = lam_at - 1
        if not (k >= 0 and toks[k].kind == "p" and toks[k].text == "="):
            return []
        k -= 1
        out: List[Tok] = []
        while k >= 0:
            t = toks[k]
            if t.kind == "id" or (t.kind == "p" and t.text in (".", "->", "::")):
                out.append(t)
                k -= 1
                continue
            break
        out.reverse()
        return out

    def _assignment_target_field(self, toks: List[Tok], lam_at: int,
                                 fn: model.FunctionInfo,
                                 scope: _Scope) -> str:
        target = self._assignment_target_tokens(toks, lam_at)
        if len(target) < 3:
            return ""
        chain = [t.text for t in target if t.kind == "id"]
        owner = self._chain_type(chain[:-1], fn, scope)
        if not owner:
            return ""
        fld = self.program.field_decl(owner, chain[-1])
        if fld is not None and fld.is_callback:
            return f"{owner}::{chain[-1]}"
        return ""

    def _assignment_target_var(self, toks: List[Tok], lam_at: int) -> str:
        target = self._assignment_target_tokens(toks, lam_at)
        ids = [t.text for t in target if t.kind == "id"]
        # `auto name =` or `Type name =` — the variable is the last id.
        return ids[-1] if ids else ""

    def _maybe_field_store(self, toks: List[Tok], stmt_start: int,
                           eq_at: int, end: int, fn: model.FunctionInfo,
                           scope: _Scope) -> None:
        """`field_ = name;` (or `this->field_ = name;`) records a store
        for the lifetime-escape rule; filtering on view params happens in
        rules.py once all params are known."""
        lhs = toks[stmt_start:eq_at]
        lhs_ids = [t.text for t in lhs if t.kind == "id"]
        if lhs_ids and lhs_ids[0] == "this":
            lhs_ids = lhs_ids[1:]
        if len(lhs_ids) != 1:
            return
        field = lhs_ids[0]
        if self.program.field_decl(fn.cls, field) is None \
                and not field.endswith("_"):
            return
        rhs_at = eq_at + 1
        if rhs_at + 1 < end and toks[rhs_at].kind == "id" \
                and toks[rhs_at + 1].kind == "p" \
                and toks[rhs_at + 1].text == ";":
            fn.field_stores.append(model.FieldStore(
                field=field, param=toks[rhs_at].text, line=toks[rhs_at].line))

    def _maybe_lambda_var_assignment(self, toks: List[Tok], stmt_start: int,
                                     eq_at: int, fn: model.FunctionInfo,
                                     scope: _Scope) -> None:
        """`callbacks.on_line = some_lambda_var;` patches the sink."""
        rhs = eq_at + 1
        if rhs >= len(toks) or toks[rhs].kind != "id":
            return
        lam = scope.lambda_of(toks[rhs].text)
        if lam is None or lam.sink_kind:
            return
        lhs = toks[stmt_start:eq_at]
        chain = [t.text for t in lhs if t.kind == "id"]
        if len(chain) < 2:
            return
        owner = self._chain_type(chain[:-1], fn, scope)
        if not owner:
            return
        fld = self.program.field_decl(owner, chain[-1])
        if fld is not None and fld.is_callback:
            lam.sink_kind = "field"
            lam.sink_field = f"{owner}::{chain[-1]}"

    def _on_identifier_paren(self, toks: List[Tok], i: int, stmt_start: int,
                             fn: model.FunctionInfo, scope: _Scope,
                             lock_frames: List[set],
                             pending_calls: List[Tuple[model.CallSite, int]],
                             stmt_calls: List[Tuple[model.CallSite, int]],
                             paren: int) -> Tuple[bool, int]:
        """identifier '(' — declaration-with-ctor, or a call site."""
        name = toks[i].text
        if name in _KEYWORD_NON_CALLEES:
            return False, i
        prev = toks[i - 1] if i > stmt_start else None
        # `Type name(...)` — a declaration when the two identifiers stand
        # alone (prev is an identifier or '>' or '&'/'*' closing a type).
        if prev is not None and (
                (prev.kind == "id" and prev.text not in ("return",))
                or (prev.kind == "p" and prev.text in (">", ">>", "&", "*"))):
            type_toks = toks[stmt_start:i]
            type_name = last_type_component(type_toks)
            if type_name:
                scope.vars[name] = type_name
                if type_name in model.SCOPED_LOCK_TYPES:
                    lock = self._paren_arg_text(toks, i + 1)
                    if lock:
                        lock_frames[-1].add(lock)
                return True, i + 1  # the '(' itself is walked next
        # Walk the receiver chain backwards.
        chain: List[str] = []
        qualifier = ""
        k = i - 1
        if k >= 0 and toks[k].kind == "p" and toks[k].text == "::":
            if k - 1 >= 0 and toks[k - 1].kind == "id":
                qualifier = toks[k - 1].text
        elif k >= 0 and toks[k].kind == "p" and toks[k].text in (".", "->"):
            k -= 1
            while k >= 0:
                t = toks[k]
                if t.kind == "id" or (t.kind == "p"
                                      and t.text in (".", "->", "::")):
                    if t.kind == "id":
                        chain.append(t.text)
                    elif t.text == "::":
                        # namespace-qualified head: absorb and stop at it
                        pass
                    k -= 1
                    # Stop the chain at a ')' — a computed receiver is
                    # not resolvable.
                    continue
                break
            chain.reverse()
            # A chain interrupted by calls (tokens like ')') was cut; if
            # the token before the chain head is ')' the receiver is
            # computed — drop it.
            if k >= 0 and toks[k].kind == "p" and toks[k].text == ")":
                chain = []
        site = model.CallSite(
            name=name,
            line=toks[i].line,
            locks_held=tuple(sorted(set().union(*lock_frames))),
        )
        if qualifier and qualifier not in ("std",):
            site.qualifier = qualifier
        if chain:
            rtype = self._chain_type(chain, fn, scope)
            site.receiver_type = rtype
            if rtype:
                fld = self.program.field_decl(rtype, name)
                if fld is not None and fld.is_callback:
                    site.through_member_callback = name
                    site.callback_class = rtype
            # Direct `member_(...)` through a callback field of our own
            # class is covered below (no chain).
        elif not qualifier:
            site.is_self_call = True
            fld = self.program.field_decl(fn.cls, name)
            if fld is not None and fld.is_callback:
                site.through_member_callback = name
                site.callback_class = fn.cls
                site.is_self_call = False
        # Manual lock toggling.
        if name in ("Lock", "LockShared") and chain:
            lock_frames[-1].add(".".join(chain))
        elif name in ("Unlock", "UnlockShared") and chain:
            lock_id = ".".join(chain)
            for frame in lock_frames:
                frame.discard(lock_id)
        fn.calls.append(site)
        chain_start = i - (2 * len(chain)) if chain else i
        stmt_calls.append((site, chain_start))
        pending_calls.append((site, paren + 1))
        return True, i + 1

    def _paren_arg_text(self, toks: List[Tok], open_at: int) -> str:
        """First argument of `(...)` as a dotted id chain, else ''."""
        depth = 0
        parts: List[str] = []
        j = open_at
        while j < len(toks):
            t = toks[j]
            if t.kind == "p" and t.text == "(":
                depth += 1
            elif t.kind == "p" and t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1:
                if t.kind == "id":
                    parts.append(t.text)
                elif t.kind == "p" and t.text in (".", "->"):
                    pass
                elif t.kind == "p" and t.text == ",":
                    break
                else:
                    return ""
            j += 1
        return ".".join(parts)

    def _finalize_stmt(self, toks: List[Tok], stmt_start: int, stmt_end: int,
                       stmt_calls: List[Tuple[model.CallSite, int]],
                       has_assign: bool) -> None:
        """Marks the statement's outermost call as discarded when nothing
        consumes its result."""
        if has_assign or not stmt_calls:
            return
        first = toks[stmt_start] if stmt_start < stmt_end else None
        if first is None:
            return
        if first.kind == "id" and first.text in ("return", "co_return"):
            return
        if first.kind == "p" and first.text == "(":
            # `(void)call(...);` — a deliberate discard, legal for
            # Status/Result only with a justifying comment (driver-checked).
            if stmt_start + 2 < stmt_end \
                    and toks[stmt_start + 1].kind == "id" \
                    and toks[stmt_start + 1].text == "void" \
                    and toks[stmt_start + 2].kind == "p" \
                    and toks[stmt_start + 2].text == ")":
                site, chain_start = stmt_calls[0]
                last = toks[stmt_end - 1]
                if chain_start == stmt_start + 3 and last.kind == "p" \
                        and last.text == ")":
                    site.void_discarded = True
            return  # other parenthesized expressions
        # The outermost call must start the statement and the statement
        # must end right after its close paren.
        site, chain_start = stmt_calls[0]
        if chain_start != stmt_start:
            return
        last = toks[stmt_end - 1] if stmt_end - 1 >= stmt_start else None
        if last is None or not (last.kind == "p" and last.text == ")"):
            return
        # A sole call chain: `a.b.Foo( ... ) ;` — anything else (casts,
        # arithmetic) disqualifies by failing the checks above.
        site.discarded = True


# ---------------------------------------------------------------------------
# Entry point


def parse_program(files: List[Tuple[str, str]]) -> model.Program:
    """files: (display_path, source_text) pairs. Returns the filled IR."""
    program = model.Program()
    parses: List[_FileParse] = []
    for path, text in files:
        toks = tokenize(strip_noncode(text))
        fp = _FileParse(path, toks)
        parses.append(fp)
        _parse_decls(fp, program, 0, len(toks), cls="")
    for fp in parses:
        walker = _BodyWalker(fp, program)
        for span in fp.bodies:
            walker.walk(span, parent_scope=None)
    return program
