"""libclang frontend for the semantic lint (CI's precise view).

Lowers the scanned sources into the same model.Program the textual
frontend produces, but with real name resolution: every call site's
callee comes from the cursor the AST references, so receiver typing,
overload selection and macro expansion are clang's problem, not ours.

Each scanned file is parsed as its own translation unit. Compile flags
come from compile_commands.json when the file appears there (the CI
build exports it); files outside the database — headers, the selftest
fixtures — fall back to `-std=c++17 -I<root>/src -I<dir-of-file>`,
which is exactly what the project's include discipline requires.

Only cursors whose location lies inside the scanned file set are
recorded. That keeps std:: and system declarations out of the name
tables (where they would poison the refuse-to-guess ambiguity oracle)
and deduplicates inline header bodies that many TUs re-parse.

Requires the `clang` Python package plus a loadable libclang; the
driver catches any failure here and falls back to the textual frontend
with a note on stderr.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

from clang import cindex
from clang.cindex import CursorKind, TypeKind

from . import model

_FUNCTION_KINDS = {
    CursorKind.FUNCTION_DECL,
    CursorKind.CXX_METHOD,
    CursorKind.CONSTRUCTOR,
    CursorKind.DESTRUCTOR,
    CursorKind.FUNCTION_TEMPLATE,
}

_CLASS_KINDS = {
    CursorKind.CLASS_DECL,
    CursorKind.STRUCT_DECL,
    CursorKind.CLASS_TEMPLATE,
}

_WRAPPER_KINDS = {
    CursorKind.UNEXPOSED_EXPR,
    CursorKind.PAREN_EXPR,
}


def _last_component(text: str) -> str:
    """`std::Status` -> `Status`, `Result<int>` -> `Result`."""
    text = text.split("<", 1)[0].strip()
    return text.rsplit("::", 1)[-1].strip(" &*")


def _type_name(ctype) -> str:
    try:
        return _last_component(ctype.spelling)
    except Exception:  # pragma: no cover - defensive
        return ""


def _annotations_of(cursor) -> frozenset:
    flags = set()
    for child in cursor.get_children():
        if child.kind == CursorKind.ANNOTATE_ATTR:
            flag = model.ANNOTATION_SPELLINGS.get(child.spelling)
            if flag:
                flags.add(flag)
    return frozenset(flags)


def _returns_status(cursor) -> bool:
    try:
        return _type_name(cursor.result_type) in model.STATUS_RETURN_TYPES
    except Exception:  # pragma: no cover - defensive
        return False


def _enclosing_class(cursor) -> str:
    parent = cursor.semantic_parent
    while parent is not None:
        if parent.kind in _CLASS_KINDS:
            return parent.spelling
        if parent.kind == CursorKind.TRANSLATION_UNIT:
            return ""
        parent = parent.semantic_parent
    return ""


def _is_callback_type(ctype, aliases: Set[str]) -> bool:
    spelling = ctype.spelling
    if "function<" in spelling or spelling.endswith("function"):
        return True
    return _last_component(spelling) in aliases


def _unwrap(cursor):
    """Skips implicit-cast / paren wrapper nodes down to the real expr."""
    while cursor is not None and cursor.kind in _WRAPPER_KINDS:
        children = list(cursor.get_children())
        if len(children) != 1:
            return cursor
        cursor = children[0]
    return cursor


def _tokens(cursor) -> List[str]:
    try:
        return [t.spelling for t in cursor.get_tokens()]
    except Exception:  # pragma: no cover - defensive
        return []


class _TuParser:
    """Walks one translation unit into the shared Program."""

    def __init__(self, program: model.Program, root: str,
                 wanted: Set[str], seen_uids: Set[str]) -> None:
        self.program = program
        self.root = root
        self.wanted = wanted  # relpaths the driver asked us to scan
        self.seen_uids = seen_uids

    # -- location helpers --------------------------------------------------

    def _relpath(self, cursor) -> Optional[str]:
        loc = cursor.location
        if loc.file is None:
            return None
        rel = os.path.relpath(os.path.abspath(loc.file.name), self.root)
        return rel if rel in self.wanted else None

    # -- declaration pass --------------------------------------------------

    def walk(self, cursor) -> None:
        for child in cursor.get_children():
            self._visit_decl(child)

    def _visit_decl(self, cursor) -> None:
        rel = self._relpath(cursor)
        if cursor.kind in (CursorKind.NAMESPACE, CursorKind.LINKAGE_SPEC):
            self.walk(cursor)
            return
        if rel is None:
            return
        if cursor.kind in _CLASS_KINDS:
            self._visit_class(cursor, rel)
            self.walk(cursor)
            return
        if cursor.kind in (CursorKind.TYPE_ALIAS_DECL,
                           CursorKind.TYPEDEF_DECL):
            try:
                under = cursor.underlying_typedef_type.spelling
            except Exception:  # pragma: no cover - defensive
                under = ""
            if "function<" in under:
                self.program.callback_aliases.add(cursor.spelling)
            return
        if cursor.kind in _FUNCTION_KINDS:
            self._visit_function(cursor, rel)
            return
        self.walk(cursor)

    def _visit_class(self, cursor, rel: str) -> None:
        cls = cursor.spelling
        for child in cursor.get_children():
            if child.kind == CursorKind.FIELD_DECL:
                self.program.add_field(model.FieldDecl(
                    cls=cls,
                    name=child.spelling,
                    type_text=child.type.spelling,
                    line=child.location.line,
                    file=rel,
                    is_callback=_is_callback_type(
                        child.type, self.program.callback_aliases),
                    annotations=_annotations_of(child),
                ))

    def _visit_function(self, cursor, rel: str) -> None:
        cls = _enclosing_class(cursor)
        name = cursor.spelling
        decl = model.MethodDecl(
            cls=cls,
            name=name,
            annotations=_annotations_of(cursor),
            returns_status=_returns_status(cursor),
            file=rel,
            line=cursor.location.line,
        )
        self.program.add_method(decl)

        body = None
        for child in cursor.get_children():
            if child.kind == CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return

        qual = f"{cls}::{name}" if cls else name
        uid = f"{rel}:{cursor.location.line}:{qual}"
        if uid in self.seen_uids:
            return
        self.seen_uids.add(uid)

        fn = model.FunctionInfo(
            uid=uid,
            name=name,
            qualname=qual,
            file=rel,
            line=cursor.location.line,
            cls=cls,
            annotations=decl.annotations,
            returns_status=decl.returns_status,
            view_params=self._view_params(cursor),
        )
        walker = _BodyWalker(self, fn)
        if cursor.kind == CursorKind.CONSTRUCTOR:
            walker.record_ctor_inits(cursor, body)
        walker.walk_block(body)
        self.program.add_function(fn)
        walker.flush_lambdas()

    @staticmethod
    def _view_params(cursor) -> Tuple[str, ...]:
        names = []
        for child in cursor.get_children():
            if child.kind == CursorKind.PARM_DECL:
                if _type_name(child.type) in model.VIEW_TYPES:
                    names.append(child.spelling)
        return tuple(names)


class _BodyWalker:
    """Walks one function body, building CallSites / stores / lambdas."""

    def __init__(self, tu: _TuParser, fn: model.FunctionInfo) -> None:
        self.tu = tu
        self.fn = fn
        self.manual_locks: List[str] = []  # mu.Lock() .. mu.Unlock()
        self.pending_calls: List[model.CallSite] = []
        # lambda local var name -> FunctionInfo, for the var-then-field
        # assignment pattern; flushed after the body completes.
        self.lambda_vars: Dict[str, model.FunctionInfo] = {}
        self.lambdas: List[model.FunctionInfo] = []
        # Locals carrying MEDRELAX_UNTRUSTED_BYTES data (untrusted-bytes).
        self.tainted: Set[str] = set()

    # -- constructor init list --------------------------------------------

    def record_ctor_inits(self, ctor, body) -> None:
        # Init list entries appear as MEMBER_REF children of the ctor,
        # each followed by its initializer expression.
        children = list(ctor.get_children())
        for i, child in enumerate(children):
            if child.kind != CursorKind.MEMBER_REF:
                continue
            if i + 1 >= len(children):
                continue
            init = _unwrap(children[i + 1])
            if init is None:
                continue
            # Single-identifier initializer naming a parameter.
            ref = self._param_ref(init)
            if ref:
                self.fn.field_stores.append(model.FieldStore(
                    field=child.spelling,
                    param=ref,
                    line=child.location.line,
                ))

    def _param_ref(self, cursor) -> str:
        cursor = _unwrap(cursor)
        if cursor is None:
            return ""
        if cursor.kind == CursorKind.DECL_REF_EXPR:
            ref = cursor.referenced
            if ref is not None and ref.kind == CursorKind.PARM_DECL:
                if ref.spelling in self.fn.view_params:
                    return ref.spelling
        return ""

    # -- statement walk ----------------------------------------------------

    def walk_block(self, block, locks: Optional[List[str]] = None) -> None:
        frame = list(locks or [])
        for stmt in block.get_children():
            self._visit_stmt(stmt, frame, at_stmt_level=True)

    def _visit_stmt(self, cursor, locks: List[str],
                    at_stmt_level: bool) -> None:
        kind = cursor.kind
        if kind == CursorKind.COMPOUND_STMT:
            self.walk_block(cursor, locks)
            return
        if kind == CursorKind.DECL_STMT:
            for child in cursor.get_children():
                self._visit_var_decl(child, locks)
            return
        if kind == CursorKind.LAMBDA_EXPR:
            self._visit_lambda(cursor, locks)
            return
        if kind == CursorKind.CALL_EXPR:
            self._visit_call(cursor, locks, discarded=at_stmt_level)
            return
        if kind == CursorKind.CSTYLE_CAST_EXPR and at_stmt_level:
            if self._visit_void_cast(cursor, locks):
                return
        if kind == CursorKind.CXX_REINTERPRET_CAST_EXPR:
            hit = self._find_taint_in(cursor)
            if hit:
                self.fn.taint_uses.append(model.TaintUse(
                    kind="reinterpret-cast", source=hit,
                    line=cursor.location.line))
        if kind == CursorKind.ARRAY_SUBSCRIPT_EXPR:
            base = next(iter(cursor.get_children()), None)
            disp = self._direct_taint(base) if base is not None else ""
            if disp:
                self.fn.taint_uses.append(model.TaintUse(
                    kind="index", source=disp, line=cursor.location.line))
        if kind == CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            self._note_compound_taint(cursor)
        if kind == CursorKind.UNARY_OPERATOR:
            self._note_unary_taint(cursor)
        if kind == CursorKind.BINARY_OPERATOR:
            if self._visit_assignment(cursor, locks):
                return
            self._note_binary_taint(cursor)
        for child in cursor.get_children():
            self._visit_stmt(child, locks, at_stmt_level=False)

    def _visit_var_decl(self, cursor, locks: List[str]) -> None:
        if cursor.kind != CursorKind.VAR_DECL:
            for child in cursor.get_children():
                self._visit_stmt(child, locks, at_stmt_level=False)
            return
        tname = _type_name(cursor.type)
        if tname in model.SCOPED_LOCK_TYPES:
            locks.append(self._lock_operand(cursor) or cursor.spelling)
            return
        init_children = list(cursor.get_children())
        for child in init_children:
            lam = self._find_lambda(child)
            if lam is not None:
                info = self._visit_lambda(lam, locks)
                if info is not None:
                    self.lambda_vars[cursor.spelling] = info
                return
        if init_children and self._value_taint(init_children[-1]):
            self.tainted.add(cursor.spelling)
        for child in init_children:
            self._visit_stmt(child, locks, at_stmt_level=False)

    @staticmethod
    def _lock_operand(cursor) -> str:
        for child in cursor.get_children():
            toks = _tokens(child)
            if toks:
                return "".join(toks)
        return ""

    def _find_lambda(self, cursor):
        cursor = _unwrap(cursor)
        if cursor is None:
            return None
        if cursor.kind == CursorKind.LAMBDA_EXPR:
            return cursor
        if cursor.kind == CursorKind.CALL_EXPR:
            # std::function<...> f = [] {...}; materializes through a
            # converting constructor call — look one level down.
            children = [_unwrap(c) for c in cursor.get_children()]
            lambdas = [c for c in children
                       if c is not None
                       and c.kind == CursorKind.LAMBDA_EXPR]
            if len(lambdas) == 1:
                return lambdas[0]
        return None

    # -- calls -------------------------------------------------------------

    def _visit_call(self, cursor, locks: List[str],
                    discarded: bool) -> None:
        ref = cursor.referenced
        callee_name = cursor.spelling or (ref.spelling if ref else "")

        site = model.CallSite(
            name=callee_name,
            line=cursor.location.line,
            locks_held=tuple(locks + self.manual_locks),
            discarded=discarded,
        )

        if ref is not None and ref.kind in _FUNCTION_KINDS:
            cls = _enclosing_class(ref)
            if cls:
                site.qualifier = cls
            # Register the resolved callee so flag/status lookups work
            # even when its declaration lives outside the scanned set's
            # own pass (e.g. an out-of-line body seen later).
            if self.tu._relpath(ref) is not None:
                self.tu.program.add_method(model.MethodDecl(
                    cls=cls,
                    name=ref.spelling,
                    annotations=_annotations_of(ref),
                    returns_status=_returns_status(ref),
                ))
        if not site.qualifier and self.fn.cls:
            site.is_self_call = self._is_self_call(cursor)

        self._detect_callback_member(cursor, site)
        self._maybe_manual_lock(cursor, site)

        self.fn.calls.append(site)

        # Arguments: lambdas sink into this call; other calls recurse.
        self.pending_calls.append(site)
        try:
            for child in cursor.get_children():
                self._visit_stmt(child, locks, at_stmt_level=False)
        finally:
            self.pending_calls.pop()

    def _is_self_call(self, cursor) -> bool:
        ref = cursor.referenced
        if ref is None:
            return False
        return _enclosing_class(ref) == self.fn.cls

    def _detect_callback_member(self, cursor, site: model.CallSite) -> None:
        """`callback_(x)` — a CALL_EXPR through a std::function member."""
        if site.name not in ("operator()", ""):
            # A named call can still be a member functor via `this->cb_(x)`
            # only when the callee is operator(); nothing to do here.
            return
        for child in cursor.walk_preorder():
            if child.kind != CursorKind.MEMBER_REF_EXPR:
                continue
            ref = child.referenced
            if ref is None or ref.kind != CursorKind.FIELD_DECL:
                continue
            cls = _enclosing_class(ref)
            decl = self.tu.program.field_decl(cls, ref.spelling)
            if decl is not None and decl.is_callback:
                site.through_member_callback = ref.spelling
                site.callback_class = cls
                site.name = ref.spelling
                return

    def _maybe_manual_lock(self, cursor, site: model.CallSite) -> None:
        if site.name == "Lock":
            operand = self._receiver_text(cursor)
            if operand:
                self.manual_locks.append(operand)
        elif site.name == "Unlock":
            operand = self._receiver_text(cursor)
            if operand and operand in self.manual_locks:
                self.manual_locks.remove(operand)

    @staticmethod
    def _receiver_text(cursor) -> str:
        for child in cursor.get_children():
            child = _unwrap(child)
            if child is not None \
                    and child.kind == CursorKind.MEMBER_REF_EXPR:
                inner = list(child.get_children())
                if not inner:
                    return child.spelling
                toks = _tokens(inner[0])
                return "".join(toks) if toks else child.spelling
        return ""

    # -- untrusted-bytes taint ---------------------------------------------

    def _direct_taint(self, cursor) -> str:
        """Display name when `cursor` IS a tainted value: a tainted local,
        a MEDRELAX_UNTRUSTED_BYTES field, or a call to an annotated
        accessor. '' otherwise — a value that merely *contains* taint
        deeper down (a member call on the buffer, say) is a plain value."""
        cursor = _unwrap(cursor)
        if cursor is None:
            return ""
        kind = cursor.kind
        if kind == CursorKind.DECL_REF_EXPR:
            ref = cursor.referenced
            if ref is not None and ref.spelling in self.tainted:
                return ref.spelling
        elif kind == CursorKind.MEMBER_REF_EXPR:
            ref = cursor.referenced
            if ref is not None and ref.kind == CursorKind.FIELD_DECL \
                    and model.UNTRUSTED in _annotations_of(ref):
                return ref.spelling
        elif kind == CursorKind.CALL_EXPR:
            ref = cursor.referenced
            if ref is not None and model.UNTRUSTED in _annotations_of(ref):
                return (cursor.spelling or ref.spelling) + "()"
        return ""

    def _find_taint_in(self, cursor) -> str:
        """Deep search (for reinterpret_cast operands): any tainted value
        anywhere in the subtree taints the cast."""
        for node in cursor.walk_preorder():
            disp = self._direct_taint(node)
            if disp:
                return disp
        return ""

    def _value_taint(self, cursor) -> str:
        """Taint carried by an initializer/RHS *value*: the expression is
        itself a tainted atom, or pointer arithmetic over one. Mirrors the
        textual frontend: results of member calls on tainted objects are
        plain values and do not propagate."""
        cursor = _unwrap(cursor)
        if cursor is None:
            return ""
        disp = self._direct_taint(cursor)
        if disp:
            return disp
        if cursor.kind == CursorKind.BINARY_OPERATOR \
                and self._binop_text(cursor) in ("+", "-"):
            for child in cursor.get_children():
                disp = self._value_taint(child)
                if disp:
                    return disp
        return ""

    @staticmethod
    def _binop_text(cursor) -> str:
        """Spelling of a binary/compound operator ('+', '-', '=', '+=',
        ...). Prefers the cindex BinaryOperator property (clang >= 17);
        falls back to the first token past the LHS extent."""
        try:
            name = cursor.binary_operator.name
            mapped = {"Add": "+", "Sub": "-", "Assign": "=",
                      "AddAssign": "+=", "SubAssign": "-="}.get(name)
            if mapped:
                return mapped
            if name and name != "Invalid":
                return name
        except Exception:
            pass
        children = list(cursor.get_children())
        if len(children) != 2:
            return ""
        try:
            lhs_end = children[0].extent.end.offset
            for tok in cursor.get_tokens():
                if tok.extent.start.offset >= lhs_end:
                    return tok.spelling
        except Exception:  # pragma: no cover - defensive
            return ""
        return ""

    @staticmethod
    def _is_pointer(ctype) -> bool:
        try:
            return ctype.get_canonical().kind == TypeKind.POINTER
        except Exception:  # pragma: no cover - defensive
            return False

    def _note_binary_taint(self, cursor) -> None:
        """Pointer arithmetic on tainted operands, and `lhs = rhs` taint
        propagation onto plain local variables."""
        children = list(cursor.get_children())
        if len(children) != 2:
            return
        op = self._binop_text(cursor)
        if op in ("+", "-") and self._is_pointer(cursor.type):
            for child in children:
                disp = self._direct_taint(child)
                if disp:
                    self.fn.taint_uses.append(model.TaintUse(
                        kind="pointer-arith", source=disp,
                        line=child.location.line))
                    return
            return
        if op != "=":
            return
        lhs = _unwrap(children[0])
        if lhs is None or lhs.kind != CursorKind.DECL_REF_EXPR:
            return
        name = lhs.referenced.spelling if lhs.referenced is not None \
            else lhs.spelling
        if not name:
            return
        if self._value_taint(children[1]):
            self.tainted.add(name)
        else:
            self.tainted.discard(name)

    def _note_compound_taint(self, cursor) -> None:
        children = list(cursor.get_children())
        if len(children) != 2:
            return
        if self._binop_text(cursor) not in ("+=", "-="):
            return
        disp = self._direct_taint(children[0])
        if disp and self._is_pointer(cursor.type):
            self.fn.taint_uses.append(model.TaintUse(
                kind="pointer-arith", source=disp,
                line=children[0].location.line))

    def _note_unary_taint(self, cursor) -> None:
        toks = _tokens(cursor)
        if not toks or not (toks[0] in ("++", "--")
                            or toks[-1] in ("++", "--")):
            return
        operand = next(iter(cursor.get_children()), None)
        if operand is None:
            return
        disp = self._direct_taint(operand)
        if disp and self._is_pointer(cursor.type):
            self.fn.taint_uses.append(model.TaintUse(
                kind="pointer-arith", source=disp,
                line=operand.location.line))

    # -- (void) discards ---------------------------------------------------

    def _visit_void_cast(self, cursor, locks: List[str]) -> bool:
        if "void" not in cursor.type.spelling:
            return False
        inner = _unwrap(next(iter(cursor.get_children()), None))
        if inner is None or inner.kind != CursorKind.CALL_EXPR:
            return False
        before = len(self.fn.calls)
        self._visit_call(inner, locks, discarded=False)
        for site in self.fn.calls[before:]:
            if site.line == inner.location.line:
                site.void_discarded = True
        return True

    # -- assignments -------------------------------------------------------

    def _visit_assignment(self, cursor, locks: List[str]) -> bool:
        children = list(cursor.get_children())
        if len(children) != 2:
            return False
        toks = _tokens(cursor)
        if "=" not in toks:
            return False
        lhs = _unwrap(children[0])
        rhs_raw = children[1]
        if lhs is None or lhs.kind != CursorKind.MEMBER_REF_EXPR:
            return False
        ref = lhs.referenced
        if ref is None or ref.kind != CursorKind.FIELD_DECL:
            return False
        cls = _enclosing_class(ref)
        field = ref.spelling

        lam = self._find_lambda(rhs_raw)
        if lam is not None:
            info = self._visit_lambda(lam, locks)
            if info is not None:
                info.sink_kind = "field"
                info.sink_field = f"{cls}::{field}"
            return True

        rhs = _unwrap(rhs_raw)
        if rhs is not None and rhs.kind == CursorKind.DECL_REF_EXPR:
            target = rhs.referenced
            if target is not None:
                if target.spelling in self.lambda_vars:
                    info = self.lambda_vars[target.spelling]
                    info.sink_kind = "field"
                    info.sink_field = f"{cls}::{field}"
                    return True
                if target.kind == CursorKind.PARM_DECL:
                    self.fn.field_stores.append(model.FieldStore(
                        field=field,
                        param=target.spelling,
                        line=cursor.location.line,
                    ))
                    return True
        for child in cursor.get_children():
            self._visit_stmt(child, locks, at_stmt_level=False)
        return True

    # -- lambdas -----------------------------------------------------------

    def _visit_lambda(self, cursor, locks: List[str]):
        rel = self.fn.file
        line = cursor.location.line
        info = model.FunctionInfo(
            uid=f"{rel}:{line}:<lambda>",
            name="<lambda>",
            qualname=f"<lambda@{rel}:{line}>",
            file=rel,
            line=line,
            cls=self.fn.cls,
            is_lambda=True,
        )
        if self.pending_calls:
            info.sink_kind = "call"
            info.sink_call = self.pending_calls[-1]

        body = None
        for child in cursor.get_children():
            if child.kind == CursorKind.COMPOUND_STMT:
                body = child
        if body is not None:
            sub = _BodyWalker(self.tu, info)
            sub.walk_block(body)
            self.lambdas.append(info)
            self.lambdas.extend(sub.lambdas)
            sub.lambdas = []
        else:
            self.lambdas.append(info)
        return info

    def flush_lambdas(self) -> None:
        for info in self.lambdas:
            if info.uid not in self.tu.seen_uids:
                self.tu.seen_uids.add(info.uid)
                self.tu.program.add_function(info)
        self.lambdas = []


def _compile_args(db, path: str, root: str) -> List[str]:
    if db is not None:
        try:
            commands = db.getCompileCommands(path)
        except Exception:  # pragma: no cover - defensive
            commands = None
        if commands:
            args = list(commands[0].arguments)[1:]
            # Drop the input file and -o/-c plumbing; keep flags.
            cleaned = []
            skip = False
            for arg in args:
                if skip:
                    skip = False
                    continue
                if arg in ("-o", "-c"):
                    skip = arg == "-o"
                    continue
                if os.path.abspath(arg) == os.path.abspath(path):
                    continue
                cleaned.append(arg)
            return cleaned
    return [
        "-std=c++17",
        "-x", "c++",
        "-I", os.path.join(root, "src"),
        "-I", os.path.dirname(path),
    ]


def _ensure_libclang() -> None:
    """Points cindex at a loadable libclang.

    The Debian/Ubuntu python3-clang package does not always find the
    versioned shared library on its own. MEDRELAX_LIBCLANG overrides
    explicitly; otherwise the default search runs first and versioned
    install paths are probed as a fallback. Any failure propagates so
    the driver can fall back to the textual frontend.
    """
    explicit = os.environ.get("MEDRELAX_LIBCLANG")
    if explicit and not cindex.Config.loaded:
        cindex.Config.set_library_file(explicit)
        return
    try:
        cindex.Index.create()
        return
    except cindex.LibclangError:
        pass
    import glob

    for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/*/libclang-*.so*"):
        for cand in sorted(glob.glob(pattern), reverse=True):
            if cindex.Config.loaded:  # pragma: no cover - defensive
                return
            cindex.Config.set_library_file(cand)
            try:
                cindex.Index.create()
                return
            except cindex.LibclangError:
                continue
    raise RuntimeError("no loadable libclang found"
                       " (set MEDRELAX_LIBCLANG to the .so path)")


def parse_program(files: List[Tuple[str, str]], compile_db: str,
                  root: str) -> model.Program:
    _ensure_libclang()
    index = cindex.Index.create()

    db = None
    if os.path.isfile(compile_db):
        try:
            db = cindex.CompilationDatabase.fromDirectory(
                os.path.dirname(compile_db))
        except cindex.CompilationDatabaseError:
            db = None

    program = model.Program()
    wanted = {relpath for relpath, _text in files}
    seen_uids: Set[str] = set()

    # Two passes over the TUs: the first registers every class/field/alias
    # (so callback-member detection has complete tables), the second walks
    # bodies. Re-parsing is avoided by keeping the TUs alive in between.
    tus = []
    for relpath, _text in files:
        path = os.path.join(root, relpath)
        args = _compile_args(db, path, root)
        try:
            tu = index.parse(path, args=args)
        except cindex.TranslationUnitLoadError as err:
            raise RuntimeError(f"cannot parse {relpath}: {err}") from err
        tus.append(tu)

    parser = _TuParser(program, root, wanted, seen_uids)
    # Pass 1: declarations only (fields, aliases, method annotations).
    for tu in tus:
        _register_decls(parser, tu.cursor)
    # Pass 2: function bodies.
    for tu in tus:
        parser.walk(tu.cursor)
    return program


def _register_decls(parser: _TuParser, cursor) -> None:
    for child in cursor.get_children():
        if child.kind in (CursorKind.NAMESPACE, CursorKind.LINKAGE_SPEC):
            _register_decls(parser, child)
            continue
        rel = parser._relpath(child)
        if rel is None:
            continue
        if child.kind in _CLASS_KINDS:
            parser._visit_class(child, rel)
            for sub in child.get_children():
                if sub.kind in (CursorKind.TYPE_ALIAS_DECL,
                                CursorKind.TYPEDEF_DECL):
                    try:
                        under = sub.underlying_typedef_type.spelling
                    except Exception:  # pragma: no cover - defensive
                        under = ""
                    if "function<" in under:
                        parser.program.callback_aliases.add(sub.spelling)
                if sub.kind in _FUNCTION_KINDS:
                    parser.program.add_method(model.MethodDecl(
                        cls=child.spelling,
                        name=sub.spelling,
                        annotations=_annotations_of(sub),
                        returns_status=_returns_status(sub),
                        file=rel,
                        line=sub.location.line,
                    ))
            _register_decls(parser, child)
            continue
        if child.kind in (CursorKind.TYPE_ALIAS_DECL,
                          CursorKind.TYPEDEF_DECL):
            try:
                under = child.underlying_typedef_type.spelling
            except Exception:  # pragma: no cover - defensive
                under = ""
            if "function<" in under:
                parser.program.callback_aliases.add(child.spelling)
            continue
        if child.kind in _FUNCTION_KINDS:
            parser.program.add_method(model.MethodDecl(
                cls=_enclosing_class(child),
                name=child.spelling,
                annotations=_annotations_of(child),
                returns_status=_returns_status(child),
                file=rel,
                line=child.location.line,
            ))
