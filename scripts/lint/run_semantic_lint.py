#!/usr/bin/env python3
"""medrelax semantic lint driver.

Runs the five semantic rules (thread affinity, loop blocking, callback
scope, ignored status, view lifetime) over the tree and reports
`path:lineno: [rule] message` lines, exiting 1 when anything un-waived is
found. docs/TOOLING.md documents the vocabulary and the waiver form.

    scripts/lint/run_semantic_lint.py                  # src/ + tools/
    scripts/lint/run_semantic_lint.py --scan DIR ...   # explicit roots
    scripts/lint/run_semantic_lint.py --frontend clang \
        --compile-db build/compile_commands.json       # precise mode (CI)

Frontends (scripts/lint/semantic/__init__.py):
  textual  dependency-free mini-parser; the default everywhere.
  clang    libclang over compile_commands.json; used in CI. `auto` picks
           clang when clang.cindex imports and a compile db exists.

Waivers: `// lint:allow(<rule>) <reason>` on the reported line or the
line directly above it. Waivers in src/medrelax/net/ and
src/medrelax/serve/ are rejected outright: those layers define the
affinity model and must satisfy it without exceptions.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from semantic import model, rules  # noqa: E402
from semantic import frontend_textual  # noqa: E402

ALLOW_RE = re.compile(r"lint:allow\(([a-z0-9_,\- ]+)\)")

# Layers that must hold the affinity model without exceptions: a waiver
# for a semantic rule in these directories is itself a finding.
NO_WAIVER_DIRS = ("src/medrelax/net/", "src/medrelax/serve/")

# Rule-specific bans on top of NO_WAIVER_DIRS: the untrusted-input
# boundary (mapped images, inbound connection bytes) must hold without
# exceptions in the layers that own it.
RULE_NO_WAIVER_DIRS = {
    "untrusted-bytes": ("src/medrelax/flat/", "src/medrelax/net/"),
}

DEFAULT_SCAN = ("src", "tools")
SOURCE_EXTS = (".h", ".cc")


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def discover_files(root, scan_dirs):
    files = []
    for scan in scan_dirs:
        base = os.path.join(root, scan)
        if os.path.isfile(base):
            files.append(base)
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


def load_sources(root, paths):
    sources = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as err:
            print(f"semantic-lint: cannot read {path}: {err}", file=sys.stderr)
            continue
        sources.append((os.path.relpath(path, root), text))
    return sources


def build_program_textual(sources):
    return frontend_textual.parse_program(sources)


def build_program_clang(sources, compile_db, root):
    from semantic import frontend_clang

    return frontend_clang.parse_program(sources, compile_db, root)


def waived_rules(lines, lineno):
    """Rules waived at `lineno` (1-based): same line or the line above."""
    waived = set()
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines):
            m = ALLOW_RE.search(lines[candidate - 1])
            if m:
                waived.update(
                    part.strip() for part in m.group(1).split(","))
    return waived


COMMENT_RE = re.compile(r"//\s*\S")


def has_justifying_comment(lines, lineno):
    """A trailing comment on the line, or a comment line directly above."""
    if 1 <= lineno <= len(lines) and COMMENT_RE.search(lines[lineno - 1]):
        return True
    if lineno >= 2 and re.match(r"^\s*//\s*\S", lines[lineno - 2]):
        return True
    return False


def apply_waivers(findings, sources_by_path):
    """Splits findings into (reported, waived, illegal_waivers)."""
    reported = []
    waived_count = 0
    illegal = []
    line_cache = {}
    for finding in findings:
        if finding.file not in line_cache:
            text = sources_by_path.get(finding.file, "")
            line_cache[finding.file] = text.splitlines()
        if finding.comment_waivable \
                and has_justifying_comment(line_cache[finding.file],
                                           finding.line):
            waived_count += 1
            continue
        waived = waived_rules(line_cache[finding.file], finding.line)
        if finding.rule in waived:
            rule_bans = RULE_NO_WAIVER_DIRS.get(finding.rule, ())
            if finding.file.startswith(NO_WAIVER_DIRS):
                illegal.append(model.Finding(
                    finding.file, finding.line, finding.rule,
                    "waiver is not permitted in net/ or serve/ — these"
                    " layers define the affinity model; fix the code"))
            elif finding.file.startswith(rule_bans):
                illegal.append(model.Finding(
                    finding.file, finding.line, finding.rule,
                    f"waiver for [{finding.rule}] is not permitted here —"
                    " this layer owns the untrusted-input boundary; fix"
                    " the code"))
            else:
                waived_count += 1
            continue
        reported.append(finding)
    return reported, waived_count, illegal


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scan", nargs="+", default=list(DEFAULT_SCAN),
                        metavar="DIR",
                        help="files or directories relative to the repo"
                             " root (default: src tools)")
    parser.add_argument("--root", default=repo_root(),
                        help="repository root (default: auto)")
    parser.add_argument("--frontend", choices=("auto", "textual", "clang"),
                        default="textual",
                        help="parser frontend (default: textual)")
    parser.add_argument("--compile-db", default="build/compile_commands.json",
                        help="compile_commands.json for the clang frontend")
    parser.add_argument("--rules", default=",".join(rules.ALL_RULES),
                        help="comma-separated rules to run")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="disable one rule (repeatable;"
                        " the fixture runner uses this to prove each"
                        " fixture fails when its rule is off)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in rules.ALL_RULES:
            print(rule)
        return 0

    enabled = {r.strip() for r in args.rules.split(",") if r.strip()}
    enabled -= set(args.disable)
    unknown = enabled - set(rules.ALL_RULES)
    if unknown:
        print(f"semantic-lint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    paths = discover_files(root, args.scan)
    if not paths:
        print("semantic-lint: nothing to scan", file=sys.stderr)
        return 2
    sources = load_sources(root, paths)

    frontend = args.frontend
    if frontend == "auto":
        try:
            import clang.cindex  # noqa: F401

            frontend = "clang"
        except ImportError:
            frontend = "textual"
    if frontend == "clang":
        compile_db = os.path.join(root, args.compile_db) \
            if not os.path.isabs(args.compile_db) else args.compile_db
        try:
            program = build_program_clang(sources, compile_db, root)
        except Exception as err:  # pragma: no cover - environment-specific
            print(f"semantic-lint: clang frontend unavailable ({err});"
                  " falling back to textual", file=sys.stderr)
            program = build_program_textual(sources)
            frontend = "textual"
    else:
        program = build_program_textual(sources)

    findings = rules.check(program, enabled)
    sources_by_path = dict(sources)
    reported, waived_count, illegal = apply_waivers(findings, sources_by_path)

    for finding in reported + illegal:
        print(finding.render())
    total = len(reported) + len(illegal)
    if total:
        print(f"semantic-lint[{frontend}]: {total} finding(s)"
              f" ({waived_count} waived)", file=sys.stderr)
        return 1
    print(f"semantic-lint[{frontend}]: clean"
          f" ({len(sources)} files, {len(program.functions)} functions,"
          f" {waived_count} waived)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
