#!/usr/bin/env python3
"""Project-invariant lints for medrelax.

Source-level checks that neither the compiler nor clang-tidy enforce the way
this project wants them enforced:

  ignored-status     A statement-expression calls a function declared to
                     return Status or Result<T> and drops the value. The
                     compiler catches most of these via [[nodiscard]], but
                     this lint also fires on `(void)` casts that lack a
                     justifying comment, and it works without a build.
  raw-new-delete     `new` / `delete` outside of smart-pointer factories.
                     Ownership in this codebase is std::unique_ptr or value
                     semantics; raw allocation needs an explicit waiver.
  include-cc         `#include` of a .cc file (breaks the one-TU-per-source
                     build model and the static archive layout).
  header-guard       Headers must use an include guard spelled from the
                     repo-relative path (MEDRELAX_IO_DAG_IO_H_ style for
                     src/, <DIR>_<NAME>_H_ for bench/), never #pragma once,
                     so guards stay unique and greppable.

Exit status is the number of violation kinds found (0 = clean). Waivers:
append `// lint:allow(<rule>) <reason>` to the offending line.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")

WAIVER_RE = re.compile(r"//\s*lint:allow\((?P<rules>[a-z\-, ]+)\)\s*\S")

# Function-name heuristics the ignored-status lint treats as consuming the
# value: control flow, assignment, macro wrapping, or an explicit (void) cast
# carrying a comment.
CONSUMING_RE = re.compile(
    r"(=|\breturn\b|\bif\b|\bwhile\b|\bfor\b|\bswitch\b|\bco_return\b|"
    r"MEDRELAX_RETURN_NOT_OK|MEDRELAX_ASSIGN_OR_RETURN|MEDRELAX_CHECK_OK|"
    r"EXPECT_|ASSERT_|CHECK\(|\.ok\(\)|\.status\(\)|\.value|\bstatic_cast<)"
)


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string/char literals."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def iter_source_files(exts):
    for d in SOURCE_DIRS:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.relpath(os.path.join(dirpath, name), REPO)


def read_lines(relpath):
    with open(os.path.join(REPO, relpath), encoding="utf-8") as f:
        return f.read().splitlines()


def waived(line, rule):
    m = WAIVER_RE.search(line)
    return bool(m) and rule in [r.strip() for r in m.group("rules").split(",")]


# --- rule: ignored-status --------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)?"
    r"(?:::)?(?:medrelax::)?(?:Status|Result<.+>)\s+"
    r"(?P<name>\w+)\s*\("
)


def collect_status_functions():
    """Names of functions declared in headers to return Status/Result<T>."""
    names = set()
    for relpath in iter_source_files({".h"}):
        for line in read_lines(relpath):
            m = STATUS_DECL_RE.match(line)
            if m:
                names.add(m.group("name"))
    # Accessors named like values, not operations, are excluded: calling
    # kb.status() to *read* a status is not an ignored error.
    names.discard("status")
    names.discard("OK")
    return names


def check_ignored_status(violations):
    names = collect_status_functions()
    if not names:
        return
    names_alt = "|".join(sorted(re.escape(n) for n in names))
    call_re = re.compile(
        r"^\s*(?:[\w\.\->:\[\]\(\)]+(?:\.|->|::))?(?:%s)\s*\(" % names_alt
    )
    void_cast_re = re.compile(
        r"^\s*\(void\)\s*(?:[\w\.\->:\[\]\(\)]+(?:\.|->|::))?(?:%s)\s*\("
        % names_alt
    )
    for relpath in iter_source_files({".cc", ".h"}):
        raw_lines = read_lines(relpath)
        depth = 0  # paren depth at the start of the current line
        prev_terminated = True  # did the previous code line end a statement?
        for lineno, raw in enumerate(raw_lines, 1):
            line = strip_comments_and_strings(raw)
            at_statement_start = depth == 0 and prev_terminated
            depth += line.count("(") - line.count(")")
            depth = max(depth, 0)
            stripped = line.strip()
            if stripped:
                prev_terminated = (
                    stripped.endswith((";", "{", "}", ":", ">"))
                    or stripped.startswith("#"))
            if not at_statement_start:
                # Continuation of a multi-line expression; the consuming
                # construct (macro, assignment, EXPECT_..., `... =`) was on
                # an earlier line.
                continue
            if waived(raw, "ignored-status"):
                continue
            if void_cast_re.match(line):
                # (void)-discards of a fallible call are allowed only with
                # an explanation on the same or the preceding line.
                prev = raw_lines[lineno - 2] if lineno >= 2 else ""
                if not (re.search(r"//\s*\S", raw)
                        or re.search(r"^\s*//\s*\S", prev)):
                    violations.append(
                        ("ignored-status", relpath, lineno,
                         "(void)-discard of a Status/Result needs a comment "
                         "explaining why the error is ignorable"))
                continue
            if not call_re.match(line):
                continue
            if CONSUMING_RE.search(line):
                continue
            # Bare call statement: `Foo(...);` or `obj.Foo(...);` with the
            # return value unused on this line. Multi-line consumers start
            # the expression on the consuming token, so this stays precise.
            if line.rstrip().endswith(";"):
                violations.append(
                    ("ignored-status", relpath, lineno,
                     "call discards a Status/Result return value"))


# --- rule: raw-new-delete --------------------------------------------------

NEW_RE = re.compile(r"(?<![\w_])new\s+[\w:<]")
DELETE_RE = re.compile(r"(?<![\w_])delete(\[\])?\s+[\w\*]")
SMART_OK_RE = re.compile(r"(make_unique|make_shared|unique_ptr|shared_ptr)")
DELETED_FN_RE = re.compile(r"=\s*delete")


def check_raw_new_delete(violations):
    for relpath in iter_source_files({".cc", ".h"}):
        for lineno, raw in enumerate(read_lines(relpath), 1):
            if waived(raw, "raw-new-delete"):
                continue
            line = strip_comments_and_strings(raw)
            if NEW_RE.search(line) and not SMART_OK_RE.search(line):
                violations.append(
                    ("raw-new-delete", relpath, lineno,
                     "raw `new`; use std::make_unique or value semantics"))
            if DELETE_RE.search(line) and not DELETED_FN_RE.search(line):
                violations.append(
                    ("raw-new-delete", relpath, lineno,
                     "raw `delete`; ownership belongs in a smart pointer"))


# --- rule: include-cc ------------------------------------------------------

INCLUDE_CC_RE = re.compile(r"#\s*include\s*[\"<][^\">]+\.cc[\">]")


def check_include_cc(violations):
    for relpath in iter_source_files({".cc", ".h"}):
        for lineno, raw in enumerate(read_lines(relpath), 1):
            if waived(raw, "include-cc"):
                continue
            if INCLUDE_CC_RE.search(strip_comments_and_strings(raw)):
                violations.append(
                    ("include-cc", relpath, lineno,
                     "#include of a .cc file; include the header instead"))


# --- rule: header-guard ----------------------------------------------------


def expected_guard(relpath):
    # src/medrelax/io/dag_io.h -> MEDRELAX_IO_DAG_IO_H_
    # bench/bench_common.h     -> MEDRELAX_BENCH_BENCH_COMMON_H_
    if relpath.startswith("src/medrelax/"):
        stem = relpath[len("src/medrelax/"):]
    else:
        stem = relpath
    return "MEDRELAX_" + re.sub(r"[/\.]", "_", stem).upper() + "_"


def check_header_guards(violations):
    for relpath in iter_source_files({".h"}):
        lines = read_lines(relpath)
        text = "\n".join(lines)
        if "#pragma once" in text:
            violations.append(
                ("header-guard", relpath, 1,
                 "#pragma once is banned; use an include guard"))
            continue
        guard = expected_guard(relpath)
        ifndef_re = re.compile(r"^#ifndef\s+(\S+)\s*$", re.MULTILINE)
        m = ifndef_re.search(text)
        if m is None:
            violations.append(
                ("header-guard", relpath, 1, "missing include guard"))
            continue
        actual = m.group(1)
        if actual != guard:
            violations.append(
                ("header-guard", relpath, 1,
                 f"guard is {actual}, expected {guard}"))
            continue
        if f"#define {guard}" not in text:
            violations.append(
                ("header-guard", relpath, 1,
                 f"#ifndef {guard} has no matching #define"))


def main():
    violations = []
    check_ignored_status(violations)
    check_raw_new_delete(violations)
    check_include_cc(violations)
    check_header_guards(violations)

    if violations:
        for rule, path, lineno, msg in violations:
            print(f"{path}:{lineno}: [{rule}] {msg}")
        kinds = sorted({v[0] for v in violations})
        print(
            f"\n{len(violations)} violation(s) across rule(s): {', '.join(kinds)}",
            file=sys.stderr)
        print("Waive a single line with: // lint:allow(<rule>) <reason>",
              file=sys.stderr)
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
