#!/usr/bin/env python3
"""Project-invariant lints for medrelax.

Source-level checks that neither the compiler nor clang-tidy enforce the way
this project wants them enforced:

  raw-new-delete     `new` / `delete` outside of smart-pointer factories.
                     Ownership in this codebase is std::unique_ptr or value
                     semantics; raw allocation needs an explicit waiver.
  include-cc         `#include` of a .cc file (breaks the one-TU-per-source
                     build model and the static archive layout).
  header-guard       Headers must use an include guard spelled from the
                     repo-relative path (MEDRELAX_IO_DAG_IO_H_ style for
                     src/, <DIR>_<NAME>_H_ for bench/), never #pragma once,
                     so guards stay unique and greppable.
  raw-mutex          std::mutex / std::shared_mutex / std::condition_variable
                     outside src/medrelax/common/. Locks go through the
                     annotated medrelax::Mutex / SharedMutex / CondVar
                     wrappers (common/mutex.h) so -Wthread-safety and the
                     lock-order deadlock detector see every acquisition.
  guarded-by         A class owning a medrelax::Mutex/SharedMutex must say,
                     member by member, what that lock protects: each mutable
                     data member carries MEDRELAX_GUARDED_BY(...) or
                     MEDRELAX_LOOP_THREAD_ONLY (checked by the semantic
                     affinity pass instead of a lock), or is atomic, const,
                     or explicitly waived.

Exit status is 1 when any violation is found (0 = clean). Waivers: append
`// lint:allow(<rule>) <reason>` to the offending line.

Self-testing: `--scan DIR ...` restricts the scan to the given directories
(relative to the repo root). tests/lint_selftest/ keeps fixture files with
known violations and diffs the rules' findings against them in ctest; the
fixture tree is excluded from normal runs.
"""

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
# Fixture files under here contain violations on purpose; only --scan
# (the lint self-test) looks at them.
EXCLUDED_DIR_NAMES = {"lint_selftest"}
# The annotated lock wrappers themselves live here and legitimately wrap
# the standard primitives; raw-mutex and guarded-by skip it.
COMMON_DIR_PREFIX = "src/medrelax/common/"

# Set by --scan: replaces SOURCE_DIRS (and lifts the fixture exclusion).
SCAN_DIRS = []

WAIVER_RE = re.compile(r"//\s*lint:allow\((?P<rules>[a-z\-, ]+)\)\s*\S")


def strip_comments_and_strings(line, in_block=False):
    """Removes comments and the contents of string/char literals.

    Handles `//` line comments and `/* ... */` block comments; block
    state spans lines, so the caller threads `in_block` through
    consecutive lines (see stripped_lines). Returns (stripped, in_block).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def stripped_lines(raw_lines):
    """strip_comments_and_strings over a whole file, carrying block state."""
    out = []
    in_block = False
    for raw in raw_lines:
        line, in_block = strip_comments_and_strings(raw, in_block)
        out.append(line)
    return out


def iter_source_files(exts):
    roots = SCAN_DIRS if SCAN_DIRS else SOURCE_DIRS
    for d in roots:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, dirnames, names in os.walk(root):
            if not SCAN_DIRS:
                dirnames[:] = [
                    n for n in dirnames if n not in EXCLUDED_DIR_NAMES
                ]
            dirnames.sort()
            for name in sorted(names):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.relpath(os.path.join(dirpath, name), REPO)


def read_lines(relpath):
    with open(os.path.join(REPO, relpath), encoding="utf-8") as f:
        return f.read().splitlines()


def waived(line, rule):
    m = WAIVER_RE.search(line)
    return bool(m) and rule in [r.strip() for r in m.group("rules").split(",")]


# The ignored-status rule moved to the semantic pass
# (scripts/lint/run_semantic_lint.py): the AST-accurate version tracks
# whole statements, so multiline calls and receiver-typed member calls
# resolve correctly where the old line-regex could not.

# --- rule: raw-new-delete --------------------------------------------------

NEW_RE = re.compile(r"(?<![\w_])new\s+[\w:<]")
DELETE_RE = re.compile(r"(?<![\w_])delete(\[\])?\s+[\w\*]")
SMART_OK_RE = re.compile(r"(make_unique|make_shared|unique_ptr|shared_ptr)")
DELETED_FN_RE = re.compile(r"=\s*delete")


def check_raw_new_delete(violations):
    for relpath in iter_source_files({".cc", ".h"}):
        raw_lines = read_lines(relpath)
        for lineno, (raw, line) in enumerate(
                zip(raw_lines, stripped_lines(raw_lines)), 1):
            if waived(raw, "raw-new-delete"):
                continue
            if NEW_RE.search(line) and not SMART_OK_RE.search(line):
                violations.append(
                    ("raw-new-delete", relpath, lineno,
                     "raw `new`; use std::make_unique or value semantics"))
            if DELETE_RE.search(line) and not DELETED_FN_RE.search(line):
                violations.append(
                    ("raw-new-delete", relpath, lineno,
                     "raw `delete`; ownership belongs in a smart pointer"))


# --- rule: include-cc ------------------------------------------------------

INCLUDE_CC_RE = re.compile(r"#\s*include\s*[\"<][^\">]+\.cc[\">]")
INCLUDE_DIRECTIVE_RE = re.compile(r"#\s*include\b")


def check_include_cc(violations):
    for relpath in iter_source_files({".cc", ".h"}):
        raw_lines = read_lines(relpath)
        for lineno, (raw, line) in enumerate(
                zip(raw_lines, stripped_lines(raw_lines)), 1):
            if waived(raw, "include-cc"):
                continue
            # The stripped line gates out commented directives; the path
            # itself is a string literal, so match it on the raw line.
            if INCLUDE_DIRECTIVE_RE.search(line) and INCLUDE_CC_RE.search(raw):
                violations.append(
                    ("include-cc", relpath, lineno,
                     "#include of a .cc file; include the header instead"))


# --- rule: header-guard ----------------------------------------------------


def expected_guard(relpath):
    # src/medrelax/io/dag_io.h -> MEDRELAX_IO_DAG_IO_H_
    # bench/bench_common.h     -> MEDRELAX_BENCH_BENCH_COMMON_H_
    if relpath.startswith("src/medrelax/"):
        stem = relpath[len("src/medrelax/"):]
    else:
        stem = relpath
    return "MEDRELAX_" + re.sub(r"[/\.]", "_", stem).upper() + "_"


def check_header_guards(violations):
    for relpath in iter_source_files({".h"}):
        lines = read_lines(relpath)
        text = "\n".join(lines)
        if "#pragma once" in text:
            violations.append(
                ("header-guard", relpath, 1,
                 "#pragma once is banned; use an include guard"))
            continue
        guard = expected_guard(relpath)
        ifndef_re = re.compile(r"^#ifndef\s+(\S+)\s*$", re.MULTILINE)
        m = ifndef_re.search(text)
        if m is None:
            violations.append(
                ("header-guard", relpath, 1, "missing include guard"))
            continue
        actual = m.group(1)
        if actual != guard:
            violations.append(
                ("header-guard", relpath, 1,
                 f"guard is {actual}, expected {guard}"))
            continue
        if f"#define {guard}" not in text:
            violations.append(
                ("header-guard", relpath, 1,
                 f"#ifndef {guard} has no matching #define"))


# --- rule: raw-mutex -------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|std::shared_(?:timed_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b")


def check_raw_mutex(violations):
    for relpath in iter_source_files({".cc", ".h"}):
        if relpath.startswith(COMMON_DIR_PREFIX):
            continue
        raw_lines = read_lines(relpath)
        for lineno, (raw, line) in enumerate(
                zip(raw_lines, stripped_lines(raw_lines)), 1):
            if not RAW_MUTEX_RE.search(line):
                continue
            if waived(raw, "raw-mutex"):
                continue
            violations.append(
                ("raw-mutex", relpath, lineno,
                 "raw standard-library lock primitive; use medrelax::Mutex/"
                 "SharedMutex/CondVar from common/mutex.h so -Wthread-safety"
                 " and the deadlock detector see the acquisition"))


# --- rule: guarded-by ------------------------------------------------------

# A member declaring an (annotatable) project lock; 'MutexLock lock(...)'
# never matches because the type name needs a word boundary before the
# following space.
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:mutable\s+)?(?:medrelax::)?(?:Mutex|SharedMutex)\s+\w+")
# A member is accounted for when a capability guards it — or when it is
# confined to the event-loop thread (MEDRELAX_LOOP_THREAD_ONLY), in which
# case the semantic affinity pass (scripts/lint/semantic/), not a lock,
# is what machine-checks the serialization.
GUARDED_OK_RE = re.compile(
    r"MEDRELAX_(?:PT_)?GUARDED_BY\s*\(|MEDRELAX_LOOP_THREAD_ONLY\b")
# The lock members themselves (and condition variables) carry no guard.
LOCK_TYPE_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:medrelax::)?(?:Mutex|SharedMutex|CondVar)\b")
MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:friend|using|typedef|static|template|enum|class|struct|#)\b")
CONST_MEMBER_RE = re.compile(r"^\s*(?:mutable\s+)?const\b")
ATOMIC_RE = re.compile(r"std::atomic\b")
CLASS_HEAD_RE = re.compile(r"\b(?:class|struct)\s")
ENUM_HEAD_RE = re.compile(r"\benum\b")
NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\b")
ACCESS_LABELS = {"public", "private", "protected"}


def parse_class_members(raw_lines, lines):
    """Collects top-level member statements of every class/struct body.

    A small brace-tracking scanner over comment/string-stripped lines:
    statements ending in `;` at a class body's top level are members;
    nested function bodies and brace-initializers are tracked (the latter
    folded into their statement) but their contents never leak into the
    class's member list. Returns [(class_name, [(start, end, text)])].
    """
    results = []
    scopes = []  # (kind, name, members)
    stmt = []  # accumulated statement text of the innermost scope
    stmt_start = None
    swallow = 0  # brace depth of an in-statement brace-initializer

    def stmt_text():
        return "".join(stmt).strip()

    def reset_stmt():
        del stmt[:]
        nonlocal stmt_start
        stmt_start = None

    for lineno, line in enumerate(lines, 1):
        for c in line:
            if swallow:
                stmt.append(c)
                if c == "{":
                    swallow += 1
                elif c == "}":
                    swallow -= 1
                continue
            if c == "{":
                header = stmt_text()
                if (CLASS_HEAD_RE.search(header)
                        and not ENUM_HEAD_RE.search(header)):
                    clean = re.sub(r"MEDRELAX_\w+\s*\([^)]*\)", "", header)
                    names = re.findall(r"\b(?:class|struct)\s+([\w:]+)", clean)
                    scopes.append(("class", names[-1] if names else "?", []))
                    reset_stmt()
                elif ("(" in header or NAMESPACE_HEAD_RE.search(header)
                      or ENUM_HEAD_RE.search(header) or not header):
                    # Function body, namespace, enum, or control-flow block.
                    scopes.append(("other", "", []))
                    reset_stmt()
                else:
                    # Brace-initializer of a member: part of the statement.
                    stmt.append(c)
                    swallow = 1
            elif c == "}":
                reset_stmt()
                if scopes:
                    kind, name, members = scopes.pop()
                    if kind == "class":
                        results.append((name, members))
            elif c == ";":
                if scopes and scopes[-1][0] == "class" and stmt_text():
                    scopes[-1][2].append((stmt_start, lineno, stmt_text()))
                reset_stmt()
            elif c == ":" and stmt_text() in ACCESS_LABELS:
                reset_stmt()
            else:
                if stmt_start is None and not c.isspace():
                    stmt_start = lineno
                stmt.append(c)
        if stmt:
            stmt.append(" ")  # line break inside a statement
    return results


def check_guarded_by(violations):
    for relpath in iter_source_files({".cc", ".h"}):
        if relpath.startswith(COMMON_DIR_PREFIX):
            continue
        raw_lines = read_lines(relpath)
        lines = stripped_lines(raw_lines)
        for class_name, members in parse_class_members(raw_lines, lines):
            if not any(MUTEX_MEMBER_RE.search(text) for _, _, text in members):
                continue
            for start, end, text in members:
                if any(waived(raw_lines[i - 1], "guarded-by")
                       for i in range(start, end + 1)):
                    continue
                if GUARDED_OK_RE.search(text):
                    continue
                if LOCK_TYPE_RE.match(text):
                    continue
                if MEMBER_SKIP_RE.match(text):
                    continue
                if CONST_MEMBER_RE.match(text):
                    continue
                if "(" in text:  # method / constructor / operator
                    continue
                if ATOMIC_RE.search(text):
                    continue
                violations.append(
                    ("guarded-by", relpath, start,
                     f"member of lock-owning class {class_name} lacks "
                     "MEDRELAX_GUARDED_BY(...); annotate it, make it "
                     "const/atomic, or waive with a reason"))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scan", action="append", default=[], metavar="DIR",
        help="restrict the scan to DIR (repo-relative); used by the lint "
             "self-test to point the rules at fixture trees")
    args = parser.parse_args()
    SCAN_DIRS.extend(args.scan)

    violations = []
    check_raw_new_delete(violations)
    check_include_cc(violations)
    check_header_guards(violations)
    check_raw_mutex(violations)
    check_guarded_by(violations)

    if violations:
        violations.sort(key=lambda v: (v[1], v[2], v[0]))
        for rule, path, lineno, msg in violations:
            print(f"{path}:{lineno}: [{rule}] {msg}")
        kinds = sorted({v[0] for v in violations})
        print(
            f"\n{len(violations)} violation(s) across rule(s): {', '.join(kinds)}",
            file=sys.stderr)
        print("Waive a single line with: // lint:allow(<rule>) <reason>",
              file=sys.stderr)
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
