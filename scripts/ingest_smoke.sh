#!/usr/bin/env bash
# Negative-path smoke test of tools/medrelax_ingest: every operator
# mistake (missing world dir, unwritable output path, info over a
# corrupt image) must exit nonzero with a typed message on the right
# stream — never a crash, never a zero exit with garbage output. The
# corrupt-image probes reuse the committed fuzz regression corpus
# (fuzz/corpus/fuzz_image/), so the same bytes that pin the parser
# hardening also pin the tool's error surface.
#
# Usage: scripts/ingest_smoke.sh   (MEDRELAX_BUILD_DIR overrides ./build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR=${MEDRELAX_BUILD_DIR:-build}
TOOL="${BUILD_DIR}/examples/medrelax_tool"
INGEST="${BUILD_DIR}/tools/medrelax_ingest"
for bin in "${TOOL}" "${INGEST}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "ingest_smoke: missing ${bin} (build medrelax_tool and" \
         "medrelax_ingest first)" >&2
    exit 1
  fi
done

WORK=""
cleanup() { [[ -n "${WORK}" ]] && rm -rf "${WORK}"; }
trap cleanup EXIT
WORK=$(mktemp -d)

failures=0
fail() { printf 'FAIL: %s\n' "$*" >&2; failures=$((failures + 1)); }

# Expects the command to exit nonzero AND print a line matching the
# pattern (stdout+stderr combined — the tool routes summaries to stdout
# and diagnostics to stderr, and both are part of the contract).
expect_err() {
  local what=$1 pattern=$2
  shift 2
  local out rc=0
  out=$("$@" 2>&1) || rc=$?
  if [[ ${rc} -eq 0 ]]; then
    fail "${what}: expected nonzero exit, got 0 (output: ${out})"
  elif ! grep -q "${pattern}" <<<"${out}"; then
    fail "${what}: output missing '${pattern}' (got: ${out})"
  fi
}

# 1. World directory that does not exist: the eks load fails typed.
expect_err "ingest from a missing dir" "NotFound" \
  "${INGEST}" "${WORK}/no_such_world" "${WORK}/out.img"

# 2. World directory missing kb.tsv: partial worlds are rejected too.
mkdir -p "${WORK}/half_world"
printf '# medrelax-dag v1\nC\tdisorder of kidney\n' \
  > "${WORK}/half_world/eks.tsv"
expect_err "ingest without kb.tsv" "kb load failed" \
  "${INGEST}" "${WORK}/half_world" "${WORK}/out.img"

# 3. Unwritable output path: the offline phase runs, the write fails
# typed ("cannot open ... for writing"), exit is nonzero.
mkdir -p "${WORK}/world"
"${TOOL}" generate "${WORK}/world" --concepts 60 --findings 6 --seed 7 \
  >/dev/null
expect_err "ingest to an unwritable path" "image write failed" \
  "${INGEST}" "${WORK}/world" "${WORK}/no_such_dir/out.img"

# 4. info over each committed corrupt image: typed err, nonzero exit.
for img in fuzz/corpus/fuzz_image/*.img; do
  [[ "${img}" == */valid_tiny.img ]] && continue
  expect_err "info over ${img}" "^err " "${INGEST}" info "${img}"
done

# 5. Positive control: the same tool succeeds on a real world, so the
# failures above are the tool rejecting bad input, not a broken tool.
if ! "${INGEST}" "${WORK}/world" "${WORK}/ok.img" --exact \
    | grep -q '^ok ingest '; then
  fail "positive-control ingest did not report ok"
fi
if ! "${INGEST}" info "${WORK}/ok.img" | grep -q '^ok image '; then
  fail "positive-control info did not report ok"
fi

if [[ ${failures} -gt 0 ]]; then
  printf 'ingest_smoke: %d case(s) failed\n' "${failures}" >&2
  exit 1
fi
echo "ingest_smoke: PASS"
