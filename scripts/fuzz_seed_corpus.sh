#!/usr/bin/env bash
# Builds a seed corpus for the libFuzzer harnesses (fuzz/) into a
# working directory, one subdirectory per harness. Seeds come from the
# real producers — medrelax_tool generate + medrelax_ingest for a valid
# image, the golden scripted session for protocol lines, a generated
# world's eks.tsv/kb.tsv for the text loaders — plus everything already
# committed in fuzz/corpus/ (the regression entries double as seeds).
#
# Usage: scripts/fuzz_seed_corpus.sh <out-dir>
#        (MEDRELAX_BUILD_DIR overrides ./build for the tool binaries)
#
# Then fuzz with, e.g.:
#   ./build-fuzz/fuzz/fuzz_image -max_total_time=60 <out-dir>/fuzz_image
set -euo pipefail
cd "$(dirname "$0")/.."
if [[ $# -ne 1 ]]; then
  echo "usage: scripts/fuzz_seed_corpus.sh <out-dir>" >&2
  exit 2
fi
OUT=$1
BUILD_DIR=${MEDRELAX_BUILD_DIR:-build}
TOOL="${BUILD_DIR}/examples/medrelax_tool"
INGEST="${BUILD_DIR}/tools/medrelax_ingest"
for bin in "${TOOL}" "${INGEST}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "fuzz_seed_corpus: missing ${bin} (build medrelax_tool and" \
         "medrelax_ingest first)" >&2
    exit 1
  fi
done

mkdir -p "${OUT}/fuzz_image" "${OUT}/fuzz_protocol" "${OUT}/fuzz_textio"

# Committed regression corpus: every pinned input is also a seed.
for harness in fuzz_image fuzz_protocol fuzz_textio; do
  cp fuzz/corpus/${harness}/* "${OUT}/${harness}/" 2>/dev/null || true
done

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

# A fresh small world: image seed for fuzz_image, text seeds for
# fuzz_textio (different seed than the committed one for diversity).
mkdir -p "${WORK}/world"
"${TOOL}" generate "${WORK}/world" --concepts 80 --findings 8 --seed 11 \
  >/dev/null
"${INGEST}" "${WORK}/world" "${OUT}/fuzz_image/seed_world11.img" --exact \
  >/dev/null
cp "${WORK}/world/eks.tsv" "${OUT}/fuzz_textio/seed_eks11.tsv"
cp "${WORK}/world/kb.tsv" "${OUT}/fuzz_textio/seed_kb11.tsv"

# The golden scripted session is a ready-made protocol seed: every verb,
# every option form, every error path the server documents.
grep -v '^#' tests/golden/server_session.txt | grep -v '^$' \
  > "${OUT}/fuzz_protocol/seed_golden_session.txt"

echo "fuzz_seed_corpus: seeded $(find "${OUT}" -type f | wc -l) inputs" \
     "under ${OUT}"
