#!/usr/bin/env python3
"""Diff two google-benchmark JSON files against committed baselines.

Usage: bench_diff.py BASELINE.json CURRENT.json [--max-ratio N]
                     [--floor NAME_REGEX:COUNTER:MIN]...

The committed baselines (BENCH_scaling.json / BENCH_serving.json at the
repo root) pin the *shape* of the bench suite and catch order-of-magnitude
regressions, not small ones: CI runners and the baseline machine differ
wildly, so the default tolerance is a generous factor either way. The
check fails when:

  * a benchmark named in the baseline is missing from the current run
    (a renamed or silently dropped bench is a coverage regression), or
  * real_time or a user counter moved by more than --max-ratio in either
    direction.

New benchmarks in the current run are reported but never fail the diff;
refresh the baseline by re-running the bench with the CI filter set and
committing the JSON.

--floor adds machine-independent gates on *quality* counters (hit rates,
coalescing ratios): every current benchmark matching NAME_REGEX must
report COUNTER >= MIN, and a spec matching no benchmark fails (so a
renamed bench can't silently drop its gate). Ratios measure noise-prone
timings generously; floors pin semantics exactly.
"""

import argparse
import json
import re
import sys

# Structural fields in each benchmark entry; everything else numeric is a
# timing or a user counter and gets ratio-checked.
NON_METRIC_FIELDS = {
    "iterations", "repetitions", "threads", "repetition_index",
    "family_index", "per_family_index",
}
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def metrics(bench):
    unit_ns = TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
    out = {}
    for key, value in bench.items():
        if key in NON_METRIC_FIELDS or not isinstance(value, (int, float)):
            continue
        if isinstance(value, bool):
            continue
        if key in ("real_time", "cpu_time"):
            value *= unit_ns
        out[key] = float(value)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-ratio", type=float, default=16.0,
        help="allowed factor between baseline and current per metric "
             "(default %(default)s: machines differ, only order-of-magnitude "
             "moves fail)")
    parser.add_argument(
        "--floor", action="append", default=[],
        metavar="NAME_REGEX:COUNTER:MIN",
        help="require COUNTER >= MIN on every current-run benchmark whose "
             "name matches NAME_REGEX (repeatable; fails when no benchmark "
             "matches)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    if not baseline:
        print(f"bench_diff: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 1

    failures = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"missing benchmark: {name}")
            continue
        cur = metrics(current[name])
        for key, base_value in sorted(metrics(base).items()):
            if key not in cur:
                failures.append(f"{name}: metric {key} disappeared")
                continue
            cur_value = cur[key]
            if base_value <= 0.0 or cur_value <= 0.0:
                # Zero-valued counters (e.g. a miss count of 0) carry no
                # ratio information; only flag appearing-from-zero jumps.
                continue
            ratio = cur_value / base_value
            if ratio > args.max_ratio or ratio < 1.0 / args.max_ratio:
                failures.append(
                    f"{name}: {key} moved {ratio:.2f}x "
                    f"(baseline {base_value:.4g}, current {cur_value:.4g}, "
                    f"allowed factor {args.max_ratio:g})")

    for spec in args.floor:
        try:
            pattern, counter, minimum_text = spec.rsplit(":", 2)
            minimum = float(minimum_text)
            regex = re.compile(pattern)
        except (ValueError, re.error) as exc:
            print(f"bench_diff: bad --floor spec '{spec}': {exc}",
                  file=sys.stderr)
            return 2
        matched = False
        for name, bench in sorted(current.items()):
            if not regex.search(name):
                continue
            matched = True
            value = metrics(bench).get(counter)
            if value is None:
                failures.append(
                    f"{name}: floored counter {counter} is missing")
            elif value < minimum:
                failures.append(
                    f"{name}: {counter}={value:.4g} below floor {minimum:g}")
        if not matched:
            failures.append(
                f"--floor '{spec}' matched no benchmark in the current run")

    for name in sorted(set(current) - set(baseline)):
        print(f"bench_diff: note: new benchmark not in baseline: {name}")

    if failures:
        print(f"bench_diff: FAIL ({args.baseline} vs {args.current})")
        for f in failures:
            print("  " + f)
        return 1
    print(f"bench_diff: OK — {len(baseline)} benchmark(s) within "
          f"{args.max_ratio:g}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
