#!/usr/bin/env bash
# End-to-end smoke test of the serving stack: generate the seeded smoke
# world, pipe the scripted session (tests/golden/server_session.txt)
# through `medrelax_server serve`, and diff stdout against the golden
# transcript. Then run a short `load` burst to exercise the concurrent
# path (only the deterministic first line is checked — throughput is
# machine-dependent and goes to stderr anyway).
#
# Usage: scripts/server_smoke.sh   (MEDRELAX_BUILD_DIR overrides ./build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR=${MEDRELAX_BUILD_DIR:-build}
TOOL="${BUILD_DIR}/examples/medrelax_tool"
SERVER="${BUILD_DIR}/tools/medrelax_server"
for bin in "${TOOL}" "${SERVER}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "server_smoke: missing ${bin} (build the medrelax_tool and" \
         "medrelax_server targets first)" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

# The world every transcript line depends on: keep these parameters in
# lockstep with tests/golden/server_session.golden.
"${TOOL}" generate "${WORK}" --concepts 800 --findings 60 --seed 7 \
  >/dev/null

# --exact: deterministic term resolution (no fuzzy rescue of the
# deliberate NotFound probe in the session script).
"${SERVER}" serve "${WORK}" --exact --workers 1 \
  < tests/golden/server_session.txt > "${WORK}/session.out"
if ! diff -u tests/golden/server_session.golden "${WORK}/session.out"; then
  echo "server_smoke: session transcript drifted from the golden file" >&2
  echo "(regenerate with: ${SERVER} serve <world> --exact --workers 1" \
       "< tests/golden/server_session.txt)" >&2
  exit 1
fi

"${SERVER}" load "${WORK}" --requests 500 --workers 2 --queue 32 \
  --distinct 8 > "${WORK}/load.out" 2>/dev/null
grep -q '^ok load requests=500 ' "${WORK}/load.out"

echo "server_smoke: PASS"
