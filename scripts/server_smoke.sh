#!/usr/bin/env bash
# End-to-end smoke test of the serving stack, one transcript over two
# transports: generate the seeded smoke world, replay the scripted
# session (tests/golden/server_session.txt) through `medrelax_server
# serve` on stdin AND through `medrelax_client session` against a
# `--listen` server on loopback, and diff both against the same golden
# transcript — the TCP frontend must be byte-identical to the stdin
# path. Then run short closed-loop load bursts on both transports (only
# the deterministic first line is checked — throughput is
# machine-dependent and goes to stderr anyway).
#
# Usage: scripts/server_smoke.sh   (MEDRELAX_BUILD_DIR overrides ./build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR=${MEDRELAX_BUILD_DIR:-build}
TOOL="${BUILD_DIR}/examples/medrelax_tool"
SERVER="${BUILD_DIR}/tools/medrelax_server"
CLIENT="${BUILD_DIR}/tools/medrelax_client"
for bin in "${TOOL}" "${SERVER}" "${CLIENT}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "server_smoke: missing ${bin} (build the medrelax_tool," \
         "medrelax_server and medrelax_client targets first)" >&2
    exit 1
  fi
done

# Install the cleanup trap BEFORE mktemp: a failure between the two
# would otherwise leak the workdir (and, later, the background server).
WORK=""
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]]; then
    kill "${SERVER_PID}" 2>/dev/null || true
  fi
  if [[ -n "${WORK}" ]]; then
    rm -rf "${WORK}"
  fi
}
trap cleanup EXIT

WORK=$(mktemp -d)
# The world gets its own subdirectory so scratch output (transcripts,
# server logs) can never collide with the files RELOAD re-reads.
WORLD="${WORK}/world"
mkdir -p "${WORLD}"

# The world every transcript line depends on: keep these parameters in
# lockstep with tests/golden/server_session.golden.
"${TOOL}" generate "${WORLD}" --concepts 800 --findings 60 --seed 7 \
  >/dev/null

# --- Transport 1: stdin/stdout ---------------------------------------
# --exact: deterministic term resolution (no fuzzy rescue of the
# deliberate NotFound probe in the session script).
"${SERVER}" serve "${WORLD}" --exact --workers 1 \
  < tests/golden/server_session.txt > "${WORK}/session.out"
if ! diff -u tests/golden/server_session.golden "${WORK}/session.out"; then
  echo "server_smoke: stdin transcript drifted from the golden file" >&2
  echo "(regenerate with: ${SERVER} serve <world> --exact --workers 1" \
       "< tests/golden/server_session.txt)" >&2
  exit 1
fi

# --- Transport 2: TCP on loopback ------------------------------------
# Same session file, same golden: the epoll frontend must not be
# distinguishable from the stdin loop in what it says back.
"${SERVER}" serve "${WORLD}" --exact --workers 1 --listen 0 \
  > "${WORK}/server.stdout" 2> "${WORK}/server.stderr" &
SERVER_PID=$!

# Ephemeral port: poll the server's stdout for the announcement.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^ok listening port=\([0-9][0-9]*\)$/\1/p' \
         "${WORK}/server.stdout")
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server_smoke: TCP server exited before listening" >&2
    cat "${WORK}/server.stderr" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "server_smoke: TCP server never announced its port" >&2
  exit 1
fi

"${CLIENT}" session "${PORT}" < tests/golden/server_session.txt \
  > "${WORK}/tcp_session.out"
if ! diff -u tests/golden/server_session.golden "${WORK}/tcp_session.out"; then
  echo "server_smoke: TCP transcript drifted from the golden file" \
       "(stdin transport matched — the frontend broke parity)" >&2
  exit 1
fi

# Concurrent closed-loop load over the same live server.
"${CLIENT}" load "${PORT}" --requests 200 --connections 4 \
  > "${WORK}/tcp_load.out" 2>/dev/null
grep -q '^ok load requests=200 answered=200 errors=0$' "${WORK}/tcp_load.out"

kill "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# --- In-process load burst (no sockets) -------------------------------
"${SERVER}" load "${WORLD}" --requests 500 --workers 2 --queue 32 \
  --distinct 8 > "${WORK}/load.out" 2>/dev/null
grep -q '^ok load requests=500 ' "${WORK}/load.out"

echo "server_smoke: PASS"
