#!/usr/bin/env bash
# End-to-end smoke test of the serving stack, one transcript over two
# transports: generate the seeded smoke world, replay the scripted
# session (tests/golden/server_session.txt) through `medrelax_server
# serve` on stdin AND through `medrelax_client session` against a
# `--listen` server on loopback, and diff both against the same golden
# transcript — the TCP frontend must be byte-identical to the stdin
# path. Then run short closed-loop load bursts on both transports (only
# the deterministic first line is checked — throughput is
# machine-dependent and goes to stderr anyway), prove RELOAD's
# re-ingest runs off the epoll thread: with the rebuild padded to 2s a
# concurrent session must keep answering in well under 1s, and finally
# fire a duplicate-heavy --replay burst at a compute-padded server to
# assert the single-flight table coalesces identical in-flight misses
# (STATS must report coalesced_hits > 0). The cache-stress stage then
# points a scan-pollution burst at a small result cache and asserts the
# decayed-activity policy holds the line: the second-hit doorkeeper
# rejects one-time keys (admission_rejects > 0) and a Zipf re-burst
# over the hot set still hits at >= 90%. The flat-image stages then
# close the loop on the offline pipeline: medrelax_ingest freezes the
# same world into a snapshot image, a server booted with --image must
# replay the scripted session byte-identically (modulo the one-word
# snapshot_source provenance line), and a live server must hot-swap
# onto the image via `RELOAD <path>` in well under 1s with a concurrent
# load burst running — no delay hook, the swap really skips the offline
# phase.
#
# Usage: scripts/server_smoke.sh   (MEDRELAX_BUILD_DIR overrides ./build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR=${MEDRELAX_BUILD_DIR:-build}
TOOL="${BUILD_DIR}/examples/medrelax_tool"
SERVER="${BUILD_DIR}/tools/medrelax_server"
CLIENT="${BUILD_DIR}/tools/medrelax_client"
INGEST="${BUILD_DIR}/tools/medrelax_ingest"
for bin in "${TOOL}" "${SERVER}" "${CLIENT}" "${INGEST}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "server_smoke: missing ${bin} (build the medrelax_tool," \
         "medrelax_server, medrelax_client and medrelax_ingest targets" \
         "first)" >&2
    exit 1
  fi
done

# Install the cleanup trap BEFORE mktemp: a failure between the two
# would otherwise leak the workdir (and, later, the background server).
WORK=""
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]]; then
    kill "${SERVER_PID}" 2>/dev/null || true
  fi
  if [[ -n "${WORK}" ]]; then
    rm -rf "${WORK}"
  fi
}
trap cleanup EXIT

WORK=$(mktemp -d)
# The world gets its own subdirectory so scratch output (transcripts,
# server logs) can never collide with the files RELOAD re-reads.
WORLD="${WORK}/world"
mkdir -p "${WORLD}"

# The world every transcript line depends on: keep these parameters in
# lockstep with tests/golden/server_session.golden.
"${TOOL}" generate "${WORLD}" --concepts 800 --findings 60 --seed 7 \
  >/dev/null

# --- Transport 1: stdin/stdout ---------------------------------------
# --exact: deterministic term resolution (no fuzzy rescue of the
# deliberate NotFound probe in the session script).
"${SERVER}" serve "${WORLD}" --exact --workers 1 \
  < tests/golden/server_session.txt > "${WORK}/session.out"
if ! diff -u tests/golden/server_session.golden "${WORK}/session.out"; then
  echo "server_smoke: stdin transcript drifted from the golden file" >&2
  echo "(regenerate with: ${SERVER} serve <world> --exact --workers 1" \
       "< tests/golden/server_session.txt)" >&2
  exit 1
fi

# --- Flat image: ingest, then byte-identical mapped replay ------------
# medrelax_ingest runs the same offline phase and freezes it into a
# snapshot image; a server booted with --image must say exactly what the
# built-path server said. The only permitted difference is provenance
# (STATS reports snapshot_source=mapped instead of built), which the sed
# folds away so one golden file covers both boot paths.
IMG="${WORK}/world.img"
"${INGEST}" "${WORLD}" "${IMG}" --exact > "${WORK}/ingest.out" 2>/dev/null
grep -q '^ok ingest ' "${WORK}/ingest.out"

"${SERVER}" serve --image "${IMG}" --workers 1 \
  < tests/golden/server_session.txt \
  | sed 's/^snapshot_source=mapped$/snapshot_source=built/' \
  > "${WORK}/image_session.out"
if ! diff -u tests/golden/server_session.golden "${WORK}/image_session.out"; then
  echo "server_smoke: --image transcript drifted from the golden file" \
       "(the built-path transcript matched, so the mapped snapshot" \
       "answers differently from the built one)" >&2
  exit 1
fi

# --- Transport 2: TCP on loopback ------------------------------------
# Same session file, same golden: the epoll frontend must not be
# distinguishable from the stdin loop in what it says back.
"${SERVER}" serve "${WORLD}" --exact --workers 1 --listen 0 \
  > "${WORK}/server.stdout" 2> "${WORK}/server.stderr" &
SERVER_PID=$!

# Ephemeral port: poll the server's stdout for the announcement.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^ok listening port=\([0-9][0-9]*\)$/\1/p' \
         "${WORK}/server.stdout")
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server_smoke: TCP server exited before listening" >&2
    cat "${WORK}/server.stderr" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "server_smoke: TCP server never announced its port" >&2
  exit 1
fi

"${CLIENT}" session "${PORT}" < tests/golden/server_session.txt \
  > "${WORK}/tcp_session.out"
if ! diff -u tests/golden/server_session.golden "${WORK}/tcp_session.out"; then
  echo "server_smoke: TCP transcript drifted from the golden file" \
       "(stdin transport matched — the frontend broke parity)" >&2
  exit 1
fi

# Concurrent closed-loop load over the same live server.
"${CLIENT}" load "${PORT}" --requests 200 --connections 4 \
  > "${WORK}/tcp_load.out" 2>/dev/null
grep -q '^ok load requests=200 answered=200 errors=0$' "${WORK}/tcp_load.out"

kill "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# --- RELOAD runs off the epoll thread ---------------------------------
# Fresh server with the test-only rebuild delay armed: the reload
# executor pads its re-ingest by 2s. One session issues RELOAD; while
# that rebuild is in flight a second session must still get answers
# within 1s — if re-ingest ever moves back onto the loop thread, the
# timed probe stalls behind the full 2s pad and the bound fails. The
# probe also asserts gen=1 (the pre-reload snapshot), proving it really
# ran *during* the swap, and the paused RELOAD session still gets its
# `ok reload gen=2` afterwards (per-connection ordering survives).
MEDRELAX_RELOAD_TEST_DELAY_MS=2000 \
  "${SERVER}" serve "${WORLD}" --exact --workers 1 --listen 0 \
  > "${WORK}/server2.stdout" 2> "${WORK}/server2.stderr" &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^ok listening port=\([0-9][0-9]*\)$/\1/p' \
         "${WORK}/server2.stdout")
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server_smoke: delayed-reload server exited before listening" >&2
    cat "${WORK}/server2.stderr" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "server_smoke: delayed-reload server never announced its port" >&2
  exit 1
fi

printf 'RELOAD\n' | "${CLIENT}" session "${PORT}" \
  > "${WORK}/reload.out" &
RELOAD_CLIENT_PID=$!
sleep 0.3  # let the RELOAD land and enter its padded rebuild

START_NS=$(date +%s%N)
printf 'GEN\nRELAX disorder of kidney\n' | "${CLIENT}" session "${PORT}" \
  > "${WORK}/during_reload.out"
END_NS=$(date +%s%N)
ELAPSED_MS=$(( (END_NS - START_NS) / 1000000 ))

wait "${RELOAD_CLIENT_PID}"
if ! grep -q '^ok gen=1$' "${WORK}/during_reload.out"; then
  echo "server_smoke: concurrent probe did not answer from the" \
       "pre-reload snapshot (expected 'ok gen=1'):" >&2
  cat "${WORK}/during_reload.out" >&2
  exit 1
fi
if ! grep -q '^ok reload gen=2$' "${WORK}/reload.out"; then
  echo "server_smoke: paused RELOAD session never got its reply:" >&2
  cat "${WORK}/reload.out" >&2
  exit 1
fi
if (( ELAPSED_MS >= 1000 )); then
  echo "server_smoke: probe during RELOAD took ${ELAPSED_MS}ms —" \
       "the 2s rebuild pad leaked onto the serving path" >&2
  exit 1
fi

kill "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# --- Duplicate burst exercises single-flight coalescing ---------------
# Fresh server with the test-only compute delay armed: every group
# leader's relaxation is padded by 250ms, so the 8 replay sessions all
# firing the same keys are guaranteed to overlap on identical in-flight
# misses. The STATS probe afterwards must show coalesced_hits > 0 — if
# the single-flight table stops deduplicating, every duplicate recomputes
# and the counter stays 0.
MEDRELAX_COMPUTE_TEST_DELAY_MS=250 \
  "${SERVER}" serve "${WORLD}" --exact --workers 2 --listen 0 \
  > "${WORK}/server3.stdout" 2> "${WORK}/server3.stderr" &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^ok listening port=\([0-9][0-9]*\)$/\1/p' \
         "${WORK}/server3.stdout")
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server_smoke: duplicate-burst server exited before listening" >&2
    cat "${WORK}/server3.stderr" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "server_smoke: duplicate-burst server never announced its port" >&2
  exit 1
fi

# Session replay dominated by repeated keys: the whole point of --replay.
cat > "${WORK}/replay.txt" <<'EOF'
# duplicate-heavy mix for the coalescing smoke stage
RELAX disorder of kidney
RELAX disorder of kidney
RELAX k=3 disorder of kidney
EOF
"${CLIENT}" load "${PORT}" --requests 64 --connections 8 \
  --replay "${WORK}/replay.txt" > "${WORK}/dup_load.out" 2>/dev/null
grep -q '^ok load requests=64 answered=64 errors=0$' "${WORK}/dup_load.out"

printf 'STATS\nQUIT\n' | "${CLIENT}" session "${PORT}" \
  > "${WORK}/dup_stats.out"
if ! grep -q '^coalesced_hits=[1-9]' "${WORK}/dup_stats.out"; then
  echo "server_smoke: duplicate burst produced no coalesced hits —" \
       "single-flight dedup is not engaging:" >&2
  cat "${WORK}/dup_stats.out" >&2
  exit 1
fi

kill "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# --- O(1) image RELOAD under a concurrent session ---------------------
# Fresh server booted from the directory, NO delay hooks: hot-swapping
# onto the pre-built image via `RELOAD <path>` skips the offline phase
# entirely, so the whole round trip — map, validate, publish, reply —
# must land well under 1s in absolute wall time, while a concurrent
# load burst keeps the serving path busy. Afterwards STATS must report
# the new provenance (snapshot_source=mapped) and the bumped reload
# counter.
"${SERVER}" serve "${WORLD}" --exact --workers 1 --listen 0 \
  > "${WORK}/server4.stdout" 2> "${WORK}/server4.stderr" &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^ok listening port=\([0-9][0-9]*\)$/\1/p' \
         "${WORK}/server4.stdout")
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server_smoke: image-reload server exited before listening" >&2
    cat "${WORK}/server4.stderr" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "server_smoke: image-reload server never announced its port" >&2
  exit 1
fi

"${CLIENT}" load "${PORT}" --requests 100 --connections 2 \
  > "${WORK}/img_load.out" 2>/dev/null &
IMG_LOAD_PID=$!

START_NS=$(date +%s%N)
printf 'RELOAD %s\nGEN\n' "${IMG}" | "${CLIENT}" session "${PORT}" \
  > "${WORK}/img_reload.out"
END_NS=$(date +%s%N)
ELAPSED_MS=$(( (END_NS - START_NS) / 1000000 ))

wait "${IMG_LOAD_PID}"
grep -q '^ok load requests=100 answered=100 errors=0$' "${WORK}/img_load.out"
if ! grep -q '^ok reload gen=2$' "${WORK}/img_reload.out"; then
  echo "server_smoke: RELOAD onto the image did not publish gen=2:" >&2
  cat "${WORK}/img_reload.out" >&2
  exit 1
fi
if ! grep -q '^ok gen=2$' "${WORK}/img_reload.out"; then
  echo "server_smoke: session after the image RELOAD is not on gen=2:" >&2
  cat "${WORK}/img_reload.out" >&2
  exit 1
fi
if (( ELAPSED_MS >= 1000 )); then
  echo "server_smoke: image RELOAD round trip took ${ELAPSED_MS}ms —" \
       "mapping a pre-built image must not cost offline-phase time" >&2
  exit 1
fi

printf 'STATS\nQUIT\n' | "${CLIENT}" session "${PORT}" \
  > "${WORK}/img_stats.out"
grep -q '^snapshot_source=mapped$' "${WORK}/img_stats.out"
grep -q '^reloads_completed=1$' "${WORK}/img_stats.out"

kill "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# --- Cache stress: the activity policy keeps the hot set resident -----
# A deliberately small result cache (--cache 32), a hot set of 8 keys,
# then a one-shot scan burst of 128 brand-new keys — four times the
# cache. Under strict LRU the scan would flush every hot entry; under
# the default decayed-activity policy the second-hit admission
# doorkeeper rejects the one-time keys at the full shard instead (STATS
# must show admission_rejects > 0), and a Zipf-skewed re-burst over the
# hot set afterwards must still hit nearly everywhere (hit-rate floor
# over exactly that window, via a before/after STATS diff).
"${SERVER}" serve "${WORLD}" --exact --workers 2 --cache 32 --listen 0 \
  > "${WORK}/server5.stdout" 2> "${WORK}/server5.stderr" &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^ok listening port=\([0-9][0-9]*\)$/\1/p' \
         "${WORK}/server5.stdout")
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "server_smoke: cache-stress server exited before listening" >&2
    cat "${WORK}/server5.stderr" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "server_smoke: cache-stress server never announced its port" >&2
  exit 1
fi

# The hot set, hottest first: --zipf ranks replay lines by file order.
# All eight terms are deterministic products of the seeded generator.
cat > "${WORK}/hot.txt" <<'EOF'
RELAX disorder of kidney
RELAX disorder of lung
RELAX disorder of liver
RELAX disorder of heart
RELAX disorder of skin
RELAX disorder of stomach
RELAX disorder of brain
RELAX disorder of blood
EOF

# Scan pollution: 32 k-variants x 4 terms = 128 distinct cache keys,
# each requested exactly once. k >= 17 keeps them disjoint from the hot
# keys (which resolve to the snapshot default, k=10).
: > "${WORK}/scan.txt"
for k in $(seq 17 48); do
  for t in 'disorder of bone' 'disorder of joint' \
           'disorder of kidney' 'disorder of lung'; do
    printf 'RELAX k=%s %s\n' "${k}" "${t}" >> "${WORK}/scan.txt"
  done
done

# Seed pass: cycle the hot set in order (8 rounds), so every hot key is
# cached and repeatedly touched before the pollution arrives.
"${CLIENT}" load "${PORT}" --requests 64 --connections 1 \
  --replay "${WORK}/hot.txt" > "${WORK}/hot_seed.out" 2>/dev/null
grep -q '^ok load requests=64 answered=64 errors=0$' "${WORK}/hot_seed.out"

# One connection so the 128-line file replays exactly once: every scan
# key stays a first sighting and the doorkeeper must turn it away.
"${CLIENT}" load "${PORT}" --requests 128 --connections 1 \
  --replay "${WORK}/scan.txt" > "${WORK}/scan_load.out" 2>/dev/null
grep -q '^ok load requests=128 answered=128 errors=0$' "${WORK}/scan_load.out"

printf 'STATS\nQUIT\n' | "${CLIENT}" session "${PORT}" \
  > "${WORK}/stress_stats1.out"
if ! grep -q '^admission_rejects=[1-9]' "${WORK}/stress_stats1.out"; then
  echo "server_smoke: the scan burst produced no admission rejects —" \
       "the second-hit doorkeeper is not engaging:" >&2
  cat "${WORK}/stress_stats1.out" >&2
  exit 1
fi

# Zipf(1.1) re-burst over the hot set (seeded, so the draw sequence is
# reproducible); the scan burst must not have displaced those entries.
"${CLIENT}" load "${PORT}" --requests 64 --connections 1 \
  --replay "${WORK}/hot.txt" --zipf 1.1 > "${WORK}/hot_again.out" 2>/dev/null
grep -q '^ok load requests=64 answered=64 errors=0$' "${WORK}/hot_again.out"

printf 'STATS\nQUIT\n' | "${CLIENT}" session "${PORT}" \
  > "${WORK}/stress_stats2.out"
HOT_RATE=$(awk -F= '
  FNR==NR { if ($1=="cache_hits") h1=$2; if ($1=="completed") c1=$2; next }
           { if ($1=="cache_hits") h2=$2; if ($1=="completed") c2=$2 }
  END { if (c2==c1) { print "0"; exit } printf "%.3f", (h2-h1)/(c2-c1) }' \
  "${WORK}/stress_stats1.out" "${WORK}/stress_stats2.out")
if ! awk -v r="${HOT_RATE}" 'BEGIN { exit !(r >= 0.90) }'; then
  echo "server_smoke: hot-set hit rate after the scan burst is" \
       "${HOT_RATE} (< 0.90) — scan pollution displaced the hot set" >&2
  cat "${WORK}/stress_stats2.out" >&2
  exit 1
fi

kill "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# --- In-process load burst (no sockets) -------------------------------
"${SERVER}" load "${WORLD}" --requests 500 --workers 2 --queue 32 \
  --distinct 8 > "${WORK}/load.out" 2>/dev/null
grep -q '^ok load requests=500 ' "${WORK}/load.out"

echo "server_smoke: PASS"
