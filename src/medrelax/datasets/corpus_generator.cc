#include "medrelax/datasets/corpus_generator.h"

#include <algorithm>

#include "medrelax/common/random.h"
#include "medrelax/graph/traversal.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

namespace {

constexpr const char* kClinicalFiller[] = {
    "patient",  "dose",      "daily",     "tablet",   "administration",
    "clinical", "study",     "treatment", "therapy",  "adults",
    "response", "observed",  "reported",  "common",   "rare",
    "severe",   "mild",      "onset",     "duration", "discontinue",
    "monitor",  "baseline",  "placebo",   "trial",    "incidence",
    "symptoms", "management", "evaluate", "history",  "renal",
    "hepatic",  "cardiac",   "oral",      "injection", "weekly",
};

constexpr const char* kGeneralFiller[] = {
    "health",    "wellness",  "lifestyle", "exercise",  "nutrition",
    "community", "awareness", "hospital",  "physician", "appointment",
    "insurance", "coverage",  "survey",    "population", "screening",
    "campaign",  "seasonal",  "vaccine",   "hygiene",   "guideline",
    "public",    "outreach",  "program",   "checkup",   "referral",
};

void AppendFiller(std::vector<std::string>* tokens, size_t count,
                  const char* const* pool, size_t pool_size, Rng* rng) {
  for (size_t i = 0; i < count; ++i) {
    tokens->push_back(pool[rng->UniformU64(pool_size)]);
  }
}

void AppendPhrase(std::vector<std::string>* tokens, const std::string& name) {
  for (std::string& tok : Tokenize(NormalizeTerm(name))) {
    tokens->push_back(std::move(tok));
  }
}

}  // namespace

Corpus GenerateMonographCorpus(const GeneratedWorld& world,
                               const CorpusGeneratorOptions& options) {
  Corpus corpus;
  Rng rng(options.seed);
  const ConceptDag& dag = world.eks.dag;

  auto mention_block = [&](ContextId ctx,
                           const std::vector<InstanceId>& findings) {
    DocumentSection section;
    section.context = ctx;
    AppendFiller(&section.tokens, options.filler_tokens / 3, kClinicalFiller,
                 std::size(kClinicalFiller), &rng);
    for (InstanceId f : findings) {
      auto it = world.true_link.find(f);
      if (it == world.true_link.end()) continue;
      ConceptId concept_id = it->second;
      double lambda =
          1.0 + options.mention_scale * world.eks.popularity[concept_id];
      uint64_t mentions = 1 + rng.Poisson(lambda);
      for (uint64_t m = 0; m < mentions; ++m) {
        AppendPhrase(&section.tokens, dag.name(concept_id));
        AppendFiller(&section.tokens, 2 + rng.UniformU64(4), kClinicalFiller,
                     std::size(kClinicalFiller), &rng);
      }
      // Mention generalizations so Equation 2's propagation has direct
      // corpus mass at inner concepts too.
      for (const DagEdge& e : dag.parents(concept_id)) {
        if (e.is_shortcut) continue;
        if (rng.Bernoulli(options.ancestor_mention_prob)) {
          AppendPhrase(&section.tokens, dag.name(e.target));
          AppendFiller(&section.tokens, 1 + rng.UniformU64(3),
                       kClinicalFiller, std::size(kClinicalFiller), &rng);
        }
      }
    }
    return section;
  };

  for (InstanceId drug : world.drug_instances) {
    Document doc;
    doc.name = world.kb.instances.instance(drug).name;

    auto treats_it = world.treats.find(drug);
    if (treats_it != world.treats.end()) {
      doc.sections.push_back(
          mention_block(world.ctx_indication, treats_it->second));
    }
    auto causes_it = world.causes.find(drug);
    if (causes_it != world.causes.end()) {
      doc.sections.push_back(mention_block(world.ctx_risk, causes_it->second));
    }

    // Untyped prose: drug name + filler + a couple of popular findings.
    DocumentSection prose;
    prose.context = kNoContext;
    AppendPhrase(&prose.tokens, doc.name);
    AppendFiller(&prose.tokens, options.filler_tokens, kClinicalFiller,
                 std::size(kClinicalFiller), &rng);
    for (int i = 0; i < 2 && !world.finding_instances.empty(); ++i) {
      InstanceId f = world.finding_instances[rng.UniformU64(
          world.finding_instances.size())];
      auto it = world.true_link.find(f);
      if (it != world.true_link.end()) {
        AppendPhrase(&prose.tokens, dag.name(it->second));
      }
    }
    doc.sections.push_back(std::move(prose));
    corpus.AddDocument(std::move(doc));
  }
  return corpus;
}

Corpus GenerateGeneralCorpus(const GeneratedEks& eks,
                             const GeneralCorpusOptions& options) {
  Corpus corpus;
  Rng rng(options.seed);

  // Only shallow (general) concept names enter the pre-training corpus.
  std::vector<ConceptId> shallow;
  for (ConceptId id = 0; id < eks.dag.num_concepts(); ++id) {
    if (eks.depth[id] <= options.max_concept_depth) shallow.push_back(id);
  }

  for (size_t d = 0; d < options.num_documents; ++d) {
    Document doc;
    doc.name = "general-" + std::to_string(d);
    DocumentSection section;
    section.context = kNoContext;
    while (section.tokens.size() < options.tokens_per_document) {
      AppendFiller(&section.tokens, 4 + rng.UniformU64(8), kGeneralFiller,
                   std::size(kGeneralFiller), &rng);
      if (!shallow.empty() && rng.Bernoulli(0.6)) {
        ConceptId id = shallow[rng.UniformU64(shallow.size())];
        AppendPhrase(&section.tokens, eks.dag.name(id));
      }
    }
    doc.sections.push_back(std::move(section));
    corpus.AddDocument(std::move(doc));
  }
  return corpus;
}

}  // namespace medrelax
