#ifndef MEDRELAX_DATASETS_PAPER_FIXTURES_H_
#define MEDRELAX_DATASETS_PAPER_FIXTURES_H_

#include <string>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/corpus/document.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/kb/kb_query.h"

namespace medrelax {

/// The curated fixtures reproduce, concept for concept and number for
/// number, every concrete fragment printed in the paper, so the worked
/// examples (Examples 1-4, Figures 1, 4, 5, 6) can be verified exactly.

/// Figure 1: the medical domain-ontology snippet — Drug treat Indication,
/// Drug cause Risk, Indication/Risk hasFinding Finding, with Risk's TBox
/// descendants Black Box Warning, Adverse Effect, Contra Indication, and
/// the surrounding concepts the examples mention.
[[nodiscard]] Result<DomainOntology> BuildFigure1Ontology();

/// Handle bundle for the Figure 4 fixture.
struct Figure4Fixture {
  ConceptDag dag;
  ConceptId root = kInvalidConcept;
  ConceptId pain_of_head_and_neck_region = kInvalidConcept;
  ConceptId craniofacial_pain = kInvalidConcept;
  ConceptId pain_in_throat = kInvalidConcept;
  ConceptId headache = kInvalidConcept;
  ConceptId frequent_headache = kInvalidConcept;
  /// Direct per-context mention counts (|A| of Equation 2) exactly as
  /// printed in Figure 4 for the Indication-hasFinding-Finding context:
  /// headache 18878, pain in throat 283, craniofacial pain 0 + headache,
  /// pain of head and neck region direct 3 -> propagated 19164.
  std::vector<std::pair<ConceptId, double>> indication_direct_counts;
  /// Risk-hasFinding-Finding direct counts summing to the printed 1656.
  std::vector<std::pair<ConceptId, double>> risk_direct_counts;
};

/// Figure 4: the SNOMED CT snippet around "pain of head and neck region"
/// with the paper's printed frequencies for two contexts.
[[nodiscard]] Result<Figure4Fixture> BuildFigure4Fixture();

/// Handle bundle for the Figure 5 fixture.
struct Figure5Fixture {
  ConceptDag dag;
  ConceptId root = kInvalidConcept;
  ConceptId kidney_disease = kInvalidConcept;
  ConceptId hypertensive_renal_disease = kInvalidConcept;
  ConceptId hypertensive_nephropathy = kInvalidConcept;
  ConceptId ckd_stage1_due_to_hypertension = kInvalidConcept;
};

/// Figure 5: the 3-hop chain from "chronic kidney disease stage 1 due to
/// hypertension" up to "kidney disease" used to demonstrate shortcut edges.
[[nodiscard]] Result<Figure5Fixture> BuildFigure5Fixture();

/// Handle bundle for the Figure 6 fixture.
struct Figure6Fixture {
  ConceptDag dag;
  ConceptId root = kInvalidConcept;
  ConceptId pneumonia = kInvalidConcept;
  ConceptId lower_respiratory_tract_infection = kInvalidConcept;
  /// The 4-hop path's intermediate concepts, pneumonia-side first.
  std::vector<ConceptId> intermediates;
};

/// Figure 6: the respiratory fragment where pneumonia and lower
/// respiratory tract infection are 4 hops apart with direction-dependent
/// penalties (Example 4).
[[nodiscard]] Result<Figure6Fixture> BuildFigure6Fixture();

}  // namespace medrelax

#endif  // MEDRELAX_DATASETS_PAPER_FIXTURES_H_
