#include "medrelax/datasets/snomed_generator.h"

#include <algorithm>
#include <cmath>

#include "medrelax/common/random.h"
#include "medrelax/common/string_util.h"

namespace medrelax {

namespace {

struct SitePair {
  const char* noun;    // "kidney"
  const char* latin;   // "renal"
};

constexpr SitePair kSites[] = {
    {"kidney", "renal"},       {"lung", "pulmonary"},
    {"liver", "hepatic"},      {"heart", "cardiac"},
    {"skin", "cutaneous"},     {"stomach", "gastric"},
    {"brain", "cerebral"},     {"blood", "hematologic"},
    {"bone", "osseous"},       {"joint", "articular"},
    {"throat", "pharyngeal"},  {"bladder", "vesical"},
    {"ear", "otic"},           {"eye", "ocular"},
    {"colon", "colonic"},      {"nerve", "neural"},
    {"pancreas", "pancreatic"}, {"spleen", "splenic"},
};

constexpr const char* kConditions[] = {
    "inflammation", "infection",   "pain",        "degeneration",
    "obstruction",  "dilation",    "insufficiency", "failure",
    "tumor",        "ulcer",       "edema",       "bleeding",
    "stenosis",     "spasm",       "atrophy",     "hypertrophy",
    "fibrosis",     "necrosis",    "cyst",        "lesion",
};

constexpr const char* kQualifiers[] = {
    "acute",      "chronic",   "severe",      "mild",
    "recurrent",  "congenital", "idiopathic", "secondary",
    "progressive", "transient", "focal",      "diffuse",
};

constexpr const char* kCauses[] = {
    "due to infection", "due to hypertension", "due to diabetes",
    "due to trauma",    "due to medication",   "of unknown origin",
};

constexpr const char* kOtherCategories[] = {
    "procedure", "body structure", "substance", "organism", "event",
};

constexpr const char* kProcedureKinds[] = {
    "biopsy of", "excision of", "repair of", "imaging of", "examination of",
};

// What kind of refinement a pending node expects next.
enum class Stage : uint8_t { kSiteDisorder, kCondition, kQualifier, kCause,
                             kStageNumber, kLeaf };

struct Pending {
  ConceptId id;
  Stage stage;
  std::string site;        // noun form
  std::string base_name;   // name the children refine
};

}  // namespace

Result<GeneratedEks> GenerateSnomedLike(const SnomedGeneratorOptions& options) {
  if (options.num_concepts < 50) {
    return Status::InvalidArgument(
        "GenerateSnomedLike: need at least 50 concepts");
  }
  GeneratedEks out;
  Rng rng(options.seed);

  auto add = [&](std::string name, ConceptId parent,
                 uint32_t parent_depth) -> Result<ConceptId> {
    // Enforce global uniqueness by suffixing a variant number on clash.
    Result<ConceptId> made = out.dag.AddConcept(name);
    int variant = 2;
    while (!made.ok()) {
      made = out.dag.AddConcept(StrFormat("%s type %d", name.c_str(), variant));
      ++variant;
      if (variant > 64) return made.status();
    }
    ConceptId id = *made;
    if (parent != kInvalidConcept) {
      MEDRELAX_RETURN_NOT_OK(out.dag.AddSubsumption(id, parent));
    }
    out.depth.push_back(parent == kInvalidConcept ? 0 : parent_depth + 1);
    return id;
  };

  MEDRELAX_ASSIGN_OR_RETURN(out.root, add("snomed ct concept",
                                          kInvalidConcept, 0));
  MEDRELAX_ASSIGN_OR_RETURN(out.finding_root,
                            add("clinical finding", out.root, 0));

  const size_t finding_budget = static_cast<size_t>(
      static_cast<double>(options.num_concepts) * options.finding_fraction);

  // --- Clinical-finding region: site disorders refined level by level. ---
  std::vector<Pending> frontier;
  for (const SitePair& site : kSites) {
    if (out.dag.num_concepts() >= finding_budget) break;
    MEDRELAX_ASSIGN_OR_RETURN(
        ConceptId id,
        add(StrFormat("disorder of %s", site.noun), out.finding_root, 1));
    MEDRELAX_RETURN_NOT_OK(
        out.dag.AddSynonym(id, StrFormat("%s disorder", site.latin)));
    frontier.push_back({id, Stage::kCondition, site.noun,
                        StrFormat("disorder of %s", site.noun)});
  }

  size_t head = 0;
  while (head < frontier.size() && out.dag.num_concepts() < finding_budget) {
    Pending node = frontier[head++];
    uint32_t node_depth = out.depth[node.id];
    switch (node.stage) {
      case Stage::kCondition: {
        // "infection of kidney", a random subset of condition kinds.
        size_t n = 3 + rng.UniformU64(6);
        std::vector<size_t> picks(std::size(kConditions));
        for (size_t i = 0; i < picks.size(); ++i) picks[i] = i;
        rng.Shuffle(&picks);
        for (size_t i = 0; i < n && i < picks.size(); ++i) {
          if (out.dag.num_concepts() >= finding_budget) break;
          std::string name =
              StrFormat("%s of %s", kConditions[picks[i]], node.site.c_str());
          MEDRELAX_ASSIGN_OR_RETURN(ConceptId id,
                                    add(name, node.id, node_depth));
          // Latinate synonym ("renal infection") — only for the primary
          // variant: "type N" duplicates would otherwise share the synonym
          // and make exact-name mapping ambiguous.
          if (out.dag.name(id) == name) {
            for (const SitePair& site : kSites) {
              if (node.site == site.noun) {
                MEDRELAX_RETURN_NOT_OK(out.dag.AddSynonym(
                    id,
                    StrFormat("%s %s", site.latin, kConditions[picks[i]])));
              }
            }
          }
          frontier.push_back({id, Stage::kQualifier, node.site, name});
        }
        break;
      }
      case Stage::kQualifier: {
        size_t n = 1 + rng.UniformU64(4);
        std::vector<size_t> picks(std::size(kQualifiers));
        for (size_t i = 0; i < picks.size(); ++i) picks[i] = i;
        rng.Shuffle(&picks);
        for (size_t i = 0; i < n && i < picks.size(); ++i) {
          if (out.dag.num_concepts() >= finding_budget) break;
          std::string name = StrFormat("%s %s", kQualifiers[picks[i]],
                                       node.base_name.c_str());
          MEDRELAX_ASSIGN_OR_RETURN(ConceptId id,
                                    add(name, node.id, node_depth));
          frontier.push_back({id, Stage::kCause, node.site, name});
        }
        break;
      }
      case Stage::kCause: {
        if (rng.Bernoulli(0.6)) {
          size_t n = 1 + rng.UniformU64(3);
          std::vector<size_t> picks(std::size(kCauses));
          for (size_t i = 0; i < picks.size(); ++i) picks[i] = i;
          rng.Shuffle(&picks);
          for (size_t i = 0; i < n && i < picks.size(); ++i) {
            if (out.dag.num_concepts() >= finding_budget) break;
            std::string name = StrFormat("%s %s", node.base_name.c_str(),
                                         kCauses[picks[i]]);
            MEDRELAX_ASSIGN_OR_RETURN(ConceptId id,
                                      add(name, node.id, node_depth));
            frontier.push_back({id, Stage::kStageNumber, node.site, name});
          }
        }
        break;
      }
      case Stage::kStageNumber: {
        if (rng.Bernoulli(0.4)) {
          size_t n = 1 + rng.UniformU64(4);
          for (size_t s = 1; s <= n; ++s) {
            if (out.dag.num_concepts() >= finding_budget) break;
            std::string name =
                StrFormat("%s stage %zu", node.base_name.c_str(), s);
            MEDRELAX_ASSIGN_OR_RETURN(ConceptId id,
                                      add(name, node.id, node_depth));
            (void)id;
          }
        }
        break;
      }
      case Stage::kSiteDisorder:
      case Stage::kLeaf:
        break;
    }
  }

  // Record the finding region.
  for (ConceptId id = out.finding_root + 1; id < out.dag.num_concepts();
       ++id) {
    out.finding_concepts.push_back(id);
  }

  // --- Other categories: shallow noise mass up to the full budget. ---
  std::vector<ConceptId> category_roots;
  for (const char* category : kOtherCategories) {
    if (out.dag.num_concepts() >= options.num_concepts) break;
    MEDRELAX_ASSIGN_OR_RETURN(ConceptId id, add(category, out.root, 0));
    category_roots.push_back(id);
  }
  size_t kind_index = 0;
  size_t site_index = 0;
  int serial = 1;
  while (out.dag.num_concepts() < options.num_concepts &&
         !category_roots.empty()) {
    ConceptId cat = category_roots[rng.UniformU64(category_roots.size())];
    const char* kind = kProcedureKinds[kind_index % std::size(kProcedureKinds)];
    const SitePair& site = kSites[site_index % std::size(kSites)];
    ++kind_index;
    if (kind_index % std::size(kProcedureKinds) == 0) ++site_index;
    std::string name = StrFormat("%s %s variant %d", kind, site.noun, serial++);
    MEDRELAX_ASSIGN_OR_RETURN(ConceptId id, add(name, cat, out.depth[cat]));
    (void)id;
  }

  // --- Polyhierarchy: second parents at strictly smaller depth within the
  // finding region (keeps the graph acyclic by construction). ---
  for (ConceptId id : out.finding_concepts) {
    if (!rng.Bernoulli(options.polyhierarchy_rate)) continue;
    // Sample a few times for a shallower node.
    for (int attempt = 0; attempt < 8; ++attempt) {
      ConceptId other = out.finding_concepts[rng.UniformU64(
          out.finding_concepts.size())];
      if (out.depth[other] < out.depth[id] && other != id) {
        // Ignore duplicate-edge failures: AddSubsumption refuses exact
        // duplicates, which is fine here.
        Status st = out.dag.AddSubsumption(id, other);
        (void)st;
        break;
      }
    }
  }

  // --- Synonyms: abbreviation-like and reordered variants. ---
  for (ConceptId id = 0; id < out.dag.num_concepts(); ++id) {
    uint64_t extra = rng.Poisson(options.synonym_mean);
    std::vector<std::string> parts = Split(out.dag.name(id), ' ');
    for (uint64_t s = 0; s < extra; ++s) {
      if (parts.size() >= 3 && s == 0) {
        // Head-swap variant: "kidney infection, acute".
        std::string syn = parts[parts.size() - 1];
        for (size_t i = 0; i + 1 < parts.size(); ++i) syn += " " + parts[i];
        MEDRELAX_RETURN_NOT_OK(out.dag.AddSynonym(id, syn));
      } else if (parts.size() >= 2) {
        // Initialism: "ck d s 1" style contractions are noisy on purpose.
        std::string syn;
        for (const std::string& p : parts) {
          if (!p.empty()) syn += p.substr(0, 1);
        }
        syn += StrFormat(" %u", id);  // disambiguate tiny initialisms
        MEDRELAX_RETURN_NOT_OK(out.dag.AddSynonym(id, syn));
      }
    }
  }

  // --- Popularity: Zipf weights over a random permutation of concepts. ---
  out.popularity.assign(out.dag.num_concepts(), 0.0);
  std::vector<ConceptId> perm(out.dag.num_concepts());
  for (ConceptId id = 0; id < perm.size(); ++id) perm[id] = id;
  rng.Shuffle(&perm);
  for (size_t rank = 0; rank < perm.size(); ++rank) {
    out.popularity[perm[rank]] =
        1.0 / std::pow(static_cast<double>(rank + 1), options.popularity_zipf);
  }

  return out;
}

}  // namespace medrelax
