#ifndef MEDRELAX_DATASETS_KB_GENERATOR_H_
#define MEDRELAX_DATASETS_KB_GENERATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/datasets/snomed_generator.h"
#include "medrelax/kb/kb_query.h"
#include "medrelax/ontology/context.h"

namespace medrelax {

/// Context-participation ground truth per external concept: which query
/// contexts the concept is genuinely appropriate for. This is the synthetic
/// stand-in for the SME judgment "drugs for hypothermia should not be
/// returned in the context of treatment" (Introduction): sibling concepts
/// can participate in disjoint contexts.
enum ParticipationBit : uint8_t {
  kParticipatesTreat = 1 << 0,  // Indication-hasFinding-Finding
  kParticipatesRisk = 1 << 1,   // Risk-hasFinding-Finding
};

/// Knobs of the MED-like KB generator.
struct KbGeneratorOptions {
  size_t num_drugs = 120;
  /// Findings sampled from the external source's finding region into the
  /// KB (popularity-weighted, so the KB covers the common conditions).
  size_t num_findings = 300;
  /// Fraction of KB finding instances whose surface name deviates from the
  /// external concept's canonical name (synonym or typo) — these exercise
  /// the EDIT / EMBEDDING mapping methods.
  double name_noise_rate = 0.15;
  /// Treated findings per drug (sampled, popularity-weighted).
  size_t treats_per_drug = 4;
  /// Caused (risk) findings per drug.
  size_t causes_per_drug = 3;
  /// Probability that a drug's next linked finding comes from the drug's
  /// primary therapeutic area (its site subtree) rather than the global
  /// pool. Real drugs specialize; this is what makes co-mentions in the
  /// monograph corpus taxonomy-correlated (and distributional embeddings
  /// informative).
  double site_focus = 0.7;
  uint64_t seed = 99;
};

/// A fully generated world: external source + KB + ground truth.
struct GeneratedWorld {
  GeneratedEks eks;
  KnowledgeBase kb;
  ContextRegistry contexts;
  /// The two headline contexts of the evaluation.
  ContextId ctx_indication = kNoContext;  // Indication-hasFinding-Finding
  ContextId ctx_risk = kNoContext;        // Risk-hasFinding-Finding
  /// Ontology concept ids inside kb.ontology.
  OntologyConceptId onto_drug = kInvalidOntologyConcept;
  OntologyConceptId onto_finding = kInvalidOntologyConcept;
  OntologyConceptId onto_indication = kInvalidOntologyConcept;
  OntologyConceptId onto_risk = kInvalidOntologyConcept;
  /// Ground truth: ParticipationBit mask per external concept.
  std::vector<uint8_t> participation;
  /// Ground truth: KB finding instance -> the external concept it was
  /// sampled from (what a perfect mapper would produce).
  std::unordered_map<InstanceId, ConceptId> true_link;
  /// The external concepts that have KB instances (ground truth FEC).
  std::vector<ConceptId> kb_finding_concepts;
  std::vector<InstanceId> drug_instances;
  std::vector<InstanceId> finding_instances;
  /// Findings each drug treats / causes (instance ids).
  std::unordered_map<InstanceId, std::vector<InstanceId>> treats;
  std::unordered_map<InstanceId, std::vector<InstanceId>> causes;

  GeneratedWorld() = default;
  GeneratedWorld(GeneratedWorld&&) = default;
  GeneratedWorld& operator=(GeneratedWorld&&) = default;
  GeneratedWorld(const GeneratedWorld&) = delete;
  GeneratedWorld& operator=(const GeneratedWorld&) = delete;
};

/// Builds the MED-shaped domain ontology: 43 concepts and 58 relationships
/// (the sizes Section 7.1 reports for the paper's proprietary data set),
/// including the Figure 1 fragment.
[[nodiscard]] Result<DomainOntology> BuildMedOntology();

/// Generates the full world: external source (via GenerateSnomedLike), the
/// MED-like KB populated against it, and all ground-truth metadata.
[[nodiscard]]
Result<GeneratedWorld> GenerateWorld(const SnomedGeneratorOptions& eks_options,
                                     const KbGeneratorOptions& kb_options);

}  // namespace medrelax

#endif  // MEDRELAX_DATASETS_KB_GENERATOR_H_
