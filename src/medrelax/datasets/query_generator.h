#ifndef MEDRELAX_DATASETS_QUERY_GENERATOR_H_
#define MEDRELAX_DATASETS_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "medrelax/datasets/kb_generator.h"

namespace medrelax {

/// How a mapping-workload surface form is derived from its gold concept.
enum class SurfaceNoise : uint8_t {
  kExactName,   // canonical name verbatim
  kSynonym,     // one of the concept's synonyms
  kTypo,        // 1-2 character edits
  kReorder,     // token order shuffled ("kidney infection acute")
  kDropToken,   // one token dropped ("infection kidney due diabetes" ...)
};

/// One Table 1 workload item: a noisy surface form with its gold concept.
struct MappingQuery {
  std::string surface;
  ConceptId gold = kInvalidConcept;
  SurfaceNoise noise = SurfaceNoise::kExactName;
};

/// Options for the mapping workload (Table 1: "100 commonly used concepts
/// of medical conditions").
struct MappingWorkloadOptions {
  size_t num_queries = 100;
  /// Mix of noise kinds (normalized internally).
  double p_exact = 0.35;
  double p_synonym = 0.25;
  double p_typo = 0.20;
  double p_reorder = 0.10;
  double p_drop = 0.10;
  uint64_t seed = 21;
};

/// Samples mapping queries from the finding region, popularity-weighted
/// ("commonly used"), with the configured surface-noise mix.
std::vector<MappingQuery> GenerateMappingQueries(
    const GeneratedEks& eks, const MappingWorkloadOptions& options);

/// One Table 2 workload item: a query concept with its query context.
struct RelaxationQuery {
  /// The external concept the query term resolves to.
  ConceptId concept_id = kInvalidConcept;
  /// Query context (ctx_indication or ctx_risk).
  ContextId context = kNoContext;
  /// A natural surface form for the term (for end-to-end runs).
  std::string surface;
};

/// Options for the relaxation workload.
struct RelaxationWorkloadOptions {
  size_t num_queries = 100;
  /// Fraction of query concepts that do NOT have a KB instance (the
  /// "pyelectasia" case: relaxation must find in-KB relatives).
  double out_of_kb_fraction = 0.5;
  uint64_t seed = 22;
};

/// Samples relaxation queries: popularity-weighted condition concepts whose
/// participation truth includes the sampled context.
std::vector<RelaxationQuery> GenerateRelaxationQueries(
    const GeneratedWorld& world, const RelaxationWorkloadOptions& options);

/// One natural-language question for the NLI layers / user study.
struct NlQuestion {
  std::string text;
  /// The gold context of the question.
  ContextId context = kNoContext;
  /// The gold external concept of the query term.
  ConceptId concept_id = kInvalidConcept;
  /// The surface form embedded in the text.
  std::string term_surface;
};

/// Options for the NL-question workload.
struct NlWorkloadOptions {
  size_t num_questions = 20;
  /// When true, questions may use out-of-KB terms (task T2 of the user
  /// study); otherwise terms come from in-KB concepts (task T1).
  bool free_form = false;
  /// Users phrase conditions colloquially in both tasks: probability of
  /// using a synonym / a typo'd surface instead of the canonical name.
  double colloquial_synonym = 0.35;
  double colloquial_typo = 0.20;
  uint64_t seed = 23;
};

/// Generates templated NL questions ("what drugs treat <term>", "which
/// drugs have the risk of causing <term>", ...).
std::vector<NlQuestion> GenerateNlQuestions(const GeneratedWorld& world,
                                            const NlWorkloadOptions& options);

}  // namespace medrelax

#endif  // MEDRELAX_DATASETS_QUERY_GENERATOR_H_
