#ifndef MEDRELAX_DATASETS_SNOMED_GENERATOR_H_
#define MEDRELAX_DATASETS_SNOMED_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// Knobs of the SNOMED-CT-like external-knowledge-source generator.
///
/// SNOMED CT itself is license-gated, so scale experiments run on a
/// synthetic DAG with the properties the relaxation method actually
/// consumes: a single root, deep is-a hierarchies with compositional
/// names ("acute infection of kidney due to diabetes" under "infection of
/// kidney" under "disorder of kidney"), synonyms (latinate variants:
/// "renal infection"), moderate polyhierarchy, and a designated clinical-
/// finding region the KB draws from. Everything is deterministic in the
/// seed.
struct SnomedGeneratorOptions {
  /// Total concept budget (>= ~50; the generator stops when reached).
  size_t num_concepts = 4000;
  /// Fraction of the budget under the clinical-finding category.
  double finding_fraction = 0.7;
  /// Probability that a concept gains a second parent (polyhierarchy).
  double polyhierarchy_rate = 0.06;
  /// Mean synonyms per concept (Poisson).
  double synonym_mean = 0.7;
  /// Zipf exponent for the popularity weights the corpus generator uses.
  double popularity_zipf = 1.1;
  uint64_t seed = 1234;
};

/// A generated external knowledge source with its ground-truth metadata.
struct GeneratedEks {
  ConceptDag dag;
  ConceptId root = kInvalidConcept;
  /// Root of the clinical-finding region.
  ConceptId finding_root = kInvalidConcept;
  /// Every concept in the finding region (excluding finding_root itself).
  std::vector<ConceptId> finding_concepts;
  /// Depth of each concept (root = 0) in the generated tree skeleton.
  std::vector<uint32_t> depth;
  /// Popularity weight per concept (Zipf-distributed); drives how often
  /// the corpus generator mentions it.
  std::vector<double> popularity;
};

/// Generates a SNOMED-like DAG. Fails only on degenerate options.
[[nodiscard]]
Result<GeneratedEks> GenerateSnomedLike(const SnomedGeneratorOptions& options);

}  // namespace medrelax

#endif  // MEDRELAX_DATASETS_SNOMED_GENERATOR_H_
