#ifndef MEDRELAX_DATASETS_CORPUS_GENERATOR_H_
#define MEDRELAX_DATASETS_CORPUS_GENERATOR_H_

#include <cstdint>

#include "medrelax/corpus/document.h"
#include "medrelax/datasets/kb_generator.h"

namespace medrelax {

/// Knobs of the monograph-corpus generator.
struct CorpusGeneratorOptions {
  /// Scale on the expected mention count of a finding in a relevant
  /// section (popularity-weighted Poisson).
  double mention_scale = 12.0;
  /// Probability of also mentioning each ancestor of a mentioned finding
  /// once (this produces the corpus mass on general concepts that makes
  /// IC informative).
  double ancestor_mention_prob = 0.5;
  /// Filler prose tokens interleaved per section.
  size_t filler_tokens = 60;
  uint64_t seed = 7;
};

/// Generates the document corpus the MED-like KB is "curated from"
/// (Section 5.1): one monograph per drug with an Indications section
/// (tagged ctx_indication), an Adverse Reactions section (ctx_risk) and an
/// untyped prose section. Mention counts follow the external concepts'
/// popularity, so frequency propagation (Equation 2) sees the skew the
/// paper's tf-idf adjustment targets.
Corpus GenerateMonographCorpus(const GeneratedWorld& world,
                               const CorpusGeneratorOptions& options);

/// Knobs of the out-of-domain corpus used to train the
/// Embedding-pre-trained baseline.
struct GeneralCorpusOptions {
  size_t num_documents = 200;
  size_t tokens_per_document = 120;
  /// Maximum external-concept depth whose names may appear; deeper (more
  /// specific) names become OOV for the pre-trained model, reproducing the
  /// vocabulary mismatch Section 7.2 reports ("many of the words contained
  /// in SNOMED CT are out of its vocabulary"). Depth 2 = category and
  /// site-disorder names only: condition/qualifier vocabulary stays OOV.
  uint32_t max_concept_depth = 2;
  uint64_t seed = 11;
};

/// Generates a "different medical corpus": general prose with a distinct
/// filler vocabulary that only mentions shallow (general) concepts.
Corpus GenerateGeneralCorpus(const GeneratedEks& eks,
                             const GeneralCorpusOptions& options);

}  // namespace medrelax

#endif  // MEDRELAX_DATASETS_CORPUS_GENERATOR_H_
