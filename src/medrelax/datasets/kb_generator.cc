#include "medrelax/datasets/kb_generator.h"

#include <algorithm>

#include "medrelax/common/random.h"
#include "medrelax/common/string_util.h"
#include "medrelax/graph/traversal.h"

namespace medrelax {

namespace {

// 43 concepts, matching the MED statistic of Section 7.1.
constexpr const char* kMedConcepts[] = {
    "Drug",           "Indication",      "Risk",
    "Finding",        "Black Box Warning", "Adverse Effect",
    "Contra Indication", "Dosage",       "Route",
    "Form",           "Strength",        "Interaction",
    "Warning",        "Precaution",      "Monitoring",
    "Lab Test",       "Procedure",       "Organism",
    "Allergy",        "Patient Group",   "Pregnancy",
    "Lactation",      "Pediatric",       "Geriatric",
    "Renal Impairment", "Hepatic Impairment", "Administration",
    "Storage",        "Overdose",        "Mechanism",
    "Pharmacokinetics", "Pharmacodynamics", "Brand Name",
    "Manufacturer",   "Drug Class",      "Schedule",
    "Cost Tier",      "Evidence",        "Guideline",
    "Education",      "Toxicology",      "Antidote",
    "Symptom",
};

struct RelRow {
  const char* domain;
  const char* name;
  const char* range;
};

// 58 relationships, matching Section 7.1, including the Figure 1 core.
constexpr RelRow kMedRelationships[] = {
    {"Drug", "treat", "Indication"},
    {"Drug", "cause", "Risk"},
    {"Indication", "hasFinding", "Finding"},
    {"Risk", "hasFinding", "Finding"},
    {"Drug", "hasDosage", "Dosage"},
    {"Drug", "hasRoute", "Route"},
    {"Drug", "hasForm", "Form"},
    {"Drug", "hasStrength", "Strength"},
    {"Drug", "hasInteraction", "Interaction"},
    {"Interaction", "involves", "Drug"},
    {"Drug", "hasWarning", "Warning"},
    {"Drug", "hasPrecaution", "Precaution"},
    {"Drug", "requires", "Monitoring"},
    {"Monitoring", "uses", "Lab Test"},
    {"Drug", "hasBlackBoxWarning", "Black Box Warning"},
    {"Drug", "hasAdverseEffect", "Adverse Effect"},
    {"Drug", "hasContraIndication", "Contra Indication"},
    {"Contra Indication", "hasFinding", "Finding"},
    {"Adverse Effect", "hasFinding", "Finding"},
    {"Black Box Warning", "hasFinding", "Finding"},
    {"Procedure", "treats", "Indication"},
    {"Procedure", "diagnoses", "Finding"},
    {"Organism", "causes", "Finding"},
    {"Drug", "targets", "Organism"},
    {"Allergy", "involvesDrug", "Drug"},
    {"Allergy", "hasFinding", "Finding"},
    {"Patient Group", "hasRisk", "Risk"},
    {"Drug", "usedIn", "Patient Group"},
    {"Drug", "hasPregnancyGuidance", "Pregnancy"},
    {"Drug", "hasLactationGuidance", "Lactation"},
    {"Drug", "hasPediatricGuidance", "Pediatric"},
    {"Drug", "hasGeriatricGuidance", "Geriatric"},
    {"Drug", "hasRenalGuidance", "Renal Impairment"},
    {"Drug", "hasHepaticGuidance", "Hepatic Impairment"},
    {"Drug", "hasAdministration", "Administration"},
    {"Drug", "hasStorage", "Storage"},
    {"Drug", "hasOverdose", "Overdose"},
    {"Overdose", "hasFinding", "Finding"},
    {"Overdose", "treatedBy", "Antidote"},
    {"Drug", "hasMechanism", "Mechanism"},
    {"Drug", "hasPharmacokinetics", "Pharmacokinetics"},
    {"Drug", "hasPharmacodynamics", "Pharmacodynamics"},
    {"Drug", "hasBrandName", "Brand Name"},
    {"Drug", "madeBy", "Manufacturer"},
    {"Drug", "inClass", "Drug Class"},
    {"Drug", "hasSchedule", "Schedule"},
    {"Drug", "hasCostTier", "Cost Tier"},
    {"Guideline", "recommends", "Drug"},
    {"Guideline", "basedOn", "Evidence"},
    {"Education", "covers", "Drug"},
    {"Education", "coversIndication", "Indication"},
    {"Drug", "hasToxicology", "Toxicology"},
    {"Toxicology", "hasFinding", "Finding"},
    {"Symptom", "indicates", "Finding"},
    {"Indication", "hasSymptom", "Symptom"},
    {"Lab Test", "measures", "Finding"},
    {"Procedure", "hasRisk", "Risk"},
    {"Drug Class", "treatsIndication", "Indication"},
};

constexpr const char* kDrugPrefixes[] = {
    "ac", "be", "cor", "dal", "ex",  "flu", "gan", "hep", "ib",  "jan",
    "kel", "lor", "met", "nor", "oc", "pra", "quin", "rov", "sel", "tam",
};

constexpr const char* kDrugSuffixes[] = {
    "zolamide", "virine", "mabrex", "priltan", "ololine",
    "statinol", "cillinex", "micinor", "sartanil", "prazolum",
};

// Introduces a deterministic single-character typo.
std::string Typo(const std::string& s, Rng* rng) {
  if (s.size() < 4) return s;
  std::string out = s;
  size_t pos = 1 + rng->UniformU64(out.size() - 2);
  if (out[pos] == ' ') pos = 1;
  switch (rng->UniformU64(3)) {
    case 0:  // substitution
      out[pos] = static_cast<char>('a' + rng->UniformU64(26));
      break;
    case 1:  // deletion
      out.erase(pos, 1);
      break;
    default:  // transposition with the next character
      if (pos + 1 < out.size() && out[pos + 1] != ' ') {
        std::swap(out[pos], out[pos + 1]);
      }
      break;
  }
  return out;
}

}  // namespace

Result<DomainOntology> BuildMedOntology() {
  DomainOntology onto;
  for (const char* name : kMedConcepts) {
    MEDRELAX_RETURN_NOT_OK(onto.AddConcept(name).status());
  }
  for (const RelRow& row : kMedRelationships) {
    OntologyConceptId domain = onto.FindConcept(row.domain);
    OntologyConceptId range = onto.FindConcept(row.range);
    MEDRELAX_RETURN_NOT_OK(
        onto.AddRelationship(row.name, domain, range).status());
  }
  // TBox subsumption of Example 3: Risk's descendants.
  OntologyConceptId risk = onto.FindConcept("Risk");
  MEDRELAX_RETURN_NOT_OK(
      onto.AddSubConcept(onto.FindConcept("Black Box Warning"), risk));
  MEDRELAX_RETURN_NOT_OK(
      onto.AddSubConcept(onto.FindConcept("Adverse Effect"), risk));
  MEDRELAX_RETURN_NOT_OK(
      onto.AddSubConcept(onto.FindConcept("Contra Indication"), risk));
  return onto;
}

Result<GeneratedWorld> GenerateWorld(const SnomedGeneratorOptions& eks_options,
                                     const KbGeneratorOptions& kb_options) {
  GeneratedWorld world;
  MEDRELAX_ASSIGN_OR_RETURN(world.eks, GenerateSnomedLike(eks_options));
  MEDRELAX_ASSIGN_OR_RETURN(world.kb.ontology, BuildMedOntology());
  world.contexts = ContextRegistry::FromOntology(world.kb.ontology);
  world.ctx_indication =
      world.contexts.FindByLabel("Indication-hasFinding-Finding");
  world.ctx_risk = world.contexts.FindByLabel("Risk-hasFinding-Finding");
  world.onto_drug = world.kb.ontology.FindConcept("Drug");
  world.onto_finding = world.kb.ontology.FindConcept("Finding");
  world.onto_indication = world.kb.ontology.FindConcept("Indication");
  world.onto_risk = world.kb.ontology.FindConcept("Risk");

  Rng rng(kb_options.seed);
  const ConceptDag& dag = world.eks.dag;

  // --- Context-participation ground truth. ---
  // Site subtrees alternate between treat-heavy and risk-heavy profiles so
  // context carries real signal; per-concept sampling follows the direct
  // parent's bias with noise. Propagating from parents keeps neighborhoods
  // coherent (a "hypothermia" sibling can flip to the other context).
  world.participation.assign(dag.num_concepts(), 0);
  // Every top-of-region node: both contexts possible.
  world.participation[world.eks.finding_root] =
      kParticipatesTreat | kParticipatesRisk;
  // Walk in id order — the generator allocates parents before children, so
  // a concept's first (tree) parent is already assigned when we reach it.
  for (ConceptId id : world.eks.finding_concepts) {
    if (world.eks.depth[id] == 2) {
      // Site-disorder roots: half lean a single way so entire subtrees
      // carry a context bias (the signal context-aware QR exploits).
      if (rng.Bernoulli(0.5)) {
        world.participation[id] =
            rng.Bernoulli(0.5) ? kParticipatesTreat : kParticipatesRisk;
      } else {
        world.participation[id] = kParticipatesTreat | kParticipatesRisk;
      }
      continue;
    }
    ConceptId parent = world.eks.finding_root;
    std::vector<ConceptId> native = dag.NativeParents(id);
    if (!native.empty()) parent = native.front();
    uint8_t inherited = world.participation[parent];
    uint8_t mask = 0;
    double keep = 0.85;
    if (inherited & kParticipatesTreat) {
      if (rng.Bernoulli(keep)) mask |= kParticipatesTreat;
    } else if (rng.Bernoulli(0.10)) {
      mask |= kParticipatesTreat;
    }
    if (inherited & kParticipatesRisk) {
      if (rng.Bernoulli(keep)) mask |= kParticipatesRisk;
    } else if (rng.Bernoulli(0.10)) {
      mask |= kParticipatesRisk;
    }
    if (mask == 0) {
      mask = rng.Bernoulli(0.5) ? kParticipatesTreat : kParticipatesRisk;
    }
    world.participation[id] = mask;
  }

  // --- Drug instances. ---
  for (size_t d = 0; d < kb_options.num_drugs; ++d) {
    std::string name = StrFormat(
        "%s%s", kDrugPrefixes[d % std::size(kDrugPrefixes)],
        kDrugSuffixes[(d / std::size(kDrugPrefixes)) % std::size(kDrugSuffixes)]);
    if (d >= std::size(kDrugPrefixes) * std::size(kDrugSuffixes)) {
      name += StrFormat(" %zu", d);
    }
    MEDRELAX_ASSIGN_OR_RETURN(
        InstanceId id, world.kb.instances.AddInstance(name, world.onto_drug));
    world.drug_instances.push_back(id);
  }

  // --- Finding instances, sampled popularity-weighted from the region. ---
  std::vector<ConceptId> region = world.eks.finding_concepts;
  std::vector<double> weights;
  weights.reserve(region.size());
  for (ConceptId id : region) weights.push_back(world.eks.popularity[id]);
  size_t to_sample = std::min(kb_options.num_findings, region.size());
  for (size_t n = 0; n < to_sample; ++n) {
    size_t pick = rng.WeightedIndex(weights);
    ConceptId concept_id = region[pick];
    weights[pick] = 0.0;  // sample without replacement
    std::string surface = dag.name(concept_id);
    if (rng.Bernoulli(kb_options.name_noise_rate)) {
      const std::vector<std::string>& syns = dag.synonyms(concept_id);
      if (!syns.empty() && rng.Bernoulli(0.5)) {
        surface = syns[rng.UniformU64(syns.size())];
      } else {
        surface = Typo(surface, &rng);
      }
    }
    Result<InstanceId> made =
        world.kb.instances.AddInstance(surface, world.onto_finding);
    if (!made.ok()) continue;  // rare normalized-name collision: skip
    world.finding_instances.push_back(*made);
    world.true_link[*made] = concept_id;
    world.kb_finding_concepts.push_back(concept_id);
  }

  // --- Drug-finding links honoring participation truth. ---
  // Site of a finding: its depth-2 ancestor ("disorder of <site>"), used
  // to give each drug a therapeutic area.
  auto site_of = [&](ConceptId c) {
    ConceptId cur = c;
    while (world.eks.depth[cur] > 2) {
      std::vector<ConceptId> parents = dag.NativeParents(cur);
      if (parents.empty()) break;
      cur = parents.front();
    }
    return cur;
  };
  std::vector<InstanceId> treatable;
  std::vector<InstanceId> riskable;
  std::unordered_map<ConceptId, std::vector<InstanceId>> treatable_by_site;
  std::unordered_map<ConceptId, std::vector<InstanceId>> riskable_by_site;
  for (InstanceId f : world.finding_instances) {
    ConceptId concept_id = world.true_link[f];
    uint8_t mask = world.participation[concept_id];
    ConceptId site = site_of(concept_id);
    if (mask & kParticipatesTreat) {
      treatable.push_back(f);
      treatable_by_site[site].push_back(f);
    }
    if (mask & kParticipatesRisk) {
      riskable.push_back(f);
      riskable_by_site[site].push_back(f);
    }
  }
  RelationshipId rel_treat = kInvalidRelationship;
  RelationshipId rel_cause = kInvalidRelationship;
  RelationshipId rel_ind_has = kInvalidRelationship;
  RelationshipId rel_risk_has = kInvalidRelationship;
  for (RelationshipId r = 0; r < world.kb.ontology.num_relationships(); ++r) {
    const Relationship& rel = world.kb.ontology.relationship(r);
    const std::string& dn = world.kb.ontology.concept_name(rel.domain);
    if (rel.name == "treat" && dn == "Drug") rel_treat = r;
    if (rel.name == "cause" && dn == "Drug") rel_cause = r;
    if (rel.name == "hasFinding" && dn == "Indication") rel_ind_has = r;
    if (rel.name == "hasFinding" && dn == "Risk") rel_risk_has = r;
  }

  size_t link_serial = 0;
  for (InstanceId drug : world.drug_instances) {
    // The drug's primary therapeutic area: the site of a random treatable
    // finding (falls back to pure global sampling when focus is 0).
    ConceptId focus_site = kInvalidConcept;
    if (!treatable.empty()) {
      focus_site = site_of(
          world.true_link[treatable[rng.UniformU64(treatable.size())]]);
    }
    auto link = [&](const std::vector<InstanceId>& pool,
                    const std::unordered_map<ConceptId,
                                             std::vector<InstanceId>>&
                        by_site,
                    size_t count, RelationshipId top_rel,
                    RelationshipId has_rel, OntologyConceptId mid_concept,
                    std::unordered_map<InstanceId, std::vector<InstanceId>>*
                        truth) -> Status {
      auto focus_it = by_site.find(focus_site);
      const std::vector<InstanceId>* focus_pool =
          focus_it == by_site.end() ? nullptr : &focus_it->second;
      for (size_t i = 0; i < count && !pool.empty(); ++i) {
        const std::vector<InstanceId>& draw_pool =
            (focus_pool != nullptr && !focus_pool->empty() &&
             rng.Bernoulli(kb_options.site_focus))
                ? *focus_pool
                : pool;
        InstanceId finding = draw_pool[rng.UniformU64(draw_pool.size())];
        std::vector<InstanceId>& already = (*truth)[drug];
        if (std::find(already.begin(), already.end(), finding) !=
            already.end()) {
          continue;
        }
        MEDRELAX_ASSIGN_OR_RETURN(
            InstanceId mid,
            world.kb.instances.AddInstance(
                StrFormat("link %zu", link_serial++), mid_concept));
        MEDRELAX_RETURN_NOT_OK(world.kb.triples.AddTriple(drug, top_rel, mid));
        MEDRELAX_RETURN_NOT_OK(
            world.kb.triples.AddTriple(mid, has_rel, finding));
        already.push_back(finding);
      }
      return Status::OK();
    };
    MEDRELAX_RETURN_NOT_OK(link(treatable, treatable_by_site,
                                kb_options.treats_per_drug, rel_treat,
                                rel_ind_has, world.onto_indication,
                                &world.treats));
    MEDRELAX_RETURN_NOT_OK(link(riskable, riskable_by_site,
                                kb_options.causes_per_drug, rel_cause,
                                rel_risk_has, world.onto_risk,
                                &world.causes));
  }

  return world;
}

}  // namespace medrelax
