#include "medrelax/datasets/query_generator.h"

#include <algorithm>

#include "medrelax/common/random.h"
#include "medrelax/common/string_util.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

namespace {

std::string ApplyTypo(const std::string& s, Rng* rng) {
  if (s.size() < 4) return s;
  std::string out = s;
  size_t edits = 1 + rng->UniformU64(2);
  for (size_t e = 0; e < edits; ++e) {
    size_t pos = 1 + rng->UniformU64(out.size() - 2);
    if (out[pos] == ' ') continue;
    switch (rng->UniformU64(3)) {
      case 0:
        out[pos] = static_cast<char>('a' + rng->UniformU64(26));
        break;
      case 1:
        out.erase(pos, 1);
        break;
      default:
        if (pos + 1 < out.size() && out[pos + 1] != ' ') {
          std::swap(out[pos], out[pos + 1]);
        }
        break;
    }
  }
  return out;
}

std::string ReorderTokens(const std::string& s, Rng* rng) {
  std::vector<std::string> tokens = Tokenize(NormalizeTerm(s));
  if (tokens.size() < 2) return s;
  rng->Shuffle(&tokens);
  return Join(tokens, " ");
}

std::string DropToken(const std::string& s, Rng* rng) {
  std::vector<std::string> tokens = Tokenize(NormalizeTerm(s));
  if (tokens.size() < 3) return s;
  tokens.erase(tokens.begin() +
               static_cast<long>(rng->UniformU64(tokens.size())));
  return Join(tokens, " ");
}

// Popularity-weighted sample without replacement from the finding region.
std::vector<ConceptId> SampleFindingConcepts(const GeneratedEks& eks, size_t n,
                                             Rng* rng) {
  std::vector<ConceptId> region = eks.finding_concepts;
  std::vector<double> weights;
  weights.reserve(region.size());
  for (ConceptId id : region) weights.push_back(eks.popularity[id]);
  std::vector<ConceptId> out;
  for (size_t i = 0; i < n && i < region.size(); ++i) {
    size_t pick = rng->WeightedIndex(weights);
    out.push_back(region[pick]);
    weights[pick] = 0.0;
  }
  return out;
}

}  // namespace

std::vector<MappingQuery> GenerateMappingQueries(
    const GeneratedEks& eks, const MappingWorkloadOptions& options) {
  Rng rng(options.seed);
  std::vector<MappingQuery> out;
  std::vector<ConceptId> concepts =
      SampleFindingConcepts(eks, options.num_queries, &rng);
  std::vector<double> mix = {options.p_exact, options.p_synonym,
                             options.p_typo, options.p_reorder,
                             options.p_drop};
  for (ConceptId gold : concepts) {
    MappingQuery q;
    q.gold = gold;
    SurfaceNoise noise = static_cast<SurfaceNoise>(rng.WeightedIndex(mix));
    const std::string& name = eks.dag.name(gold);
    switch (noise) {
      case SurfaceNoise::kExactName:
        q.surface = name;
        break;
      case SurfaceNoise::kSynonym: {
        const std::vector<std::string>& syns = eks.dag.synonyms(gold);
        if (syns.empty()) {
          noise = SurfaceNoise::kExactName;
          q.surface = name;
        } else {
          q.surface = syns[rng.UniformU64(syns.size())];
        }
        break;
      }
      case SurfaceNoise::kTypo:
        q.surface = ApplyTypo(name, &rng);
        break;
      case SurfaceNoise::kReorder:
        q.surface = ReorderTokens(name, &rng);
        break;
      case SurfaceNoise::kDropToken:
        q.surface = DropToken(name, &rng);
        break;
    }
    q.noise = noise;
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<RelaxationQuery> GenerateRelaxationQueries(
    const GeneratedWorld& world, const RelaxationWorkloadOptions& options) {
  Rng rng(options.seed);
  std::vector<RelaxationQuery> out;

  std::vector<bool> in_kb(world.eks.dag.num_concepts(), false);
  for (ConceptId id : world.kb_finding_concepts) in_kb[id] = true;

  // Oversample, then filter to the requested in-KB/out-of-KB mix.
  std::vector<ConceptId> pool = SampleFindingConcepts(
      world.eks, world.eks.finding_concepts.size(), &rng);
  size_t want_out =
      static_cast<size_t>(options.out_of_kb_fraction *
                          static_cast<double>(options.num_queries));
  size_t want_in = options.num_queries - want_out;
  for (ConceptId id : pool) {
    if (out.size() >= options.num_queries) break;
    bool is_in = in_kb[id];
    if (is_in && want_in == 0) continue;
    if (!is_in && want_out == 0) continue;
    uint8_t mask = world.participation[id];
    if (mask == 0) continue;
    RelaxationQuery q;
    q.concept_id = id;
    bool treat_ok = (mask & kParticipatesTreat) != 0;
    bool risk_ok = (mask & kParticipatesRisk) != 0;
    if (treat_ok && risk_ok) {
      q.context = rng.Bernoulli(0.5) ? world.ctx_indication : world.ctx_risk;
    } else {
      q.context = treat_ok ? world.ctx_indication : world.ctx_risk;
    }
    q.surface = world.eks.dag.name(id);
    out.push_back(std::move(q));
    if (is_in) {
      --want_in;
    } else {
      --want_out;
    }
  }
  return out;
}

std::vector<NlQuestion> GenerateNlQuestions(const GeneratedWorld& world,
                                            const NlWorkloadOptions& options) {
  Rng rng(options.seed);
  std::vector<NlQuestion> out;

  constexpr const char* kTreatTemplates[] = {
      "what drugs treat %s",
      "which drugs are used to treat %s",
      "what medication helps with %s",
      "how do you treat %s",
      "give me treatments for %s",
  };
  constexpr const char* kRiskTemplates[] = {
      "what drugs cause %s",
      "which drugs have the risk of causing %s",
      "what medication can lead to %s",
      "which drugs list %s as a side effect",
      "what can cause %s as an adverse effect",
  };

  std::vector<bool> in_kb(world.eks.dag.num_concepts(), false);
  for (ConceptId id : world.kb_finding_concepts) in_kb[id] = true;

  std::vector<ConceptId> pool = SampleFindingConcepts(
      world.eks, world.eks.finding_concepts.size(), &rng);
  size_t out_of_kb = 0;
  for (ConceptId id : pool) {
    if (out.size() >= options.num_questions) break;
    uint8_t mask = world.participation[id];
    if (mask == 0) continue;
    if (!in_kb[id]) {
      // T1 sticks to the given (in-KB) concepts; free-form users wander
      // off the KB for up to a quarter of their questions.
      if (!options.free_form) continue;
      if (out_of_kb * 4 >= options.num_questions) continue;
      ++out_of_kb;
    }

    NlQuestion q;
    q.concept_id = id;
    bool treat_ok = (mask & kParticipatesTreat) != 0;
    bool use_treat = treat_ok && (!(mask & kParticipatesRisk) ||
                                  rng.Bernoulli(0.5));
    q.context = use_treat ? world.ctx_indication : world.ctx_risk;

    // Users phrase conditions colloquially in both tasks (Section 7.2's
    // participants "come up with" the questions; nobody types canonical
    // SNOMED names).
    q.term_surface = world.eks.dag.name(id);
    const std::vector<std::string>& syns = world.eks.dag.synonyms(id);
    if (!syns.empty() && rng.Bernoulli(options.colloquial_synonym)) {
      q.term_surface = syns[rng.UniformU64(syns.size())];
    } else if (rng.Bernoulli(options.colloquial_typo)) {
      q.term_surface = ApplyTypo(q.term_surface, &rng);
    }

    const char* tpl =
        use_treat
            ? kTreatTemplates[rng.UniformU64(std::size(kTreatTemplates))]
            : kRiskTemplates[rng.UniformU64(std::size(kRiskTemplates))];
    q.text = StrFormat(tpl, q.term_surface.c_str());
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace medrelax
