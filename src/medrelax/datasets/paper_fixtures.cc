#include "medrelax/datasets/paper_fixtures.h"

namespace medrelax {

Result<DomainOntology> BuildFigure1Ontology() {
  DomainOntology onto;
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId drug, onto.AddConcept("Drug"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId indication,
                            onto.AddConcept("Indication"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId risk, onto.AddConcept("Risk"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId finding,
                            onto.AddConcept("Finding"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId bbw,
                            onto.AddConcept("Black Box Warning"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId adverse,
                            onto.AddConcept("Adverse Effect"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId contra,
                            onto.AddConcept("Contra Indication"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId dosage,
                            onto.AddConcept("Dosage"));
  MEDRELAX_ASSIGN_OR_RETURN(OntologyConceptId route, onto.AddConcept("Route"));

  MEDRELAX_RETURN_NOT_OK(onto.AddRelationship("treat", drug, indication).status());
  MEDRELAX_RETURN_NOT_OK(onto.AddRelationship("cause", drug, risk).status());
  MEDRELAX_RETURN_NOT_OK(
      onto.AddRelationship("hasFinding", indication, finding).status());
  MEDRELAX_RETURN_NOT_OK(
      onto.AddRelationship("hasFinding", risk, finding).status());
  MEDRELAX_RETURN_NOT_OK(
      onto.AddRelationship("hasDosage", drug, dosage).status());
  MEDRELAX_RETURN_NOT_OK(onto.AddRelationship("hasRoute", drug, route).status());

  MEDRELAX_RETURN_NOT_OK(onto.AddSubConcept(bbw, risk));
  MEDRELAX_RETURN_NOT_OK(onto.AddSubConcept(adverse, risk));
  MEDRELAX_RETURN_NOT_OK(onto.AddSubConcept(contra, risk));
  return onto;
}

Result<Figure4Fixture> BuildFigure4Fixture() {
  Figure4Fixture fx;
  MEDRELAX_ASSIGN_OR_RETURN(fx.root, fx.dag.AddConcept("snomed ct concept"));
  MEDRELAX_ASSIGN_OR_RETURN(ConceptId clinical_finding,
                            fx.dag.AddConcept("clinical finding"));
  MEDRELAX_ASSIGN_OR_RETURN(ConceptId pain, fx.dag.AddConcept("pain"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.pain_of_head_and_neck_region,
                            fx.dag.AddConcept("pain of head and neck region"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.craniofacial_pain,
                            fx.dag.AddConcept("craniofacial pain"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.pain_in_throat,
                            fx.dag.AddConcept("pain in throat"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.headache, fx.dag.AddConcept("headache"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.frequent_headache,
                            fx.dag.AddConcept("frequent headache"));

  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSynonym(fx.headache, "cephalalgia"));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSynonym(fx.pain_in_throat, "sore throat"));

  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(clinical_finding, fx.root));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(pain, clinical_finding));
  MEDRELAX_RETURN_NOT_OK(
      fx.dag.AddSubsumption(fx.pain_of_head_and_neck_region, pain));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(
      fx.craniofacial_pain, fx.pain_of_head_and_neck_region));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(
      fx.pain_in_throat, fx.pain_of_head_and_neck_region));
  MEDRELAX_RETURN_NOT_OK(
      fx.dag.AddSubsumption(fx.headache, fx.craniofacial_pain));
  MEDRELAX_RETURN_NOT_OK(
      fx.dag.AddSubsumption(fx.frequent_headache, fx.headache));

  // Figure 4's printed Indication-context numbers: 18878 + 283 + 3 = 19164.
  fx.indication_direct_counts = {
      {fx.headache, 18878.0},
      {fx.pain_in_throat, 283.0},
      {fx.pain_of_head_and_neck_region, 3.0},
  };
  // The figure prints only the Risk-context total (1656); the split below
  // is our choice, consistent with that total.
  fx.risk_direct_counts = {
      {fx.headache, 1500.0},
      {fx.pain_in_throat, 153.0},
      {fx.pain_of_head_and_neck_region, 3.0},
  };
  return fx;
}

Result<Figure5Fixture> BuildFigure5Fixture() {
  Figure5Fixture fx;
  MEDRELAX_ASSIGN_OR_RETURN(fx.root, fx.dag.AddConcept("snomed ct concept"));
  MEDRELAX_ASSIGN_OR_RETURN(ConceptId clinical_finding,
                            fx.dag.AddConcept("clinical finding"));
  MEDRELAX_ASSIGN_OR_RETURN(ConceptId disorder,
                            fx.dag.AddConcept("disorder of body system"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.kidney_disease,
                            fx.dag.AddConcept("kidney disease"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.hypertensive_renal_disease,
                            fx.dag.AddConcept("hypertensive renal disease"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.hypertensive_nephropathy,
                            fx.dag.AddConcept("hypertensive nephropathy"));
  MEDRELAX_ASSIGN_OR_RETURN(
      fx.ckd_stage1_due_to_hypertension,
      fx.dag.AddConcept(
          "chronic kidney disease stage 1 due to hypertension"));

  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSynonym(fx.kidney_disease, "nephropathy"));
  MEDRELAX_RETURN_NOT_OK(
      fx.dag.AddSynonym(fx.kidney_disease, "renal disease"));

  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(clinical_finding, fx.root));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(disorder, clinical_finding));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(fx.kidney_disease, disorder));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(fx.hypertensive_renal_disease,
                                               fx.kidney_disease));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(
      fx.hypertensive_nephropathy, fx.hypertensive_renal_disease));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(
      fx.ckd_stage1_due_to_hypertension, fx.hypertensive_nephropathy));
  return fx;
}

Result<Figure6Fixture> BuildFigure6Fixture() {
  Figure6Fixture fx;
  MEDRELAX_ASSIGN_OR_RETURN(fx.root, fx.dag.AddConcept("snomed ct concept"));
  // The apex the 4-hop path climbs to (3 generalizations from pneumonia,
  // 1 from lower respiratory tract infection).
  MEDRELAX_ASSIGN_OR_RETURN(
      ConceptId respiratory_disorder,
      fx.dag.AddConcept("disorder of respiratory system"));
  MEDRELAX_ASSIGN_OR_RETURN(
      ConceptId lower_respiratory_disorder,
      fx.dag.AddConcept("disorder of lower respiratory system"));
  MEDRELAX_ASSIGN_OR_RETURN(ConceptId lung_disease,
                            fx.dag.AddConcept("disease of lung"));
  MEDRELAX_ASSIGN_OR_RETURN(fx.pneumonia, fx.dag.AddConcept("pneumonia"));
  MEDRELAX_ASSIGN_OR_RETURN(
      fx.lower_respiratory_tract_infection,
      fx.dag.AddConcept("lower respiratory tract infection"));

  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(respiratory_disorder, fx.root));
  MEDRELAX_RETURN_NOT_OK(
      fx.dag.AddSubsumption(lower_respiratory_disorder, respiratory_disorder));
  MEDRELAX_RETURN_NOT_OK(
      fx.dag.AddSubsumption(lung_disease, lower_respiratory_disorder));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(fx.pneumonia, lung_disease));
  MEDRELAX_RETURN_NOT_OK(fx.dag.AddSubsumption(
      fx.lower_respiratory_tract_infection, respiratory_disorder));

  fx.intermediates = {lung_disease, lower_respiratory_disorder,
                      respiratory_disorder};
  return fx;
}

}  // namespace medrelax
