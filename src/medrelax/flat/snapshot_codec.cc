#include "medrelax/flat/snapshot_codec.h"

#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "medrelax/common/string_util.h"
#include "medrelax/flat/image_writer.h"

namespace medrelax::flat {

namespace {

/// Accumulates one offsets+blob string-table section pair.
struct StringTableBuilder {
  std::vector<uint64_t> offsets{0};
  std::string blob;

  void Add(std::string_view s) {
    blob.append(s);
    offsets.push_back(blob.size());
  }

  void AddTo(FlatImageWriter* writer, SectionId offsets_id,
             SectionId blob_id) const {
    writer->AddArray<uint64_t>(offsets_id, offsets);
    writer->AddBytes(blob_id, std::as_bytes(std::span<const char>(
                                  blob.data(), blob.size())));
  }
};

/// Decodes one CSR edge side into per-concept adjacency vectors,
/// bounds-checking every target and counting shortcuts for the
/// cross-check against meta.
Status DecodeEdgeCsr(const FlatImageView& image, SectionId offsets_id,
                     SectionId edges_id, size_t num_concepts,
                     uint64_t num_edges,
                     std::vector<std::vector<DagEdge>>* out,
                     uint64_t* shortcut_count) {
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                            image.SectionArray<uint64_t>(offsets_id));
  if (offsets.size() != num_concepts + 1) {
    return Status::InvalidArgument(
        StrFormat("edge CSR %u: %zu offsets, want %zu",
                  static_cast<unsigned>(offsets_id), offsets.size(),
                  num_concepts + 1));
  }
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const FlatEdge> edges,
                            image.SectionArray<FlatEdge>(edges_id));
  if (edges.size() != num_edges || offsets.front() != 0 ||
      offsets.back() != edges.size()) {
    return Status::InvalidArgument(
        StrFormat("edge CSR %u: %zu edges do not match the declared %llu",
                  static_cast<unsigned>(edges_id), edges.size(),
                  static_cast<unsigned long long>(num_edges)));
  }
  out->assign(num_concepts, {});
  uint64_t shortcuts = 0;
  for (size_t id = 0; id < num_concepts; ++id) {
    if (offsets[id] > offsets[id + 1]) {
      return Status::InvalidArgument(
          StrFormat("edge CSR %u: offsets decrease at concept %zu",
                    static_cast<unsigned>(offsets_id), id));
    }
    std::vector<DagEdge>& adjacency = (*out)[id];
    adjacency.reserve(offsets[id + 1] - offsets[id]);
    for (uint64_t j = offsets[id]; j < offsets[id + 1]; ++j) {
      const FlatEdge& e = edges[j];
      if (e.target >= num_concepts) {
        return Status::InvalidArgument(
            StrFormat("edge CSR %u: edge %llu targets concept %u, only %zu"
                      " exist",
                      static_cast<unsigned>(edges_id),
                      static_cast<unsigned long long>(j),
                      static_cast<unsigned>(e.target), num_concepts));
      }
      if ((e.flags & ~kEdgeFlagShortcut) != 0) {
        return Status::InvalidArgument(
            StrFormat("edge CSR %u: unknown edge flags %#x",
                      static_cast<unsigned>(edges_id),
                      static_cast<unsigned>(e.flags)));
      }
      const bool is_shortcut = (e.flags & kEdgeFlagShortcut) != 0;
      adjacency.push_back(DagEdge{e.target, e.original_distance, is_shortcut});
      if (is_shortcut) ++shortcuts;
    }
  }
  *shortcut_count = shortcuts;
  return Status::OK();
}

/// Decodes a CSR of uint32 values per concept, bounds-checking each value
/// against `value_limit`, inserting only non-empty groups (parity with
/// the ingestion builder, which never stores empty vectors).
template <typename ValueT>
Status DecodeConceptCsr(const FlatImageView& image, SectionId offsets_id,
                        SectionId values_id, size_t num_concepts,
                        uint64_t value_limit, const char* what,
                        std::unordered_map<ConceptId, std::vector<ValueT>>* out) {
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                            image.SectionArray<uint64_t>(offsets_id));
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const uint32_t> values,
                            image.SectionArray<uint32_t>(values_id));
  if (offsets.size() != num_concepts + 1 || offsets.front() != 0 ||
      offsets.back() != values.size()) {
    return Status::InvalidArgument(
        StrFormat("%s index: offsets do not span the %zu values", what,
                  values.size()));
  }
  for (size_t id = 0; id < num_concepts; ++id) {
    if (offsets[id] > offsets[id + 1]) {
      return Status::InvalidArgument(
          StrFormat("%s index: offsets decrease at concept %zu", what, id));
    }
    const uint64_t begin = offsets[id];
    const uint64_t end = offsets[id + 1];
    if (begin == end) continue;
    std::vector<ValueT> group;
    group.reserve(end - begin);
    for (uint64_t j = begin; j < end; ++j) {
      if (values[j] >= value_limit) {
        return Status::InvalidArgument(
            StrFormat("%s index: value %u at %llu exceeds limit %llu", what,
                      static_cast<unsigned>(values[j]),
                      static_cast<unsigned long long>(j),
                      static_cast<unsigned long long>(value_limit)));
      }
      group.push_back(static_cast<ValueT>(values[j]));
    }
    out->emplace(static_cast<ConceptId>(id), std::move(group));
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshotImage(const ConceptDag& dag, const KnowledgeBase& kb,
                          const IngestionResult& ingestion,
                          const ImageSnapshotConfig& config,
                          uint64_t options_fingerprint,
                          const std::string& path) {
  const size_t n = dag.num_concepts();
  const size_t num_contexts = ingestion.contexts.size();
  if (ingestion.frequencies.num_concepts() != n ||
      ingestion.frequencies.num_contexts() != num_contexts) {
    return Status::InvalidArgument(
        "frequency model does not match the DAG and context registry");
  }
  if (ingestion.flagged.size() != n) {
    return Status::InvalidArgument("flagged vector does not cover the DAG");
  }

  FlatImageWriter writer;

  // DAG adjacency, CSR per side. Edge order inside a concept is the
  // builder's insertion order, preserved so a rehydrated DAG iterates
  // identically (byte-identical golden replays depend on this).
  const auto add_edge_csr = [&writer, &dag, n](
                                SectionId offsets_id, SectionId edges_id,
                                const std::vector<DagEdge>& (ConceptDag::*side)(
                                    ConceptId) const) {
    std::vector<uint64_t> offsets;
    offsets.reserve(n + 1);
    offsets.push_back(0);
    std::vector<FlatEdge> edges;
    edges.reserve(dag.num_edges());
    for (ConceptId id = 0; id < n; ++id) {
      for (const DagEdge& e : (dag.*side)(id)) {
        edges.push_back(FlatEdge{e.target, e.original_distance,
                                 e.is_shortcut ? kEdgeFlagShortcut : 0u});
      }
      offsets.push_back(edges.size());
    }
    writer.AddArray<uint64_t>(offsets_id, offsets);
    writer.AddArray<FlatEdge>(edges_id, edges);
  };
  add_edge_csr(SectionId::kDagParentOffsets, SectionId::kDagParentEdges,
               &ConceptDag::parents);
  add_edge_csr(SectionId::kDagChildOffsets, SectionId::kDagChildEdges,
               &ConceptDag::children);

  StringTableBuilder concept_names;
  for (ConceptId id = 0; id < n; ++id) concept_names.Add(dag.name(id));
  concept_names.AddTo(&writer, SectionId::kConceptNameOffsets,
                      SectionId::kConceptNameBlob);

  std::vector<uint64_t> synonym_groups;
  synonym_groups.reserve(n + 1);
  synonym_groups.push_back(0);
  StringTableBuilder synonym_names;
  uint64_t num_synonyms = 0;
  for (ConceptId id = 0; id < n; ++id) {
    for (const std::string& synonym : dag.synonyms(id)) {
      synonym_names.Add(synonym);
      ++num_synonyms;
    }
    synonym_groups.push_back(num_synonyms);
  }
  writer.AddArray<uint64_t>(SectionId::kSynonymGroupOffsets, synonym_groups);
  synonym_names.AddTo(&writer, SectionId::kSynonymNameOffsets,
                      SectionId::kSynonymNameBlob);

  // The dominant payload: the full normalized frequency table, laid out
  // exactly as FrequencyModel keeps it so the reader can borrow it
  // zero-copy.
  writer.AddArray<double>(SectionId::kFrequencyTable,
                          ingestion.frequencies.NormalizedTable());

  StringTableBuilder context_names;
  for (const Context& context : ingestion.contexts.contexts()) {
    context_names.Add(context.domain);
    context_names.Add(context.relationship);
    context_names.Add(context.range);
  }
  context_names.AddTo(&writer, SectionId::kContextNameOffsets,
                      SectionId::kContextNameBlob);

  std::vector<uint32_t> mapping_pairs;
  mapping_pairs.reserve(2 * ingestion.mappings.size());
  for (const auto& [instance_id, concept_id] : ingestion.mappings) {
    mapping_pairs.push_back(instance_id);
    mapping_pairs.push_back(concept_id);
  }
  writer.AddArray<uint32_t>(SectionId::kMappingPairs, mapping_pairs);

  std::vector<uint64_t> flagged_bits((n + 63) / 64, 0);
  for (ConceptId id = 0; id < n; ++id) {
    if (ingestion.flagged[id]) {
      flagged_bits[id / 64] |= uint64_t{1} << (id % 64);
    }
  }
  writer.AddArray<uint64_t>(SectionId::kFlaggedBits, flagged_bits);

  const auto add_concept_csr = [&writer, n](
                                   SectionId offsets_id, SectionId values_id,
                                   const auto& index) {
    std::vector<uint64_t> offsets;
    offsets.reserve(n + 1);
    offsets.push_back(0);
    std::vector<uint32_t> values;
    for (ConceptId id = 0; id < n; ++id) {
      auto it = index.find(id);
      if (it != index.end()) {
        for (uint32_t value : it->second) values.push_back(value);
      }
      offsets.push_back(values.size());
    }
    writer.AddArray<uint64_t>(offsets_id, offsets);
    writer.AddArray<uint32_t>(values_id, values);
  };
  add_concept_csr(SectionId::kConceptInstanceOffsets,
                  SectionId::kConceptInstanceValues,
                  ingestion.concept_instances);
  add_concept_csr(SectionId::kConceptContextOffsets,
                  SectionId::kConceptContextValues,
                  ingestion.concept_contexts);

  const DomainOntology& ontology = kb.ontology;
  StringTableBuilder ontology_names;
  for (OntologyConceptId id = 0; id < ontology.num_concepts(); ++id) {
    ontology_names.Add(ontology.concept_name(id));
  }
  ontology_names.AddTo(&writer, SectionId::kOntologyNameOffsets,
                       SectionId::kOntologyNameBlob);

  StringTableBuilder relationship_names;
  std::vector<uint32_t> relationship_endpoints;
  relationship_endpoints.reserve(2 * ontology.num_relationships());
  for (const Relationship& rel : ontology.relationships()) {
    relationship_names.Add(rel.name);
    relationship_endpoints.push_back(rel.domain);
    relationship_endpoints.push_back(rel.range);
  }
  relationship_names.AddTo(&writer, SectionId::kRelationshipNameOffsets,
                           SectionId::kRelationshipNameBlob);
  writer.AddArray<uint32_t>(SectionId::kRelationshipEndpoints,
                            relationship_endpoints);

  std::vector<uint32_t> subconcept_pairs;
  for (OntologyConceptId parent = 0; parent < ontology.num_concepts();
       ++parent) {
    for (OntologyConceptId child : ontology.SubConcepts(parent)) {
      subconcept_pairs.push_back(child);
      subconcept_pairs.push_back(parent);
    }
  }
  writer.AddArray<uint32_t>(SectionId::kSubConceptPairs, subconcept_pairs);

  StringTableBuilder instance_names;
  std::vector<uint32_t> instance_concepts;
  instance_concepts.reserve(kb.instances.num_instances());
  for (InstanceId id = 0; id < kb.instances.num_instances(); ++id) {
    const Instance& instance = kb.instances.instance(id);
    instance_names.Add(instance.name);
    instance_concepts.push_back(instance.concept_id);
  }
  instance_names.AddTo(&writer, SectionId::kInstanceNameOffsets,
                       SectionId::kInstanceNameBlob);
  writer.AddArray<uint32_t>(SectionId::kInstanceConcepts, instance_concepts);

  std::vector<uint32_t> triples;
  triples.reserve(3 * kb.triples.num_triples());
  for (const Triple& triple : kb.triples.triples()) {
    triples.push_back(triple.subject);
    triples.push_back(triple.relationship);
    triples.push_back(triple.object);
  }
  writer.AddArray<uint32_t>(SectionId::kTriples, triples);

  FlatMeta meta{};
  meta.num_concepts = n;
  meta.num_edges = dag.num_edges();
  meta.num_shortcut_edges = dag.num_shortcut_edges();
  meta.num_synonyms = num_synonyms;
  meta.num_contexts = num_contexts;
  meta.num_mappings = ingestion.mappings.size();
  meta.num_ontology_concepts = ontology.num_concepts();
  meta.num_relationships = ontology.num_relationships();
  meta.num_subconcept_pairs = subconcept_pairs.size() / 2;
  meta.num_instances = kb.instances.num_instances();
  meta.num_triples = kb.triples.num_triples();
  meta.unmapped_instances = ingestion.unmapped_instances;
  meta.shortcuts_added = ingestion.shortcuts_added;
  meta.options_fingerprint = options_fingerprint;
  meta.relax_top_k = config.relaxation.top_k;
  meta.ic_smoothing = config.ingestion.ic_smoothing;
  meta.generalization_weight = config.similarity.generalization_weight;
  meta.specialization_weight = config.similarity.specialization_weight;
  const std::vector<ConceptId> roots = dag.Roots();
  meta.root_concept = roots.size() == 1 ? roots[0] : kInvalidConcept;
  meta.relax_radius = config.relaxation.radius;
  meta.relax_max_radius = config.relaxation.max_radius;
  meta.max_shortcut_distance = config.ingestion.max_shortcut_distance;
  meta.flags =
      (config.ingestion.use_tfidf ? kMetaFlagUseTfidf : 0u) |
      (config.ingestion.add_shortcut_edges ? kMetaFlagAddShortcutEdges : 0u) |
      (config.similarity.use_path_penalty ? kMetaFlagUsePathPenalty : 0u) |
      (config.similarity.use_context ? kMetaFlagUseContext : 0u) |
      (config.similarity.memoize_geometry ? kMetaFlagMemoizeGeometry : 0u) |
      (config.relaxation.dynamic_radius ? kMetaFlagDynamicRadius : 0u) |
      (config.use_exact_mapper ? kMetaFlagExactMapper : 0u) |
      (config.precompute_similarities ? kMetaFlagPrecomputeSimilarities : 0u);
  writer.AddArray<FlatMeta>(SectionId::kMeta,
                            std::span<const FlatMeta>(&meta, 1));

  return writer.WriteToFile(path);
}

Result<DecodedSnapshotImage> ReadSnapshotImage(const std::string& path) {
  MEDRELAX_ASSIGN_OR_RETURN(std::unique_ptr<FlatImageView> image,
                            FlatImageView::Open(path));
  const FlatMeta meta = image->meta();
  const size_t n = meta.num_concepts;
  const size_t num_contexts = meta.num_contexts;

  // --- External DAG: names, synonyms, both adjacency sides.
  MEDRELAX_ASSIGN_OR_RETURN(
      FlatImageView::StringTableView name_table,
      image->Strings(SectionId::kConceptNameOffsets,
                     SectionId::kConceptNameBlob, n));
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) names.emplace_back(name_table.at(i));

  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const uint64_t> synonym_groups,
      image->SectionArray<uint64_t>(SectionId::kSynonymGroupOffsets));
  MEDRELAX_ASSIGN_OR_RETURN(
      FlatImageView::StringTableView synonym_table,
      image->Strings(SectionId::kSynonymNameOffsets,
                     SectionId::kSynonymNameBlob, meta.num_synonyms));
  if (synonym_groups.size() != n + 1 || synonym_groups.front() != 0 ||
      synonym_groups.back() != meta.num_synonyms) {
    return Status::InvalidArgument(
        "synonym group offsets do not span the synonym table");
  }
  std::vector<std::vector<std::string>> synonyms(n);
  for (size_t id = 0; id < n; ++id) {
    if (synonym_groups[id] > synonym_groups[id + 1]) {
      return Status::InvalidArgument(
          StrFormat("synonym group offsets decrease at concept %zu", id));
    }
    synonyms[id].reserve(synonym_groups[id + 1] - synonym_groups[id]);
    for (uint64_t j = synonym_groups[id]; j < synonym_groups[id + 1]; ++j) {
      synonyms[id].emplace_back(synonym_table.at(j));
    }
  }

  std::vector<std::vector<DagEdge>> parents;
  std::vector<std::vector<DagEdge>> children;
  uint64_t parent_shortcuts = 0;
  uint64_t child_shortcuts = 0;
  Status csr_status =
      DecodeEdgeCsr(*image, SectionId::kDagParentOffsets,
                    SectionId::kDagParentEdges, n, meta.num_edges, &parents,
                    &parent_shortcuts);
  if (!csr_status.ok()) return csr_status;
  csr_status =
      DecodeEdgeCsr(*image, SectionId::kDagChildOffsets,
                    SectionId::kDagChildEdges, n, meta.num_edges, &children,
                    &child_shortcuts);
  if (!csr_status.ok()) return csr_status;
  if (parent_shortcuts != meta.num_shortcut_edges ||
      child_shortcuts != meta.num_shortcut_edges) {
    return Status::InvalidArgument(
        StrFormat("shortcut edge count mismatch: meta declares %llu, sides"
                  " hold %llu / %llu",
                  static_cast<unsigned long long>(meta.num_shortcut_edges),
                  static_cast<unsigned long long>(parent_shortcuts),
                  static_cast<unsigned long long>(child_shortcuts)));
  }

  // --- KB rebuild: ids are insertion-order dense on both sides, so
  // re-adding in serialized order reproduces every id exactly.
  KnowledgeBase kb;
  MEDRELAX_ASSIGN_OR_RETURN(
      FlatImageView::StringTableView ontology_names,
      image->Strings(SectionId::kOntologyNameOffsets,
                     SectionId::kOntologyNameBlob,
                     meta.num_ontology_concepts));
  for (size_t i = 0; i < meta.num_ontology_concepts; ++i) {
    MEDRELAX_ASSIGN_OR_RETURN(
        OntologyConceptId id,
        kb.ontology.AddConcept(std::string(ontology_names.at(i))));
    if (id != i) {
      return Status::Internal("ontology concept ids did not round-trip");
    }
  }

  MEDRELAX_ASSIGN_OR_RETURN(
      FlatImageView::StringTableView relationship_names,
      image->Strings(SectionId::kRelationshipNameOffsets,
                     SectionId::kRelationshipNameBlob,
                     meta.num_relationships));
  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const uint32_t> endpoints,
      image->SectionArray<uint32_t>(SectionId::kRelationshipEndpoints));
  if (endpoints.size() != 2 * meta.num_relationships) {
    return Status::InvalidArgument(
        StrFormat("relationship endpoints: %zu values, want %llu",
                  endpoints.size(),
                  static_cast<unsigned long long>(2 * meta.num_relationships)));
  }
  for (size_t i = 0; i < meta.num_relationships; ++i) {
    const uint32_t domain = endpoints[2 * i];
    const uint32_t range = endpoints[2 * i + 1];
    if (domain >= meta.num_ontology_concepts ||
        range >= meta.num_ontology_concepts) {
      return Status::InvalidArgument(
          StrFormat("relationship %zu endpoints out of range", i));
    }
    MEDRELAX_ASSIGN_OR_RETURN(
        RelationshipId id,
        kb.ontology.AddRelationship(std::string(relationship_names.at(i)),
                                    domain, range));
    if (id != i) {
      return Status::Internal("relationship ids did not round-trip");
    }
  }

  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const uint32_t> subconcept_pairs,
      image->SectionArray<uint32_t>(SectionId::kSubConceptPairs));
  if (subconcept_pairs.size() != 2 * meta.num_subconcept_pairs) {
    return Status::InvalidArgument(
        StrFormat("subconcept pairs: %zu values, want %llu",
                  subconcept_pairs.size(),
                  static_cast<unsigned long long>(
                      2 * meta.num_subconcept_pairs)));
  }
  for (size_t i = 0; i < meta.num_subconcept_pairs; ++i) {
    const uint32_t child = subconcept_pairs[2 * i];
    const uint32_t parent = subconcept_pairs[2 * i + 1];
    if (child >= meta.num_ontology_concepts ||
        parent >= meta.num_ontology_concepts) {
      return Status::InvalidArgument(
          StrFormat("subconcept pair %zu out of range", i));
    }
    Status sub_status = kb.ontology.AddSubConcept(child, parent);
    if (!sub_status.ok()) return sub_status;
  }

  MEDRELAX_ASSIGN_OR_RETURN(
      FlatImageView::StringTableView instance_names,
      image->Strings(SectionId::kInstanceNameOffsets,
                     SectionId::kInstanceNameBlob, meta.num_instances));
  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const uint32_t> instance_concepts,
      image->SectionArray<uint32_t>(SectionId::kInstanceConcepts));
  if (instance_concepts.size() != meta.num_instances) {
    return Status::InvalidArgument(
        StrFormat("instance concepts: %zu values, want %llu",
                  instance_concepts.size(),
                  static_cast<unsigned long long>(meta.num_instances)));
  }
  for (size_t i = 0; i < meta.num_instances; ++i) {
    if (instance_concepts[i] >= meta.num_ontology_concepts) {
      return Status::InvalidArgument(
          StrFormat("instance %zu typed with unknown ontology concept %u", i,
                    static_cast<unsigned>(instance_concepts[i])));
    }
    MEDRELAX_ASSIGN_OR_RETURN(
        InstanceId id,
        kb.instances.AddInstance(std::string(instance_names.at(i)),
                                 instance_concepts[i]));
    if (id != i) {
      return Status::Internal("instance ids did not round-trip");
    }
  }

  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const uint32_t> triples,
      image->SectionArray<uint32_t>(SectionId::kTriples));
  if (triples.size() != 3 * meta.num_triples) {
    return Status::InvalidArgument(
        StrFormat("triples: %zu values, want %llu", triples.size(),
                  static_cast<unsigned long long>(3 * meta.num_triples)));
  }
  for (size_t i = 0; i < meta.num_triples; ++i) {
    const uint32_t subject = triples[3 * i];
    const uint32_t relationship = triples[3 * i + 1];
    const uint32_t object = triples[3 * i + 2];
    if (subject >= meta.num_instances || object >= meta.num_instances ||
        relationship >= meta.num_relationships) {
      return Status::InvalidArgument(
          StrFormat("triple %zu references unknown ids", i));
    }
    Status triple_status =
        kb.triples.AddTriple(subject, relationship, object);
    if (!triple_status.ok()) return triple_status;
  }

  // --- Ingestion artifacts.
  IngestionResult ingestion;
  MEDRELAX_ASSIGN_OR_RETURN(
      FlatImageView::StringTableView context_names,
      image->Strings(SectionId::kContextNameOffsets,
                     SectionId::kContextNameBlob, 3 * num_contexts));
  for (size_t i = 0; i < num_contexts; ++i) {
    Context context{std::string(context_names.at(3 * i)),
                    std::string(context_names.at(3 * i + 1)),
                    std::string(context_names.at(3 * i + 2))};
    const ContextId id = ingestion.contexts.Intern(context);
    if (id != i) {
      return Status::InvalidArgument(
          StrFormat("context %zu '%s' collides with an earlier context", i,
                    context.Label().c_str()));
    }
  }

  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const double> frequency_table,
      image->SectionArray<double>(SectionId::kFrequencyTable));
  // Divide instead of multiplying: (num_contexts + 1) * n can wrap for
  // corrupt meta counts (Open bounds each against the file size, but a
  // product of two large-yet-plausible counts can still overflow), and
  // a wrapped product that happens to equal the real table size would
  // hand FromNormalizedTable dimensions the table does not have.
  const size_t rows = num_contexts + 1;
  if (frequency_table.size() % rows != 0 ||
      frequency_table.size() / rows != n) {
    return Status::InvalidArgument(
        StrFormat("frequency table: %zu values do not factor as"
                  " (%zu contexts + 1) x %zu concepts",
                  frequency_table.size(), num_contexts, n));
  }
  ingestion.frequencies = FrequencyModel::FromNormalizedTable(
      n, num_contexts, meta.ic_smoothing, frequency_table);

  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const uint32_t> mapping_pairs,
      image->SectionArray<uint32_t>(SectionId::kMappingPairs));
  if (mapping_pairs.size() != 2 * meta.num_mappings) {
    return Status::InvalidArgument(
        StrFormat("mapping pairs: %zu values, want %llu",
                  mapping_pairs.size(),
                  static_cast<unsigned long long>(2 * meta.num_mappings)));
  }
  ingestion.mappings.reserve(meta.num_mappings);
  for (size_t i = 0; i < meta.num_mappings; ++i) {
    const uint32_t instance_id = mapping_pairs[2 * i];
    const uint32_t concept_id = mapping_pairs[2 * i + 1];
    if (instance_id >= meta.num_instances || concept_id >= n) {
      return Status::InvalidArgument(
          StrFormat("mapping %zu references unknown ids", i));
    }
    ingestion.mappings.emplace_back(instance_id, concept_id);
  }

  MEDRELAX_ASSIGN_OR_RETURN(
      std::span<const uint64_t> flagged_bits,
      image->SectionArray<uint64_t>(SectionId::kFlaggedBits));
  if (flagged_bits.size() != (n + 63) / 64) {
    return Status::InvalidArgument(
        StrFormat("flagged bitset: %zu words, want %zu", flagged_bits.size(),
                  (n + 63) / 64));
  }
  ingestion.flagged.assign(n, false);
  for (size_t id = 0; id < n; ++id) {
    ingestion.flagged[id] =
        (flagged_bits[id / 64] >> (id % 64) & uint64_t{1}) != 0;
  }

  Status index_status = DecodeConceptCsr<InstanceId>(
      *image, SectionId::kConceptInstanceOffsets,
      SectionId::kConceptInstanceValues, n, meta.num_instances,
      "concept-instance", &ingestion.concept_instances);
  if (!index_status.ok()) return index_status;
  index_status = DecodeConceptCsr<ContextId>(
      *image, SectionId::kConceptContextOffsets,
      SectionId::kConceptContextValues, n, num_contexts, "concept-context",
      &ingestion.concept_contexts);
  if (!index_status.ok()) return index_status;

  ingestion.unmapped_instances = meta.unmapped_instances;
  ingestion.shortcuts_added = meta.shortcuts_added;

  // --- Options round-trip.
  ImageSnapshotConfig config;
  config.ingestion.use_tfidf = (meta.flags & kMetaFlagUseTfidf) != 0;
  config.ingestion.add_shortcut_edges =
      (meta.flags & kMetaFlagAddShortcutEdges) != 0;
  config.ingestion.max_shortcut_distance = meta.max_shortcut_distance;
  config.ingestion.ic_smoothing = meta.ic_smoothing;
  config.similarity.generalization_weight = meta.generalization_weight;
  config.similarity.specialization_weight = meta.specialization_weight;
  config.similarity.use_path_penalty =
      (meta.flags & kMetaFlagUsePathPenalty) != 0;
  config.similarity.use_context = (meta.flags & kMetaFlagUseContext) != 0;
  config.similarity.memoize_geometry =
      (meta.flags & kMetaFlagMemoizeGeometry) != 0;
  config.relaxation.radius = meta.relax_radius;
  config.relaxation.dynamic_radius =
      (meta.flags & kMetaFlagDynamicRadius) != 0;
  config.relaxation.max_radius = meta.relax_max_radius;
  config.relaxation.top_k = meta.relax_top_k;
  config.use_exact_mapper = (meta.flags & kMetaFlagExactMapper) != 0;
  config.precompute_similarities =
      (meta.flags & kMetaFlagPrecomputeSimilarities) != 0;

  DecodedSnapshotImage decoded;
  decoded.image = std::move(image);
  decoded.dag = ConceptDag::Restore(std::move(names), std::move(synonyms),
                                    std::move(parents), std::move(children),
                                    meta.num_edges, meta.num_shortcut_edges);
  decoded.kb = std::move(kb);
  decoded.ingestion = std::move(ingestion);
  decoded.config = config;
  decoded.options_fingerprint = meta.options_fingerprint;
  return decoded;
}

}  // namespace medrelax::flat
