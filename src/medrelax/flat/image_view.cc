#include "medrelax/flat/image_view.h"

#include <cstring>
#include <utility>

namespace medrelax::flat {

Result<std::unique_ptr<FlatImageView>> FlatImageView::Open(
    const std::string& path) {
  MEDRELAX_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const std::span<const std::byte> bytes = file.bytes();

  // 1. Header fits and identifies as ours. memcpy, not reinterpret: the
  // header copy is cheap and sidesteps any alignment assumption about
  // the mapping's first bytes (page-aligned in practice, but the checks
  // below must not depend on that).
  if (bytes.size() < sizeof(ImageHeader)) {
    return Status::InvalidArgument(
        StrFormat("'%s': %zu bytes is too small for an image header",
                  path.c_str(), bytes.size()));
  }
  ImageHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kImageMagic, sizeof(kImageMagic)) != 0) {
    return Status::InvalidArgument(
        StrFormat("'%s': bad magic, not a medrelax image", path.c_str()));
  }
  if (header.endian != kEndianMarker) {
    return Status::InvalidArgument(
        StrFormat("'%s': endianness marker mismatch (image written on an"
                  " opposite-endian host)",
                  path.c_str()));
  }
  if (header.version != kImageVersion) {
    return Status::FailedPrecondition(
        StrFormat("'%s': image format version %u, this build reads %u",
                  path.c_str(), static_cast<unsigned>(header.version),
                  static_cast<unsigned>(kImageVersion)));
  }
  // 2. Declared size matches what the filesystem handed us — catches
  // truncation and concatenation before any offset is trusted.
  if (header.file_size != bytes.size()) {
    return Status::InvalidArgument(
        StrFormat("'%s': header declares %llu bytes, file has %zu"
                  " (truncated or corrupt)",
                  path.c_str(),
                  static_cast<unsigned long long>(header.file_size),
                  bytes.size()));
  }
  // 3. Whole-payload checksum — after this, remaining failures mean a
  // malformed producer, not bit rot.
  const uint64_t checksum = FnvChecksum(bytes.subspan(sizeof(ImageHeader)));
  if (checksum != header.payload_checksum) {
    return Status::InvalidArgument(
        StrFormat("'%s': payload checksum mismatch (stored %016llx,"
                  " computed %016llx)",
                  path.c_str(),
                  static_cast<unsigned long long>(header.payload_checksum),
                  static_cast<unsigned long long>(checksum)));
  }
  // 4. Directory bounds, then per-entry bounds/alignment/uniqueness.
  const uint64_t dir_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.directory_offset < sizeof(ImageHeader) ||
      header.directory_offset > bytes.size() ||
      dir_bytes > bytes.size() - header.directory_offset) {
    return Status::InvalidArgument(
        StrFormat("'%s': section directory out of bounds", path.c_str()));
  }

  auto view = std::make_unique<FlatImageView>(OpenTag{}, std::move(file));
  view->sections_.reserve(header.section_count);
  const std::byte* base = view->file_.data();
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, base + header.directory_offset +
                            static_cast<uint64_t>(i) * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.offset > view->file_.size() ||
        entry.size > view->file_.size() - entry.offset) {
      return Status::InvalidArgument(
          StrFormat("'%s': section %u [offset=%llu size=%llu] exceeds the"
                    " %zu-byte file",
                    path.c_str(), static_cast<unsigned>(entry.id),
                    static_cast<unsigned long long>(entry.offset),
                    static_cast<unsigned long long>(entry.size),
                    view->file_.size()));
    }
    if (entry.offset % kSectionAlignment != 0) {
      return Status::InvalidArgument(
          StrFormat("'%s': section %u offset %llu breaks the %llu-byte"
                    " alignment rule",
                    path.c_str(), static_cast<unsigned>(entry.id),
                    static_cast<unsigned long long>(entry.offset),
                    static_cast<unsigned long long>(kSectionAlignment)));
    }
    if (!view->sections_.emplace(entry.id, entry).second) {
      return Status::InvalidArgument(
          StrFormat("'%s': duplicate section id %u", path.c_str(),
                    static_cast<unsigned>(entry.id)));
    }
  }
  // 5. The meta section is mandatory and exactly one FlatMeta.
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const FlatMeta> meta,
                            view->SectionArray<FlatMeta>(SectionId::kMeta));
  if (meta.size() != 1) {
    return Status::InvalidArgument(
        StrFormat("'%s': meta section holds %zu records, want 1",
                  path.c_str(), meta.size()));
  }
  view->meta_ = meta.data();
  return view;
}

Result<std::span<const std::byte>> FlatImageView::SectionBytes(
    SectionId id) const {
  auto it = sections_.find(static_cast<uint32_t>(id));
  if (it == sections_.end()) {
    return Status::InvalidArgument(
        StrFormat("image has no section %u", static_cast<unsigned>(id)));
  }
  return file_.bytes().subspan(it->second.offset, it->second.size);
}

Result<FlatImageView::StringTableView> FlatImageView::Strings(
    SectionId offsets_id, SectionId blob_id, size_t expected_count) const {
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                            SectionArray<uint64_t>(offsets_id));
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const std::byte> blob,
                            SectionBytes(blob_id));
  if (offsets.size() != expected_count + 1) {
    return Status::InvalidArgument(
        StrFormat("string table %u: %zu offsets, want %zu",
                  static_cast<unsigned>(offsets_id), offsets.size(),
                  expected_count + 1));
  }
  if (offsets.front() != 0 || offsets.back() != blob.size()) {
    return Status::InvalidArgument(
        StrFormat("string table %u: offsets do not span the %zu-byte blob",
                  static_cast<unsigned>(offsets_id), blob.size()));
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::InvalidArgument(
          StrFormat("string table %u: offsets decrease at index %zu",
                    static_cast<unsigned>(offsets_id), i));
    }
  }
  return StringTableView(offsets,
                         reinterpret_cast<const char*>(blob.data()));
}

}  // namespace medrelax::flat
