#include "medrelax/flat/image_view.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

namespace medrelax::flat {

Result<std::unique_ptr<FlatImageView>> FlatImageView::Open(
    const std::string& path) {
  MEDRELAX_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const std::span<const std::byte> bytes = file.bytes();

  // 1. Header fits and identifies as ours. memcpy, not reinterpret: the
  // header copy is cheap and sidesteps any alignment assumption about
  // the mapping's first bytes (page-aligned in practice, but the checks
  // below must not depend on that).
  if (bytes.size() < sizeof(ImageHeader)) {
    return Status::InvalidArgument(
        StrFormat("'%s': %zu bytes is too small for an image header",
                  path.c_str(), bytes.size()));
  }
  ImageHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kImageMagic, sizeof(kImageMagic)) != 0) {
    return Status::InvalidArgument(
        StrFormat("'%s': bad magic, not a medrelax image", path.c_str()));
  }
  if (header.endian != kEndianMarker) {
    return Status::InvalidArgument(
        StrFormat("'%s': endianness marker mismatch (image written on an"
                  " opposite-endian host)",
                  path.c_str()));
  }
  if (header.version != kImageVersion) {
    return Status::FailedPrecondition(
        StrFormat("'%s': image format version %u, this build reads %u",
                  path.c_str(), static_cast<unsigned>(header.version),
                  static_cast<unsigned>(kImageVersion)));
  }
  // 2. Declared size matches what the filesystem handed us — catches
  // truncation and concatenation before any offset is trusted.
  if (header.file_size != bytes.size()) {
    return Status::InvalidArgument(
        StrFormat("'%s': header declares %llu bytes, file has %zu"
                  " (truncated or corrupt)",
                  path.c_str(),
                  static_cast<unsigned long long>(header.file_size),
                  bytes.size()));
  }
  // 3. Whole-payload checksum — after this, remaining failures mean a
  // malformed producer, not bit rot.
  const uint64_t checksum = FnvChecksum(bytes.subspan(sizeof(ImageHeader)));
  if (checksum != header.payload_checksum) {
    return Status::InvalidArgument(
        StrFormat("'%s': payload checksum mismatch (stored %016llx,"
                  " computed %016llx)",
                  path.c_str(),
                  static_cast<unsigned long long>(header.payload_checksum),
                  static_cast<unsigned long long>(checksum)));
  }
  // 4. Directory bounds, then per-entry bounds/alignment/uniqueness.
  const uint64_t dir_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.directory_offset < sizeof(ImageHeader) ||
      header.directory_offset > bytes.size() ||
      dir_bytes > bytes.size() - header.directory_offset) {
    return Status::InvalidArgument(
        StrFormat("'%s': section directory out of bounds", path.c_str()));
  }

  auto view = std::make_unique<FlatImageView>(OpenTag{}, std::move(file));
  view->sections_.reserve(header.section_count);
  const std::byte* base = view->file_.data();
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, base + header.directory_offset +
                            static_cast<uint64_t>(i) * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.offset > view->file_.size() ||
        entry.size > view->file_.size() - entry.offset) {
      return Status::InvalidArgument(
          StrFormat("'%s': section %u [offset=%llu size=%llu] exceeds the"
                    " %zu-byte file",
                    path.c_str(), static_cast<unsigned>(entry.id),
                    static_cast<unsigned long long>(entry.offset),
                    static_cast<unsigned long long>(entry.size),
                    view->file_.size()));
    }
    if (entry.offset % kSectionAlignment != 0) {
      return Status::InvalidArgument(
          StrFormat("'%s': section %u offset %llu breaks the %llu-byte"
                    " alignment rule",
                    path.c_str(), static_cast<unsigned>(entry.id),
                    static_cast<unsigned long long>(entry.offset),
                    static_cast<unsigned long long>(kSectionAlignment)));
    }
    if (!view->sections_.emplace(entry.id, entry).second) {
      return Status::InvalidArgument(
          StrFormat("'%s': duplicate section id %u", path.c_str(),
                    static_cast<unsigned>(entry.id)));
    }
  }
  // 5. No two byte ranges may alias: every raw byte a typed accessor
  // can hand out has exactly one owner. Without this, a corrupt
  // directory can serve the same mapped bytes as, say, both a string
  // blob and an offsets array, and cross-section consistency checks
  // downstream stop meaning anything. Offsets and sizes were
  // bounds-checked above, so the end-of-range sums cannot overflow.
  struct Range {
    uint64_t begin;
    uint64_t end;
    std::string label;
  };
  std::vector<Range> ranges;
  ranges.reserve(view->sections_.size() + 2);
  ranges.push_back(Range{0, sizeof(ImageHeader), "header"});
  ranges.push_back(Range{header.directory_offset,
                         header.directory_offset + dir_bytes,
                         "section directory"});
  for (const auto& [id, entry] : view->sections_) {
    if (entry.size == 0) continue;  // empty sections occupy no bytes
    ranges.push_back(
        Range{entry.offset, entry.offset + entry.size,
              StrFormat("section %u", static_cast<unsigned>(id))});
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i - 1].end > ranges[i].begin) {
      return Status::InvalidArgument(
          StrFormat("'%s': %s [%llu, %llu) overlaps %s [%llu, %llu)",
                    path.c_str(), ranges[i - 1].label.c_str(),
                    static_cast<unsigned long long>(ranges[i - 1].begin),
                    static_cast<unsigned long long>(ranges[i - 1].end),
                    ranges[i].label.c_str(),
                    static_cast<unsigned long long>(ranges[i].begin),
                    static_cast<unsigned long long>(ranges[i].end)));
    }
  }
  // 6. The meta section is mandatory and exactly one FlatMeta.
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const FlatMeta> meta,
                            view->SectionArray<FlatMeta>(SectionId::kMeta));
  if (meta.size() != 1) {
    return Status::InvalidArgument(
        StrFormat("'%s': meta section holds %zu records, want 1",
                  path.c_str(), meta.size()));
  }
  view->meta_ = meta.data();
  // 7. Counts the decoder will trust for loop bounds and size math must
  // be plausible before anything multiplies them. Every counted record
  // owns at least 8 bytes somewhere in the image (an offsets entry, an
  // id pair, an edge), so a count beyond the file size is provably
  // corrupt — and rejecting it here keeps the decoder's `count + 1` /
  // `2 * count` arithmetic comfortably inside 64 bits.
  const struct {
    const char* name;
    uint64_t value;
  } counts[] = {
      {"num_concepts", view->meta_->num_concepts},
      {"num_edges", view->meta_->num_edges},
      {"num_shortcut_edges", view->meta_->num_shortcut_edges},
      {"num_synonyms", view->meta_->num_synonyms},
      {"num_contexts", view->meta_->num_contexts},
      {"num_mappings", view->meta_->num_mappings},
      {"num_ontology_concepts", view->meta_->num_ontology_concepts},
      {"num_relationships", view->meta_->num_relationships},
      {"num_subconcept_pairs", view->meta_->num_subconcept_pairs},
      {"num_instances", view->meta_->num_instances},
      {"num_triples", view->meta_->num_triples},
  };
  for (const auto& count : counts) {
    if (count.value > view->file_.size()) {
      return Status::InvalidArgument(
          StrFormat("'%s': meta %s=%llu exceeds the %zu-byte file",
                    path.c_str(), count.name,
                    static_cast<unsigned long long>(count.value),
                    view->file_.size()));
    }
  }
  if (view->meta_->num_shortcut_edges > view->meta_->num_edges) {
    return Status::InvalidArgument(
        StrFormat("'%s': meta declares %llu shortcut edges out of %llu"
                  " total",
                  path.c_str(),
                  static_cast<unsigned long long>(
                      view->meta_->num_shortcut_edges),
                  static_cast<unsigned long long>(view->meta_->num_edges)));
  }
  return view;
}

Result<std::span<const std::byte>> FlatImageView::SectionBytes(
    SectionId id) const {
  auto it = sections_.find(static_cast<uint32_t>(id));
  if (it == sections_.end()) {
    return Status::InvalidArgument(
        StrFormat("image has no section %u", static_cast<unsigned>(id)));
  }
  return file_.bytes().subspan(it->second.offset, it->second.size);
}

Result<FlatImageView::StringTableView> FlatImageView::Strings(
    SectionId offsets_id, SectionId blob_id, size_t expected_count) const {
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                            SectionArray<uint64_t>(offsets_id));
  MEDRELAX_ASSIGN_OR_RETURN(std::span<const std::byte> blob,
                            SectionBytes(blob_id));
  // `offsets.size() - 1 != expected_count` rather than
  // `offsets.size() != expected_count + 1`: with a corrupt
  // expected_count of SIZE_MAX the latter wraps to 0, an empty offsets
  // section passes, and offsets.front() below reads an empty span.
  if (offsets.empty() || offsets.size() - 1 != expected_count) {
    return Status::InvalidArgument(
        StrFormat("string table %u: %zu offsets, want %zu + 1",
                  static_cast<unsigned>(offsets_id), offsets.size(),
                  expected_count));
  }
  if (offsets.front() != 0 || offsets.back() != blob.size()) {
    return Status::InvalidArgument(
        StrFormat("string table %u: offsets do not span the %zu-byte blob",
                  static_cast<unsigned>(offsets_id), blob.size()));
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::InvalidArgument(
          StrFormat("string table %u: offsets decrease at index %zu",
                    static_cast<unsigned>(offsets_id), i));
    }
  }
  return StringTableView(offsets,
                         reinterpret_cast<const char*>(blob.data()));
}

}  // namespace medrelax::flat
