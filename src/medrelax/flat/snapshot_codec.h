#ifndef MEDRELAX_FLAT_SNAPSHOT_CODEC_H_
#define MEDRELAX_FLAT_SNAPSHOT_CODEC_H_

#include <memory>
#include <string>

#include "medrelax/common/result.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/flat/image_view.h"
#include "medrelax/graph/concept_dag.h"
#include "medrelax/kb/kb_query.h"
#include "medrelax/relax/ingestion.h"
#include "medrelax/relax/query_relaxer.h"
#include "medrelax/relax/similarity.h"

namespace medrelax::flat {

/// The snapshot-build knobs an image round-trips, mirrored here so flat/
/// stays below serve/ in the layering (serve/snapshot.cc converts to and
/// from its SnapshotOptions, which aggregates the same fields).
struct ImageSnapshotConfig {
  IngestionOptions ingestion;
  SimilarityOptions similarity;
  RelaxationOptions relaxation;
  bool use_exact_mapper = false;
  bool precompute_similarities = false;
};

/// Serializes the offline phase's output — the customized DAG, the KB,
/// and Algorithm 1's artifacts — into a flat image at `path`.
/// `ingestion.frequencies` must be normalized (it always is after
/// RunIngestion). MEDRELAX_BLOCKING: serializes megabytes to disk; runs
/// in the offline ingest tool, never on a serving thread.
[[nodiscard]] Status WriteSnapshotImage(const ConceptDag& dag,
                                        const KnowledgeBase& kb,
                                        const IngestionResult& ingestion,
                                        const ImageSnapshotConfig& config,
                                        uint64_t options_fingerprint,
                                        const std::string& path)
    MEDRELAX_BLOCKING;

/// The decoded halves of an image: rehydrated structures plus the view
/// whose mapping `ingestion.frequencies` borrows its normalized table
/// from. `image` is declared first so it outlives every borrower during
/// destruction; keep it that way.
struct DecodedSnapshotImage {
  std::unique_ptr<FlatImageView> image;
  ConceptDag dag;
  KnowledgeBase kb;
  IngestionResult ingestion;
  ImageSnapshotConfig config;
  uint64_t options_fingerprint = 0;
};

/// Maps `path` and rebuilds the serving structures: the DAG, synonyms,
/// and KB are rehydrated (bulk restore, no per-edge duplicate scans);
/// the dominant payload — the normalized frequency table — is served
/// zero-copy straight out of the mapping. Every id crossing a structure
/// boundary is validated against the meta counts first, so a corrupt
/// image yields a typed error, never UB. MEDRELAX_BLOCKING: maps and
/// walks the whole image.
[[nodiscard]] Result<DecodedSnapshotImage> ReadSnapshotImage(
    const std::string& path) MEDRELAX_BLOCKING;

}  // namespace medrelax::flat

#endif  // MEDRELAX_FLAT_SNAPSHOT_CODEC_H_
