#ifndef MEDRELAX_FLAT_FORMAT_H_
#define MEDRELAX_FLAT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

namespace medrelax::flat {

// The flat snapshot image: one header, one section directory, then the
// sections themselves — every structure below is a little-endian,
// fixed-layout POD read directly out of the mapped file, so a reader
// never parses, only bounds-checks (docs/SNAPSHOT_FORMAT.md).
//
//   [ImageHeader]
//   [SectionEntry x section_count]        <- at header.directory_offset
//   [section payload ...]                 <- each 16-byte aligned
//
// The checksum covers every byte after the header (directory included),
// so a reader that validates the header + checksum before dereferencing
// the directory can trust section offsets only after the per-entry
// bounds checks — corruption must surface as a typed Status, never UB.

/// File magic, first 8 bytes: "MRXIMG" + 2-digit major format revision.
inline constexpr char kImageMagic[8] = {'M', 'R', 'X', 'I', 'M', 'G',
                                        '0', '1'};

/// Bumped on any layout change; readers refuse other versions
/// (FailedPrecondition — the image is well-formed, just not ours).
inline constexpr uint32_t kImageVersion = 1;

/// Written as a native uint32; a reader on an opposite-endian host sees
/// the byte-swapped value and refuses the image.
inline constexpr uint32_t kEndianMarker = 0x01020304u;

/// Section payloads are aligned to this, which satisfies every element
/// type an image stores (the widest is double/uint64_t at 8).
inline constexpr uint64_t kSectionAlignment = 16;

/// Identity of one section. Values are stable across format revisions:
/// new sections append, existing ids are never reused.
enum class SectionId : uint32_t {
  kMeta = 1,
  // Concept DAG: CSR adjacency per side; edge i of concept c lives in
  // edges[offsets[c] .. offsets[c + 1]).
  kDagParentOffsets = 2,
  kDagParentEdges = 3,
  kDagChildOffsets = 4,
  kDagChildEdges = 5,
  // Concept string table: offsets[i] .. offsets[i + 1] into the blob.
  kConceptNameOffsets = 6,
  kConceptNameBlob = 7,
  // Synonyms: group CSR (concept -> synonym-string range) over a second
  // string table.
  kSynonymGroupOffsets = 8,
  kSynonymNameOffsets = 9,
  kSynonymNameBlob = 10,
  // The normalized per-context frequency table, row-major [ctx][concept]
  // with the aggregate row last — served zero-copy out of the mapping.
  kFrequencyTable = 11,
  // Contexts: 3 consecutive strings (domain, relationship, range) per
  // context.
  kContextNameOffsets = 12,
  kContextNameBlob = 13,
  // Ingestion artifacts: M as (instance, concept) pairs, FEC as a
  // uint64 bitset, and the two reverse indexes as CSR.
  kMappingPairs = 14,
  kFlaggedBits = 15,
  kConceptInstanceOffsets = 16,
  kConceptInstanceValues = 17,
  kConceptContextOffsets = 18,
  kConceptContextValues = 19,
  // KB: domain ontology (TBox), instances (ABox), triples.
  kOntologyNameOffsets = 20,
  kOntologyNameBlob = 21,
  kRelationshipNameOffsets = 22,
  kRelationshipNameBlob = 23,
  kRelationshipEndpoints = 24,  ///< (domain, range) uint32 pairs
  kSubConceptPairs = 25,        ///< (child, parent) uint32 pairs
  kInstanceNameOffsets = 26,
  kInstanceNameBlob = 27,
  kInstanceConcepts = 28,  ///< ontology concept id per instance
  kTriples = 29,           ///< (subject, relationship, object) uint32 triples
};

/// Fixed prologue of every image.
struct ImageHeader {
  char magic[8];             ///< kImageMagic
  uint32_t version;          ///< kImageVersion
  uint32_t endian;           ///< kEndianMarker as written by the producer
  uint64_t file_size;        ///< total bytes, cross-checked against stat
  uint64_t payload_checksum; ///< FNV-1a 64 over [sizeof(ImageHeader), end)
  uint64_t directory_offset; ///< where the SectionEntry array starts
  uint32_t section_count;
  uint32_t reserved;         ///< zero
};
static_assert(sizeof(ImageHeader) == 48, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable_v<ImageHeader>);

/// One directory entry; `offset`/`size` are in bytes from file start.
struct SectionEntry {
  uint32_t id;        ///< SectionId
  uint32_t reserved;  ///< zero
  uint64_t offset;
  uint64_t size;
};
static_assert(sizeof(SectionEntry) == 24, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// On-disk form of one DAG edge (graph/concept_dag.h DagEdge, with the
/// bool widened to a flag word so the struct has no padding).
struct FlatEdge {
  uint32_t target;
  uint32_t original_distance;
  uint32_t flags;  ///< kEdgeFlagShortcut
};
static_assert(sizeof(FlatEdge) == 12, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable_v<FlatEdge>);

inline constexpr uint32_t kEdgeFlagShortcut = 1u;

// FlatMeta::flags bits: the snapshot-option booleans the image
// round-trips (serve/snapshot.h SnapshotOptions).
inline constexpr uint32_t kMetaFlagUseTfidf = 1u << 0;
inline constexpr uint32_t kMetaFlagAddShortcutEdges = 1u << 1;
inline constexpr uint32_t kMetaFlagUsePathPenalty = 1u << 2;
inline constexpr uint32_t kMetaFlagUseContext = 1u << 3;
inline constexpr uint32_t kMetaFlagMemoizeGeometry = 1u << 4;
inline constexpr uint32_t kMetaFlagDynamicRadius = 1u << 5;
inline constexpr uint32_t kMetaFlagExactMapper = 1u << 6;
inline constexpr uint32_t kMetaFlagPrecomputeSimilarities = 1u << 7;

/// The kMeta section: every count a reader needs to size-check the other
/// sections, plus the serialized snapshot options.
struct FlatMeta {
  uint64_t num_concepts;
  uint64_t num_edges;            ///< native + shortcut, one side
  uint64_t num_shortcut_edges;
  uint64_t num_synonyms;         ///< total synonym strings
  uint64_t num_contexts;
  uint64_t num_mappings;
  uint64_t num_ontology_concepts;
  uint64_t num_relationships;
  uint64_t num_subconcept_pairs;
  uint64_t num_instances;
  uint64_t num_triples;
  uint64_t unmapped_instances;
  uint64_t shortcuts_added;
  uint64_t options_fingerprint;  ///< FingerprintOptions of the knobs below
  uint64_t relax_top_k;
  double ic_smoothing;
  double generalization_weight;
  double specialization_weight;
  uint32_t root_concept;
  uint32_t relax_radius;
  uint32_t relax_max_radius;
  uint32_t max_shortcut_distance;
  uint32_t flags;  ///< kMetaFlag*
  uint32_t reserved;
};
static_assert(sizeof(FlatMeta) == 168, "on-disk layout is frozen");
static_assert(std::is_trivially_copyable_v<FlatMeta>);

/// FNV-1a 64 folded a word at a time: tiny, dependency-free, and plenty
/// to catch truncation and bit rot. It is NOT the integrity story for
/// adversarial images — an attacker who controls the bytes can restamp
/// the checksum — it only gates accidental corruption; the structural
/// checks in FlatImageView::Open (bounds, alignment, overlap, meta
/// count sanity) are what stand between crafted input and UB (see
/// docs/SNAPSHOT_FORMAT.md). Words are mixed as stored — fine because
/// kEndianMarker already pins images to one byte order — and the 8-byte
/// stride keeps validation of a multi-MB image in the low milliseconds,
/// which is what makes RELOAD-from-image effectively O(1) for operators.
[[nodiscard]] inline uint64_t FnvChecksum(std::span<const std::byte> bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, sizeof(word));
    hash ^= word;
    hash *= 0x100000001b3ull;
  }
  for (; i < bytes.size(); ++i) {
    hash ^= static_cast<uint64_t>(bytes[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace medrelax::flat

#endif  // MEDRELAX_FLAT_FORMAT_H_
