#ifndef MEDRELAX_FLAT_IMAGE_WRITER_H_
#define MEDRELAX_FLAT_IMAGE_WRITER_H_

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "medrelax/common/status.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/flat/format.h"

namespace medrelax::flat {

/// Accumulates typed sections in memory and serializes them as one flat
/// image: header, section directory, then the payloads (each aligned to
/// kSectionAlignment), with the checksum stamped over everything after
/// the header. The writer is format-level only — what goes *into* the
/// sections is the snapshot codec's business (flat/snapshot_codec.h).
///
/// Single-threaded use; built by the offline ingest tool, never on a
/// serving path.
class FlatImageWriter {
 public:
  FlatImageWriter() = default;
  FlatImageWriter(const FlatImageWriter&) = delete;
  FlatImageWriter& operator=(const FlatImageWriter&) = delete;

  /// Adds a raw byte section. Section ids must be unique per image;
  /// WriteToFile fails on duplicates.
  void AddBytes(SectionId id, std::span<const std::byte> bytes) {
    sections_.push_back(
        Section{id, std::vector<std::byte>(bytes.begin(), bytes.end())});
  }

  /// Adds a section holding a contiguous array of trivially copyable
  /// elements (uint32_t, uint64_t, double, FlatEdge, FlatMeta, ...).
  template <typename T>
  void AddArray(SectionId id, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= kSectionAlignment);
    std::vector<std::byte> bytes(values.size_bytes());
    if (!values.empty()) {
      std::memcpy(bytes.data(), values.data(), values.size_bytes());
    }
    sections_.push_back(Section{id, std::move(bytes)});
  }

  /// Lays out and writes the complete image. Fails with InvalidArgument
  /// on duplicate section ids and Internal on I/O errors. The file is
  /// written whole; a failed write leaves whatever the filesystem kept —
  /// callers ingest to a temp path and rename when they need atomicity.
  [[nodiscard]] Status WriteToFile(const std::string& path) const
      MEDRELAX_BLOCKING;

 private:
  struct Section {
    SectionId id;
    std::vector<std::byte> bytes;
  };
  std::vector<Section> sections_;
};

}  // namespace medrelax::flat

#endif  // MEDRELAX_FLAT_IMAGE_WRITER_H_
