#ifndef MEDRELAX_FLAT_IMAGE_VIEW_H_
#define MEDRELAX_FLAT_IMAGE_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "medrelax/common/result.h"
#include "medrelax/common/string_util.h"
#include "medrelax/common/thread_annotations.h"
#include "medrelax/flat/format.h"
#include "medrelax/io/mmap_file.h"

namespace medrelax::flat {

/// A validated, read-only view over one mapped snapshot image. Open()
/// performs every whole-file check (magic, version, endianness, size,
/// checksum, directory bounds) before returning; the typed accessors
/// re-check element size and alignment per section, so no caller can
/// read past the mapping even against a hand-corrupted directory.
///
/// Immutable and internally synchronization-free: safe to share across
/// threads for the lifetime of the view. The serving snapshot keeps the
/// view (and with it the mapping) alive for as long as any table borrows
/// from it.
class FlatImageView {
 public:
  /// Maps and validates `path`. Errors are typed: NotFound (no such
  /// file), InvalidArgument (truncated/corrupt/checksum mismatch),
  /// FailedPrecondition (well-formed image of another format version).
  /// MEDRELAX_BLOCKING: maps a file and checksums the full payload —
  /// never callable from the event loop (the reload executor owns this).
  [[nodiscard]] static Result<std::unique_ptr<FlatImageView>> Open(
      const std::string& path) MEDRELAX_BLOCKING;

  FlatImageView(const FlatImageView&) = delete;
  FlatImageView& operator=(const FlatImageView&) = delete;

  [[nodiscard]] const FlatMeta& meta() const { return *meta_; }
  [[nodiscard]] size_t file_size() const { return file_.size(); }

  [[nodiscard]] bool HasSection(SectionId id) const {
    return sections_.find(static_cast<uint32_t>(id)) != sections_.end();
  }

  /// Raw bytes of a section; InvalidArgument when absent. Bounds against
  /// the mapping were validated at Open.
  [[nodiscard]] Result<std::span<const std::byte>> SectionBytes(
      SectionId id) const MEDRELAX_UNTRUSTED_BYTES;

  /// A section as a typed array. Fails when the section is absent, its
  /// size is not a multiple of sizeof(T), or its offset breaks T's
  /// alignment (possible only for corrupt directories — the writer
  /// aligns every section).
  template <typename T>
  [[nodiscard]] Result<std::span<const T>> SectionArray(SectionId id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    MEDRELAX_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                              SectionBytes(id));
    if (bytes.size() % sizeof(T) != 0) {
      return Status::InvalidArgument(
          StrFormat("section %u: size %zu not a multiple of %zu",
                    static_cast<unsigned>(id), bytes.size(), sizeof(T)));
    }
    if (reinterpret_cast<uintptr_t>(bytes.data()) % alignof(T) != 0) {
      return Status::InvalidArgument(
          StrFormat("section %u: misaligned for element size %zu",
                    static_cast<unsigned>(id), sizeof(T)));
    }
    return std::span<const T>(reinterpret_cast<const T*>(bytes.data()),
                              bytes.size() / sizeof(T));
  }

  /// A validated two-section string table (offsets + blob): offsets must
  /// start at 0, be non-decreasing, and end exactly at the blob size.
  class StringTableView {
   public:
    StringTableView() = default;
    [[nodiscard]] size_t size() const {
      return offsets_.empty() ? 0 : offsets_.size() - 1;
    }
    [[nodiscard]] std::string_view at(size_t i) const {
      return {blob_ + offsets_[i],
              static_cast<size_t>(offsets_[i + 1] - offsets_[i])};
    }

   private:
    friend class FlatImageView;
    StringTableView(std::span<const uint64_t> offsets, const char* blob)
        // lint:allow(lifetime-escape) borrows the mapping, kept alive by
        : offsets_(offsets), blob_(blob) {}  // the owning FlatImageView
    std::span<const uint64_t> offsets_;
    const char* blob_ = nullptr;
  };

  /// Builds a StringTableView over an offsets section and a blob
  /// section, enforcing `expected_count` strings and the offset
  /// invariants above.
  [[nodiscard]] Result<StringTableView> Strings(SectionId offsets_id,
                                                SectionId blob_id,
                                                size_t expected_count) const;

  /// Tag gating the public constructor to Open (make_unique needs a
  /// public constructor; the tag keeps outside callers on the factory —
  /// the serve/snapshot.h BuildTag idiom).
  struct OpenTag {
    explicit OpenTag() = default;
  };
  FlatImageView(OpenTag, MappedFile file) : file_(std::move(file)) {}

 private:
  MappedFile file_;
  std::unordered_map<uint32_t, SectionEntry> sections_;
  const FlatMeta* meta_ = nullptr;
};

}  // namespace medrelax::flat

#endif  // MEDRELAX_FLAT_IMAGE_VIEW_H_
