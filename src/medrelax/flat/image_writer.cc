#include "medrelax/flat/image_writer.h"

#include <cstdio>
#include <unordered_set>

#include "medrelax/common/string_util.h"

namespace medrelax::flat {

namespace {

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

void AppendPod(std::vector<std::byte>* out, const void* pod, size_t size) {
  if (size == 0) return;  // memcpy from a null data() would be UB
  const size_t at = out->size();
  out->resize(at + size);
  std::memcpy(out->data() + at, pod, size);
}

}  // namespace

Status FlatImageWriter::WriteToFile(const std::string& path) const {
  std::unordered_set<uint32_t> seen;
  for (const Section& section : sections_) {
    if (!seen.insert(static_cast<uint32_t>(section.id)).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate section id %u",
                    static_cast<unsigned>(section.id)));
    }
  }

  // Lay out: header | directory | aligned payloads.
  std::vector<SectionEntry> directory(sections_.size());
  uint64_t cursor = sizeof(ImageHeader) +
                    sections_.size() * sizeof(SectionEntry);
  for (size_t i = 0; i < sections_.size(); ++i) {
    cursor = AlignUp(cursor, kSectionAlignment);
    directory[i] = SectionEntry{static_cast<uint32_t>(sections_[i].id), 0,
                                cursor, sections_[i].bytes.size()};
    cursor += sections_[i].bytes.size();
  }

  ImageHeader header{};
  std::memcpy(header.magic, kImageMagic, sizeof(kImageMagic));
  header.version = kImageVersion;
  header.endian = kEndianMarker;
  header.file_size = cursor;
  header.directory_offset = sizeof(ImageHeader);
  header.section_count = static_cast<uint32_t>(sections_.size());

  // Assemble the payload (everything after the header) so the checksum
  // can be stamped before any byte hits the disk.
  std::vector<std::byte> payload;
  payload.reserve(cursor - sizeof(ImageHeader));
  for (const SectionEntry& entry : directory) {
    AppendPod(&payload, &entry, sizeof(entry));
  }
  for (size_t i = 0; i < sections_.size(); ++i) {
    payload.resize(directory[i].offset - sizeof(ImageHeader));  // align pad
    AppendPod(&payload, sections_[i].bytes.data(),
              sections_[i].bytes.size());
  }
  header.payload_checksum = FnvChecksum(payload);

  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  const bool ok =
      std::fwrite(&header, sizeof(header), 1, out) == 1 &&
      (payload.empty() ||
       std::fwrite(payload.data(), payload.size(), 1, out) == 1);
  if (std::fclose(out) != 0 || !ok) {
    return Status::Internal(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

}  // namespace medrelax::flat
