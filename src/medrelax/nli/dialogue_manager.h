#ifndef MEDRELAX_NLI_DIALOGUE_MANAGER_H_
#define MEDRELAX_NLI_DIALOGUE_MANAGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "medrelax/nli/entity_extractor.h"
#include "medrelax/nli/intent_classifier.h"
#include "medrelax/relax/feedback.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {

/// Knobs of the conversational layer.
struct DialogueOptions {
  /// Confidence below which a short follow-up inherits the previous
  /// context ("what about fever?", Section 4 "Context management").
  double context_carryover_confidence = 0.55;
  /// Cap on related concepts surfaced before the direct answer (Figure 8
  /// shows 7 additional concepts for "fever").
  size_t max_suggestions = 7;
};

/// One system response.
struct DialogueResponse {
  /// Rendered reply text.
  std::string text;
  /// Context the turn was answered under.
  ContextId context = kNoContext;
  /// True iff query relaxation contributed to this turn.
  bool used_relaxation = false;
  /// External concepts surfaced (relaxed suggestions and/or the concept
  /// the matched term maps to). The user study scores these.
  std::vector<ConceptId> surfaced_concepts;
  /// KB instances answering the question (e.g. the drugs).
  std::vector<InstanceId> answers;
};

/// The conversational system of Section 6.1: intent classification, entity
/// extraction, dialogue state with context carry-over, and the two query-
/// relaxation scenarios — repairing unknown terms (Figure 7) and expanding
/// known ones (Figure 8). Constructed without a relaxer it reproduces the
/// "no QR" baseline that can only say "I don't understand".
class DialogueManager {
 public:
  /// All pointers are borrowed and must outlive the manager; `relaxer` may
  /// be null (the no-QR configuration).
  DialogueManager(const KnowledgeBase* kb, const IngestionResult* ingestion,
                  const IntentClassifier* intents,
                  const EntityExtractor* entities, const QueryRelaxer* relaxer,
                  const DialogueOptions& options);

  /// Processes one user utterance, advancing the dialogue state.
  DialogueResponse Handle(const std::string& utterance);

  /// Forgets the conversation history (new dialogue).
  void Reset() { previous_context_ = kNoContext; }

  /// Attaches a relevance-feedback layer (borrowed; may be null to
  /// detach). When present, relaxation results are re-ranked by the
  /// accumulated session feedback, and Accept/RejectSuggestion below feed
  /// it — the progressive improvement the paper's user-study discussion
  /// proposes.
  void set_feedback(FeedbackRelaxer* feedback) { feedback_ = feedback; }

  /// Records that the user liked / dismissed a surfaced concept under the
  /// current dialogue context. No-ops without an attached feedback layer.
  void AcceptSuggestion(ConceptId concept_id);
  void RejectSuggestion(ConceptId concept_id);

  /// The context carried in the dialogue state.
  [[nodiscard]] ContextId previous_context() const { return previous_context_; }

 private:
  DialogueResponse AnswerKnown(InstanceId instance, ContextId context);
  DialogueResponse AnswerUnknown(const std::string& term, ContextId context);

  const KnowledgeBase* kb_;
  const IngestionResult* ingestion_;
  const IntentClassifier* intents_;
  const EntityExtractor* entities_;
  const QueryRelaxer* relaxer_;
  FeedbackRelaxer* feedback_ = nullptr;
  DialogueOptions options_;
  ContextId previous_context_ = kNoContext;
  /// instance -> mapped external concept (from the ingestion mappings).
  std::unordered_map<InstanceId, ConceptId> instance_concept_;
};

}  // namespace medrelax

#endif  // MEDRELAX_NLI_DIALOGUE_MANAGER_H_
