#ifndef MEDRELAX_NLI_TRAINING_DATA_H_
#define MEDRELAX_NLI_TRAINING_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "medrelax/kb/kb_query.h"
#include "medrelax/ontology/context.h"

namespace medrelax {

/// One labeled NL query for intent (context) classifier training.
struct LabeledQuery {
  std::string text;
  ContextId context = kNoContext;
};

/// Options for the context-training-data bootstrap.
struct TrainingDataOptions {
  /// Labeled examples generated per context.
  size_t examples_per_context = 25;
  uint64_t seed = 17;
};

/// Bootstraps the intent-classifier training set from the domain ontology
/// (Section 4): contexts come from GenerateContexts, example queries come
/// from templates instantiated with instances of each context's range
/// concept, then enriched by swapping in other instances of the same
/// concept ("we can replace identified instances with other instances of
/// the same concept").
std::vector<LabeledQuery> GenerateContextTrainingData(
    const KnowledgeBase& kb, const ContextRegistry& contexts,
    const TrainingDataOptions& options);

}  // namespace medrelax

#endif  // MEDRELAX_NLI_TRAINING_DATA_H_
