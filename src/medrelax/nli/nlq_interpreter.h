#ifndef MEDRELAX_NLI_NLQ_INTERPRETER_H_
#define MEDRELAX_NLI_NLQ_INTERPRETER_H_

#include <string>
#include <vector>

#include "medrelax/kb/kb_query.h"
#include "medrelax/relax/query_relaxer.h"

namespace medrelax {

/// Kind of evidence a query token generates (Section 6.2): metadata when
/// the token matches an ontology element, data-value when it matches (or
/// relaxes to) instance data. A single evidence is one or the other, never
/// both [ATHENA, reference 35].
enum class EvidenceKind : uint8_t {
  kConceptMetadata,
  kRelationshipMetadata,
  kDataValue,
  kRelaxedDataValue,
};

/// One evidence for one token span.
struct Evidence {
  EvidenceKind kind = EvidenceKind::kConceptMetadata;
  /// The ontology concept: the matched concept for kConceptMetadata, the
  /// instance's concept for (relaxed) data values.
  OntologyConceptId concept_id = kInvalidOntologyConcept;
  /// The matched relationship for kRelationshipMetadata.
  RelationshipId relationship = kInvalidRelationship;
  /// The matched instance for (relaxed) data values.
  InstanceId instance = kInvalidInstance;
  /// 1.0 for direct matches; the relaxation similarity for relaxed values
  /// (the score Section 6.2 feeds into interpretation ranking).
  double score = 1.0;
};

/// All evidences generated for one token span.
struct TokenEvidence {
  std::string surface;
  std::vector<Evidence> evidences;
};

/// One interpretation: a selection (one evidence per token) connected into
/// a minimal sub-tree of the ontology's semantic graph.
struct Interpretation {
  std::vector<Evidence> selection;
  /// Relationships forming the interpretation tree.
  std::vector<RelationshipId> tree_edges;
  /// Number of edges in the tree — ATHENA's compactness measure (fewer is
  /// better).
  size_t compactness = 0;
  /// Mean evidence score: breaks compactness ties in favor of selections
  /// whose relaxed values are more similar (the extension Section 6.2
  /// describes).
  double evidence_score = 0.0;

  /// Human-readable rendering, e.g. "Drug -cause-> Risk -hasFinding->
  /// Finding".
  [[nodiscard]] std::string Describe(const DomainOntology& ontology) const;
};

/// One executed interpretation: the ontology concept the query asks for
/// and the KB instances answering it.
struct NlqAnswer {
  OntologyConceptId answer_concept = kInvalidOntologyConcept;
  std::vector<InstanceId> instances;
};

/// The one-shot NLQ front end of Section 6.2: evidence generation over the
/// ontology and KB (with query relaxation supplying evidence for unknown
/// terms on the fly, Figure 9), selection sets, and Steiner-tree-style
/// interpretation ranked by compactness then relaxation score.
class NlqInterpreter {
 public:
  /// Borrows everything; `relaxer` may be null (no-relaxation baseline).
  NlqInterpreter(const KnowledgeBase* kb, const IngestionResult* ingestion,
                 const QueryRelaxer* relaxer);

  /// Evidence generation: tokenizes the query and produces the evidence
  /// set of every token span that matched anything.
  [[nodiscard]]
  std::vector<TokenEvidence> GenerateEvidence(const std::string& query) const;

  /// Full pipeline: evidence -> selection sets -> interpretation trees,
  /// ranked best-first. At most `max_interpretations` are returned.
  std::vector<Interpretation> Interpret(const std::string& query,
                                        size_t max_interpretations) const;

  /// Executes an interpretation against the KB: data-value evidences seed
  /// per-concept candidate sets, the tree's relationships are enforced by
  /// semi-join to a fixpoint, and the instances of the answer concept
  /// (the first concept-metadata evidence, else the first tree edge's
  /// domain) are returned. Fails on an empty interpretation.
  [[nodiscard]]
  Result<NlqAnswer> Execute(const Interpretation& interpretation) const;

  /// Executes interpretations best-first and returns the first one whose
  /// answer set is non-empty (an interpretation can be structurally valid
  /// yet empty when a relaxed grounding has no KB links — the next
  /// selection set is then the right reading). NotFound when every
  /// interpretation executes empty.
  [[nodiscard]] Result<NlqAnswer> ExecuteFirstNonEmpty(
      const std::vector<Interpretation>& interpretations) const;

 private:
  struct GraphEdge {
    OntologyConceptId neighbor;
    RelationshipId relationship;
  };

  /// Connects the terminal concepts of a selection in the semantic graph;
  /// returns the tree edges, or nullopt when the terminals cannot all be
  /// connected.
  std::optional<std::vector<RelationshipId>> ConnectTerminals(
      const std::vector<OntologyConceptId>& terminals) const;

  const KnowledgeBase* kb_;
  const IngestionResult* ingestion_;
  const QueryRelaxer* relaxer_;
  /// Semantic graph: concept -> edges (relationships as undirected links).
  std::vector<std::vector<GraphEdge>> adjacency_;
};

}  // namespace medrelax

#endif  // MEDRELAX_NLI_NLQ_INTERPRETER_H_
