#ifndef MEDRELAX_NLI_ENTITY_EXTRACTOR_H_
#define MEDRELAX_NLI_ENTITY_EXTRACTOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "medrelax/kb/kb_query.h"

namespace medrelax {

/// One extracted mention.
struct EntityMention {
  /// The matched span (normalized tokens joined by spaces).
  std::string surface;
  /// The KB instance the span resolved to, or kInvalidInstance for an
  /// *unknown* entity mention — the kind Watson passes to query relaxation
  /// as a query term (Section 6.1, Scenario 1).
  InstanceId instance = kInvalidInstance;
  /// First token index of the span in the tokenized utterance.
  size_t token_begin = 0;
  /// One past the last token index.
  size_t token_end = 0;
};

/// Dictionary-based entity extractor over the KB's instance names — the
/// stand-in for Watson Assistant's entity detection. Known instances are
/// found by greedy longest match; leftover content tokens (not in the
/// instance dictionary, not stopwords, not query-vocabulary words like
/// "drugs"/"treat") are emitted as unknown entity mentions.
class EntityExtractor {
 public:
  /// Borrows `kb`; indexes every instance name at construction.
  /// `query_vocabulary` are words that belong to question phrasing and are
  /// never part of an entity (typically the tokens the intent templates
  /// use: concept and relationship names, question words).
  EntityExtractor(const KnowledgeBase* kb,
                  std::unordered_set<std::string> query_vocabulary);

  /// Extracts known + unknown mentions from an utterance.
  [[nodiscard]]
  std::vector<EntityMention> Extract(const std::string& utterance) const;

 private:
  const KnowledgeBase* kb_;
  std::unordered_set<std::string> query_vocabulary_;
  /// normalized full phrase -> instance; first token -> candidate lengths.
  std::unordered_map<std::string, InstanceId> phrase_index_;
  std::unordered_map<std::string, std::vector<size_t>> first_token_lengths_;
  size_t max_phrase_tokens_ = 1;
};

/// The default query vocabulary: English question scaffolding plus every
/// concept and (verbalized) relationship name from the ontology.
std::unordered_set<std::string> BuildQueryVocabulary(
    const DomainOntology& ontology);

}  // namespace medrelax

#endif  // MEDRELAX_NLI_ENTITY_EXTRACTOR_H_
