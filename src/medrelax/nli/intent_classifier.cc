#include "medrelax/nli/intent_classifier.h"

#include <algorithm>
#include <cmath>

#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

void IntentClassifier::Train(const std::vector<LabeledQuery>& examples,
                             size_t num_contexts) {
  num_contexts_ = num_contexts;
  word_counts_.clear();
  vocab_.clear();
  class_totals_.assign(num_contexts, 0.0);
  class_priors_.assign(num_contexts, 0.0);

  for (const LabeledQuery& ex : examples) {
    if (ex.context >= num_contexts) continue;
    class_priors_[ex.context] += 1.0;
    for (const std::string& tok : Tokenize(NormalizeTerm(ex.text))) {
      std::vector<double>& counts = word_counts_[tok];
      if (counts.empty()) counts.assign(num_contexts, 0.0);
      counts[ex.context] += 1.0;
      class_totals_[ex.context] += 1.0;
      vocab_[tok] = true;
    }
  }
}

std::vector<double> IntentClassifier::Posterior(
    const std::string& utterance) const {
  if (num_contexts_ == 0) return {};
  std::vector<std::string> tokens = Tokenize(NormalizeTerm(utterance));

  double total_docs = 0.0;
  for (double p : class_priors_) total_docs += p;
  if (total_docs <= 0.0) return {};

  const double v = static_cast<double>(vocab_.size()) + 1.0;
  std::vector<double> log_post(num_contexts_, 0.0);
  for (size_t c = 0; c < num_contexts_; ++c) {
    log_post[c] = std::log((class_priors_[c] + 1.0) /
                           (total_docs + static_cast<double>(num_contexts_)));
    for (const std::string& tok : tokens) {
      auto it = word_counts_.find(tok);
      double count = (it == word_counts_.end() || it->second.empty())
                         ? 0.0
                         : it->second[c];
      log_post[c] += std::log((count + 1.0) / (class_totals_[c] + v));
    }
  }

  // Softmax with max-shift for stability.
  double max_log = *std::max_element(log_post.begin(), log_post.end());
  double denom = 0.0;
  std::vector<double> post(num_contexts_, 0.0);
  for (size_t c = 0; c < num_contexts_; ++c) {
    post[c] = std::exp(log_post[c] - max_log);
    denom += post[c];
  }
  for (double& p : post) p /= denom;
  return post;
}

IntentPrediction IntentClassifier::Classify(const std::string& utterance) const {
  IntentPrediction out;
  std::vector<double> post = Posterior(utterance);
  if (post.empty()) return out;
  size_t best = 0;
  for (size_t c = 1; c < post.size(); ++c) {
    if (post[c] > post[best]) best = c;
  }
  out.context = static_cast<ContextId>(best);
  out.confidence = post[best];
  return out;
}

}  // namespace medrelax
