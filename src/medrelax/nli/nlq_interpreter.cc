#include "medrelax/nli/nlq_interpreter.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "medrelax/common/string_util.h"
#include "medrelax/kb/conjunctive_query.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

namespace {

// camelCase -> "camel case".
std::string Verbalize(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c >= 'A' && c <= 'Z') {
      out.push_back(' ');
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      out.push_back(c);
    }
  }
  return NormalizeTerm(out);
}

constexpr const char* kSkipTokens[] = {
    "what", "which", "the",  "a",    "an",  "are", "is",  "of", "by",
    "with", "using", "for",  "to",   "in",  "on",  "me",  "my", "do",
    "does", "can",   "show", "find", "give", "list", "tell", "about",
    "and",  "that",  "have", "has",
};

bool IsSkip(const std::string& tok) {
  for (const char* w : kSkipTokens) {
    if (tok == w) return true;
  }
  return false;
}

}  // namespace

std::string Interpretation::Describe(const DomainOntology& ontology) const {
  std::vector<std::string> parts;
  for (RelationshipId rel : tree_edges) {
    const Relationship& r = ontology.relationship(rel);
    parts.push_back(StrFormat("%s -%s-> %s",
                              ontology.concept_name(r.domain).c_str(),
                              r.name.c_str(),
                              ontology.concept_name(r.range).c_str()));
  }
  return Join(parts, ", ");
}

NlqInterpreter::NlqInterpreter(const KnowledgeBase* kb,
                               const IngestionResult* ingestion,
                               const QueryRelaxer* relaxer)
    : kb_(kb), ingestion_(ingestion), relaxer_(relaxer) {
  adjacency_.resize(kb_->ontology.num_concepts());
  for (RelationshipId r = 0; r < kb_->ontology.num_relationships(); ++r) {
    const Relationship& rel = kb_->ontology.relationship(r);
    adjacency_[rel.domain].push_back({rel.range, r});
    adjacency_[rel.range].push_back({rel.domain, r});
  }
}

std::vector<TokenEvidence> NlqInterpreter::GenerateEvidence(
    const std::string& query) const {
  std::vector<std::string> tokens = Tokenize(NormalizeTerm(query));
  std::vector<TokenEvidence> out;
  std::vector<bool> consumed(tokens.size(), false);

  auto try_span = [&](size_t begin, size_t len) -> bool {
    if (begin + len > tokens.size()) return false;
    for (size_t j = begin; j < begin + len; ++j) {
      if (consumed[j]) return false;
    }
    std::vector<std::string> span(tokens.begin() + static_cast<long>(begin),
                                  tokens.begin() + static_cast<long>(begin + len));
    std::string phrase = Join(span, " ");
    TokenEvidence te;
    te.surface = phrase;

    // Metadata: concepts (singular/plural-insensitive).
    for (OntologyConceptId c = 0; c < kb_->ontology.num_concepts(); ++c) {
      std::string cname = NormalizeTerm(kb_->ontology.concept_name(c));
      if (cname == phrase || cname + "s" == phrase) {
        Evidence e;
        e.kind = EvidenceKind::kConceptMetadata;
        e.concept_id = c;
        te.evidences.push_back(e);
      }
    }
    // Metadata: relationships (verbalized; "caused" ~ "cause").
    for (RelationshipId r = 0; r < kb_->ontology.num_relationships(); ++r) {
      std::string rname = Verbalize(kb_->ontology.relationship(r).name);
      if (rname == phrase || rname + "s" == phrase || rname + "d" == phrase ||
          rname + "ed by" == phrase || rname + "d by" == phrase) {
        Evidence e;
        e.kind = EvidenceKind::kRelationshipMetadata;
        e.relationship = r;
        te.evidences.push_back(e);
      }
    }
    // Data values: KB instance lookup.
    for (InstanceId i : kb_->instances.FindByName(phrase)) {
      Evidence e;
      e.kind = EvidenceKind::kDataValue;
      e.instance = i;
      e.concept_id = kb_->instances.instance(i).concept_id;
      te.evidences.push_back(e);
    }

    if (te.evidences.empty()) return false;
    out.push_back(std::move(te));
    for (size_t j = begin; j < begin + len; ++j) consumed[j] = true;
    return true;
  };

  // Longest spans first (up to 6 tokens).
  for (size_t len = 6; len >= 1; --len) {
    for (size_t begin = 0; begin + len <= tokens.size(); ++begin) {
      try_span(begin, len);
    }
  }

  // Leftover content tokens: relaxed data-value evidence, on the fly
  // (Figure 9 — "pyelectasia" resolves to in-KB findings with scores).
  if (relaxer_ != nullptr) {
    size_t run_begin = tokens.size();
    auto flush = [&](size_t end) {
      if (run_begin >= end) return;
      std::vector<std::string> span(
          tokens.begin() + static_cast<long>(run_begin),
          tokens.begin() + static_cast<long>(end));
      std::string phrase = Join(span, " ");
      run_begin = tokens.size();
      Result<RelaxationOutcome> relaxed = relaxer_->Relax(phrase, kNoContext);
      if (!relaxed.ok()) return;
      TokenEvidence te;
      te.surface = phrase;
      for (const ScoredConcept& sc : relaxed->concepts) {
        for (InstanceId i : sc.instances) {
          Evidence e;
          e.kind = EvidenceKind::kRelaxedDataValue;
          e.instance = i;
          e.concept_id = kb_->instances.instance(i).concept_id;
          e.score = sc.similarity;
          te.evidences.push_back(e);
          if (te.evidences.size() >= 5) break;
        }
        if (te.evidences.size() >= 5) break;
      }
      if (!te.evidences.empty()) out.push_back(std::move(te));
    };
    for (size_t i = 0; i < tokens.size(); ++i) {
      bool content = !consumed[i] && !IsSkip(tokens[i]);
      if (content) {
        if (run_begin == tokens.size()) run_begin = i;
      } else {
        flush(i);
      }
    }
    flush(tokens.size());
  }
  return out;
}

std::optional<std::vector<RelationshipId>> NlqInterpreter::ConnectTerminals(
    const std::vector<OntologyConceptId>& terminals) const {
  std::vector<RelationshipId> tree;
  if (terminals.empty()) return tree;

  // Steiner approximation: grow the tree by attaching the nearest
  // unconnected terminal via a BFS shortest path.
  std::unordered_set<OntologyConceptId> in_tree = {terminals[0]};
  std::unordered_set<RelationshipId> tree_edges;
  for (size_t t = 1; t < terminals.size(); ++t) {
    if (in_tree.count(terminals[t]) > 0) continue;
    // BFS from the terminal until any in-tree node is reached.
    std::vector<int64_t> parent_edge(adjacency_.size(), -1);
    std::vector<OntologyConceptId> parent_node(adjacency_.size(),
                                               kInvalidOntologyConcept);
    std::vector<bool> seen(adjacency_.size(), false);
    std::vector<OntologyConceptId> queue = {terminals[t]};
    seen[terminals[t]] = true;
    OntologyConceptId hit = kInvalidOntologyConcept;
    for (size_t head = 0; head < queue.size() && hit == kInvalidOntologyConcept;
         ++head) {
      OntologyConceptId u = queue[head];
      for (const GraphEdge& e : adjacency_[u]) {
        if (seen[e.neighbor]) continue;
        seen[e.neighbor] = true;
        parent_edge[e.neighbor] = e.relationship;
        parent_node[e.neighbor] = u;
        if (in_tree.count(e.neighbor) > 0) {
          hit = e.neighbor;
          break;
        }
        queue.push_back(e.neighbor);
      }
    }
    if (hit == kInvalidOntologyConcept) return std::nullopt;
    // Walk the path back, adding nodes and edges to the tree.
    OntologyConceptId cur = hit;
    while (cur != terminals[t]) {
      tree_edges.insert(static_cast<RelationshipId>(parent_edge[cur]));
      in_tree.insert(cur);
      cur = parent_node[cur];
    }
    in_tree.insert(terminals[t]);
  }
  tree.assign(tree_edges.begin(), tree_edges.end());
  std::sort(tree.begin(), tree.end());
  return tree;
}

std::vector<Interpretation> NlqInterpreter::Interpret(
    const std::string& query, size_t max_interpretations) const {
  std::vector<TokenEvidence> evidence = GenerateEvidence(query);
  std::vector<Interpretation> out;
  if (evidence.empty()) return out;

  // Enumerate selection sets (capped cartesian product).
  constexpr size_t kMaxSelections = 128;
  std::vector<size_t> cursor(evidence.size(), 0);
  size_t enumerated = 0;
  for (;;) {
    if (enumerated++ >= kMaxSelections) break;
    Interpretation interp;
    std::vector<OntologyConceptId> terminals;
    double score_sum = 0.0;
    for (size_t t = 0; t < evidence.size(); ++t) {
      const Evidence& e = evidence[t].evidences[cursor[t]];
      interp.selection.push_back(e);
      score_sum += e.score;
      if (e.kind == EvidenceKind::kRelationshipMetadata) {
        const Relationship& r = kb_->ontology.relationship(e.relationship);
        terminals.push_back(r.domain);
        terminals.push_back(r.range);
      } else {
        terminals.push_back(e.concept_id);
      }
    }
    std::optional<std::vector<RelationshipId>> tree =
        ConnectTerminals(terminals);
    if (tree.has_value()) {
      // Relationships picked as metadata must appear in the tree for the
      // interpretation to be faithful; add them if BFS chose siblings.
      for (const Evidence& e : interp.selection) {
        if (e.kind == EvidenceKind::kRelationshipMetadata &&
            std::find(tree->begin(), tree->end(), e.relationship) ==
                tree->end()) {
          tree->push_back(e.relationship);
        }
      }
      interp.tree_edges = *tree;
      interp.compactness = tree->size();
      interp.evidence_score =
          score_sum / static_cast<double>(interp.selection.size());
      out.push_back(std::move(interp));
    }

    // Advance the mixed-radix cursor.
    size_t t = 0;
    while (t < evidence.size()) {
      if (++cursor[t] < evidence[t].evidences.size()) break;
      cursor[t] = 0;
      ++t;
    }
    if (t == evidence.size()) break;
  }

  std::sort(out.begin(), out.end(),
            [](const Interpretation& a, const Interpretation& b) {
              if (a.compactness != b.compactness) {
                return a.compactness < b.compactness;
              }
              return a.evidence_score > b.evidence_score;
            });
  if (out.size() > max_interpretations) out.resize(max_interpretations);
  return out;
}

Result<NlqAnswer> NlqInterpreter::Execute(
    const Interpretation& interpretation) const {
  if (interpretation.selection.empty()) {
    return Status::InvalidArgument("Execute: empty interpretation");
  }

  // Compile the interpretation into a conjunctive query: one variable per
  // ontology concept in the tree (typed by it), groundings from the
  // (relaxed) data-value evidences, patterns from the tree edges. This is
  // the structured-query translation Section 6.2 describes (ATHENA emits
  // SQL; the triple-store equivalent here is a conjunctive query).
  ConjunctiveQuery cq;
  auto var_of = [&](OntologyConceptId c) {
    return kb_->ontology.concept_name(c);
  };

  NlqAnswer answer;
  for (const Evidence& e : interpretation.selection) {
    if (e.kind == EvidenceKind::kConceptMetadata &&
        answer.answer_concept == kInvalidOntologyConcept) {
      answer.answer_concept = e.concept_id;
    }
  }
  for (const Evidence& e : interpretation.selection) {
    if (e.kind == EvidenceKind::kDataValue ||
        e.kind == EvidenceKind::kRelaxedDataValue) {
      cq.var_groundings[var_of(e.concept_id)].push_back(e.instance);
      cq.var_types[var_of(e.concept_id)] = e.concept_id;
    }
  }
  for (RelationshipId rel : interpretation.tree_edges) {
    const Relationship& r = kb_->ontology.relationship(rel);
    cq.patterns.push_back({var_of(r.domain), rel, var_of(r.range)});
    cq.var_types.emplace(var_of(r.domain), r.domain);
    cq.var_types.emplace(var_of(r.range), r.range);
  }
  if (answer.answer_concept == kInvalidOntologyConcept) {
    if (interpretation.tree_edges.empty()) {
      // Degenerate single-token interpretation: answer with the grounding.
      if (cq.var_groundings.empty()) {
        return Status::FailedPrecondition(
            "Execute: nothing to answer (no concepts, no groundings)");
      }
      answer.answer_concept =
          cq.var_types.at(cq.var_groundings.begin()->first);
    } else {
      answer.answer_concept =
          kb_->ontology.relationship(interpretation.tree_edges[0]).domain;
    }
  }
  cq.answer_var = var_of(answer.answer_concept);
  cq.var_types.emplace(cq.answer_var, answer.answer_concept);

  ConjunctiveQueryEvaluator evaluator(kb_);
  MEDRELAX_ASSIGN_OR_RETURN(answer.instances, evaluator.Evaluate(cq));
  return answer;
}

Result<NlqAnswer> NlqInterpreter::ExecuteFirstNonEmpty(
    const std::vector<Interpretation>& interpretations) const {
  for (const Interpretation& interp : interpretations) {
    Result<NlqAnswer> answer = Execute(interp);
    if (answer.ok() && !answer->instances.empty()) return answer;
  }
  return Status::NotFound(
      "every candidate interpretation executed to an empty answer");
}

}  // namespace medrelax
