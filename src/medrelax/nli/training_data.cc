#include "medrelax/nli/training_data.h"

#include "medrelax/common/random.h"
#include "medrelax/common/string_util.h"
#include "medrelax/text/normalize.h"

namespace medrelax {

namespace {

// Splits camelCase relationship names into a verbal phrase:
// "hasFinding" -> "has finding".
std::string VerbalizeRelationship(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c >= 'A' && c <= 'Z') {
      out.push_back(' ');
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::vector<LabeledQuery> GenerateContextTrainingData(
    const KnowledgeBase& kb, const ContextRegistry& contexts,
    const TrainingDataOptions& options) {
  Rng rng(options.seed);
  std::vector<LabeledQuery> out;

  constexpr const char* kTemplates[] = {
      "what %s %s %s",
      "which %s %s %s",
      "show me %s that %s %s",
      "find %s with %s %s",
      "list the %s that %s %s",
      "does any %s %s %s",
      "tell me about %s and %s %s",
  };

  for (ContextId ctx = 0; ctx < contexts.size(); ++ctx) {
    const Context& c = contexts.context(ctx);
    std::string domain = NormalizeTerm(c.domain);
    std::string verb = VerbalizeRelationship(c.relationship);
    OntologyConceptId range_concept = kb.ontology.FindConcept(c.range);

    // Instance pool for the range slot; falls back to the concept name.
    std::vector<std::string> fillers;
    if (range_concept != kInvalidOntologyConcept) {
      for (InstanceId i : kb.instances.InstancesOfConcept(range_concept)) {
        fillers.push_back(NormalizeTerm(kb.instances.instance(i).name));
        if (fillers.size() >= 200) break;
      }
    }
    if (fillers.empty()) fillers.push_back(NormalizeTerm(c.range));

    for (size_t n = 0; n < options.examples_per_context; ++n) {
      const char* tpl = kTemplates[rng.UniformU64(std::size(kTemplates))];
      const std::string& filler = fillers[rng.UniformU64(fillers.size())];
      LabeledQuery q;
      q.context = ctx;
      q.text = StrFormat(tpl, domain.c_str(), verb.c_str(), filler.c_str());
      out.push_back(std::move(q));
    }

    // Canonical-workload enrichment (Section 4's annotated query workload):
    // users phrase the headline finding contexts through the drug, not the
    // intermediate concept — "what drugs treat fever" carries the intent
    // Indication-hasFinding-Finding. Mirror those phrasings.
    const char* const* canonical = nullptr;
    size_t canonical_count = 0;
    static constexpr const char* kTreatPhrasings[] = {
        "what drugs treat %s",
        "which drugs are used to treat %s",
        "what medication helps with %s",
        "how do you treat %s",
        "give me treatments for %s",
    };
    static constexpr const char* kCausePhrasings[] = {
        "what drugs cause %s",
        "which drugs have the risk of causing %s",
        "what medication can lead to %s",
        "which drugs list %s as a side effect",
        "what can cause %s as an adverse effect",
    };
    if (c.relationship == "hasFinding" && c.domain == "Indication") {
      canonical = kTreatPhrasings;
      canonical_count = std::size(kTreatPhrasings);
    } else if (c.relationship == "hasFinding" && c.domain == "Risk") {
      canonical = kCausePhrasings;
      canonical_count = std::size(kCausePhrasings);
    }
    if (canonical != nullptr) {
      for (size_t n = 0; n < options.examples_per_context; ++n) {
        const std::string& filler = fillers[rng.UniformU64(fillers.size())];
        LabeledQuery q;
        q.context = ctx;
        q.text = StrFormat(canonical[n % canonical_count], filler.c_str());
        out.push_back(std::move(q));
      }
    }
  }
  return out;
}

}  // namespace medrelax
