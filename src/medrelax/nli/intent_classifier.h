#ifndef MEDRELAX_NLI_INTENT_CLASSIFIER_H_
#define MEDRELAX_NLI_INTENT_CLASSIFIER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "medrelax/nli/training_data.h"
#include "medrelax/ontology/context.h"

namespace medrelax {

/// An intent prediction: the context plus a calibrated-ish confidence.
struct IntentPrediction {
  ContextId context = kNoContext;
  /// Posterior probability of the winning context.
  double confidence = 0.0;
};

/// Multinomial naive-Bayes intent classifier with Laplace smoothing — the
/// stand-in for Watson Assistant's intent model (Sections 4 and 6.1). It
/// is trained on the ontology-bootstrapped examples from
/// GenerateContextTrainingData and maps an utterance to the most likely
/// context.
class IntentClassifier {
 public:
  IntentClassifier() = default;

  /// Trains on labeled queries (replaces any previous model).
  void Train(const std::vector<LabeledQuery>& examples, size_t num_contexts);

  /// Classifies an utterance; kNoContext with confidence 0 before Train or
  /// for empty input.
  [[nodiscard]] IntentPrediction Classify(const std::string& utterance) const;

  /// Posterior over all contexts (same order as context ids); empty before
  /// Train.
  [[nodiscard]]
  std::vector<double> Posterior(const std::string& utterance) const;

  [[nodiscard]] size_t num_contexts() const { return num_contexts_; }
  [[nodiscard]] size_t vocabulary_size() const { return vocab_.size(); }

 private:
  size_t num_contexts_ = 0;
  std::unordered_map<std::string, std::vector<double>> word_counts_;
  std::vector<double> class_totals_;   // total word mass per context
  std::vector<double> class_priors_;   // document counts per context
  std::unordered_map<std::string, bool> vocab_;
};

}  // namespace medrelax

#endif  // MEDRELAX_NLI_INTENT_CLASSIFIER_H_
