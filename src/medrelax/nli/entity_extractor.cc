#include "medrelax/nli/entity_extractor.h"

#include <algorithm>

#include "medrelax/common/string_util.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

namespace {

constexpr const char* kStopwords[] = {
    "a",    "an",   "the",  "of",    "for",  "to",   "in",   "on",
    "is",   "are",  "do",   "does",  "can",  "what", "which", "who",
    "how",  "me",   "my",   "about", "with", "and",  "or",   "any",
    "that", "have", "has",  "used",  "give", "show", "find", "list",
    "tell", "you",  "please", "there", "it",  "get",  "as",  "by",
    "from", "when", "if",
};

bool IsStopword(const std::string& tok) {
  for (const char* w : kStopwords) {
    if (tok == w) return true;
  }
  return false;
}

}  // namespace

std::unordered_set<std::string> BuildQueryVocabulary(
    const DomainOntology& ontology) {
  std::unordered_set<std::string> vocab;
  auto add_tokens = [&vocab](const std::string& text) {
    for (const std::string& tok : Tokenize(NormalizeTerm(text))) {
      vocab.insert(tok);
    }
  };
  for (OntologyConceptId c = 0; c < ontology.num_concepts(); ++c) {
    add_tokens(ontology.concept_name(c));
    add_tokens(ontology.concept_name(c) + "s");  // crude plural
  }
  for (const Relationship& r : ontology.relationships()) {
    // camelCase verbalization: "hasFinding" -> "has finding".
    std::string verbal;
    for (char ch : r.name) {
      if (ch >= 'A' && ch <= 'Z') {
        verbal.push_back(' ');
        verbal.push_back(static_cast<char>(ch - 'A' + 'a'));
      } else {
        verbal.push_back(ch);
      }
    }
    add_tokens(verbal);
  }
  // Question scaffolding beyond stopwords.
  for (const char* w :
       {"drugs", "drug", "medication", "medications", "treat", "treats",
        "treatment", "treatments", "cause", "causes", "causing", "risk",
        "risks", "side", "effect", "effects", "adverse", "help", "helps",
        "lead", "leads", "using", "use"}) {
    vocab.insert(w);
  }
  return vocab;
}

EntityExtractor::EntityExtractor(
    const KnowledgeBase* kb, std::unordered_set<std::string> query_vocabulary)
    : kb_(kb), query_vocabulary_(std::move(query_vocabulary)) {
  for (InstanceId i = 0; i < kb_->instances.num_instances(); ++i) {
    std::string normalized = NormalizeTerm(kb_->instances.instance(i).name);
    if (normalized.empty()) continue;
    size_t tokens = Tokenize(normalized).size();
    max_phrase_tokens_ = std::max(max_phrase_tokens_, tokens);
    phrase_index_.emplace(normalized, i);
    std::vector<std::string> toks = Tokenize(normalized);
    if (!toks.empty()) {
      std::vector<size_t>& lengths = first_token_lengths_[toks[0]];
      if (std::find(lengths.begin(), lengths.end(), tokens) == lengths.end()) {
        lengths.push_back(tokens);
      }
    }
  }
  for (auto& [first, lengths] : first_token_lengths_) {
    std::sort(lengths.rbegin(), lengths.rend());  // longest match first
  }
}

std::vector<EntityMention> EntityExtractor::Extract(
    const std::string& utterance) const {
  std::vector<std::string> tokens = Tokenize(NormalizeTerm(utterance));
  std::vector<EntityMention> mentions;
  std::vector<bool> consumed(tokens.size(), false);

  // Pass 1: greedy longest dictionary match.
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (consumed[i]) continue;
    auto it = first_token_lengths_.find(tokens[i]);
    if (it == first_token_lengths_.end()) continue;
    for (size_t len : it->second) {
      if (i + len > tokens.size()) continue;
      std::vector<std::string> span(tokens.begin() + static_cast<long>(i),
                                    tokens.begin() + static_cast<long>(i + len));
      std::string phrase = Join(span, " ");
      auto hit = phrase_index_.find(phrase);
      if (hit == phrase_index_.end()) continue;
      EntityMention m;
      m.surface = phrase;
      m.instance = hit->second;
      m.token_begin = i;
      m.token_end = i + len;
      mentions.push_back(std::move(m));
      for (size_t j = i; j < i + len; ++j) consumed[j] = true;
      break;
    }
  }

  // Pass 2: leftover content tokens become unknown-entity spans
  // (contiguous runs are joined).
  size_t run_begin = tokens.size();
  auto flush = [&](size_t end) {
    if (run_begin >= end) return;
    EntityMention m;
    std::vector<std::string> span(
        tokens.begin() + static_cast<long>(run_begin),
        tokens.begin() + static_cast<long>(end));
    m.surface = Join(span, " ");
    m.instance = kInvalidInstance;
    m.token_begin = run_begin;
    m.token_end = end;
    mentions.push_back(std::move(m));
    run_begin = tokens.size();
  };
  std::vector<bool> content(tokens.size(), false);
  for (size_t i = 0; i < tokens.size(); ++i) {
    content[i] = !consumed[i] && !IsStopword(tokens[i]) &&
                 query_vocabulary_.find(tokens[i]) ==
                     query_vocabulary_.end();
  }
  // Bridge a lone stopword between two content tokens so multi-word terms
  // like "necrosis of kidney" stay one span.
  for (size_t i = 1; i + 1 < tokens.size(); ++i) {
    if (!content[i] && content[i - 1] && content[i + 1] && !consumed[i] &&
        IsStopword(tokens[i])) {
      content[i] = true;
    }
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (content[i]) {
      if (run_begin == tokens.size()) run_begin = i;
    } else {
      flush(i);
    }
  }
  flush(tokens.size());

  std::sort(mentions.begin(), mentions.end(),
            [](const EntityMention& a, const EntityMention& b) {
              return a.token_begin < b.token_begin;
            });
  return mentions;
}

}  // namespace medrelax
