#include "medrelax/nli/dialogue_manager.h"

#include <algorithm>

#include "medrelax/common/string_util.h"
#include "medrelax/kb/kb_query.h"
#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

DialogueManager::DialogueManager(const KnowledgeBase* kb,
                                 const IngestionResult* ingestion,
                                 const IntentClassifier* intents,
                                 const EntityExtractor* entities,
                                 const QueryRelaxer* relaxer,
                                 const DialogueOptions& options)
    : kb_(kb),
      ingestion_(ingestion),
      intents_(intents),
      entities_(entities),
      relaxer_(relaxer),
      options_(options) {
  for (const auto& [instance, concept_id] : ingestion_->mappings) {
    instance_concept_.emplace(instance, concept_id);
  }
}

void DialogueManager::AcceptSuggestion(ConceptId concept_id) {
  if (feedback_ != nullptr && previous_context_ != kNoContext) {
    feedback_->Accept(concept_id, previous_context_);
  }
}

void DialogueManager::RejectSuggestion(ConceptId concept_id) {
  if (feedback_ != nullptr && previous_context_ != kNoContext) {
    feedback_->Reject(concept_id, previous_context_);
  }
}

DialogueResponse DialogueManager::Handle(const std::string& utterance) {
  // Intent: classify, with conversational carry-over for weak short turns.
  IntentPrediction intent = intents_->Classify(utterance);
  ContextId context = intent.context;
  size_t token_count = Tokenize(NormalizeTerm(utterance)).size();
  if (previous_context_ != kNoContext &&
      (intent.confidence < options_.context_carryover_confidence ||
       token_count <= 3)) {
    context = previous_context_;
  }

  // Entity: prefer a known Finding instance, else the longest unknown span.
  std::vector<EntityMention> mentions = entities_->Extract(utterance);
  const EntityMention* known = nullptr;
  const EntityMention* unknown = nullptr;
  for (const EntityMention& m : mentions) {
    if (m.instance != kInvalidInstance) {
      if (known == nullptr) known = &m;
    } else if (unknown == nullptr ||
               m.surface.size() > unknown->surface.size()) {
      unknown = &m;
    }
  }

  DialogueResponse response;
  if (known != nullptr) {
    response = AnswerKnown(known->instance, context);
  } else if (unknown != nullptr) {
    response = AnswerUnknown(unknown->surface, context);
  } else {
    response.text = "Could you tell me which condition you mean?";
    response.context = context;
  }
  previous_context_ = response.context;
  return response;
}

DialogueResponse DialogueManager::AnswerKnown(InstanceId instance,
                                              ContextId context) {
  DialogueResponse response;
  response.context = context;
  const Instance& record = kb_->instances.instance(instance);

  // Scenario 2 (Figure 8): expand around the known term first.
  auto mapped = instance_concept_.find(instance);
  if (mapped != instance_concept_.end()) {
    response.surfaced_concepts.push_back(mapped->second);
    if (relaxer_ != nullptr) {
      RelaxationOutcome expansion =
          feedback_ != nullptr
              ? feedback_->RelaxConcept(mapped->second, context)
              : relaxer_->RelaxConcept(mapped->second, context);
      for (const ScoredConcept& sc : expansion.concepts) {
        if (sc.concept_id == mapped->second) continue;
        if (response.surfaced_concepts.size() > options_.max_suggestions) {
          break;
        }
        response.surfaced_concepts.push_back(sc.concept_id);
        response.used_relaxation = true;
      }
    }
  }

  // Direct answer under the context: walk back to the drugs.
  KbQuery query(kb_);
  const Context& ctx = ingestion_->contexts.context(context);
  std::vector<InstanceId> mids = query.SubjectsFor(ctx, instance);
  for (InstanceId mid : mids) {
    OntologyConceptId mid_concept = kb_->instances.instance(mid).concept_id;
    for (RelationshipId rel :
         kb_->ontology.RelationshipsWithRange(mid_concept)) {
      for (InstanceId drug : kb_->triples.Subjects(rel, mid)) {
        if (std::find(response.answers.begin(), response.answers.end(),
                      drug) == response.answers.end()) {
          response.answers.push_back(drug);
        }
      }
    }
  }

  std::vector<std::string> names;
  for (InstanceId d : response.answers) {
    names.push_back(kb_->instances.instance(d).name);
    if (names.size() >= 5) break;
  }
  if (response.used_relaxation) {
    response.text = StrFormat(
        "Here is what I know about %s (%zu related conditions are also "
        "available). Matching drugs: %s",
        record.name.c_str(), response.surfaced_concepts.size() - 1,
        Join(names, ", ").c_str());
  } else if (!names.empty()) {
    response.text = StrFormat("Matching drugs for %s: %s",
                              record.name.c_str(), Join(names, ", ").c_str());
  } else {
    response.text =
        StrFormat("I found %s but no drug information for this context.",
                  record.name.c_str());
  }
  return response;
}

DialogueResponse DialogueManager::AnswerUnknown(const std::string& term,
                                                ContextId context) {
  DialogueResponse response;
  response.context = context;
  if (relaxer_ == nullptr) {
    // The paper's no-QR behavior (Figure 7's counterfactual).
    response.text = StrFormat("I don't understand \"%s\".", term.c_str());
    return response;
  }

  // Scenario 1 (Figure 7): repair the conversation via relaxation,
  // re-ranked by session feedback when a feedback layer is attached.
  Result<RelaxationOutcome> relaxed = relaxer_->Relax(term, context);
  if (relaxed.ok() && feedback_ != nullptr) {
    *relaxed = feedback_->RelaxConcept(relaxed->query_concept, context);
  }
  if (!relaxed.ok() || relaxed->concepts.empty()) {
    response.text = StrFormat(
        "I couldn't find anything related to \"%s\".", term.c_str());
    return response;
  }
  response.used_relaxation = true;
  for (const ScoredConcept& sc : relaxed->concepts) {
    if (response.surfaced_concepts.size() >= options_.max_suggestions) break;
    response.surfaced_concepts.push_back(sc.concept_id);
  }
  // Render suggestion names from the ingestion's concept->instances map.
  std::vector<std::string> suggestions;
  for (ConceptId c : response.surfaced_concepts) {
    auto it = ingestion_->concept_instances.find(c);
    if (it != ingestion_->concept_instances.end() && !it->second.empty()) {
      suggestions.push_back(kb_->instances.instance(it->second[0]).name);
      for (InstanceId i : it->second) response.answers.push_back(i);
    }
  }
  response.text = StrFormat(
      "\"%s\" is not in the knowledge base. Semantically related conditions "
      "I do know about: %s",
      term.c_str(), Join(suggestions, ", ").c_str());
  return response;
}

}  // namespace medrelax
