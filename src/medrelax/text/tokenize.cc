#include "medrelax/text/tokenize.h"

namespace medrelax {

namespace {
bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}
}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (IsWordChar(c)) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> CharNgrams(std::string_view s, size_t n) {
  std::vector<std::string> grams;
  if (s.empty() || n == 0) return grams;
  if (s.size() <= n) {
    grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - n + 1);
  for (size_t i = 0; i + n <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, n));
  }
  return grams;
}

}  // namespace medrelax
