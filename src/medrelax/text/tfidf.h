#ifndef MEDRELAX_TEXT_TFIDF_H_
#define MEDRELAX_TEXT_TFIDF_H_

#include <cstddef>
#include <string>
#include <unordered_map>

namespace medrelax {

/// tf-idf weighting over term mention statistics.
///
/// Section 5.1 of the paper adjusts raw concept mention counts by the number
/// of documents a concept appears in ("to alleviate this bias" of sparse
/// specialty terms vs broadly mentioned ones). This class accumulates
/// (term -> total mentions, term -> document frequency) and produces the
/// adjusted weight  tf * idf  with  idf = log(1 + N / df).
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Registers one document's term counts (term -> count in that document).
  void AddDocument(const std::unordered_map<std::string, size_t>& counts);

  /// Number of documents seen.
  [[nodiscard]] size_t num_documents() const { return num_documents_; }

  /// Total mentions of `term` across all documents.
  [[nodiscard]] size_t TermFrequency(const std::string& term) const;

  /// Number of documents mentioning `term`.
  [[nodiscard]] size_t DocumentFrequency(const std::string& term) const;

  /// Smoothed idf = log(1 + N / df); returns 0 for unseen terms.
  [[nodiscard]] double Idf(const std::string& term) const;

  /// tf * idf for `term`; 0 for unseen terms.
  [[nodiscard]] double Weight(const std::string& term) const;

 private:
  size_t num_documents_ = 0;
  std::unordered_map<std::string, size_t> term_frequency_;
  std::unordered_map<std::string, size_t> document_frequency_;
};

}  // namespace medrelax

#endif  // MEDRELAX_TEXT_TFIDF_H_
