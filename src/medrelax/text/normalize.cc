#include "medrelax/text/normalize.h"

namespace medrelax {

namespace {

bool IsPunct(char c) {
  switch (c) {
    case '-':
    case '_':
    case '/':
    case ',':
    case '.':
    case '(':
    case ')':
    case ';':
    case ':':
    case '\'':
    case '"':
      return true;
    default:
      return false;
  }
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

std::string NormalizeTerm(std::string_view term,
                          const NormalizeOptions& options) {
  std::string staged;
  staged.reserve(term.size());
  for (char c : term) {
    if (options.lowercase && c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
    if (options.strip_punctuation && IsPunct(c)) c = ' ';
    staged.push_back(c);
  }
  if (!options.collapse_whitespace) return staged;

  std::string out;
  out.reserve(staged.size());
  bool in_space = true;  // trims leading whitespace
  for (char c : staged) {
    if (IsSpace(c)) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

}  // namespace medrelax
