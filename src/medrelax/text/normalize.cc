#include "medrelax/text/normalize.h"

namespace medrelax {

namespace {

bool IsPunct(char c) {
  switch (c) {
    case '-':
    case '_':
    case '/':
    case ',':
    case '.':
    case '(':
    case ')':
    case ';':
    case ':':
    case '\'':
    case '"':
      return true;
    default:
      return false;
  }
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

std::string NormalizeTerm(std::string_view term,
                          const NormalizeOptions& options) {
  // Single pass, single allocation: this runs once per surface form when
  // a name index is (re)built, which is on the snapshot image load path.
  std::string out;
  out.reserve(term.size());
  bool in_space = true;  // trims leading whitespace
  for (char c : term) {
    if (options.lowercase && c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
    if (options.strip_punctuation && IsPunct(c)) c = ' ';
    if (options.collapse_whitespace) {
      if (IsSpace(c)) {
        in_space = true;
        continue;
      }
      if (in_space && !out.empty()) out.push_back(' ');
      in_space = false;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace medrelax
