#ifndef MEDRELAX_TEXT_NORMALIZE_H_
#define MEDRELAX_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace medrelax {

/// Options controlling term normalization before matching.
struct NormalizeOptions {
  /// Lowercase ASCII letters.
  bool lowercase = true;
  /// Replace punctuation ('-', '_', '/', ',', '.', '(', ')') with spaces.
  bool strip_punctuation = true;
  /// Collapse runs of whitespace to a single space and trim the ends.
  bool collapse_whitespace = true;
};

/// Normalizes a surface form for name matching: the same normalization is
/// applied to KB instance names, external concept names/synonyms, and query
/// terms so the matchers compare like with like.
std::string NormalizeTerm(std::string_view term,
                          const NormalizeOptions& options = {});

}  // namespace medrelax

#endif  // MEDRELAX_TEXT_NORMALIZE_H_
