#include "medrelax/text/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace medrelax {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

std::optional<size_t> BoundedLevenshtein(std::string_view a,
                                         std::string_view b,
                                         size_t max_distance) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_distance) return std::nullopt;

  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  const size_t k = max_distance;
  // Band of width 2k+1 around the diagonal.
  std::vector<size_t> row(a.size() + 1, kInf);
  for (size_t i = 0; i <= std::min(a.size(), k); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t lo = (j > k) ? j - k : 0;
    size_t hi = std::min(a.size(), j + k);
    size_t prev_diag = (lo == 0) ? j - 1 : row[lo - 1];
    if (lo == 0) row[0] = j;
    size_t row_min = row[lo];
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      size_t cur = row[i];
      size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = (cur == kInf) ? kInf : cur + 1;
      size_t ins = (row[i - 1] == kInf) ? kInf : row[i - 1] + 1;
      row[i] = std::min({del, ins, sub});
      row_min = std::min(row_min, row[i]);
      prev_diag = cur;
    }
    // Cells outside the band stay infinite for the next column.
    if (hi < a.size()) row[hi + 1] = kInf;
    if (row_min > max_distance) return std::nullopt;
  }
  size_t d = row[a.size()];
  if (d > max_distance) return std::nullopt;
  return d;
}

double JaroWinkler(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = (i > match_window) ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double jaro = (m / static_cast<double>(a.size()) +
                 m / static_cast<double>(b.size()) +
                 (m - static_cast<double>(transpositions) / 2.0) / m) /
                3.0;

  // Winkler prefix bonus (prefix length capped at 4, scale 0.1).
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

}  // namespace medrelax
