#ifndef MEDRELAX_TEXT_EDIT_DISTANCE_H_
#define MEDRELAX_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <optional>
#include <string_view>

namespace medrelax {

/// Levenshtein distance (unit-cost insert/delete/substitute) between a and b.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Banded Levenshtein with early exit: returns the distance if it is
/// <= max_distance, otherwise std::nullopt. O(max_distance * min(|a|,|b|)).
/// This is the τ-thresholded matcher the paper's EDIT mapping method uses
/// (τ = 2 in the evaluation, Section 7.2).
std::optional<size_t> BoundedLevenshtein(std::string_view a,
                                         std::string_view b,
                                         size_t max_distance);

/// Jaro-Winkler similarity in [0, 1]; 1 means equal. Used as a secondary
/// tie-break signal in the fuzzy name index.
double JaroWinkler(std::string_view a, std::string_view b);

}  // namespace medrelax

#endif  // MEDRELAX_TEXT_EDIT_DISTANCE_H_
