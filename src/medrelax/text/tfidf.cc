#include "medrelax/text/tfidf.h"

#include <cmath>

namespace medrelax {

void TfIdfModel::AddDocument(
    const std::unordered_map<std::string, size_t>& counts) {
  ++num_documents_;
  for (const auto& [term, count] : counts) {
    if (count == 0) continue;
    term_frequency_[term] += count;
    document_frequency_[term] += 1;
  }
}

size_t TfIdfModel::TermFrequency(const std::string& term) const {
  auto it = term_frequency_.find(term);
  return it == term_frequency_.end() ? 0 : it->second;
}

size_t TfIdfModel::DocumentFrequency(const std::string& term) const {
  auto it = document_frequency_.find(term);
  return it == document_frequency_.end() ? 0 : it->second;
}

double TfIdfModel::Idf(const std::string& term) const {
  size_t df = DocumentFrequency(term);
  if (df == 0 || num_documents_ == 0) return 0.0;
  return std::log(1.0 + static_cast<double>(num_documents_) /
                            static_cast<double>(df));
}

double TfIdfModel::Weight(const std::string& term) const {
  return static_cast<double>(TermFrequency(term)) * Idf(term);
}

}  // namespace medrelax
