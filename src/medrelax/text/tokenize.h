#ifndef MEDRELAX_TEXT_TOKENIZE_H_
#define MEDRELAX_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace medrelax {

/// Splits normalized text into word tokens (maximal runs of [a-z0-9]).
/// Input is expected to have gone through NormalizeTerm, but the tokenizer
/// is robust to arbitrary bytes: anything outside [a-zA-Z0-9] separates.
std::vector<std::string> Tokenize(std::string_view text);

/// Character n-grams of a string, used by fuzzy-name blocking. When the
/// string is shorter than n, the whole string is the single gram.
std::vector<std::string> CharNgrams(std::string_view s, size_t n);

}  // namespace medrelax

#endif  // MEDRELAX_TEXT_TOKENIZE_H_
