#include "medrelax/matching/edit_matcher.h"

#include "medrelax/text/edit_distance.h"
#include "medrelax/text/normalize.h"

namespace medrelax {

std::optional<ConceptMatch> EditDistanceMatcher::Map(
    std::string_view term) const {
  std::string normalized = NormalizeTerm(term);
  if (normalized.empty()) return std::nullopt;

  size_t best_distance = options_.max_distance + 1;
  double best_tiebreak = -1.0;
  ConceptId best = kInvalidConcept;

  for (size_t entry_index :
       index_->CandidatesByTrigram(normalized, options_.max_candidates)) {
    const NameEntry& entry = index_->entries()[entry_index];
    std::optional<size_t> d =
        BoundedLevenshtein(normalized, entry.surface, options_.max_distance);
    if (!d.has_value()) continue;
    if (*d < best_distance) {
      best_distance = *d;
      best = entry.concept_id;
      best_tiebreak = JaroWinkler(normalized, entry.surface);
      if (best_distance == 0) break;
    } else if (*d == best_distance) {
      double jw = JaroWinkler(normalized, entry.surface);
      if (jw > best_tiebreak) {
        best_tiebreak = jw;
        best = entry.concept_id;
      }
    }
  }
  if (best == kInvalidConcept) return std::nullopt;
  double span = static_cast<double>(options_.max_distance) + 1.0;
  return ConceptMatch{best, 1.0 - static_cast<double>(best_distance) / span};
}

}  // namespace medrelax
