#ifndef MEDRELAX_MATCHING_EXACT_MATCHER_H_
#define MEDRELAX_MATCHING_EXACT_MATCHER_H_

#include <optional>
#include <string>

#include "medrelax/matching/matcher.h"
#include "medrelax/matching/name_index.h"

namespace medrelax {

/// EXACT mapping method of Section 7.2: a term maps to a concept iff its
/// normalized form equals the concept's normalized name or a synonym.
/// Highest precision, lowest recall of the three methods (Table 1).
class ExactMatcher : public MappingFunction {
 public:
  /// Borrows `index`, which must outlive the matcher.
  explicit ExactMatcher(const NameIndex* index) : index_(index) {}

  std::string name() const override { return "EXACT"; }

  std::optional<ConceptMatch> Map(std::string_view term) const override;

 private:
  const NameIndex* index_;
};

}  // namespace medrelax

#endif  // MEDRELAX_MATCHING_EXACT_MATCHER_H_
