#ifndef MEDRELAX_MATCHING_MATCHER_H_
#define MEDRELAX_MATCHING_MATCHER_H_

#include <optional>
#include <string>
#include <string_view>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// A resolved mapping from a surface term to an external concept.
struct ConceptMatch {
  ConceptId id = kInvalidConcept;
  /// Matcher-specific confidence in [0, 1]; 1 for exact matches.
  double score = 0.0;
};

/// The pluggable `mapping(i, EKS)` of Algorithms 1 and 2: maps a surface
/// term (a KB instance name offline, a query term online) to an external
/// concept. Implementations: ExactMatcher, EditDistanceMatcher,
/// EmbeddingMatcher (Section 7.2 compares the three as Table 1).
class MappingFunction {
 public:
  virtual ~MappingFunction() = default;

  /// Human-readable method name as printed in Table 1 (EXACT / EDIT /
  /// EMBEDDING).
  virtual std::string name() const = 0;

  /// Maps `term` to its best-matching external concept, or nullopt when the
  /// matcher finds nothing above its acceptance bar.
  virtual std::optional<ConceptMatch> Map(std::string_view term) const = 0;
};

}  // namespace medrelax

#endif  // MEDRELAX_MATCHING_MATCHER_H_
