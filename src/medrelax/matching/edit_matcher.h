#ifndef MEDRELAX_MATCHING_EDIT_MATCHER_H_
#define MEDRELAX_MATCHING_EDIT_MATCHER_H_

#include <cstddef>
#include <optional>
#include <string>

#include "medrelax/matching/matcher.h"
#include "medrelax/matching/name_index.h"

namespace medrelax {

/// Options for the EDIT mapping method.
struct EditMatcherOptions {
  /// Edit-distance acceptance threshold τ (paper uses τ = 2, Section 7.2).
  size_t max_distance = 2;
  /// Trigram-blocking fan-out: how many index entries are verified with the
  /// banded Levenshtein per query.
  size_t max_candidates = 256;
};

/// EDIT mapping method of Section 7.2: approximate string matching with an
/// edit-distance threshold. Exact hits (distance 0) win; otherwise the
/// candidate with the smallest distance, Jaro-Winkler as tie-break.
class EditDistanceMatcher : public MappingFunction {
 public:
  /// Borrows `index`, which must outlive the matcher.
  EditDistanceMatcher(const NameIndex* index, EditMatcherOptions options)
      : index_(index), options_(options) {}

  std::string name() const override { return "EDIT"; }

  std::optional<ConceptMatch> Map(std::string_view term) const override;

 private:
  const NameIndex* index_;
  EditMatcherOptions options_;
};

}  // namespace medrelax

#endif  // MEDRELAX_MATCHING_EDIT_MATCHER_H_
