#include "medrelax/matching/name_index.h"

#include <algorithm>

#include "medrelax/text/normalize.h"

namespace medrelax {

namespace {

/// Packs a 1-3 character gram into one integer key. The length tag in the
/// top byte keeps short surface forms (CharNgrams returns the whole
/// string when it is <= n chars) distinct from true trigrams that happen
/// to share a byte prefix.
uint32_t PackGram(std::string_view gram) {
  uint32_t key = static_cast<uint32_t>(gram.size()) << 24;
  for (size_t i = 0; i < gram.size(); ++i) {
    key |= static_cast<uint32_t>(static_cast<unsigned char>(gram[i]))
           << (8 * (2 - i));
  }
  return key;
}

/// Visits exactly the grams CharNgrams(s, 3) would return, as packed
/// keys, without materializing a string per gram — index construction is
/// the hot half of booting a snapshot from a flat image.
template <typename Fn>
void ForEachTrigramKey(std::string_view s, Fn&& fn) {
  if (s.empty()) return;
  if (s.size() <= 3) {
    fn(PackGram(s));
    return;
  }
  for (size_t i = 0; i + 3 <= s.size(); ++i) fn(PackGram(s.substr(i, 3)));
}

}  // namespace

size_t NameIndex::TrigramTable::Probe(uint32_t key) const {
  // Fibonacci hashing spreads the packed byte patterns; capacity is a
  // power of two so the mask replaces a modulo.
  const size_t mask = slots_.size() - 1;
  size_t slot = (key * 2654435761u) & mask;
  while (slots_[slot].second != kEmpty && slots_[slot].first != key) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

void NameIndex::TrigramTable::Grow() {
  std::vector<std::pair<uint32_t, int32_t>> old = std::move(slots_);
  slots_.assign(old.empty() ? 1024 : old.size() * 2, {0, kEmpty});
  for (const auto& [key, id] : old) {
    if (id != kEmpty) slots_[Probe(key)] = {key, id};
  }
}

uint32_t NameIndex::TrigramTable::Intern(uint32_t key) {
  if (slots_.empty() || (offsets_.size() - 1) * 2 >= slots_.size()) Grow();
  size_t slot = Probe(key);
  if (slots_[slot].second == kEmpty) {
    slots_[slot] = {key, static_cast<int32_t>(offsets_.size() - 1)};
    offsets_.push_back(0);  // counts accumulate here during pass 1
  }
  return static_cast<uint32_t>(slots_[slot].second);
}

void NameIndex::TrigramTable::Build(const std::vector<NameEntry>& entries) {
  // Pass 1: intern keys, count postings per key (counts staged in
  // offsets_[id + 1]), and record each posting's dense id — grams arrive
  // in entry order, so pass 2 can replay the ids against per-entry gram
  // counts without probing the slot table a second time.
  offsets_.assign(1, 0);
  std::vector<uint32_t> ids;
  ids.reserve(4 * entries.size());
  for (const NameEntry& entry : entries) {
    ForEachTrigramKey(entry.surface, [&](uint32_t key) {
      const uint32_t id = Intern(key);
      ++offsets_[id + 1];
      ids.push_back(id);
    });
  }
  // Exclusive scan turns counts into CSR offsets.
  for (size_t k = 1; k < offsets_.size(); ++k) offsets_[k] += offsets_[k - 1];
  postings_.resize(offsets_.back());
  // Pass 2: place each posting at its key's cursor. The live cursors are
  // one per distinct trigram, so the writes stay cache-resident even
  // with millions of postings.
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  size_t next = 0;
  for (size_t e = 0; e < entries.size(); ++e) {
    const size_t length = entries[e].surface.size();
    if (length == 0) continue;
    const size_t grams = length <= 3 ? 1 : length - 2;
    for (size_t g = 0; g < grams; ++g) {
      postings_[cursor[ids[next++]]++] = static_cast<uint32_t>(e);
    }
  }
}

std::span<const uint32_t> NameIndex::TrigramTable::Find(uint32_t key) const {
  if (slots_.empty()) return {};
  size_t slot = Probe(key);
  if (slots_[slot].second == kEmpty) return {};
  const auto id = static_cast<size_t>(slots_[slot].second);
  return std::span<const uint32_t>(postings_).subspan(
      offsets_[id], offsets_[id + 1] - offsets_[id]);
}

NameIndex::NameIndex(const ConceptDag* dag) : dag_(dag) {
  size_t num_surfaces = dag_->num_concepts();
  for (ConceptId id = 0; id < dag_->num_concepts(); ++id) {
    num_surfaces += dag_->synonyms(id).size();
  }
  entries_.reserve(num_surfaces);
  exact_.reserve(num_surfaces);
  for (ConceptId id = 0; id < dag_->num_concepts(); ++id) {
    auto add_entry = [&](const std::string& raw, bool canonical) {
      std::string normalized = NormalizeTerm(raw);
      if (normalized.empty()) return;
      entries_.push_back({std::move(normalized), id, canonical});
      exact_[entries_.back().surface].push_back(id);
    };
    add_entry(dag_->name(id), /*canonical=*/true);
    for (const std::string& syn : dag_->synonyms(id)) {
      add_entry(syn, /*canonical=*/false);
    }
  }
}

std::vector<ConceptId> NameIndex::FindExact(std::string_view surface) const {
  auto it = exact_.find(NormalizeTerm(surface));
  if (it == exact_.end()) return {};
  // Dedup while preserving order (canonical-first insertion order).
  std::vector<ConceptId> out;
  for (ConceptId id : it->second) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

std::vector<size_t> NameIndex::CandidatesByTrigram(
    std::string_view normalized, size_t max_candidates) const {
  std::call_once(trigram_once_, [this] { trigram_postings_.Build(entries_); });
  std::unordered_map<size_t, size_t> shared;
  ForEachTrigramKey(normalized, [&](uint32_t gram) {
    for (uint32_t entry : trigram_postings_.Find(gram)) ++shared[entry];
  });
  std::vector<std::pair<size_t, size_t>> ranked(shared.begin(), shared.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<size_t> out;
  out.reserve(std::min(max_candidates, ranked.size()));
  for (const auto& [entry, count] : ranked) {
    (void)count;
    if (out.size() >= max_candidates) break;
    out.push_back(entry);
  }
  return out;
}

}  // namespace medrelax
