#include "medrelax/matching/name_index.h"

#include <algorithm>

#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

NameIndex::NameIndex(const ConceptDag* dag) : dag_(dag) {
  for (ConceptId id = 0; id < dag_->num_concepts(); ++id) {
    auto add_entry = [&](const std::string& raw, bool canonical) {
      std::string normalized = NormalizeTerm(raw);
      if (normalized.empty()) return;
      size_t entry_index = entries_.size();
      entries_.push_back({normalized, id, canonical});
      exact_[normalized].push_back(id);
      for (const std::string& gram : CharNgrams(normalized, 3)) {
        trigram_postings_[gram].push_back(entry_index);
      }
    };
    add_entry(dag_->name(id), /*canonical=*/true);
    for (const std::string& syn : dag_->synonyms(id)) {
      add_entry(syn, /*canonical=*/false);
    }
  }
}

std::vector<ConceptId> NameIndex::FindExact(std::string_view surface) const {
  auto it = exact_.find(NormalizeTerm(surface));
  if (it == exact_.end()) return {};
  // Dedup while preserving order (canonical-first insertion order).
  std::vector<ConceptId> out;
  for (ConceptId id : it->second) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

std::vector<size_t> NameIndex::CandidatesByTrigram(
    std::string_view normalized, size_t max_candidates) const {
  std::unordered_map<size_t, size_t> shared;
  for (const std::string& gram : CharNgrams(normalized, 3)) {
    auto it = trigram_postings_.find(gram);
    if (it == trigram_postings_.end()) continue;
    for (size_t entry : it->second) ++shared[entry];
  }
  std::vector<std::pair<size_t, size_t>> ranked(shared.begin(), shared.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<size_t> out;
  out.reserve(std::min(max_candidates, ranked.size()));
  for (const auto& [entry, count] : ranked) {
    (void)count;
    if (out.size() >= max_candidates) break;
    out.push_back(entry);
  }
  return out;
}

}  // namespace medrelax
