#ifndef MEDRELAX_MATCHING_EMBEDDING_MATCHER_H_
#define MEDRELAX_MATCHING_EMBEDDING_MATCHER_H_

#include <optional>
#include <string>
#include <vector>

#include "medrelax/embedding/sif.h"
#include "medrelax/matching/matcher.h"
#include "medrelax/matching/name_index.h"

namespace medrelax {

/// Options for the EMBEDDING mapping method.
struct EmbeddingMatcherOptions {
  /// Minimum cosine similarity for a mapping to be accepted.
  double min_similarity = 0.60;
};

/// EMBEDDING mapping method of Section 7.2: the query term and every
/// concept surface form are embedded with SIF sentence vectors (multi-word
/// support per the paper's reference [3]); the nearest surface form above
/// the similarity bar wins. Exact normalized hits short-circuit to score 1.
///
/// Surface-form embeddings are precomputed at construction, so each Map()
/// is one embedding plus a dense scan (the vocabulary sizes here make ANN
/// indexing unnecessary).
class EmbeddingMatcher : public MappingFunction {
 public:
  /// Borrows `index` and `sif`, which must outlive the matcher.
  EmbeddingMatcher(const NameIndex* index, const SifModel* sif,
                   EmbeddingMatcherOptions options);

  std::string name() const override { return "EMBEDDING"; }

  std::optional<ConceptMatch> Map(std::string_view term) const override;

 private:
  const NameIndex* index_;
  const SifModel* sif_;
  EmbeddingMatcherOptions options_;
  size_t dims_ = 0;
  /// Row-major |entries| x dims precomputed surface embeddings; rows of
  /// fully-OOV surfaces are zero and skipped during the scan.
  std::vector<double> surface_embeddings_;
};

}  // namespace medrelax

#endif  // MEDRELAX_MATCHING_EMBEDDING_MATCHER_H_
