#include "medrelax/matching/exact_matcher.h"

namespace medrelax {

std::optional<ConceptMatch> ExactMatcher::Map(std::string_view term) const {
  std::vector<ConceptId> hits = index_->FindExact(term);
  if (hits.empty()) return std::nullopt;
  return ConceptMatch{hits.front(), 1.0};
}

}  // namespace medrelax
