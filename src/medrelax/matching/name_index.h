#ifndef MEDRELAX_MATCHING_NAME_INDEX_H_
#define MEDRELAX_MATCHING_NAME_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// One indexed surface form of an external concept.
struct NameEntry {
  /// Normalized surface form (canonical name or synonym).
  std::string surface;
  ConceptId concept_id = kInvalidConcept;
  /// True for the canonical name, false for synonyms.
  bool is_canonical = false;
};

/// Normalized-name index over an external knowledge source, shared by all
/// mapping functions (Section 3: "matching the instance data and external
/// concepts with exactly the same names, very similar names in terms of
/// edit distance, or similar names in terms of word embeddings").
///
/// Exact lookup is hash-based; fuzzy lookups use character-trigram blocking
/// so the edit-distance matcher does not scan the whole vocabulary.
class NameIndex {
 public:
  /// Builds the index from every concept's canonical name and synonyms.
  /// Borrows `dag`, which must outlive the index.
  explicit NameIndex(const ConceptDag* dag);

  /// Concepts whose canonical name or synonym normalizes to exactly the
  /// normalized input (usually 0 or 1; synonym collisions can yield more).
  [[nodiscard]]
  std::vector<ConceptId> FindExact(std::string_view surface) const;

  /// Entry indexes of surface forms sharing at least one character trigram
  /// with the normalized input, ordered by shared-trigram count (blocking
  /// set for the fuzzy matchers). At most `max_candidates` entries.
  std::vector<size_t> CandidatesByTrigram(std::string_view normalized,
                                          size_t max_candidates) const;

  /// All indexed entries.
  [[nodiscard]]
  const std::vector<NameEntry>& entries() const { return entries_; }

  [[nodiscard]] const ConceptDag& dag() const { return *dag_; }

 private:
  const ConceptDag* dag_;
  std::vector<NameEntry> entries_;
  std::unordered_map<std::string, std::vector<ConceptId>> exact_;
  std::unordered_map<std::string, std::vector<size_t>> trigram_postings_;
};

}  // namespace medrelax

#endif  // MEDRELAX_MATCHING_NAME_INDEX_H_
