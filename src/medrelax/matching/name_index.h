#ifndef MEDRELAX_MATCHING_NAME_INDEX_H_
#define MEDRELAX_MATCHING_NAME_INDEX_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// One indexed surface form of an external concept.
struct NameEntry {
  /// Normalized surface form (canonical name or synonym).
  std::string surface;
  ConceptId concept_id = kInvalidConcept;
  /// True for the canonical name, false for synonyms.
  bool is_canonical = false;
};

/// Normalized-name index over an external knowledge source, shared by all
/// mapping functions (Section 3: "matching the instance data and external
/// concepts with exactly the same names, very similar names in terms of
/// edit distance, or similar names in terms of word embeddings").
///
/// Exact lookup is hash-based; fuzzy lookups use character-trigram blocking
/// so the edit-distance matcher does not scan the whole vocabulary.
/// Trigrams are packed into integer keys (length tag + up to 3 bytes)
/// rather than heap strings: index construction is on the snapshot load
/// path, where a 64k-concept vocabulary means millions of postings.
class NameIndex {
 public:
  /// Builds the index from every concept's canonical name and synonyms.
  /// Borrows `dag`, which must outlive the index.
  explicit NameIndex(const ConceptDag* dag);

  /// Concepts whose canonical name or synonym normalizes to exactly the
  /// normalized input (usually 0 or 1; synonym collisions can yield more).
  [[nodiscard]]
  std::vector<ConceptId> FindExact(std::string_view surface) const;

  /// Entry indexes of surface forms sharing at least one character trigram
  /// with the normalized input, ordered by shared-trigram count (blocking
  /// set for the fuzzy matchers). At most `max_candidates` entries.
  ///
  /// The postings table behind this is built lazily on first call (under
  /// std::call_once — concurrent queries are safe): exact-matcher
  /// deployments never look at trigrams, so booting a snapshot from a
  /// flat image stays free of the one vocabulary-sized pass this needs,
  /// and a fuzzy deployment pays it once on its first non-exact lookup
  /// (during ingestion for built snapshots).
  std::vector<size_t> CandidatesByTrigram(std::string_view normalized,
                                          size_t max_candidates) const;

  /// All indexed entries.
  [[nodiscard]]
  const std::vector<NameEntry>& entries() const { return entries_; }

  [[nodiscard]] const ConceptDag& dag() const { return *dag_; }

 private:
  /// Trigram -> postings, stored CSR. A 64k-concept vocabulary produces
  /// ~3M postings over only a few thousand distinct trigram keys, and
  /// index construction sits directly on the snapshot image load path —
  /// so the table is built in two counting passes into one flat postings
  /// array (no per-key vector growth, cursor writes stay cache-resident)
  /// with keys resolved by linear probing over a flat power-of-two slot
  /// array instead of a node-based map.
  class TrigramTable {
   public:
    /// Builds the table over the (already normalized) entry surfaces.
    void Build(const std::vector<NameEntry>& entries);
    /// The entry indexes containing `key`, in ascending entry order;
    /// empty when the trigram was never seen.
    [[nodiscard]] std::span<const uint32_t> Find(uint32_t key) const;

   private:
    /// Dense id of `key`, interning it on first sight.
    uint32_t Intern(uint32_t key);
    /// Slot index of `key`, or of the empty slot where it would insert.
    [[nodiscard]] size_t Probe(uint32_t key) const;
    void Grow();

    static constexpr int32_t kEmpty = -1;
    /// (key, dense id) pairs; id kEmpty marks a free slot. Capacity is a
    /// power of two, load kept under 1/2.
    std::vector<std::pair<uint32_t, int32_t>> slots_;
    /// Postings of dense id k live in
    /// postings_[offsets_[k] .. offsets_[k + 1]).
    std::vector<uint32_t> offsets_;
    std::vector<uint32_t> postings_;
  };

  const ConceptDag* dag_;
  std::vector<NameEntry> entries_;
  /// Keys view into entries_' surfaces (no second copy of the
  /// vocabulary). Safe because entries_ is reserved to its exact final
  /// size before the first insert and never touched afterwards — small
  /// (SSO) strings live inside the vector's buffer, so a reallocation
  /// would dangle these views.
  std::unordered_map<std::string_view, std::vector<ConceptId>> exact_;
  /// Lazily built by CandidatesByTrigram (see its contract); mutable so
  /// the logically-const first lookup can materialize it.
  mutable std::once_flag trigram_once_;
  mutable TrigramTable trigram_postings_;
};

}  // namespace medrelax

#endif  // MEDRELAX_MATCHING_NAME_INDEX_H_
