#include "medrelax/matching/embedding_matcher.h"

#include "medrelax/text/normalize.h"
#include "medrelax/text/tokenize.h"

namespace medrelax {

EmbeddingMatcher::EmbeddingMatcher(const NameIndex* index, const SifModel* sif,
                                   EmbeddingMatcherOptions options)
    : index_(index), sif_(sif), options_(options) {
  const std::vector<NameEntry>& entries = index_->entries();
  // Probe dimensionality with a first non-empty embedding.
  for (const NameEntry& entry : entries) {
    std::vector<double> v = sif_->Embed(Tokenize(entry.surface));
    if (!v.empty()) {
      dims_ = v.size();
      break;
    }
  }
  surface_embeddings_.assign(entries.size() * dims_, 0.0);
  for (size_t i = 0; i < entries.size(); ++i) {
    std::vector<double> v = sif_->Embed(Tokenize(entries[i].surface));
    if (v.size() == dims_) {
      std::copy(v.begin(), v.end(), surface_embeddings_.begin() + i * dims_);
    }
  }
}

std::optional<ConceptMatch> EmbeddingMatcher::Map(std::string_view term) const {
  std::string normalized = NormalizeTerm(term);
  if (normalized.empty()) return std::nullopt;

  // Exact normalized hit: full confidence, no embedding needed.
  std::vector<ConceptId> exact = index_->FindExact(normalized);
  if (!exact.empty()) return ConceptMatch{exact.front(), 1.0};

  if (dims_ == 0) return std::nullopt;
  std::vector<double> q = sif_->Embed(Tokenize(normalized));
  if (q.size() != dims_) return std::nullopt;
  double qnorm = 0.0;
  for (double x : q) qnorm += x * x;
  if (qnorm < 1e-24) return std::nullopt;  // fully OOV query term

  double best = options_.min_similarity;
  ConceptId best_concept = kInvalidConcept;
  const std::vector<NameEntry>& entries = index_->entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const double* row = &surface_embeddings_[i * dims_];
    double sim = CosineSimilarity(q.data(), row, dims_);
    if (sim > best) {
      best = sim;
      best_concept = entries[i].concept_id;
    }
  }
  if (best_concept == kInvalidConcept) return std::nullopt;
  return ConceptMatch{best_concept, best};
}

}  // namespace medrelax
