#include "medrelax/graph/topology.h"

#include <algorithm>

#include "medrelax/common/string_util.h"

namespace medrelax {

Result<std::vector<ConceptId>> TopologicalSortChildrenFirst(
    const ConceptDag& dag) {
  const size_t n = dag.num_concepts();
  // In-degree of a node in the child->parent orientation is its number of
  // native children: a concept can be emitted once all its children are.
  std::vector<uint32_t> pending_children(n, 0);
  for (ConceptId id = 0; id < n; ++id) {
    uint32_t native = 0;
    for (const DagEdge& e : dag.children(id)) {
      if (!e.is_shortcut) ++native;
    }
    pending_children[id] = native;
  }

  std::vector<ConceptId> queue;
  queue.reserve(n);
  for (ConceptId id = 0; id < n; ++id) {
    if (pending_children[id] == 0) queue.push_back(id);
  }

  std::vector<ConceptId> order;
  order.reserve(n);
  for (size_t head = 0; head < queue.size(); ++head) {
    ConceptId id = queue[head];
    order.push_back(id);
    for (const DagEdge& e : dag.parents(id)) {
      if (e.is_shortcut) continue;
      if (--pending_children[e.target] == 0) queue.push_back(e.target);
    }
  }

  if (order.size() != n) {
    return Status::FailedPrecondition(StrFormat(
        "external knowledge source contains a subsumption cycle "
        "(%zu of %zu concepts sorted)",
        order.size(), n));
  }
  return order;
}

Status ValidateAcyclic(const ConceptDag& dag) {
  return TopologicalSortChildrenFirst(dag).status();
}

Status ValidateExternalSource(const ConceptDag& dag) {
  MEDRELAX_RETURN_NOT_OK(ValidateAcyclic(dag));
  if (dag.num_concepts() == 0) {
    return Status::FailedPrecondition("external knowledge source is empty");
  }
  std::vector<ConceptId> roots = dag.Roots();
  if (roots.size() != 1) {
    return Status::FailedPrecondition(StrFormat(
        "external knowledge source must have exactly one root, found %zu",
        roots.size()));
  }
  return Status::OK();
}

Result<std::vector<uint32_t>> DepthsFromRoot(const ConceptDag& dag) {
  MEDRELAX_ASSIGN_OR_RETURN(std::vector<ConceptId> order,
                            TopologicalSortChildrenFirst(dag));
  // Walk ancestors-last order in reverse so parents are finalized before
  // children.
  std::vector<uint32_t> depth(dag.num_concepts(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    ConceptId id = *it;
    uint32_t d = 0;
    for (const DagEdge& e : dag.parents(id)) {
      if (e.is_shortcut) continue;
      d = std::max(d, depth[e.target] + 1);
    }
    depth[id] = d;
  }
  return depth;
}

}  // namespace medrelax
