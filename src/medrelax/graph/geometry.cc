#include "medrelax/graph/geometry.h"

#include <algorithm>
#include <limits>

#include "medrelax/graph/traversal.h"

namespace medrelax {

namespace {
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();
}  // namespace

GeometryEngine::GeometryEngine(const ConceptDag* dag)
    : dag_(dag),
      up_target_(dag->num_concepts(), 0),
      stamp_(dag->num_concepts(), 0) {}

void GeometryEngine::SetSource(ConceptId source) {
  if (source == source_) return;
  source_ = source;
  if (!dag_->IsValid(source)) {
    up_source_.assign(dag_->num_concepts(), kUnreachable);
    return;
  }
  up_source_ = UpDistances(*dag_, source);
}

PairGeometry GeometryEngine::Compute(ConceptId target) {
  PairGeometry g;
  if (!dag_->IsValid(source_) || !dag_->IsValid(target)) return g;

  // Sparse upward BFS from the target over native edges: the reflexive
  // ancestor cone with original-hop distances, epoch-stamped so the
  // graph-sized scratch arrays are reused without clearing.
  if (epoch_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 0;
  }
  ++epoch_;
  cone_.clear();
  stamp_[target] = epoch_;
  up_target_[target] = 0;
  cone_.push_back(target);
  for (size_t head = 0; head < cone_.size(); ++head) {
    ConceptId u = cone_[head];
    for (const DagEdge& e : dag_->parents(u)) {
      if (e.is_shortcut) continue;
      if (stamp_[e.target] != epoch_) {
        stamp_[e.target] = epoch_;
        up_target_[e.target] = up_target_[u] + 1;
        cone_.push_back(e.target);
      }
    }
  }

  // Best apex: minimal total original-hop length, ties broken towards the
  // fewest generalization hops (matching ShortestTaxonomicPath).
  uint32_t best_total = kUnreachable;
  uint32_t best_up = kUnreachable;
  for (ConceptId c : cone_) {
    if (up_source_[c] == kUnreachable) continue;
    uint32_t total = up_source_[c] + up_target_[c];
    if (total < best_total ||
        (total == best_total && up_source_[c] < best_up)) {
      best_total = total;
      best_up = up_source_[c];
    }
  }
  if (best_total == kUnreachable) return g;  // disconnected forest

  g.connected = true;
  // The path generalizes `up` hops to the apex then specializes `down`
  // hops; Equation 4 assigns hop i (one-based) the exponent D - i, so the
  // per-direction sums collapse to closed forms. All quantities are small
  // integers, so the doubles are exact.
  const double up = static_cast<double>(best_up);
  const double down = static_cast<double>(best_total - best_up);
  const double d = up + down;
  g.gen_exponent = up * d - up * (up + 1.0) / 2.0;
  g.spec_exponent = down * (down - 1.0) / 2.0;

  // LCS (footnote 1): among minimal common subsumers — those with no
  // native child that is also a common subsumer — keep the shortest
  // combined distance; ties are all returned. Common subsumers are
  // exactly the cone members the source also reaches upward.
  uint32_t best_combined = kUnreachable;
  for (ConceptId c : cone_) {
    if (up_source_[c] == kUnreachable) continue;
    bool minimal = true;
    for (const DagEdge& e : dag_->children(c)) {
      if (e.is_shortcut) continue;
      if (stamp_[e.target] == epoch_ &&
          up_source_[e.target] != kUnreachable) {
        minimal = false;
        break;
      }
    }
    if (!minimal) continue;
    uint32_t combined = up_source_[c] + up_target_[c];
    if (combined < best_combined) {
      best_combined = combined;
      g.lcs.clear();
      g.lcs.push_back(c);
    } else if (combined == best_combined) {
      g.lcs.push_back(c);
    }
  }
  std::sort(g.lcs.begin(), g.lcs.end());
  return g;
}

}  // namespace medrelax
