#include "medrelax/graph/lcs.h"

#include <limits>

#include "medrelax/graph/traversal.h"

namespace medrelax {

namespace {
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();
}  // namespace

LcsResult LeastCommonSubsumers(const ConceptDag& dag, ConceptId a,
                               ConceptId b) {
  LcsResult result;
  std::vector<uint32_t> up_a = UpDistances(dag, a);
  std::vector<uint32_t> up_b = UpDistances(dag, b);

  // The common-subsumer set (reflexive ancestors of both) is upward-closed:
  // any ancestor of a common subsumer is itself one. Hence C is *minimal*
  // iff no native child of C is also a common subsumer.
  auto is_common = [&](ConceptId c) {
    return up_a[c] != kUnreachable && up_b[c] != kUnreachable;
  };

  uint32_t best_combined = kUnreachable;
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    if (!is_common(c)) continue;
    bool minimal = true;
    for (const DagEdge& e : dag.children(c)) {
      if (e.is_shortcut) continue;
      if (is_common(e.target)) {
        minimal = false;
        break;
      }
    }
    if (!minimal) continue;
    uint32_t combined = up_a[c] + up_b[c];
    if (combined < best_combined) {
      best_combined = combined;
      result.concepts.clear();
      result.concepts.push_back(c);
      result.combined_distance = combined;
      result.distance_from_a = up_a[c];
      result.distance_from_b = up_b[c];
    } else if (combined == best_combined) {
      result.concepts.push_back(c);
    }
  }
  return result;
}

}  // namespace medrelax
