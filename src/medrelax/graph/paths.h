#ifndef MEDRELAX_GRAPH_PATHS_H_
#define MEDRELAX_GRAPH_PATHS_H_

#include <vector>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// Direction of one hop along a taxonomic path, as seen walking from the
/// query-term concept towards the candidate (Section 5.2, Example 4):
/// following a subsumption edge upward is a generalization, downward a
/// specialization.
enum class HopDirection : uint8_t {
  kGeneralization,
  kSpecialization,
};

/// A shortest up-then-down path between two concepts through a common
/// subsumer, expanded to *original* hops (shortcut edges contribute their
/// annotated distance as that many unit hops). This is the |D|-hop path of
/// Equation (4).
struct TaxonomicPath {
  /// True iff the two concepts are connected (always true in a rooted DAG).
  bool found = false;
  /// The apex (common subsumer) the path climbs to; equals `from` or `to`
  /// for pure specialization / generalization paths.
  ConceptId apex = kInvalidConcept;
  /// Per-hop directions from `from` to `to`: `up` generalizations followed
  /// by `down` specializations. Empty when from == to.
  std::vector<HopDirection> hops;

  /// |D| of Equation (4).
  [[nodiscard]]
  uint32_t length() const { return static_cast<uint32_t>(hops.size()); }
};

/// Computes the shortest (in original hops) generalize-then-specialize path
/// from `from` to `to`. Among apexes with equal total length, the one with
/// the fewest generalization hops wins (generalizations are the penalized
/// direction, so this is the path a ranker would prefer).
TaxonomicPath ShortestTaxonomicPath(const ConceptDag& dag, ConceptId from,
                                    ConceptId to);

/// Shortest original-hop distance |shortestPath(A, B)| between a descendant
/// A and its ancestor B, used to annotate shortcut edges (Algorithm 1 line
/// 21). Returns UINT32_MAX if B does not subsume A.
uint32_t SubsumptionDistance(const ConceptDag& dag, ConceptId descendant,
                             ConceptId ancestor);

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_PATHS_H_
