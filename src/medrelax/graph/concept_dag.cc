#include "medrelax/graph/concept_dag.h"

#include <algorithm>

#include "medrelax/common/string_util.h"

namespace medrelax {

Result<ConceptId> ConceptDag::AddConcept(std::string name) {
  auto [it, inserted] =
      name_to_id_.emplace(name, static_cast<ConceptId>(names_.size()));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("concept '%s' already exists", name.c_str()));
  }
  names_.push_back(std::move(name));
  synonyms_.emplace_back();
  parents_.emplace_back();
  children_.emplace_back();
  return it->second;
}

Status ConceptDag::AddSynonym(ConceptId id, std::string synonym) {
  if (!IsValid(id)) {
    return Status::InvalidArgument("AddSynonym: invalid concept id");
  }
  synonyms_[id].push_back(std::move(synonym));
  return Status::OK();
}

Status ConceptDag::AddSubsumption(ConceptId child, ConceptId parent) {
  if (!IsValid(child) || !IsValid(parent)) {
    return Status::InvalidArgument("AddSubsumption: invalid concept id");
  }
  if (child == parent) {
    return Status::InvalidArgument(
        StrFormat("AddSubsumption: self-edge on '%s'", names_[child].c_str()));
  }
  for (const DagEdge& e : parents_[child]) {
    if (e.target == parent && !e.is_shortcut) {
      return Status::AlreadyExists(
          StrFormat("edge '%s' -> '%s' already exists",
                    names_[child].c_str(), names_[parent].c_str()));
    }
  }
  parents_[child].push_back({parent, 1, false});
  children_[parent].push_back({child, 1, false});
  ++num_edges_;
  return Status::OK();
}

Status ConceptDag::AddShortcut(ConceptId child, ConceptId parent,
                               uint32_t original_distance) {
  if (!IsValid(child) || !IsValid(parent)) {
    return Status::InvalidArgument("AddShortcut: invalid concept id");
  }
  if (child == parent) {
    return Status::InvalidArgument("AddShortcut: self-edge");
  }
  if (original_distance < 2) {
    return Status::InvalidArgument(
        "AddShortcut: shortcut must replace >= 2 native hops");
  }
  for (const DagEdge& e : parents_[child]) {
    if (e.target == parent) return Status::OK();  // already connected
  }
  parents_[child].push_back({parent, original_distance, true});
  children_[parent].push_back({child, original_distance, true});
  ++num_edges_;
  ++num_shortcuts_;
  return Status::OK();
}

std::vector<ConceptId> ConceptDag::NativeParents(ConceptId id) const {
  std::vector<ConceptId> out;
  for (const DagEdge& e : parents_[id]) {
    if (!e.is_shortcut) out.push_back(e.target);
  }
  return out;
}

std::vector<ConceptId> ConceptDag::NativeChildren(ConceptId id) const {
  std::vector<ConceptId> out;
  for (const DagEdge& e : children_[id]) {
    if (!e.is_shortcut) out.push_back(e.target);
  }
  return out;
}

ConceptId ConceptDag::FindByName(std::string_view name) const {
  auto it = name_to_id_.find(std::string(name));
  return it == name_to_id_.end() ? kInvalidConcept : it->second;
}

ConceptDag ConceptDag::Restore(std::vector<std::string> names,
                               std::vector<std::vector<std::string>> synonyms,
                               std::vector<std::vector<DagEdge>> parents,
                               std::vector<std::vector<DagEdge>> children,
                               size_t num_edges, size_t num_shortcuts) {
  ConceptDag dag;
  dag.names_ = std::move(names);
  dag.synonyms_ = std::move(synonyms);
  dag.parents_ = std::move(parents);
  dag.children_ = std::move(children);
  dag.num_edges_ = num_edges;
  dag.num_shortcuts_ = num_shortcuts;
  dag.name_to_id_.reserve(dag.names_.size());
  for (ConceptId id = 0; id < dag.names_.size(); ++id) {
    dag.name_to_id_[dag.names_[id]] = id;
  }
  return dag;
}

std::vector<ConceptId> ConceptDag::Roots() const {
  std::vector<ConceptId> roots;
  for (ConceptId id = 0; id < names_.size(); ++id) {
    if (parents_[id].empty()) roots.push_back(id);
  }
  return roots;
}

}  // namespace medrelax
