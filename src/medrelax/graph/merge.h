#ifndef MEDRELAX_GRAPH_MERGE_H_
#define MEDRELAX_GRAPH_MERGE_H_

#include <string>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// Options for merging two external knowledge sources.
struct MergeOptions {
  /// Name of the fresh top concept both source roots hang under.
  std::string merged_root_name = "merged knowledge source";
  /// Unify concepts across sources whose normalized canonical name or any
  /// synonym coincides (the lightweight cross-source alignment that makes
  /// a SNOMED + UMLS union more than a disjoint forest). When off, name
  /// collisions from the second source are disambiguated with a suffix.
  bool unify_by_name = true;
};

/// Outcome of a merge: the combined DAG plus per-source id translations.
struct MergeResult {
  ConceptDag dag;
  ConceptId root = kInvalidConcept;
  /// Source-A concept id -> merged id.
  std::vector<ConceptId> from_a;
  /// Source-B concept id -> merged id.
  std::vector<ConceptId> from_b;
  /// Concepts of B that were unified with an A concept.
  size_t unified = 0;
};

/// Merges two external knowledge sources under a fresh root (the paper
/// works against "external knowledge sources" in the plural — UMLS,
/// SNOMED CT, Gene Ontology; this is the union step that lets ingestion
/// and relaxation run over several at once).
///
/// Native subsumption edges are copied; shortcut edges are intentionally
/// dropped (re-run ingestion over the merged source to re-derive them for
/// the application). Fails with FailedPrecondition when unification would
/// introduce a subsumption cycle (contradictory hierarchies), leaving the
/// caller to resolve the conflict.
[[nodiscard]] Result<MergeResult> MergeExternalSources(const ConceptDag& a,
                                         const ConceptDag& b,
                                         const MergeOptions& options = {});

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_MERGE_H_
