#include "medrelax/graph/traversal.h"

#include <limits>

namespace medrelax {

namespace {

constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

// BFS over native edges in one direction; returns per-concept hop counts.
// Shortcut edges preserve original distances by construction, so original
// hop distances are exactly the native-edge BFS distances.
std::vector<uint32_t> DirectedDistances(const ConceptDag& dag, ConceptId start,
                                        bool upward) {
  std::vector<uint32_t> dist(dag.num_concepts(), kUnreachable);
  dist[start] = 0;
  std::vector<ConceptId> queue = {start};
  for (size_t head = 0; head < queue.size(); ++head) {
    ConceptId u = queue[head];
    const std::vector<DagEdge>& edges =
        upward ? dag.parents(u) : dag.children(u);
    for (const DagEdge& e : edges) {
      if (e.is_shortcut) continue;
      if (dist[e.target] == kUnreachable) {
        dist[e.target] = dist[u] + 1;
        queue.push_back(e.target);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<ConceptId> Ancestors(const ConceptDag& dag, ConceptId id) {
  std::vector<uint32_t> dist = DirectedDistances(dag, id, /*upward=*/true);
  std::vector<ConceptId> out;
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    if (c != id && dist[c] != kUnreachable) out.push_back(c);
  }
  return out;
}

std::vector<ConceptId> Descendants(const ConceptDag& dag, ConceptId id) {
  std::vector<uint32_t> dist = DirectedDistances(dag, id, /*upward=*/false);
  std::vector<ConceptId> out;
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    if (c != id && dist[c] != kUnreachable) out.push_back(c);
  }
  return out;
}

bool IsAncestorOf(const ConceptDag& dag, ConceptId ancestor,
                  ConceptId descendant) {
  if (ancestor == descendant) return false;
  // BFS upward from the descendant with early exit.
  std::vector<bool> seen(dag.num_concepts(), false);
  seen[descendant] = true;
  std::vector<ConceptId> queue = {descendant};
  for (size_t head = 0; head < queue.size(); ++head) {
    for (const DagEdge& e : dag.parents(queue[head])) {
      if (e.is_shortcut) continue;
      if (e.target == ancestor) return true;
      if (!seen[e.target]) {
        seen[e.target] = true;
        queue.push_back(e.target);
      }
    }
  }
  return false;
}

RadiusExpander::RadiusExpander(const ConceptDag& dag, ConceptId start)
    : dag_(&dag), dist_(dag.num_concepts(), kUnreachable) {
  if (start < dag.num_concepts()) {
    dist_[start] = 0;
    buckets_.resize(1);
    buckets_[0].push_back(start);
  }
}

void RadiusExpander::ExpandTo(uint32_t radius, std::vector<Neighbor>* out) {
  while (next_bucket_ < buckets_.size() && next_bucket_ <= radius) {
    // Index-based loop: relaxations never push into the current bucket
    // (edge weights are >= 1) but do grow `buckets_`.
    for (size_t i = 0; i < buckets_[next_bucket_].size(); ++i) {
      ConceptId u = buckets_[next_bucket_][i];
      if (dist_[u] != next_bucket_) continue;  // stale dial entry
      if (next_bucket_ > 0 && out != nullptr) {
        out->push_back({u, next_bucket_});
      }
      auto relax = [&](const DagEdge& e) {
        ++edges_relaxed_;
        // A well-formed edge has original_distance >= 1; clamp malformed
        // zero-distance edges so the dial queue always advances.
        uint32_t weight = e.original_distance == 0 ? 1 : e.original_distance;
        uint32_t candidate = next_bucket_ + weight;
        if (candidate < next_bucket_) return;  // overflow guard
        if (candidate < dist_[e.target]) {
          dist_[e.target] = candidate;
          if (candidate >= buckets_.size()) buckets_.resize(candidate + 1);
          buckets_[candidate].push_back(e.target);
        }
      };
      for (const DagEdge& e : dag_->parents(u)) relax(e);
      for (const DagEdge& e : dag_->children(u)) relax(e);
    }
    buckets_[next_bucket_].clear();
    ++next_bucket_;
  }
  // When the queue drains early, remember the requested radius so a later
  // ExpandTo with a larger one resumes correctly (nothing left to do).
  if (next_bucket_ <= radius) next_bucket_ = radius + 1;
}

std::vector<Neighbor> NeighborsWithinRadius(const ConceptDag& dag,
                                            ConceptId start, uint32_t radius) {
  std::vector<Neighbor> out;
  if (radius == 0) return out;
  RadiusExpander expander(dag, start);
  expander.ExpandTo(radius, &out);
  return out;
}

uint32_t UpDistance(const ConceptDag& dag, ConceptId from, ConceptId to) {
  return DirectedDistances(dag, from, /*upward=*/true)[to];
}

std::vector<uint32_t> UpDistances(const ConceptDag& dag, ConceptId start) {
  return DirectedDistances(dag, start, /*upward=*/true);
}

std::vector<uint32_t> DownDistances(const ConceptDag& dag, ConceptId start) {
  return DirectedDistances(dag, start, /*upward=*/false);
}

}  // namespace medrelax
