#include "medrelax/graph/traversal.h"

#include <limits>

namespace medrelax {

namespace {

constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

// BFS over native edges in one direction; returns per-concept hop counts.
// Shortcut edges preserve original distances by construction, so original
// hop distances are exactly the native-edge BFS distances.
std::vector<uint32_t> DirectedDistances(const ConceptDag& dag, ConceptId start,
                                        bool upward) {
  std::vector<uint32_t> dist(dag.num_concepts(), kUnreachable);
  dist[start] = 0;
  std::vector<ConceptId> queue = {start};
  for (size_t head = 0; head < queue.size(); ++head) {
    ConceptId u = queue[head];
    const std::vector<DagEdge>& edges =
        upward ? dag.parents(u) : dag.children(u);
    for (const DagEdge& e : edges) {
      if (e.is_shortcut) continue;
      if (dist[e.target] == kUnreachable) {
        dist[e.target] = dist[u] + 1;
        queue.push_back(e.target);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<ConceptId> Ancestors(const ConceptDag& dag, ConceptId id) {
  std::vector<uint32_t> dist = DirectedDistances(dag, id, /*upward=*/true);
  std::vector<ConceptId> out;
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    if (c != id && dist[c] != kUnreachable) out.push_back(c);
  }
  return out;
}

std::vector<ConceptId> Descendants(const ConceptDag& dag, ConceptId id) {
  std::vector<uint32_t> dist = DirectedDistances(dag, id, /*upward=*/false);
  std::vector<ConceptId> out;
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    if (c != id && dist[c] != kUnreachable) out.push_back(c);
  }
  return out;
}

bool IsAncestorOf(const ConceptDag& dag, ConceptId ancestor,
                  ConceptId descendant) {
  if (ancestor == descendant) return false;
  // BFS upward from the descendant with early exit.
  std::vector<bool> seen(dag.num_concepts(), false);
  seen[descendant] = true;
  std::vector<ConceptId> queue = {descendant};
  for (size_t head = 0; head < queue.size(); ++head) {
    for (const DagEdge& e : dag.parents(queue[head])) {
      if (e.is_shortcut) continue;
      if (e.target == ancestor) return true;
      if (!seen[e.target]) {
        seen[e.target] = true;
        queue.push_back(e.target);
      }
    }
  }
  return false;
}

std::vector<Neighbor> NeighborsWithinRadius(const ConceptDag& dag,
                                            ConceptId start, uint32_t radius) {
  std::vector<Neighbor> out;
  if (radius == 0) return out;
  std::vector<uint32_t> hops(dag.num_concepts(), kUnreachable);
  hops[start] = 0;
  std::vector<ConceptId> queue = {start};
  for (size_t head = 0; head < queue.size(); ++head) {
    ConceptId u = queue[head];
    if (hops[u] == radius) continue;
    auto visit = [&](const DagEdge& e) {
      if (hops[e.target] == kUnreachable) {
        hops[e.target] = hops[u] + 1;
        queue.push_back(e.target);
        out.push_back({e.target, hops[e.target]});
      }
    };
    for (const DagEdge& e : dag.parents(u)) visit(e);
    for (const DagEdge& e : dag.children(u)) visit(e);
  }
  return out;
}

uint32_t UpDistance(const ConceptDag& dag, ConceptId from, ConceptId to) {
  return DirectedDistances(dag, from, /*upward=*/true)[to];
}

std::vector<uint32_t> UpDistances(const ConceptDag& dag, ConceptId start) {
  return DirectedDistances(dag, start, /*upward=*/true);
}

std::vector<uint32_t> DownDistances(const ConceptDag& dag, ConceptId start) {
  return DirectedDistances(dag, start, /*upward=*/false);
}

}  // namespace medrelax
