#ifndef MEDRELAX_GRAPH_TRAVERSAL_H_
#define MEDRELAX_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// All (direct and transitive) generalizations of `id` over native edges,
/// excluding `id` itself (the paper's "ancestors", Section 2.2).
std::vector<ConceptId> Ancestors(const ConceptDag& dag, ConceptId id);

/// All (direct and transitive) specializations of `id` over native edges,
/// excluding `id` itself (the paper's "descendants").
std::vector<ConceptId> Descendants(const ConceptDag& dag, ConceptId id);

/// True iff `ancestor` subsumes `descendant` (strictly; native edges).
bool IsAncestorOf(const ConceptDag& dag, ConceptId ancestor,
                  ConceptId descendant);

/// A concept reached by the radius-bounded search together with its
/// distance from the start concept.
struct Neighbor {
  ConceptId id = kInvalidConcept;
  /// Shortest distance in *original* hops: a native edge counts 1 and a
  /// shortcut edge counts its annotated original distance. The radius-r
  /// ball is therefore identical whether or not shortcut edges were
  /// materialized — shortcuts are a traversal-latency lever (one edge
  /// relaxation spans several original hops), never a semantics change
  /// (DESIGN.md ablation promise: shortcut edges on/off yields the same
  /// candidates).
  uint32_t hops = 0;
};

/// Incremental radius-bounded search (Algorithm 2 line 2, including the
/// dynamic-radius growth of Section 5.2): a bounded Dijkstra over
/// taxonomic edges in both directions, weighted by original distance.
///
/// `ExpandTo(r)` settles every concept within original-hop distance r and
/// may be called repeatedly with nondecreasing radii; each call resumes
/// from the previous frontier instead of re-running the search from
/// scratch, so `++radius` growth costs only the newly uncovered shell.
class RadiusExpander {
 public:
  /// Borrows `dag`, which must outlive the expander.
  RadiusExpander(const ConceptDag& dag, ConceptId start);

  /// Expands the settled ball to `radius`, appending every newly settled
  /// concept (excluding `start`) to `out` in nondecreasing hop order.
  /// Precondition: `radius` is >= every radius passed before.
  void ExpandTo(uint32_t radius, std::vector<Neighbor>* out);

  /// Edge relaxations performed so far (bench/stats instrumentation).
  [[nodiscard]] size_t edges_relaxed() const { return edges_relaxed_; }

 private:
  const ConceptDag* dag_;
  std::vector<uint32_t> dist_;
  /// Dial queue: buckets_[d] holds concepts tentatively at distance d.
  /// Entries go stale when a shorter path is found first; stale entries
  /// are skipped on settlement (dist_ no longer matches the bucket).
  std::vector<std::vector<ConceptId>> buckets_;
  uint32_t next_bucket_ = 0;
  size_t edges_relaxed_ = 0;
};

/// Concepts within `radius` original hops of `start`, traversing edges in
/// both directions (generalization and specialization), excluding `start`
/// itself. A convenience wrapper over RadiusExpander for one-shot use.
std::vector<Neighbor> NeighborsWithinRadius(const ConceptDag& dag,
                                            ConceptId start, uint32_t radius);

/// Shortest directed generalization distance from `from` up to `to` in
/// *original* hops (shortcuts contribute their annotated distance), or
/// UINT32_MAX when `to` does not subsume `from`.
uint32_t UpDistance(const ConceptDag& dag, ConceptId from, ConceptId to);

/// Original-hop shortest generalization distances from `start` to every
/// ancestor; UINT32_MAX where unreachable. Index = ConceptId.
std::vector<uint32_t> UpDistances(const ConceptDag& dag, ConceptId start);

/// Original-hop shortest specialization distances from `start` down to every
/// descendant; UINT32_MAX where unreachable. Index = ConceptId.
std::vector<uint32_t> DownDistances(const ConceptDag& dag, ConceptId start);

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_TRAVERSAL_H_
