#ifndef MEDRELAX_GRAPH_TRAVERSAL_H_
#define MEDRELAX_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// All (direct and transitive) generalizations of `id` over native edges,
/// excluding `id` itself (the paper's "ancestors", Section 2.2).
std::vector<ConceptId> Ancestors(const ConceptDag& dag, ConceptId id);

/// All (direct and transitive) specializations of `id` over native edges,
/// excluding `id` itself (the paper's "descendants").
std::vector<ConceptId> Descendants(const ConceptDag& dag, ConceptId id);

/// True iff `ancestor` subsumes `descendant` (strictly; native edges).
bool IsAncestorOf(const ConceptDag& dag, ConceptId ancestor,
                  ConceptId descendant);

/// A concept reached by the radius-bounded search together with its hop
/// count from the start concept.
struct Neighbor {
  ConceptId id = kInvalidConcept;
  /// Application-level hops: every edge, including a shortcut, counts 1
  /// (Section 5.1: shortcut endpoints "become one-hop neighbors with
  /// respect to the application").
  uint32_t hops = 0;
};

/// Concepts within `radius` application-level hops of `start`, traversing
/// edges in both directions (generalization and specialization), excluding
/// `start` itself. Shortcut edges count as one hop — this is precisely the
/// latency lever the offline customization buys (Algorithm 2, line 2).
std::vector<Neighbor> NeighborsWithinRadius(const ConceptDag& dag,
                                            ConceptId start, uint32_t radius);

/// Shortest directed generalization distance from `from` up to `to` in
/// *original* hops (shortcuts contribute their annotated distance), or
/// UINT32_MAX when `to` does not subsume `from`.
uint32_t UpDistance(const ConceptDag& dag, ConceptId from, ConceptId to);

/// Original-hop shortest generalization distances from `start` to every
/// ancestor; UINT32_MAX where unreachable. Index = ConceptId.
std::vector<uint32_t> UpDistances(const ConceptDag& dag, ConceptId start);

/// Original-hop shortest specialization distances from `start` down to every
/// descendant; UINT32_MAX where unreachable. Index = ConceptId.
std::vector<uint32_t> DownDistances(const ConceptDag& dag, ConceptId start);

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_TRAVERSAL_H_
