#ifndef MEDRELAX_GRAPH_CONCEPT_DAG_H_
#define MEDRELAX_GRAPH_CONCEPT_DAG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/common/status.h"

namespace medrelax {

/// Identifier of an external concept inside a ConceptDag.
using ConceptId = uint32_t;

/// Sentinel for "no concept".
inline constexpr ConceptId kInvalidConcept = UINT32_MAX;

/// One subsumption (or shortcut) edge of the external knowledge source.
///
/// An edge is stored on the child (more specific) side pointing to the
/// parent (more general) side: child ⊑ parent. `original_distance` is 1 for
/// native subsumption edges; shortcut edges added during ingestion
/// (Section 5.1, "sparsity of external knowledge source") carry the number
/// of native hops they replace so the original semantics are preserved.
struct DagEdge {
  ConceptId target = kInvalidConcept;
  uint32_t original_distance = 1;
  bool is_shortcut = false;
};

/// In-memory external knowledge source: a DAG of named concepts under
/// subsumption (A ⊑ B), as assumed in Section 2.2 of the paper.
///
/// Concepts are interned to dense ids; names and synonyms are normalized by
/// the caller (see matching/name_index.h). The structure is append-only:
/// concepts and edges can be added, never removed. Acyclicity is *not*
/// enforced per-edge for O(1) insertion; ValidateAcyclic() (topology.h)
/// checks the whole graph, and ingestion refuses cyclic inputs.
class ConceptDag {
 public:
  ConceptDag() = default;

  // Movable but not copyable: the DAG is a large shared substrate.
  ConceptDag(ConceptDag&&) = default;
  ConceptDag& operator=(ConceptDag&&) = default;
  ConceptDag(const ConceptDag&) = delete;
  ConceptDag& operator=(const ConceptDag&) = delete;

  /// Adds a concept with a unique canonical name. Fails with AlreadyExists
  /// if the name is taken.
  [[nodiscard]] Result<ConceptId> AddConcept(std::string name);

  /// Adds an alternative surface form for a concept (SNOMED CT descriptions
  /// / synonyms). Synonyms need not be globally unique.
  [[nodiscard]] Status AddSynonym(ConceptId id, std::string synonym);

  /// Adds a native subsumption edge child ⊑ parent (distance 1).
  /// Fails on out-of-range ids, self-edges, and duplicate native edges.
  [[nodiscard]] Status AddSubsumption(ConceptId child, ConceptId parent);

  /// Adds a shortcut edge child ⊑ parent annotated with the original hop
  /// distance it replaces (Algorithm 1, line 21). Duplicate shortcuts are
  /// ignored (idempotent).
  [[nodiscard]] Status AddShortcut(ConceptId child, ConceptId parent,
                     uint32_t original_distance);

  /// Number of concepts.
  [[nodiscard]] size_t num_concepts() const { return names_.size(); }

  /// Total number of edges (native + shortcut).
  [[nodiscard]] size_t num_edges() const { return num_edges_; }

  /// Number of shortcut edges.
  [[nodiscard]] size_t num_shortcut_edges() const { return num_shortcuts_; }

  /// Canonical name of a concept. Precondition: id is valid.
  [[nodiscard]]
  const std::string& name(ConceptId id) const { return names_[id]; }

  /// Synonyms of a concept (canonical name not included).
  [[nodiscard]] const std::vector<std::string>& synonyms(ConceptId id) const {
    return synonyms_[id];
  }

  /// Outgoing generalization edges: everything `id` is a (possibly shortcut)
  /// direct child of.
  [[nodiscard]] const std::vector<DagEdge>& parents(ConceptId id) const {
    return parents_[id];
  }

  /// Incoming specialization edges: everything that directly (possibly via
  /// shortcut) specializes `id`.
  [[nodiscard]] const std::vector<DagEdge>& children(ConceptId id) const {
    return children_[id];
  }

  /// Native (non-shortcut) parents only.
  [[nodiscard]] std::vector<ConceptId> NativeParents(ConceptId id) const;

  /// Native (non-shortcut) children only.
  [[nodiscard]] std::vector<ConceptId> NativeChildren(ConceptId id) const;

  /// Looks up a concept by exact canonical name; kInvalidConcept if absent.
  [[nodiscard]] ConceptId FindByName(std::string_view name) const;

  /// True iff the id addresses an existing concept.
  [[nodiscard]] bool IsValid(ConceptId id) const { return id < names_.size(); }

  /// Concepts with no parents. A well-formed external knowledge source has
  /// exactly one root (owl:Thing, Section 2.2).
  [[nodiscard]] std::vector<ConceptId> Roots() const;

  /// Bulk-restores a DAG from pre-validated component vectors — the flat
  /// snapshot image decoder's fast path, skipping the per-edge duplicate
  /// scans AddSubsumption/AddShortcut perform. All vectors must be sized
  /// per-concept consistently and `parents`/`children` must mirror each
  /// other; the decoder (flat/snapshot_codec.cc) establishes both while
  /// walking the CSR sections. Duplicate names collapse in the lookup map
  /// (last id wins) without invalidating the structure itself.
  [[nodiscard]] static ConceptDag Restore(
      std::vector<std::string> names,
      std::vector<std::vector<std::string>> synonyms,
      std::vector<std::vector<DagEdge>> parents,
      std::vector<std::vector<DagEdge>> children, size_t num_edges,
      size_t num_shortcuts);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<std::string>> synonyms_;
  std::vector<std::vector<DagEdge>> parents_;
  std::vector<std::vector<DagEdge>> children_;
  std::unordered_map<std::string, ConceptId> name_to_id_;
  size_t num_edges_ = 0;
  size_t num_shortcuts_ = 0;
};

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_CONCEPT_DAG_H_
