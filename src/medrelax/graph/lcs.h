#ifndef MEDRELAX_GRAPH_LCS_H_
#define MEDRELAX_GRAPH_LCS_H_

#include <vector>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// Result of a Least Common Subsumer query for a concept pair.
///
/// Per Section 2.3 footnote 1 of the paper: an LCS always exists (the root
/// subsumes everything); when multiple minimal common subsumers exist we
/// keep the one(s) with the shortest combined path to the pair, and when
/// several remain tied the similarity layer averages their IC.
struct LcsResult {
  /// Tied least common subsumers after the shortest-path tie-break.
  /// Non-empty for any pair in a rooted DAG. May include A or B themselves
  /// when one subsumes the other (a concept subsumes itself for LCS
  /// purposes, matching the IC-similarity convention sim(A, A) = 1).
  std::vector<ConceptId> concepts;
  /// Combined original-hop distance up(A -> lcs) + up(B -> lcs).
  uint32_t combined_distance = 0;
  /// up(A -> lcs): generalization hops from A.
  uint32_t distance_from_a = 0;
  /// up(B -> lcs): generalization hops from B.
  uint32_t distance_from_b = 0;
};

/// Computes the LCS set of (a, b).
///
/// "Common subsumer" here includes the concepts themselves (a subsumer of A
/// in the reflexive closure), so LCS(A, A) = {A} and LCS of an
/// ancestor/descendant pair is the ancestor. Among minimal common subsumers
/// (those not subsuming another common subsumer... i.e. with no descendant
/// that is also a common subsumer), the shortest combined distance wins;
/// ties are all returned.
LcsResult LeastCommonSubsumers(const ConceptDag& dag, ConceptId a,
                               ConceptId b);

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_LCS_H_
