#include "medrelax/graph/merge.h"

#include <unordered_map>
#include <unordered_set>

#include "medrelax/common/string_util.h"
#include "medrelax/graph/topology.h"
#include "medrelax/text/normalize.h"

namespace medrelax {

namespace {

// All normalized surface forms (canonical + synonyms) of a concept.
std::vector<std::string> Surfaces(const ConceptDag& dag, ConceptId id) {
  std::vector<std::string> out;
  out.push_back(NormalizeTerm(dag.name(id)));
  for (const std::string& syn : dag.synonyms(id)) {
    out.push_back(NormalizeTerm(syn));
  }
  return out;
}

}  // namespace

Result<MergeResult> MergeExternalSources(const ConceptDag& a,
                                         const ConceptDag& b,
                                         const MergeOptions& options) {
  MergeResult result;
  MEDRELAX_ASSIGN_OR_RETURN(result.root,
                            result.dag.AddConcept(options.merged_root_name));

  // --- Copy source A verbatim. ---
  result.from_a.assign(a.num_concepts(), kInvalidConcept);
  std::unordered_map<std::string, ConceptId> surface_index;
  for (ConceptId id = 0; id < a.num_concepts(); ++id) {
    MEDRELAX_ASSIGN_OR_RETURN(ConceptId merged,
                              result.dag.AddConcept(a.name(id)));
    result.from_a[id] = merged;
    for (const std::string& syn : a.synonyms(id)) {
      MEDRELAX_RETURN_NOT_OK(result.dag.AddSynonym(merged, syn));
    }
    for (const std::string& surface : Surfaces(a, id)) {
      surface_index.emplace(surface, merged);  // first writer wins
    }
  }
  for (ConceptId id = 0; id < a.num_concepts(); ++id) {
    for (const DagEdge& e : a.parents(id)) {
      if (e.is_shortcut) continue;
      MEDRELAX_RETURN_NOT_OK(result.dag.AddSubsumption(
          result.from_a[id], result.from_a[e.target]));
    }
  }

  // --- Copy source B, unifying by surface form when requested. ---
  result.from_b.assign(b.num_concepts(), kInvalidConcept);
  for (ConceptId id = 0; id < b.num_concepts(); ++id) {
    ConceptId merged = kInvalidConcept;
    if (options.unify_by_name) {
      for (const std::string& surface : Surfaces(b, id)) {
        auto it = surface_index.find(surface);
        if (it != surface_index.end()) {
          merged = it->second;
          break;
        }
      }
    }
    if (merged != kInvalidConcept) {
      ++result.unified;
      // Union the synonym lists (skip surfaces the merged node has).
      std::unordered_set<std::string> have;
      for (const std::string& s : Surfaces(result.dag, merged)) {
        have.insert(s);
      }
      for (const std::string& syn : b.synonyms(id)) {
        if (have.insert(NormalizeTerm(syn)).second) {
          MEDRELAX_RETURN_NOT_OK(result.dag.AddSynonym(merged, syn));
        }
      }
      std::string canonical = NormalizeTerm(b.name(id));
      if (have.insert(canonical).second) {
        MEDRELAX_RETURN_NOT_OK(result.dag.AddSynonym(merged, b.name(id)));
      }
    } else {
      // Fresh concept; disambiguate canonical-name collisions.
      Result<ConceptId> made = result.dag.AddConcept(b.name(id));
      if (!made.ok()) {
        made = result.dag.AddConcept(
            StrFormat("%s (source b)", b.name(id).c_str()));
      }
      MEDRELAX_RETURN_NOT_OK(made.status());
      merged = *made;
      for (const std::string& syn : b.synonyms(id)) {
        MEDRELAX_RETURN_NOT_OK(result.dag.AddSynonym(merged, syn));
      }
      for (const std::string& surface : Surfaces(b, id)) {
        surface_index.emplace(surface, merged);
      }
    }
    result.from_b[id] = merged;
  }
  for (ConceptId id = 0; id < b.num_concepts(); ++id) {
    for (const DagEdge& e : b.parents(id)) {
      if (e.is_shortcut) continue;
      ConceptId child = result.from_b[id];
      ConceptId parent = result.from_b[e.target];
      if (child == parent) continue;  // unification collapsed the edge
      Status st = result.dag.AddSubsumption(child, parent);
      if (!st.ok() && !st.IsAlreadyExists()) return st;
    }
  }

  // --- Hang both source roots under the fresh root. ---
  for (ConceptId source_root : a.Roots()) {
    MEDRELAX_RETURN_NOT_OK(result.dag.AddSubsumption(
        result.from_a[source_root], result.root));
  }
  for (ConceptId source_root : b.Roots()) {
    ConceptId merged = result.from_b[source_root];
    bool already = false;
    for (const DagEdge& e : result.dag.parents(merged)) {
      if (e.target == result.root) already = true;
    }
    if (!already && merged != result.root) {
      MEDRELAX_RETURN_NOT_OK(
          result.dag.AddSubsumption(merged, result.root));
    }
  }

  // Unification can splice contradictory hierarchies into a cycle.
  MEDRELAX_RETURN_NOT_OK(ValidateAcyclic(result.dag));
  return result;
}

}  // namespace medrelax
