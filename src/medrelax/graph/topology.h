#ifndef MEDRELAX_GRAPH_TOPOLOGY_H_
#define MEDRELAX_GRAPH_TOPOLOGY_H_

#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// Kahn topological sort over the *native* subsumption edges, children
/// before parents (descendants precede ancestors), as required by
/// Algorithm 1 line 12 for bottom-up frequency propagation (Equation 2).
/// Fails with FailedPrecondition if the graph contains a cycle.
Result<std::vector<ConceptId>> TopologicalSortChildrenFirst(
    const ConceptDag& dag);

/// Validates that the native subsumption relation is acyclic.
[[nodiscard]] Status ValidateAcyclic(const ConceptDag& dag);

/// Validates the well-formedness assumptions of Section 2.2: acyclic and a
/// single root of which every concept is a descendant.
[[nodiscard]] Status ValidateExternalSource(const ConceptDag& dag);

/// Depth of every concept: length of the longest native generalization
/// chain from the concept up to a root (roots have depth 0).
Result<std::vector<uint32_t>> DepthsFromRoot(const ConceptDag& dag);

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_TOPOLOGY_H_
