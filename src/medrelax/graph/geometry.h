#ifndef MEDRELAX_GRAPH_GEOMETRY_H_
#define MEDRELAX_GRAPH_GEOMETRY_H_

#include <cstdint>
#include <vector>

#include "medrelax/graph/concept_dag.h"

namespace medrelax {

/// The weight- and context-independent geometry of a concept pair: enough
/// to evaluate Equations 3-5 for any (w_gen, w_spec, context) without
/// touching the graph again.
struct PairGeometry {
  /// False for disconnected pairs (non-rooted graphs only).
  bool connected = false;
  /// Sum of the Equation 4 exponents (D - i) over generalization hops:
  /// p = w_gen^gen_exponent * w_spec^spec_exponent.
  double gen_exponent = 0.0;
  /// Sum over specialization hops.
  double spec_exponent = 0.0;
  /// Tied least common subsumers (footnote-1 policy applied), ascending id.
  std::vector<ConceptId> lcs;
};

/// Per-query geometry engine: the shared-frontier core of the online hot
/// path (Algorithm 2 line 3).
///
/// `SetSource(Q)` runs ONE upward BFS from the query concept; after that,
/// `Compute(B)` derives the full pair geometry of (Q, B) — shortest
/// taxonomic path split at the best apex, the Equation 4 gen/spec
/// exponents, and the footnote-1 LCS set — from B's ancestor cone alone,
/// in O(|ancestors(B)| * degree). The naive per-pair formulation
/// (ShortestTaxonomicPath + LeastCommonSubsumers) walks the whole graph
/// four times per pair; candidates share the query-side frontier here, so
/// a k-candidate query costs one full traversal plus k small cones.
///
/// Results are value-identical to the naive formulation (property-tested
/// in tests/graph_reference_test.cc).
///
/// Scratch state is reused across calls via epoch stamping, so no
/// per-candidate allocation of graph-sized arrays happens after
/// construction. NOT thread-safe: create one engine per thread
/// (QueryRelaxer::RelaxBatch does exactly that).
class GeometryEngine {
 public:
  /// Borrows `dag`, which must outlive the engine.
  explicit GeometryEngine(const ConceptDag* dag);

  /// Re-anchors the engine on `source` (one upward BFS over native
  /// edges). A no-op when `source` is already the anchor.
  void SetSource(ConceptId source);

  /// The current anchor, kInvalidConcept before the first SetSource.
  [[nodiscard]] ConceptId source() const { return source_; }

  /// Geometry of (source(), target). Precondition: SetSource was called.
  [[nodiscard]] PairGeometry Compute(ConceptId target);

  /// Original-hop generalization distances from the current source
  /// (UINT32_MAX where unreachable), exposed for diagnostics.
  [[nodiscard]] const std::vector<uint32_t>& source_up_distances() const {
    return up_source_;
  }

 private:
  const ConceptDag* dag_;
  ConceptId source_ = kInvalidConcept;
  /// Full upward-distance array from the source (refreshed by SetSource).
  std::vector<uint32_t> up_source_;
  /// Epoch-stamped sparse upward distances of the current target cone.
  std::vector<uint32_t> up_target_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  /// Reflexive ancestors of the current target, in BFS order.
  std::vector<ConceptId> cone_;
};

}  // namespace medrelax

#endif  // MEDRELAX_GRAPH_GEOMETRY_H_
