#include "medrelax/graph/paths.h"

#include <limits>

#include "medrelax/graph/traversal.h"

namespace medrelax {

namespace {
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();
}  // namespace

TaxonomicPath ShortestTaxonomicPath(const ConceptDag& dag, ConceptId from,
                                    ConceptId to) {
  TaxonomicPath path;
  if (!dag.IsValid(from) || !dag.IsValid(to)) return path;
  if (from == to) {
    path.found = true;
    path.apex = from;
    return path;
  }

  std::vector<uint32_t> up_from = UpDistances(dag, from);
  std::vector<uint32_t> up_to = UpDistances(dag, to);

  uint32_t best_total = kUnreachable;
  uint32_t best_up = kUnreachable;
  ConceptId best_apex = kInvalidConcept;
  for (ConceptId c = 0; c < dag.num_concepts(); ++c) {
    if (up_from[c] == kUnreachable || up_to[c] == kUnreachable) continue;
    uint32_t total = up_from[c] + up_to[c];
    if (total < best_total ||
        (total == best_total && up_from[c] < best_up)) {
      best_total = total;
      best_up = up_from[c];
      best_apex = c;
    }
  }
  if (best_apex == kInvalidConcept) return path;  // disconnected forest

  path.found = true;
  path.apex = best_apex;
  path.hops.reserve(best_total);
  for (uint32_t i = 0; i < up_from[best_apex]; ++i) {
    path.hops.push_back(HopDirection::kGeneralization);
  }
  for (uint32_t i = 0; i < up_to[best_apex]; ++i) {
    path.hops.push_back(HopDirection::kSpecialization);
  }
  return path;
}

uint32_t SubsumptionDistance(const ConceptDag& dag, ConceptId descendant,
                             ConceptId ancestor) {
  return UpDistance(dag, descendant, ancestor);
}

}  // namespace medrelax
