#include "medrelax/ontology/context.h"

namespace medrelax {

std::vector<Context> GenerateContexts(const DomainOntology& ontology) {
  std::vector<Context> contexts;
  contexts.reserve(ontology.num_relationships());
  for (const Relationship& r : ontology.relationships()) {
    contexts.push_back(Context{ontology.concept_name(r.domain), r.name,
                               ontology.concept_name(r.range)});
  }
  return contexts;
}

ContextRegistry ContextRegistry::FromOntology(const DomainOntology& ontology) {
  ContextRegistry registry;
  for (const Context& c : GenerateContexts(ontology)) registry.Intern(c);
  return registry;
}

ContextId ContextRegistry::Intern(const Context& context) {
  std::string label = context.Label();
  auto it = by_label_.find(label);
  if (it != by_label_.end()) return it->second;
  ContextId id = static_cast<ContextId>(contexts_.size());
  contexts_.push_back(context);
  by_label_.emplace(std::move(label), id);
  return id;
}

ContextId ContextRegistry::Find(const Context& context) const {
  return FindByLabel(context.Label());
}

ContextId ContextRegistry::FindByLabel(const std::string& label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? kNoContext : it->second;
}

std::vector<ContextId> ContextRegistry::ContextsWithRange(
    const std::string& range_concept) const {
  std::vector<ContextId> out;
  for (ContextId id = 0; id < contexts_.size(); ++id) {
    if (contexts_[id].range == range_concept) out.push_back(id);
  }
  return out;
}

}  // namespace medrelax
