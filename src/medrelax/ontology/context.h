#ifndef MEDRELAX_ONTOLOGY_CONTEXT_H_
#define MEDRELAX_ONTOLOGY_CONTEXT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "medrelax/common/result.h"
#include "medrelax/ontology/domain_ontology.h"

namespace medrelax {

/// Dense identifier of a context inside a ContextRegistry.
using ContextId = uint32_t;

/// Sentinel meaning "context unknown / not provided". The online relaxation
/// falls back to aggregating frequencies over all contexts in that case
/// (Section 5.2, "Contextual information").
inline constexpr ContextId kNoContext = UINT32_MAX;

/// A context is a relationship with its associated source and destination
/// concepts from the domain ontology (Section 2.1), e.g. the triple
/// (Indication, hasFinding, Finding), printed Indication-hasFinding-Finding.
struct Context {
  std::string domain;
  std::string relationship;
  std::string range;

  /// The paper's printed form, e.g. "Indication-hasFinding-Finding".
  [[nodiscard]] std::string Label() const {
    return domain + "-" + relationship + "-" + range;
  }

  friend bool operator==(const Context& a, const Context& b) {
    return a.domain == b.domain && a.relationship == b.relationship &&
           a.range == b.range;
  }
};

/// Generates the set of possible contexts by traversing the domain ontology
/// and returning all relationships with their source and destination
/// concepts (Algorithm 1, lines 1-4). These double as the intent labels the
/// NLI system is bootstrapped with (Section 4).
std::vector<Context> GenerateContexts(const DomainOntology& ontology);

/// Interns contexts to dense ContextIds so per-context frequency tables can
/// be indexed by small integers.
class ContextRegistry {
 public:
  ContextRegistry() = default;

  /// Builds a registry holding exactly the contexts of `ontology`.
  static ContextRegistry FromOntology(const DomainOntology& ontology);

  /// Interns a context, returning its id (existing or new).
  ContextId Intern(const Context& context);

  /// Looks up a context; kNoContext if absent.
  [[nodiscard]] ContextId Find(const Context& context) const;

  /// Looks up by printed label, e.g. "Indication-hasFinding-Finding".
  [[nodiscard]] ContextId FindByLabel(const std::string& label) const;

  /// Number of registered contexts.
  [[nodiscard]] size_t size() const { return contexts_.size(); }

  /// The context for an id. Precondition: id < size().
  [[nodiscard]]
  const Context& context(ContextId id) const { return contexts_[id]; }

  /// All registered contexts in id order.
  [[nodiscard]]
  const std::vector<Context>& contexts() const { return contexts_; }

  /// Context ids whose range concept matches `range_concept` — the contexts
  /// in which an instance of that ontology concept can be used.
  std::vector<ContextId> ContextsWithRange(
      const std::string& range_concept) const;

 private:
  std::vector<Context> contexts_;
  std::unordered_map<std::string, ContextId> by_label_;
};

}  // namespace medrelax

#endif  // MEDRELAX_ONTOLOGY_CONTEXT_H_
