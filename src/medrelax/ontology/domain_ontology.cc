#include "medrelax/ontology/domain_ontology.h"

#include "medrelax/common/string_util.h"

namespace medrelax {

Result<OntologyConceptId> DomainOntology::AddConcept(std::string name) {
  auto [it, inserted] = concept_index_.emplace(
      name, static_cast<OntologyConceptId>(concept_names_.size()));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("ontology concept '%s' already exists", name.c_str()));
  }
  concept_names_.push_back(std::move(name));
  by_range_.emplace_back();
  by_domain_.emplace_back();
  sub_concepts_.emplace_back();
  super_concepts_.emplace_back();
  return it->second;
}

Result<RelationshipId> DomainOntology::AddRelationship(
    std::string name, OntologyConceptId domain, OntologyConceptId range) {
  if (!IsValidConcept(domain) || !IsValidConcept(range)) {
    return Status::InvalidArgument(
        StrFormat("AddRelationship('%s'): invalid endpoint", name.c_str()));
  }
  for (RelationshipId id : by_domain_[domain]) {
    const Relationship& r = relationships_[id];
    if (r.name == name && r.range == range) {
      return Status::AlreadyExists(StrFormat(
          "relationship %s-%s-%s already exists",
          concept_names_[domain].c_str(), name.c_str(),
          concept_names_[range].c_str()));
    }
  }
  RelationshipId id = static_cast<RelationshipId>(relationships_.size());
  relationships_.push_back({std::move(name), domain, range});
  by_domain_[domain].push_back(id);
  by_range_[range].push_back(id);
  return id;
}

Status DomainOntology::AddSubConcept(OntologyConceptId child,
                                     OntologyConceptId parent) {
  if (!IsValidConcept(child) || !IsValidConcept(parent)) {
    return Status::InvalidArgument("AddSubConcept: invalid concept id");
  }
  if (child == parent) {
    return Status::InvalidArgument("AddSubConcept: self-subsumption");
  }
  sub_concepts_[parent].push_back(child);
  super_concepts_[child].push_back(parent);
  return Status::OK();
}

OntologyConceptId DomainOntology::FindConcept(std::string_view name) const {
  auto it = concept_index_.find(std::string(name));
  return it == concept_index_.end() ? kInvalidOntologyConcept : it->second;
}

std::vector<RelationshipId> DomainOntology::RelationshipsWithRange(
    OntologyConceptId concept_id) const {
  return by_range_[concept_id];
}

std::vector<RelationshipId> DomainOntology::RelationshipsWithDomain(
    OntologyConceptId concept_id) const {
  return by_domain_[concept_id];
}

std::vector<OntologyConceptId> DomainOntology::SubConcepts(
    OntologyConceptId parent) const {
  return sub_concepts_[parent];
}

std::vector<OntologyConceptId> DomainOntology::SuperConcepts(
    OntologyConceptId child) const {
  return super_concepts_[child];
}

}  // namespace medrelax
